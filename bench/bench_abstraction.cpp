// Ablation — Section 3.2's island-ID abstraction trade-off:
//
//   "Islands that list their IDs reduce path diversity for member ASes
//    because this forces loop detection to work at the granularity of
//    entire islands. Paths that enter and leave the island multiple times
//    without causing AS-level loops will be thrown out."
//
// We build topologies where a multi-entry island sits between sources and a
// destination, run the control plane once with the island abstracting its
// members and once listing them, and count destinations reachable and
// advertisements dropped by loop detection. Also reports the IA-size saving
// abstraction buys (the competitive/consistency reason islands choose it).
#include <cstdio>

#include "bench_json.h"
#include "protocols/bgp_module.h"
#include "simnet/network.h"

using namespace dbgp;

namespace {

struct Outcome {
  std::size_t reachable = 0;
  std::uint64_t dropped_by_loop = 0;
  std::uint64_t bytes_sent = 0;
};

// Topology: island I = {10, 11} operates two *separate sites* (a provider
// with two disconnected footprints — common in practice). Any path between
// the left and right edges must traverse both sites:
//
//     1 --- 10(site A) --- 2 --- 3 --- 11(site B) --- 4
//
// With members listed, the path 4..11..3..2..10..1 has no AS-level loop.
// With island-ID abstraction, the second site's entry makes the path
// vector contain island I twice -> unified loop detection throws it out,
// and 1 and 4 lose each other.
Outcome run(bool abstract_island) {
  simnet::DbgpNetwork net;
  const auto island = ia::IslandId::assigned(0x11);

  auto add_member = [&](bgp::AsNumber asn) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    config.island = island;
    config.island_protocol = ia::kProtoBgp;
    config.abstract_island = abstract_island;
    config.island_members = {10, 11};
    net.add_as(config).add_module(std::make_unique<protocols::BgpModule>());
  };
  auto add_plain = [&](bgp::AsNumber asn) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    net.add_as(config).add_module(std::make_unique<protocols::BgpModule>());
  };

  for (bgp::AsNumber asn : {1u, 2u, 3u, 4u}) add_plain(asn);
  add_member(10);
  add_member(11);

  net.add_link(1, 10);
  net.add_link(10, 2);
  net.add_link(2, 3);
  net.add_link(3, 11);
  net.add_link(11, 4);

  // Everyone originates one prefix.
  const bgp::AsNumber all[] = {1, 2, 3, 4, 10, 11};
  for (bgp::AsNumber asn : all) {
    net.originate(asn, net::Prefix(net::Ipv4Address(10, static_cast<std::uint8_t>(asn), 0, 0),
                                   16));
  }
  net.run_to_convergence();

  Outcome outcome;
  for (bgp::AsNumber asn : all) {
    for (bgp::AsNumber dest : all) {
      if (asn == dest) continue;
      const auto prefix =
          net::Prefix(net::Ipv4Address(10, static_cast<std::uint8_t>(dest), 0, 0), 16);
      if (net.speaker(asn).best(prefix) != nullptr) ++outcome.reachable;
    }
    outcome.dropped_by_loop += net.speaker(asn).stats().dropped_by_global_filter;
    outcome.bytes_sent += net.speaker(asn).stats().bytes_sent;
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf("Ablation — island-ID abstraction vs per-AS path vectors (Section 3.2)\n\n");
  bench::BenchJson out("abstraction");
  bench::Stopwatch sw;
  const Outcome listed = run(/*abstract_island=*/false);
  auto& listed_run = out.add_run("members_listed", 1.0, sw.elapsed_s());
  listed_run.counters.emplace_back("reachable", static_cast<double>(listed.reachable));
  listed_run.counters.emplace_back("bytes_sent", static_cast<double>(listed.bytes_sent));
  sw.restart();
  const Outcome abstracted = run(/*abstract_island=*/true);
  auto& abstracted_run = out.add_run("island_id_abstracted", 1.0, sw.elapsed_s());
  abstracted_run.counters.emplace_back("reachable",
                                       static_cast<double>(abstracted.reachable));
  abstracted_run.counters.emplace_back("bytes_sent",
                                       static_cast<double>(abstracted.bytes_sent));

  std::printf("%28s | %12s | %14s | %12s\n", "mode", "reachable", "loop-dropped",
              "bytes sent");
  std::printf("%28s-+--------------+----------------+-------------\n",
              "----------------------------");
  std::printf("%28s | %12zu | %14llu | %12llu\n", "members listed", listed.reachable,
              static_cast<unsigned long long>(listed.dropped_by_loop),
              static_cast<unsigned long long>(listed.bytes_sent));
  std::printf("%28s | %12zu | %14llu | %12llu\n", "island-ID abstracted",
              abstracted.reachable,
              static_cast<unsigned long long>(abstracted.dropped_by_loop),
              static_cast<unsigned long long>(abstracted.bytes_sent));

  std::printf("\nAbstraction coarsens loop detection (>= as many advertisements dropped)\n");
  std::printf("in exchange for hiding island internals and shorter path vectors.\n");
  const bool shape = abstracted.dropped_by_loop >= listed.dropped_by_loop &&
                     abstracted.reachable <= listed.reachable;
  std::printf("shape: abstraction trades diversity for opacity: %s\n",
              shape ? "yes" : "NO (unexpected)");
  return out.write() && shape ? 0 : 1;
}
