// E5 — Figure 10: incremental benefits for the bottleneck-bandwidth
// archetype (the hardest global objective: the bottleneck may sit inside a
// gulf).
//
// Paper setup: same 1,000-AS Waxman topology; per-AS ingress bandwidths
// ~ U[10, 1024]; only upgraded ASes expose their bandwidth; benefit is the
// *actual* bottleneck of chosen paths at upgraded ASes. Expected shape:
// both baselines dip below the status quo at low adoption (ill-informed
// choices); D-BGP re-crosses the status quo around ~30% adoption while the
// BGP baseline stays below until very high adoption; D-BGP's slope is
// higher below ~80%.
#include <cstdio>

#include "bench_json.h"
#include "sim/experiment.h"
#include "util/flags.h"

using namespace dbgp;

int main(int argc, char** argv) {
  util::Flags flags;
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    std::fprintf(stderr, "bad flags: %s\n", error.c_str());
    return 1;
  }

  sim::SweepConfig config;
  config.topology.nodes = static_cast<std::size_t>(flags.get_int("nodes", 1000));
  config.trials = static_cast<std::size_t>(flags.get_int("trials", 9));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.bandwidth_min = static_cast<std::uint64_t>(flags.get_int("bw-min", 10));
  config.bandwidth_max = static_cast<std::uint64_t>(flags.get_int("bw-max", 1024));

  std::printf("Figure 10 — incremental benefits, bottleneck-bandwidth archetype\n");
  std::printf("topology: %zu-AS Waxman, %zu trials, bandwidth ~ U[%llu, %llu]\n\n",
              config.topology.nodes, config.trials,
              static_cast<unsigned long long>(config.bandwidth_min),
              static_cast<unsigned long long>(config.bandwidth_max));

  bench::BenchJson out("bottleneck_bw");
  bench::Stopwatch sw;
  const auto result = sim::run_bottleneck_sweep(config);
  out.add_run("bottleneck_sweep", static_cast<double>(config.trials), sw.elapsed_s());

  std::printf("%10s | %22s | %22s\n", "adoption", "D-BGP baseline (±CI95)",
              "BGP baseline (±CI95)");
  std::printf("%10s-+-%22s-+-%22s\n", "----------", "----------------------",
              "----------------------");
  for (std::size_t i = 0; i < result.dbgp_baseline.size(); ++i) {
    std::printf("%9.0f%% | %12.1f ± %7.1f | %12.1f ± %7.1f\n",
                result.dbgp_baseline[i].adoption * 100,
                result.dbgp_baseline[i].benefit.mean, result.dbgp_baseline[i].benefit.ci95,
                result.bgp_baseline[i].benefit.mean, result.bgp_baseline[i].benefit.ci95);
  }
  std::printf("\nstatus quo (0%% adoption): %.1f\n", result.status_quo);
  std::printf("best case (100%%, full information): %.1f\n", result.best_case);

  // Cross-over analysis (the paper's key observation).
  auto crossover = [&](const std::vector<sim::SeriesPoint>& series) -> double {
    for (const auto& point : series) {
      if (point.benefit.mean >= result.status_quo) return point.adoption;
    }
    return 2.0;  // never
  };
  const double dbgp_cross = crossover(result.dbgp_baseline);
  const double bgp_cross = crossover(result.bgp_baseline);
  if (dbgp_cross <= 1.0) {
    std::printf("\nD-BGP baseline exceeds status quo from %.0f%% adoption "
                "(paper: ~30%%)\n", dbgp_cross * 100);
  } else {
    std::printf("\nD-BGP baseline never exceeds status quo (paper: ~30%%)\n");
  }
  if (bgp_cross <= 1.0) {
    std::printf("BGP baseline exceeds status quo from %.0f%% adoption (paper: ~90%%)\n",
                bgp_cross * 100);
  } else {
    std::printf("BGP baseline never exceeds status quo (paper: ~90%%)\n");
  }
  const bool shape_ok = dbgp_cross <= bgp_cross;
  std::printf("shape: D-BGP crosses no later than BGP: %s\n",
              shape_ok ? "yes (matches paper)" : "NO (mismatch)");
  return out.write() && shape_ok ? 0 : 1;
}
