// E5 — Figure 10: incremental benefits for the bottleneck-bandwidth
// archetype (the hardest global objective: the bottleneck may sit inside a
// gulf).
//
// Paper setup: same 1,000-AS Waxman topology; per-AS ingress bandwidths
// ~ U[10, 1024]; only upgraded ASes expose their bandwidth; benefit is the
// *actual* bottleneck of chosen paths at upgraded ASes. Expected shape:
// both baselines dip below the status quo at low adoption (ill-informed
// choices); D-BGP re-crosses the status quo around ~30% adoption while the
// BGP baseline stays below until very high adoption; D-BGP's slope is
// higher below ~80%.
// --threads selects the parallel sweep width (0 = hardware_concurrency); as
// in bench_extra_paths the sweep runs sequentially first and the parallel
// result must be bit-identical before the comparison row is trusted.
#include <cstdio>

#include "bench_json.h"
#include "sim/experiment.h"
#include "util/flags.h"
#include "util/thread_pool.h"

using namespace dbgp;

int main(int argc, char** argv) {
  util::Flags flags;
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    std::fprintf(stderr, "bad flags: %s\n", error.c_str());
    return 1;
  }

  sim::SweepConfig config;
  config.topology.nodes = static_cast<std::size_t>(flags.get_int("nodes", 1000));
  config.trials = static_cast<std::size_t>(flags.get_int("trials", 9));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.bandwidth_min = static_cast<std::uint64_t>(flags.get_int("bw-min", 10));
  config.bandwidth_max = static_cast<std::uint64_t>(flags.get_int("bw-max", 1024));
  const std::size_t threads = util::ThreadPool::resolve_threads(
      static_cast<std::size_t>(flags.get_int("threads", 0)));

  std::printf("Figure 10 — incremental benefits, bottleneck-bandwidth archetype\n");
  std::printf("topology: %zu-AS Waxman, %zu trials, bandwidth ~ U[%llu, %llu], "
              "%zu threads\n\n",
              config.topology.nodes, config.trials,
              static_cast<unsigned long long>(config.bandwidth_min),
              static_cast<unsigned long long>(config.bandwidth_max), threads);

  bench::BenchJson out("bottleneck_bw");
  bench::Stopwatch sw;
  config.threads = 1;
  const auto sequential = sim::run_bottleneck_sweep(config);
  const double seq_wall = sw.elapsed_s();
  auto& seq_run =
      out.add_run("bottleneck_sweep_seq", static_cast<double>(config.trials), seq_wall);
  seq_run.counters.emplace_back("threads", 1.0);
  seq_run.counters.emplace_back("sweep_wall_s", seq_wall);

  sw.restart();
  config.threads = threads;
  const auto result = sim::run_bottleneck_sweep(config);
  const double par_wall = sw.elapsed_s();
  auto& par_run =
      out.add_run("bottleneck_sweep_par", static_cast<double>(config.trials), par_wall);
  par_run.counters.emplace_back("threads", static_cast<double>(threads));
  par_run.counters.emplace_back("sweep_wall_s", par_wall);
  par_run.counters.emplace_back("speedup", par_wall > 0 ? seq_wall / par_wall : 0.0);

  const bool deterministic = sim::identical(sequential, result);
  std::printf("sequential %.2fs, %zu threads %.2fs — speedup %.2fx, results %s\n\n",
              seq_wall, threads, par_wall, par_wall > 0 ? seq_wall / par_wall : 0.0,
              deterministic ? "bit-identical" : "DIVERGENT");

  std::printf("%10s | %22s | %22s\n", "adoption", "D-BGP baseline (±CI95)",
              "BGP baseline (±CI95)");
  std::printf("%10s-+-%22s-+-%22s\n", "----------", "----------------------",
              "----------------------");
  for (std::size_t i = 0; i < result.dbgp_baseline.size(); ++i) {
    std::printf("%9.0f%% | %12.1f ± %7.1f | %12.1f ± %7.1f\n",
                result.dbgp_baseline[i].adoption * 100,
                result.dbgp_baseline[i].benefit.mean, result.dbgp_baseline[i].benefit.ci95,
                result.bgp_baseline[i].benefit.mean, result.bgp_baseline[i].benefit.ci95);
  }
  std::printf("\nstatus quo (0%% adoption): %.1f\n", result.status_quo);
  std::printf("best case (100%%, full information): %.1f\n", result.best_case);

  // Cross-over analysis (the paper's key observation).
  auto crossover = [&](const std::vector<sim::SeriesPoint>& series) -> double {
    for (const auto& point : series) {
      if (point.benefit.mean >= result.status_quo) return point.adoption;
    }
    return 2.0;  // never
  };
  const double dbgp_cross = crossover(result.dbgp_baseline);
  const double bgp_cross = crossover(result.bgp_baseline);
  if (dbgp_cross <= 1.0) {
    std::printf("\nD-BGP baseline exceeds status quo from %.0f%% adoption "
                "(paper: ~30%%)\n", dbgp_cross * 100);
  } else {
    std::printf("\nD-BGP baseline never exceeds status quo (paper: ~30%%)\n");
  }
  if (bgp_cross <= 1.0) {
    std::printf("BGP baseline exceeds status quo from %.0f%% adoption (paper: ~90%%)\n",
                bgp_cross * 100);
  } else {
    std::printf("BGP baseline never exceeds status quo (paper: ~90%%)\n");
  }
  const bool shape_ok = dbgp_cross <= bgp_cross;
  std::printf("shape: D-BGP crosses no later than BGP: %s\n",
              shape_ok ? "yes (matches paper)" : "NO (mismatch)");
  if (!deterministic) {
    std::fprintf(stderr,
                 "error: parallel sweep diverged from the sequential baseline\n");
  }
  return out.write() && shape_ok && deterministic ? 0 : 1;
}
