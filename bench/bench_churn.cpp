// Churn benchmark: convergence under the chaos layer's fault injection.
//
// A ring-with-chords topology of plain-BGP speakers converges while a seeded
// ChaosPolicy flaps links, drops/duplicates/reorders/corrupts frames, and
// crash/restarts nodes. Phases:
//   * failfree         — no chaos; the baseline the others are judged against
//   * flaps            — session churn only
//   * faults           — frame-level faults only
//   * full / full_batched — everything, in both delivery modes
//
// Every chaotic phase asserts two invariants before reporting:
//   1. determinism: the same seed re-run produces field-identical RunStats;
//   2. recovery: after the fault window and repair, every speaker holds a
//      route to every originated prefix again.
// Counters record the churn volume and the re-convergence-time tail
// (reconverge_p95_s) gated by tools/bench_compare.
#include <cstdio>

#include "bench_json.h"
#include "protocols/bgp_module.h"
#include "simnet/chaos.h"
#include "simnet/network.h"
#include "telemetry/metrics.h"

using namespace dbgp;

namespace {

constexpr std::size_t kNodes = 24;
constexpr std::size_t kChord = 5;  // ring + chord to the node 5 ahead
constexpr std::size_t kOrigins = 4;

net::Prefix origin_prefix(std::size_t i) {
  return *net::Prefix::parse("10." + std::to_string(i + 1) + ".0.0/16");
}

simnet::DbgpNetwork build_ring() {
  simnet::DbgpNetwork net;
  for (bgp::AsNumber asn = 1; asn <= kNodes; ++asn) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    net.add_as(config).add_module(std::make_unique<protocols::BgpModule>());
  }
  for (bgp::AsNumber asn = 1; asn <= kNodes; ++asn) {
    net.add_link(asn, static_cast<bgp::AsNumber>(asn % kNodes + 1));
    net.add_link(asn, static_cast<bgp::AsNumber>((asn + kChord - 1) % kNodes + 1));
  }
  return net;
}

simnet::RunStats run_once(const simnet::ChaosOptions& chaos, simnet::DeliveryMode mode) {
  simnet::DbgpNetwork net = build_ring();
  net.options().delivery = mode;
  for (std::size_t i = 0; i < kOrigins; ++i) {
    net.originate(static_cast<bgp::AsNumber>(i * (kNodes / kOrigins) + 1),
                  origin_prefix(i));
  }
  simnet::ChaosPolicy policy(chaos);
  policy.inject(net);
  simnet::RunStats stats = net.run_to_convergence();
  if (stats.capped) {
    std::fprintf(stderr, "bench_churn: event cap hit before convergence\n");
    std::exit(1);
  }
  // Recovery invariant: the repaired network holds fail-free routes again.
  for (bgp::AsNumber asn = 1; asn <= kNodes; ++asn) {
    for (std::size_t i = 0; i < kOrigins; ++i) {
      if (net.speaker(asn).best(origin_prefix(i)) == nullptr) {
        std::fprintf(stderr, "bench_churn: AS%u lost %s after repair\n", asn,
                     origin_prefix(i).to_string().c_str());
        std::exit(1);
      }
    }
  }
  return stats;
}

bool same_stats(const simnet::RunStats& a, const simnet::RunStats& b) {
  return a.processed == b.processed && a.link_flaps == b.link_flaps &&
         a.crashes == b.crashes && a.restarts == b.restarts &&
         a.frames_lost == b.frames_lost && a.frames_duplicated == b.frames_duplicated &&
         a.frames_reordered == b.frames_reordered &&
         a.frames_corrupted == b.frames_corrupted &&
         a.frames_rejected == b.frames_rejected;
}

void run_phase(bench::BenchJson& json, const std::string& name,
               const simnet::ChaosOptions& chaos, simnet::DeliveryMode mode) {
  auto& registry = telemetry::MetricsRegistry::global();
  registry.reset();  // isolate this phase's reconvergence histogram
  bench::Stopwatch timer;
  const simnet::RunStats stats = run_once(chaos, mode);
  const double elapsed = timer.elapsed_s();
  if (chaos.any() && !same_stats(stats, run_once(chaos, mode))) {
    std::fprintf(stderr, "bench_churn: phase %s is not replayable (same seed, "
                         "different RunStats)\n",
                 name.c_str());
    std::exit(1);
  }
  auto& run = json.add_run(name, static_cast<double>(stats.processed), elapsed);
  run.counters.emplace_back("events", static_cast<double>(stats.processed));
  run.counters.emplace_back("link_flaps", static_cast<double>(stats.link_flaps));
  run.counters.emplace_back("crashes", static_cast<double>(stats.crashes));
  run.counters.emplace_back("frames_lost", static_cast<double>(stats.frames_lost));
  run.counters.emplace_back("frames_duplicated",
                            static_cast<double>(stats.frames_duplicated));
  run.counters.emplace_back("frames_reordered",
                            static_cast<double>(stats.frames_reordered));
  run.counters.emplace_back("frames_corrupted",
                            static_cast<double>(stats.frames_corrupted));
  run.counters.emplace_back("frames_rejected",
                            static_cast<double>(stats.frames_rejected));
  const auto& reconvergence = registry.histogram(
      "simnet.chaos.reconvergence_seconds",
      telemetry::Histogram::exponential_bounds(1e-3, 60.0, 2.0));
  run.counters.emplace_back("reconverge_p95_s", reconvergence.percentile(95.0));
  std::printf("%-14s %8zu events  %6.3fs wall  flaps=%llu lost=%llu corrupted=%llu "
              "rejected=%llu  reconverge_p95=%.3fs\n",
              name.c_str(), stats.processed, elapsed,
              static_cast<unsigned long long>(stats.link_flaps),
              static_cast<unsigned long long>(stats.frames_lost),
              static_cast<unsigned long long>(stats.frames_corrupted),
              static_cast<unsigned long long>(stats.frames_rejected),
              reconvergence.percentile(95.0));
}

}  // namespace

int main() {
  bench::BenchJson json("churn");

  simnet::ChaosOptions none;  // defaults: no flaps, no faults, no crashes

  simnet::ChaosOptions flaps;
  flaps.seed = 7;
  flaps.horizon = 3.0;
  flaps.flap_fraction = 0.25;
  flaps.mean_up = 0.4;
  flaps.mean_down = 0.05;

  simnet::ChaosOptions faults;
  faults.seed = 7;
  faults.horizon = 3.0;
  faults.faults.loss = 0.05;
  faults.faults.duplicate = 0.02;
  faults.faults.reorder = 0.05;
  faults.faults.corrupt = 0.03;

  simnet::ChaosOptions full = flaps;
  full.faults = faults.faults;
  full.crash_fraction = 0.1;
  full.mean_downtime = 0.3;

  run_phase(json, "failfree", none, simnet::DeliveryMode::kImmediate);
  run_phase(json, "flaps", flaps, simnet::DeliveryMode::kImmediate);
  run_phase(json, "faults", faults, simnet::DeliveryMode::kImmediate);
  run_phase(json, "full", full, simnet::DeliveryMode::kImmediate);
  run_phase(json, "full_batched", full, simnet::DeliveryMode::kBatched);

  return json.write() ? 0 : 1;
}
