// Ablation micro-benchmarks for the IA codec (Section 3.2's design knobs):
// encode/decode cost vs IA size, blob sharing on/off, LZ compression on/off,
// and the baseline BGP message codec for comparison.
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "ia/codec.h"
#include "workload.h"

namespace {

using namespace dbgp;

ia::IntegratedAdvertisement make_ia(std::size_t bytes, double shared_fraction) {
  util::Rng rng(4242);
  bench::WorkloadConfig config;
  return bench::synth_ia(rng, config, bytes, 4, shared_fraction);
}

void BM_IaEncode(benchmark::State& state) {
  const auto ia = make_ia(static_cast<std::size_t>(state.range(0)), 0.9);
  ia::CodecOptions options;
  options.share_blobs = state.range(1) != 0;
  std::size_t encoded_size = 0;
  for (auto _ : state) {
    auto bytes = ia::encode_ia(ia, options);
    encoded_size = bytes.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["encoded_bytes"] = static_cast<double>(encoded_size);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * encoded_size));
}
BENCHMARK(BM_IaEncode)
    ->Args({4 * 1024, 1})
    ->Args({32 * 1024, 1})
    ->Args({256 * 1024, 1})
    ->Args({32 * 1024, 0})  // sharing disabled: the "Basic" encoding
    ->ArgNames({"bytes", "share"});

void BM_IaDecode(benchmark::State& state) {
  const auto ia = make_ia(static_cast<std::size_t>(state.range(0)), 0.9);
  const auto bytes = ia::encode_ia(ia, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ia::decode_ia(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_IaDecode)->Arg(4 * 1024)->Arg(32 * 1024)->Arg(256 * 1024);

void BM_IaEncodeCompressed(benchmark::State& state) {
  const auto ia = make_ia(static_cast<std::size_t>(state.range(0)), 0.9);
  ia::CodecOptions options;
  options.compress = true;
  std::size_t encoded_size = 0;
  for (auto _ : state) {
    auto bytes = ia::encode_ia(ia, options);
    encoded_size = bytes.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["encoded_bytes"] = static_cast<double>(encoded_size);
}
BENCHMARK(BM_IaEncodeCompressed)->Arg(32 * 1024)->Arg(256 * 1024);

// Baseline comparator: the plain BGP UPDATE codec.
void BM_BgpUpdateCodec(benchmark::State& state) {
  util::Rng rng(7);
  bench::WorkloadConfig config;
  const auto update = bench::synth_update(rng, config);
  const auto bytes = bgp::encode_message(bgp::Message{update});
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::decode_message(bgp::encode_message(bgp::Message{update})));
  }
  state.counters["encoded_bytes"] = static_cast<double>(bytes.size());
}
BENCHMARK(BM_BgpUpdateCodec);

}  // namespace

DBGP_BENCH_MAIN("codec");
