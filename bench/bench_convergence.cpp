// Ablation — Section 3.5's convergence concern: "Since D-BGP's IAs will be
// larger than BGP's advertisements, D-BGP may increase convergence times
// when a large number of them must be transferred at the same time (i.e.,
// after session resets)."
//
// We model a session reset as a new AS joining a chain and receiving the
// full table, with link latency growing in the bytes transferred
// (bandwidth-limited links), and report wall-clock-in-simulation convergence
// time versus IA size.
#include <cstdio>

#include "bench_json.h"
#include "protocols/bgp_module.h"
#include "simnet/network.h"
#include "util/flags.h"
#include "workload.h"

using namespace dbgp;

namespace {

double run_once(std::size_t ia_bytes, std::size_t table_size, std::size_t chain_length) {
  simnet::DbgpNetwork::Options options;
  options.default_latency = 0.001;
  simnet::DbgpNetwork net(nullptr, options);
  for (bgp::AsNumber asn = 1; asn <= chain_length; ++asn) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    net.add_as(config).add_module(std::make_unique<protocols::BgpModule>());
  }
  for (bgp::AsNumber asn = 1; asn + 1 <= chain_length; ++asn) {
    // Latency models a 1 Gbit/s link: 1 ms propagation + serialization.
    const double serialization = static_cast<double>(ia_bytes) * 8.0 / 1e9;
    net.add_link(asn, asn + 1, false, 0.001 + serialization);
  }

  // Originate `table_size` prefixes at AS 1, each with protocol descriptors
  // padding the IA to ~ia_bytes via a stamp filter.
  util::Rng rng(5);
  if (ia_bytes > 0) {
    std::vector<std::uint8_t> padding(ia_bytes);
    for (auto& b : padding) b = static_cast<std::uint8_t>(rng.next_u32());
    net.speaker(1).export_filters().add(
        "pad", [padding](ia::IntegratedAdvertisement& ia, const core::FilterContext&) {
          ia.set_path_descriptor(200, 1, padding);
          return true;
        });
  }
  for (std::size_t i = 0; i < table_size; ++i) {
    net.originate(1, net::Prefix(net::Ipv4Address(static_cast<std::uint32_t>(
                                     0x0a000000 + (i << 8))),
                                 24));
  }
  net.run_to_convergence();
  return net.events().now();
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    std::fprintf(stderr, "bad flags: %s\n", error.c_str());
    return 1;
  }
  const std::size_t table = static_cast<std::size_t>(flags.get_int("table", 200));
  const std::size_t chain = static_cast<std::size_t>(flags.get_int("chain", 8));

  std::printf("Ablation — convergence time after a full-table transfer vs IA size\n");
  std::printf("chain of %zu ASes, %zu prefixes, 1 Gbit/s links, 1 ms propagation\n\n",
              chain, table);
  std::printf("%12s | %18s\n", "IA size", "convergence (sim s)");
  std::printf("-------------+--------------------\n");
  bench::BenchJson out("convergence");
  double previous = 0.0;
  bool monotone = true;
  for (std::size_t ia_bytes : {std::size_t{0}, std::size_t{4} * 1024, std::size_t{32} * 1024,
                               std::size_t{256} * 1024}) {
    bench::Stopwatch sw;
    const double t = run_once(ia_bytes, table, chain);
    auto& run = out.add_run("full_table_ia" + std::to_string(ia_bytes),
                            static_cast<double>(table), sw.elapsed_s());
    run.counters.emplace_back("convergence_sim_s", t);
    run.counters.emplace_back("ia_bytes", static_cast<double>(ia_bytes));
    std::printf("%12zu | %18.4f\n", ia_bytes, t);
    monotone &= t >= previous;
    previous = t;
  }
  std::printf("\nshape: convergence time grows with IA size: %s\n",
              monotone ? "yes (matches Section 3.5's concern)" : "NO");
  return out.write() && monotone ? 0 : 1;
}
