// Daemon benchmark: the route-server's control channel and live
// reconfiguration under load.
//
// Where bench_churn measures a one-shot network surviving chaos, this
// measures the long-lived daemon surface (src/server): command dispatch
// through ControlApi, runtime topology mutation, hot policy reload and
// rolling protocol upgrade while chaos churns the data plane, and the
// snapshot/restore cycle. Phases:
//   * serve_churn        — command throughput: originate/withdraw/rib/run
//                          rounds against a 16-node ring (ops = commands)
//   * reconfig_under_load — add/remove-peer, reload-policy and rolling
//                          upgrade-protocol with a full chaos schedule live;
//                          records the simulated re-convergence tail
//                          (reconverge_p50_s / reconverge_p99_s, gated
//                          lower-is-better by tools/bench_compare)
//   * snapshot_restore   — snapshot -> encode -> restore cycles (ops =
//                          cycles), with bit-identity checked every cycle
//
// reconfig_under_load additionally asserts determinism: the whole phase is
// replayed and must reach a bit-identical Loc-RIB (same combined hash).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.h"
#include "server/control.h"
#include "server/daemon.h"
#include "server/snapshot.h"
#include "telemetry/metrics.h"

using namespace dbgp;

namespace {

// Plain ring, no chords: chord topologies make every withdrawal a path-
// hunting storm (tens of thousands of events on a 32-node chord ring), and
// this bench measures the daemon's command surface, not BGP path hunting —
// bench_churn already covers convergence cost under churn.
constexpr std::size_t kNodes = 16;
constexpr std::size_t kOrigins = 4;

std::string origin_prefix(std::size_t i) {
  return "10." + std::to_string(i + 1) + ".0.0/16";
}

void must(server::ControlApi& api, const std::string& line) {
  const auto result = api.execute(line);
  if (!result.ok) {
    std::fprintf(stderr, "bench_daemon: '%s' failed: %s\n", line.c_str(),
                 result.text.c_str());
    std::exit(1);
  }
  if (result.text.find("capped") != std::string::npos) {
    std::fprintf(stderr, "bench_daemon: event cap hit during '%s'\n", line.c_str());
    std::exit(1);
  }
}

// Ring built entirely through the command channel (add-peer creates the
// plain-BGP ASes on first sight).
void build_ring(server::ControlApi& api) {
  for (std::size_t asn = 1; asn <= kNodes; ++asn) {
    must(api, "add-peer " + std::to_string(asn) + " " + std::to_string(asn % kNodes + 1));
  }
  for (std::size_t i = 0; i < kOrigins; ++i) {
    must(api, "originate " + std::to_string(i * (kNodes / kOrigins) + 1) + " " +
                  origin_prefix(i));
  }
  must(api, "run");
}

std::uint64_t combined_rib_hash(const server::RouteServer& daemon) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (const auto asn : daemon.as_numbers()) {
    hash ^= daemon.loc_rib_hash(asn);
    hash *= 1099511628211ull;
  }
  return hash;
}

// -- serve_churn --------------------------------------------------------------

void run_serve_churn(bench::BenchJson& json) {
  auto& registry = telemetry::MetricsRegistry::global();
  registry.reset();
  server::RouteServer::Options options;
  options.causal = false;  // pure command-path cost, no tracing overhead
  server::RouteServer daemon(options);
  server::ControlApi api(daemon);

  bench::Stopwatch timer;
  build_ring(api);
  constexpr std::size_t kRounds = 200;
  for (std::size_t round = 0; round < kRounds; ++round) {
    const std::string asn = std::to_string(round % kNodes + 1);
    const std::string prefix =
        "172." + std::to_string(round % 200 + 16) + ".0.0/16";
    must(api, "originate " + asn + " " + prefix);
    must(api, "run");
    must(api, "rib " + asn + " " + prefix);
    must(api, "withdraw " + asn + " " + prefix);
    must(api, "run");
  }
  const double elapsed = timer.elapsed_s();
  const double commands = static_cast<double>(api.commands_executed());

  auto& run = json.add_run("serve_churn", commands, elapsed);
  run.counters.emplace_back("commands", commands);
  run.counters.emplace_back("ases", static_cast<double>(daemon.as_numbers().size()));
  std::printf("serve_churn     %8.0f commands  %6.3fs wall  %9.0f cmd/s\n", commands,
              elapsed, commands / elapsed);
}

// -- reconfig_under_load ------------------------------------------------------

std::uint64_t run_reconfig_once() {
  server::RouteServer::Options options;
  options.causal = false;
  server::RouteServer daemon(options);
  server::ControlApi api(daemon);
  build_ring(api);

  // Chaos live across the whole reconfiguration window.
  must(api, "set-chaos full seed=7 horizon=2.0");

  // Rolling wiser adoption around the whole ring, interleaved with time.
  // The roll must complete: leaving the ring half-upgraded under a chaos
  // schedule settles into a sustained cost-driven oscillation (the run never
  // converges and trips the event cap) — partial-adoption convergence is
  // exercised chaos-free in tests/server_test.cpp instead.
  for (std::size_t asn = 1; asn <= kNodes; ++asn) {
    must(api, "upgrade-protocol " + std::to_string(asn) + " wiser");
    must(api, "step 0.1");
  }
  // Topology churn: new leaves, one retirement, policy reloads.
  for (std::size_t leaf = 0; leaf < 8; ++leaf) {
    must(api, "add-peer " + std::to_string(leaf * 4 + 1) + " " +
                  std::to_string(100 + leaf));
    must(api, "originate " + std::to_string(100 + leaf) + " 172.30." +
                  std::to_string(leaf) + ".0/24");
  }
  must(api, "run");
  must(api, "remove-peer 100");
  must(api, "reload-policy 2 strip=wiser");
  must(api, "reload-policy 3 strip=wiser");
  must(api, "run");
  must(api, "reload-policy 2");  // back to open policy
  must(api, "run");
  return combined_rib_hash(daemon);
}

void run_reconfig_under_load(bench::BenchJson& json) {
  auto& registry = telemetry::MetricsRegistry::global();
  registry.reset();

  bench::Stopwatch timer;
  const std::uint64_t hash = run_reconfig_once();
  const double elapsed = timer.elapsed_s();

  // The reconvergence histogram is simulated-clock and deterministic, so the
  // bench_compare gate on it is exact.
  const auto& reconvergence = registry.histogram(
      "simnet.chaos.reconvergence_seconds",
      telemetry::Histogram::exponential_bounds(1e-3, 60.0, 2.0));
  const double p50 = reconvergence.percentile(50.0);
  const double p99 = reconvergence.percentile(99.0);

  // Determinism: the same scripted session replays to a bit-identical RIB.
  if (run_reconfig_once() != hash) {
    std::fprintf(stderr,
                 "bench_daemon: reconfig_under_load is not replayable (same "
                 "script, different Loc-RIB)\n");
    std::exit(1);
  }

  auto& run = json.add_run("reconfig_under_load", 1.0, elapsed);
  run.counters.emplace_back("reconverge_p50_s", p50);
  run.counters.emplace_back("reconverge_p99_s", p99);
  std::printf("reconfig        %8s           %6.3fs wall  reconverge p50=%.3fs p99=%.3fs\n",
              "-", elapsed, p50, p99);
}

// -- snapshot_restore ---------------------------------------------------------

void run_snapshot_restore(bench::BenchJson& json) {
  auto& registry = telemetry::MetricsRegistry::global();
  registry.reset();
  server::RouteServer::Options options;
  options.causal = false;
  server::RouteServer daemon(options);
  server::ControlApi api(daemon);
  build_ring(api);
  const std::uint64_t expected = combined_rib_hash(daemon);

  constexpr std::size_t kCycles = 50;
  double bytes = 0.0;
  bench::Stopwatch timer;
  for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
    const server::Snapshot snap = daemon.snapshot();
    const auto encoded = server::encode_snapshot(snap);
    bytes += static_cast<double>(encoded.size());
    server::RouteServer::Options restore_options;
    restore_options.causal = false;
    server::RouteServer restored(restore_options);
    restored.restore(server::decode_snapshot(encoded));
    if (combined_rib_hash(restored) != expected) {
      std::fprintf(stderr, "bench_daemon: restore cycle %zu lost bit-identity\n",
                   cycle);
      std::exit(1);
    }
  }
  const double elapsed = timer.elapsed_s();

  auto& run = json.add_run("snapshot_restore", static_cast<double>(kCycles), elapsed);
  run.counters.emplace_back("snapshot_bytes", bytes / static_cast<double>(kCycles));
  std::printf("snapshot        %8zu cycles    %6.3fs wall  %9.1f cycles/s  %.0f B each\n",
              kCycles, elapsed, static_cast<double>(kCycles) / elapsed,
              bytes / static_cast<double>(kCycles));
}

}  // namespace

int main() {
  bench::BenchJson json("daemon");
  run_serve_churn(json);
  run_reconfig_under_load(json);
  run_snapshot_restore(json);
  return json.write() ? 0 : 1;
}
