// E2 — Section 6.1 / Figure 8: deploying Wiser and Pathlet Routing across a
// BGP gulf using D-BGP.
//
// Reproduces both deployments on the Figure-8 topology and reports what the
// paper verified plus the control-plane cost of each run:
//   * Wiser: the source AS S sees the per-protocol path costs for paths to
//     D and selects the low-cost (longer) path; under a legacy gulf it
//     cannot and picks the expensive short path.
//   * Pathlet Routing: S sees all five pathlets (four one-hop + one
//     composed two-hop).
// The paper's companion result — 255 (Wiser) / 293 (Pathlets) lines of
// per-protocol code — is a property of the authors' codebase; our analog
// (plugin sizes; no core changes needed) is recorded in EXPERIMENTS.md.
#include <cstdio>

#include "bench_json.h"
#include "protocols/bgp_module.h"
#include "protocols/pathlet.h"
#include "protocols/wiser.h"
#include "simnet/network.h"

using namespace dbgp;

namespace {

struct RunStats {
  std::size_t events = 0;
  std::uint64_t ias_sent = 0;
  std::uint64_t bytes_sent = 0;
};

RunStats collect(simnet::DbgpNetwork& net, std::size_t events) {
  RunStats stats;
  stats.events = events;
  for (bgp::AsNumber asn : net.as_numbers()) {
    stats.ias_sent += net.speaker(asn).stats().ias_sent;
    stats.bytes_sent += net.speaker(asn).stats().bytes_sent;
  }
  return stats;
}

core::DbgpConfig base_config(bgp::AsNumber asn) {
  core::DbgpConfig config;
  config.asn = asn;
  config.next_hop = net::Ipv4Address(asn);
  return config;
}

// -- Wiser across a gulf -------------------------------------------------------

bool run_wiser(bool legacy_gulf) {
  core::LookupService lookup;
  simnet::DbgpNetwork net(&lookup);
  const auto island_a = ia::IslandId::assigned(0xA);
  const auto island_b = ia::IslandId::assigned(0xB);
  const auto dest = *net::Prefix::parse("128.6.0.0/16");

  auto add_wiser = [&](bgp::AsNumber asn, ia::IslandId island, std::uint64_t cost) {
    core::DbgpConfig config = base_config(asn);
    config.island = island;
    config.island_protocol = ia::kProtoWiser;
    config.active_protocol = ia::kProtoWiser;
    auto& speaker = net.add_as(config);
    speaker.add_module(std::make_unique<protocols::WiserModule>(
        protocols::WiserModule::Config{island, cost, net::Ipv4Address(asn)}, nullptr));
    speaker.add_module(std::make_unique<protocols::BgpModule>());
  };
  auto add_gulf = [&](bgp::AsNumber asn) {
    auto& speaker = net.add_as(base_config(asn));
    speaker.add_module(std::make_unique<protocols::BgpModule>());
    if (legacy_gulf) {
      speaker.import_filters().add("legacy-strip",
                                   core::strip_protocol_filter(ia::kProtoWiser));
    }
  };

  add_wiser(1, island_a, 1);    // D
  add_wiser(2, island_a, 100);  // E1: expensive egress
  add_wiser(3, island_a, 5);    // E2: cheap egress
  add_gulf(4);
  add_gulf(5);
  add_gulf(6);
  add_wiser(9, island_b, 1);  // S
  net.add_link(1, 2, true);
  net.add_link(1, 3, true);
  net.add_link(2, 4);
  net.add_link(4, 9);
  net.add_link(3, 5);
  net.add_link(5, 6);
  net.add_link(6, 9);
  net.originate(1, dest);
  const std::size_t events = net.run_to_convergence();

  const auto* best = net.speaker(9).best(dest);
  const bool low_cost_chosen = best != nullptr && best->ia.path_vector.contains_as(3);
  const std::uint64_t seen_cost =
      best != nullptr ? protocols::WiserModule::path_cost(*best) : 0;
  const auto stats = collect(net, events);

  std::printf("  %-22s picked %s-cost path (cost seen: %llu), %zu events, %llu IAs, "
              "%llu bytes\n",
              legacy_gulf ? "BGP baseline:" : "D-BGP baseline:",
              low_cost_chosen ? "LOW" : "HIGH",
              static_cast<unsigned long long>(seen_cost), stats.events,
              static_cast<unsigned long long>(stats.ias_sent),
              static_cast<unsigned long long>(stats.bytes_sent));
  // Under D-BGP S must pick the cheap path; under legacy BGP it cannot.
  return legacy_gulf ? !low_cost_chosen : low_cost_chosen;
}

// -- Pathlet Routing across a gulf ----------------------------------------------

bool run_pathlets() {
  simnet::DbgpNetwork net;
  const auto island_a = ia::IslandId::assigned(0xA);
  const auto island_b = ia::IslandId::assigned(0xB);
  const auto dest = *net::Prefix::parse("131.1.4.0/24");

  protocols::PathletStore store_a2, store_s;
  auto add_pathlet = [&](bgp::AsNumber asn, ia::IslandId island,
                         protocols::PathletStore* store) {
    core::DbgpConfig config = base_config(asn);
    config.island = island;
    config.island_protocol = ia::kProtoPathlets;
    config.active_protocol = ia::kProtoPathlets;
    auto& speaker = net.add_as(config);
    speaker.add_module(std::make_unique<protocols::PathletModule>(
        protocols::PathletModule::Config{island}, store));
    speaker.add_module(std::make_unique<protocols::BgpModule>());
  };

  add_pathlet(1, island_a, nullptr);
  add_pathlet(2, island_a, &store_a2);
  net.add_as(base_config(7)).add_module(std::make_unique<protocols::BgpModule>());
  add_pathlet(9, island_b, &store_s);

  // Four one-hop pathlets within island A; A2 composes two of them.
  store_a2.add_local({1, {101, 102}, std::nullopt});
  store_a2.add_local({2, {102, 104}, dest});
  store_a2.add_local({3, {101, 103}, std::nullopt});
  store_a2.add_local({4, {103, 104}, dest});
  store_a2.compose(1, 2, 50);

  net.add_link(1, 2, true);
  net.add_link(2, 7);
  net.add_link(7, 9);
  net.originate(1, dest);
  const std::size_t events = net.run_to_convergence();

  const auto* best = net.speaker(9).best(dest);
  const std::size_t seen = best != nullptr ? protocols::count_pathlets(best->ia) : 0;
  const auto stats = collect(net, events);
  std::printf("  pathlets visible at S: %zu (expected 5), learned into store: %zu, "
              "%zu events, %llu IAs, %llu bytes\n",
              seen, store_s.all().size(), stats.events,
              static_cast<unsigned long long>(stats.ias_sent),
              static_cast<unsigned long long>(stats.bytes_sent));
  return seen == 5 && store_s.all().size() == 5;
}

}  // namespace

int main() {
  bench::BenchJson out("deployment");
  bench::Stopwatch sw;
  std::printf("E2 — Section 6.1 deployments across a BGP gulf (Figure 8 topology)\n\n");
  std::printf("Wiser (critical fix):\n");
  bool ok = run_wiser(/*legacy_gulf=*/false);
  out.add_run("wiser_dbgp_gulf", 1.0, sw.elapsed_s());
  sw.restart();
  ok &= run_wiser(/*legacy_gulf=*/true);
  out.add_run("wiser_legacy_gulf", 1.0, sw.elapsed_s());
  std::printf("\nPathlet Routing (replacement protocol):\n");
  sw.restart();
  ok &= run_pathlets();
  out.add_run("pathlets_dbgp_gulf", 1.0, sw.elapsed_s());
  std::printf("\nresult: %s\n", ok ? "all deployments behave as the paper reports"
                                   : "MISMATCH with paper behaviour");
  ok &= out.write();
  return ok ? 0 : 1;
}
