// E4 — Figure 9: incremental benefits for the extra-paths archetype.
//
// Paper setup: 1,000-AS BRITE/Waxman topology (alpha = 0.15, beta = 0.25),
// customer/provider annotations, upgraded ASes chosen at random, 9 trials,
// benefits at 10% adoption increments with 95% CIs, <= 10 paths per
// inter-island advertisement. Expected shape: D-BGP >= BGP at every level;
// D-BGP's slope is higher at low adoption (10-40%); BGP's slope overtakes
// once large islands merge (high adoption); both meet at 100%.
//
// Flags: --nodes, --trials, --seed, --cap (paths per advertisement).
#include <cstdio>

#include "bench_json.h"
#include "sim/experiment.h"
#include "util/flags.h"

using namespace dbgp;

int main(int argc, char** argv) {
  util::Flags flags;
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    std::fprintf(stderr, "bad flags: %s\n", error.c_str());
    return 1;
  }

  sim::SweepConfig config;
  config.topology.nodes = static_cast<std::size_t>(flags.get_int("nodes", 1000));
  config.trials = static_cast<std::size_t>(flags.get_int("trials", 9));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.extra_paths.path_cap = static_cast<std::uint32_t>(flags.get_int("cap", 10));

  std::printf("Figure 9 — incremental benefits, extra-paths archetype\n");
  std::printf("topology: %zu-AS Waxman (alpha=%.2f beta=%.2f), %zu trials, cap=%u "
              "paths/advertisement\n\n",
              config.topology.nodes, config.topology.alpha, config.topology.beta,
              config.trials, config.extra_paths.path_cap);

  bench::BenchJson out("extra_paths");
  bench::Stopwatch sw;
  const auto result = sim::run_extra_paths_sweep(config);
  out.add_run("extra_paths_sweep", static_cast<double>(config.trials), sw.elapsed_s());

  std::printf("%10s | %22s | %22s\n", "adoption", "D-BGP baseline (±CI95)",
              "BGP baseline (±CI95)");
  std::printf("%10s-+-%22s-+-%22s\n", "----------", "----------------------",
              "----------------------");
  for (std::size_t i = 0; i < result.dbgp_baseline.size(); ++i) {
    std::printf("%9.0f%% | %12.1f ± %7.1f | %12.1f ± %7.1f\n",
                result.dbgp_baseline[i].adoption * 100,
                result.dbgp_baseline[i].benefit.mean, result.dbgp_baseline[i].benefit.ci95,
                result.bgp_baseline[i].benefit.mean, result.bgp_baseline[i].benefit.ci95);
  }
  std::printf("\nstatus quo (0%% adoption): %.1f paths to all destinations\n",
              result.status_quo);
  std::printf("best case (100%%, full information): %.1f\n", result.best_case);

  // Shape checks the paper reports.
  bool dbgp_dominates = true;
  for (std::size_t i = 0; i < result.dbgp_baseline.size(); ++i) {
    dbgp_dominates &= result.dbgp_baseline[i].benefit.mean + 1e-9 >=
                      result.bgp_baseline[i].benefit.mean;
  }
  std::printf("\nshape: D-BGP >= BGP at every adoption level: %s\n",
              dbgp_dominates ? "yes (matches paper)" : "NO (mismatch)");
  return out.write() && dbgp_dominates ? 0 : 1;
}
