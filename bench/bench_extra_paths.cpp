// E4 — Figure 9: incremental benefits for the extra-paths archetype.
//
// Paper setup: 1,000-AS BRITE/Waxman topology (alpha = 0.15, beta = 0.25),
// customer/provider annotations, upgraded ASes chosen at random, 9 trials,
// benefits at 10% adoption increments with 95% CIs, <= 10 paths per
// inter-island advertisement. Expected shape: D-BGP >= BGP at every level;
// D-BGP's slope is higher at low adoption (10-40%); BGP's slope overtakes
// once large islands merge (high adoption); both meet at 100%.
//
// Flags: --nodes, --trials, --seed, --cap (paths per advertisement),
// --threads (parallel sweep width; 0 = hardware_concurrency). The sweep runs
// twice — threads=1 (the sequential baseline) then --threads — and the two
// SweepResults are checked bit-identical before the table prints, so the
// speedup row in BENCH_extra_paths.json can never come from divergent work.
#include <cstdio>

#include "bench_json.h"
#include "sim/experiment.h"
#include "util/flags.h"
#include "util/thread_pool.h"

using namespace dbgp;

int main(int argc, char** argv) {
  util::Flags flags;
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    std::fprintf(stderr, "bad flags: %s\n", error.c_str());
    return 1;
  }

  sim::SweepConfig config;
  config.topology.nodes = static_cast<std::size_t>(flags.get_int("nodes", 1000));
  config.trials = static_cast<std::size_t>(flags.get_int("trials", 9));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.extra_paths.path_cap = static_cast<std::uint32_t>(flags.get_int("cap", 10));
  const std::size_t threads = util::ThreadPool::resolve_threads(
      static_cast<std::size_t>(flags.get_int("threads", 0)));

  std::printf("Figure 9 — incremental benefits, extra-paths archetype\n");
  std::printf("topology: %zu-AS Waxman (alpha=%.2f beta=%.2f), %zu trials, cap=%u "
              "paths/advertisement, %zu threads\n\n",
              config.topology.nodes, config.topology.alpha, config.topology.beta,
              config.trials, config.extra_paths.path_cap, threads);

  bench::BenchJson out("extra_paths");
  bench::Stopwatch sw;
  config.threads = 1;
  const auto sequential = sim::run_extra_paths_sweep(config);
  const double seq_wall = sw.elapsed_s();
  auto& seq_run =
      out.add_run("extra_paths_sweep_seq", static_cast<double>(config.trials), seq_wall);
  seq_run.counters.emplace_back("threads", 1.0);
  seq_run.counters.emplace_back("sweep_wall_s", seq_wall);

  sw.restart();
  config.threads = threads;
  const auto result = sim::run_extra_paths_sweep(config);
  const double par_wall = sw.elapsed_s();
  auto& par_run =
      out.add_run("extra_paths_sweep_par", static_cast<double>(config.trials), par_wall);
  par_run.counters.emplace_back("threads", static_cast<double>(threads));
  par_run.counters.emplace_back("sweep_wall_s", par_wall);
  par_run.counters.emplace_back("speedup", par_wall > 0 ? seq_wall / par_wall : 0.0);

  const bool deterministic = sim::identical(sequential, result);
  std::printf("sequential %.2fs, %zu threads %.2fs — speedup %.2fx, results %s\n\n",
              seq_wall, threads, par_wall, par_wall > 0 ? seq_wall / par_wall : 0.0,
              deterministic ? "bit-identical" : "DIVERGENT");

  std::printf("%10s | %22s | %22s\n", "adoption", "D-BGP baseline (±CI95)",
              "BGP baseline (±CI95)");
  std::printf("%10s-+-%22s-+-%22s\n", "----------", "----------------------",
              "----------------------");
  for (std::size_t i = 0; i < result.dbgp_baseline.size(); ++i) {
    std::printf("%9.0f%% | %12.1f ± %7.1f | %12.1f ± %7.1f\n",
                result.dbgp_baseline[i].adoption * 100,
                result.dbgp_baseline[i].benefit.mean, result.dbgp_baseline[i].benefit.ci95,
                result.bgp_baseline[i].benefit.mean, result.bgp_baseline[i].benefit.ci95);
  }
  std::printf("\nstatus quo (0%% adoption): %.1f paths to all destinations\n",
              result.status_quo);
  std::printf("best case (100%%, full information): %.1f\n", result.best_case);

  // Shape checks the paper reports.
  bool dbgp_dominates = true;
  for (std::size_t i = 0; i < result.dbgp_baseline.size(); ++i) {
    dbgp_dominates &= result.dbgp_baseline[i].benefit.mean + 1e-9 >=
                      result.bgp_baseline[i].benefit.mean;
  }
  std::printf("\nshape: D-BGP >= BGP at every adoption level: %s\n",
              dbgp_dominates ? "yes (matches paper)" : "NO (mismatch)");
  if (!deterministic) {
    std::fprintf(stderr,
                 "error: parallel sweep diverged from the sequential baseline\n");
  }
  return out.write() && dbgp_dominates && deterministic ? 0 : 1;
}
