#include "bench_json.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "telemetry/json_export.h"
#include "telemetry/metrics.h"
#include "util/json.h"
#include "util/stats.h"

namespace dbgp::bench {

namespace {

std::string output_path(const std::string& name) {
  if (const char* env = std::getenv("DBGP_BENCH_OUT"); env != nullptr && *env != '\0') {
    return env;
  }
  return "BENCH_" + name + ".json";
}

bool is_rate_counter(const std::string& name) {
  return name.find("/s") != std::string::npos ||
         name.find("_per_second") != std::string::npos;
}

// Histograms consulted for operation-latency percentiles, most specific
// first. "bench.op_seconds" is reserved for benches that time their own
// operations; the rest are what the library records while a bench drives it.
constexpr const char* kLatencyHistograms[] = {
    "bench.op_seconds",
    "dbgp.speaker.frame_seconds",
    "dbgp.codec.decode_seconds",
    "dbgp.codec.encode_seconds",
};

util::json::Value compose(const std::string& name, const std::vector<BenchRun>& runs,
                          const util::json::Object& extra) {
  util::json::Object root;
  root.emplace_back("bench", name);

  util::json::Array bench_array;
  double peak_ops = 0.0;
  std::vector<double> per_run_latency;
  for (const auto& run : runs) {
    util::json::Object o;
    o.emplace_back("name", run.name);
    o.emplace_back("iterations", run.iterations);
    o.emplace_back("real_time_s", run.real_time_s);
    o.emplace_back("time_per_op_s", run.time_per_op_s);
    o.emplace_back("ops_per_sec", run.ops_per_sec);
    if (!run.counters.empty()) {
      util::json::Object counters;
      for (const auto& [cname, cvalue] : run.counters) counters.emplace_back(cname, cvalue);
      o.emplace_back("counters", std::move(counters));
    }
    bench_array.emplace_back(std::move(o));
    peak_ops = std::max(peak_ops, run.ops_per_sec);
    if (run.time_per_op_s > 0.0) per_run_latency.push_back(run.time_per_op_s);
  }
  root.emplace_back("benchmarks", std::move(bench_array));
  root.emplace_back("ops_per_sec", peak_ops);

  const auto snapshot = telemetry::MetricsRegistry::global().snapshot();
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  std::string source = "per_run_mean";
  bool from_histogram = false;
  for (const char* hname : kLatencyHistograms) {
    const auto* h = snapshot.find_histogram(hname);
    if (h != nullptr && h->count > 0) {
      p50 = h->p50;
      p95 = h->p95;
      p99 = h->p99;
      source = hname;
      from_histogram = true;
      break;
    }
  }
  if (!from_histogram) {
    p50 = util::percentile(per_run_latency, 50.0);
    p95 = util::percentile(per_run_latency, 95.0);
    p99 = util::percentile(per_run_latency, 99.0);
  }
  root.emplace_back("p50_us", p50 * 1e6);
  root.emplace_back("p95_us", p95 * 1e6);
  root.emplace_back("p99_us", p99 * 1e6);
  root.emplace_back("latency_source", source);
  root.emplace_back("telemetry_enabled", telemetry::enabled());
  root.emplace_back("metrics", telemetry::to_json(snapshot));
  for (const auto& [key, value] : extra) root.emplace_back(key, value);
  return util::json::Value(std::move(root));
}

bool write_json(const std::string& name, const std::vector<BenchRun>& runs,
                const util::json::Object& extra = {}) {
  const std::string path = output_path(name);
  try {
    util::json::write_file(path, compose(name, runs, extra));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_json: failed to write %s: %s\n", path.c_str(), e.what());
    return false;
  }
  std::fprintf(stderr, "bench results written to %s\n", path.c_str());
  return true;
}

// Prints Google Benchmark's console table as usual while capturing each
// per-iteration run (aggregates like _mean/_stddev are skipped — they would
// double-count throughput).
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const auto& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      BenchRun captured;
      captured.name = run.benchmark_name();
      captured.iterations = static_cast<std::uint64_t>(run.iterations);
      captured.real_time_s = run.real_accumulated_time;
      if (run.iterations > 0) {
        captured.time_per_op_s =
            run.real_accumulated_time / static_cast<double>(run.iterations);
      }
      // Counters reach reporters already finalized: rate counters hold
      // events/sec. Prefer an explicit rate counter (prefixes/s,
      // bytes_per_second) over raw iteration throughput.
      double rate = captured.time_per_op_s > 0.0 ? 1.0 / captured.time_per_op_s : 0.0;
      for (const auto& [cname, counter] : run.counters) {
        captured.counters.emplace_back(cname, counter.value);
        if (is_rate_counter(cname)) rate = std::max(rate, counter.value);
      }
      std::sort(captured.counters.begin(), captured.counters.end());
      captured.ops_per_sec = rate;
      captured_.push_back(std::move(captured));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<BenchRun>& captured() const noexcept { return captured_; }

 private:
  std::vector<BenchRun> captured_;
};

}  // namespace

BenchRun& BenchJson::add_run(const std::string& run_name, double ops, double seconds) {
  BenchRun run;
  run.name = run_name;
  run.iterations = 1;
  run.real_time_s = seconds;
  if (ops > 0.0 && seconds > 0.0) {
    run.time_per_op_s = seconds / ops;
    run.ops_per_sec = ops / seconds;
  }
  runs_.push_back(std::move(run));
  return runs_.back();
}

void BenchJson::set_extra(const std::string& key, util::json::Value value) {
  for (auto& [k, v] : extra_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  extra_.emplace_back(key, std::move(value));
}

bool BenchJson::write() const { return write_json(name_, runs_, extra_); }

int bench_main(const char* name, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return write_json(name, reporter.captured()) ? 0 : 1;
}

}  // namespace dbgp::bench
