// Machine-readable benchmark results: every bench binary writes a
// BENCH_<name>.json alongside its console output so the perf trajectory of
// the repo can be tracked run over run.
//
// Two entry points, because the benches come in two flavours:
//
//   1. Google Benchmark binaries (bench_stress, bench_codec) replace
//      BENCHMARK_MAIN() with DBGP_BENCH_MAIN("<name>"): the console table
//      still prints, and a capture reporter additionally records every
//      per-iteration run into the JSON.
//   2. Hand-rolled mains (the scenario-style benches) construct a
//      `BenchJson`, time each phase with `Stopwatch`, `add_run()` it, and
//      call `write()` before exiting.
//
// Both paths produce the same shape:
//
//   { "bench": "<name>",
//     "benchmarks": [ {"name","iterations","real_time_s","time_per_op_s",
//                      "ops_per_sec", "counters":{...}}, ... ],
//     "ops_per_sec": <peak across runs>,
//     "p50_us": p, "p95_us": p, "p99_us": p,   // operation latency, microsec
//     "latency_source": "<histogram name>" | "per_run_mean",
//     "telemetry_enabled": bool,
//     "metrics": { ...full registry snapshot... } }
//
// Latency percentiles come from the telemetry histograms the library fills
// while the bench runs (speaker frame timing, codec timing); when no
// histogram saw samples the per-run mean latencies go through
// util::percentile instead, so the fields always exist.
//
// DBGP_BENCH_OUT=<path> redirects the JSON; DBGP_TELEMETRY=off disables the
// registry (the overhead-comparison configuration).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"

namespace dbgp::bench {

// Wall-clock stopwatch for hand-rolled bench mains.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// One captured benchmark run (a Google Benchmark iteration report or one
// timed phase of a hand-rolled main).
struct BenchRun {
  std::string name;
  std::uint64_t iterations = 0;
  double real_time_s = 0.0;
  double time_per_op_s = 0.0;
  double ops_per_sec = 0.0;
  std::vector<std::pair<std::string, double>> counters;
};

// Accumulates runs and writes BENCH_<name>.json.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  // Records a phase that completed `ops` operations in `seconds` of wall
  // time. `ops` is whatever unit the bench reports throughput in (events,
  // prefixes, advertisements); pass 1 for a single end-to-end scenario run.
  BenchRun& add_run(const std::string& run_name, double ops, double seconds);

  // Attaches an extra top-level section to the written file (e.g. "series"
  // holding telemetry::TimeSeriesSampler::to_json output). Re-setting a key
  // replaces the previous value.
  void set_extra(const std::string& key, util::json::Value value);

  // Writes the JSON file (DBGP_BENCH_OUT or ./BENCH_<name>.json). Returns
  // true on success; prints to stderr and returns false on IO failure so
  // bench exit codes can reflect it.
  bool write() const;

  const std::string& name() const noexcept { return name_; }
  std::vector<BenchRun>& runs() noexcept { return runs_; }

 private:
  std::string name_;
  std::vector<BenchRun> runs_;
  util::json::Object extra_;
};

// Google Benchmark driver: runs registered benchmarks with a capture
// reporter and writes BENCH_<name>.json; returns the process exit code.
int bench_main(const char* name, int argc, char** argv);

}  // namespace dbgp::bench

#define DBGP_BENCH_MAIN(name)                                   \
  int main(int argc, char** argv) {                             \
    return ::dbgp::bench::bench_main((name), argc, argv);       \
  }
