// Memory benchmark: RIB residency under a full-table, multi-peer load.
//
// The interning + arena layer (DESIGN.md §14) claims that a BGP table's
// memory cost is dominated by duplicated path attributes, and that
// hash-consing them behind refcounted handles collapses it: a realistic
// table has ~1M prefixes but only thousands of distinct attribute sets, so
// Adj-RIB-In × peers + Loc-RIB + Adj-RIB-Out should cost a few handle-sized
// words per route, not a PathAttributes deep copy each.
//
// Phases:
//   * full_table_load — 4 established peers each announce the full table
//     (default 1,000,000 prefixes, DBGP_BENCH_MEMORY_PREFIXES overrides;
//     64-prefix updates drawn from 4096 distinct attribute sets per peer).
//     Counters:
//       bytes_per_prefix        — measured: (arena in-use + interner entry
//                                 bytes + interner index overhead) / prefixes
//       naive_bytes_per_prefix  — modeled pre-§14 layout: every stored route
//                                 and every adj-out advert holds its own
//                                 PathAttributes deep copy in a per-route
//                                 tree node
//       reduction_ratio         — naive / measured (acceptance: >= 5x)
//       load_wall_s             — wall time to ingest the table
//       interner_*              — hit/miss/live/hit-rate of the speaker's
//                                 AttrInterner after the load
//     bytes_per_prefix and load_wall_s are gated lower-is-better by
//     tools/bench_compare (prefix match), ops/s gates the usual way.
//   * churn_drain — withdraw everything; asserts the interner and arena
//     return to their pre-table footprint (the refcount contract), and
//     reports the drain wall time.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bgp/attr_interner.h"
#include "bgp/speaker.h"
#include "telemetry/metrics.h"

using namespace dbgp;

namespace {

constexpr int kPeers = 4;
constexpr std::uint32_t kNlriPerUpdate = 64;
constexpr std::uint32_t kAttrSetsPerPeer = 4096;

// Tree-node bookkeeping (parent/left/right/color) charged per stored route
// in the modeled pre-interning layout.
constexpr std::size_t kNodeOverhead = 48;
// Non-attribute fields of a stored route (prefix, peer ids, sequence).
constexpr std::size_t kRouteFixed = 32;
// Allocator chunk header per individual heap allocation. The old layout did
// one general-purpose allocation per tree node and per attribute-copy heap
// vector; the pool arena amortizes these into slabs, so the overhead is
// charged to the naive side only.
constexpr std::size_t kAllocOverhead = 16;

std::size_t table_prefixes() {
  if (const char* env = std::getenv("DBGP_BENCH_MEMORY_PREFIXES")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 1'000'000;
}

net::Prefix nth_prefix(std::size_t i) {
  return net::Prefix(net::Ipv4Address(0x30000000u + (static_cast<std::uint32_t>(i) << 8)), 24);
}

// The attribute set for update block `block` from peer `p`, shaped like a
// transit-feed table entry: a 4-6 hop path (route collectors report ~4.5
// mean), MED, and a handful of communities on most routes. Varied with the
// block so the speaker sees kAttrSetsPerPeer distinct sets per peer, reused
// across the whole table — the shape interning exploits.
bgp::PathAttributes block_attrs(int p, std::uint32_t block) {
  const std::uint32_t j = block % kAttrSetsPerPeer;
  bgp::PathAttributes attrs;
  std::vector<bgp::AsNumber> path = {65001u + static_cast<bgp::AsNumber>(p),
                                     3356u + (j % 16u), 6939u + (j % 64u),
                                     56000u + (j % 1024u)};
  if (j % 3 != 0) path.push_back(62000u + (j % 512u));
  if (j % 4 == 0) path.push_back(63000u + (j / 1024u));
  attrs.as_path = bgp::AsPath(std::move(path));
  attrs.next_hop = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(p), 1);
  if (j % 2 == 0) attrs.med = j;
  attrs.communities = {0x10000u + j, 0x20000u + (j % 7u), 0x30000u + (j % 13u),
                       0x40000u + (j % 3u)};
  if (j % 5 == 0) {
    attrs.communities.push_back(0x50000u + j);
    attrs.communities.push_back(0x60000u + (j % 11u));
  }
  return attrs;
}

// Bytes the speaker's RIBs actually occupy: pooled arena storage (all three
// RIBs are pmr-backed) plus the interner's canonical entries and its hash
// index.
std::size_t measured_bytes(const bgp::BgpSpeaker& speaker) {
  const std::size_t index_overhead =
      speaker.attr_interner().live() * (sizeof(bgp::detail::AttrEntry) + 64);
  return speaker.rib_arena().bytes_in_use() + speaker.attr_interner().bytes() +
         index_overhead;
}

// Heap allocations one deep PathAttributes copy performs: the segment
// vector, each segment's ASN vector, communities, and the unknown-attribute
// vector plus each unknown value payload.
std::size_t attr_heap_allocs(const bgp::PathAttributes& attrs) {
  std::size_t allocs = attrs.as_path.segments().empty() ? 0 : 1 + attrs.as_path.segments().size();
  allocs += attrs.communities.empty() ? 0 : 1;
  allocs += attrs.unknown.empty() ? 0 : 1 + attrs.unknown.size();
  return allocs;
}

// Bytes one stored route cost in the pre-§14 layout: a full deep attribute
// copy in its own tree node, every piece individually heap-allocated.
std::size_t naive_route_bytes(const bgp::PathAttributes& attrs, std::size_t fixed) {
  return bgp::deep_size(attrs) + fixed + kNodeOverhead +
         (1 + attr_heap_allocs(attrs)) * kAllocOverhead;
}

// Bytes the pre-§14 layout would occupy for the same table: walk every
// stored route and charge it as the old map<Prefix, map<PeerId, Route>> /
// vector-of-copies API did, plus the nested map's per-prefix outer node.
std::size_t naive_bytes(const bgp::BgpSpeaker& speaker,
                        const std::vector<bgp::PeerId>& peers) {
  std::size_t total = 0;
  for (const auto& [prefix, best] : speaker.loc_rib().routes()) {
    total += kNodeOverhead + kAllocOverhead;  // old Adj-RIB-In outer node
    total += naive_route_bytes(*best.attrs, kRouteFixed);
    for (const bgp::Route& route : speaker.adj_rib_in().candidates(prefix)) {
      total += naive_route_bytes(*route.attrs, kRouteFixed);
    }
  }
  for (const bgp::PeerId peer : peers) {
    speaker.adj_rib_out().for_each_advertised(
        peer, [&](const net::Prefix&, const bgp::AttrHandle& attrs) {
          total += naive_route_bytes(*attrs, 0);
        });
  }
  return total;
}

}  // namespace

int main() {
  const std::size_t prefixes = table_prefixes();
  bench::BenchJson json("memory");

  bgp::BgpSpeaker::Config config;
  config.asn = 65000;
  config.router_id = net::Ipv4Address(10, 0, 0, 1);
  config.next_hop = net::Ipv4Address(10, 0, 0, 1);
  config.hold_time = 0;
  bgp::BgpSpeaker speaker(config);
  std::vector<bgp::PeerId> peers;
  for (int p = 0; p < kPeers; ++p) {
    peers.push_back(speaker.add_peer(65001u + p));
    speaker.start_peer(peers.back(), 0.0);
    speaker.handle_message(
        peers.back(),
        bgp::OpenMessage{4, 65001u + static_cast<bgp::AsNumber>(p), 0,
                         net::Ipv4Address(static_cast<std::uint32_t>(p + 1)), {}},
        0.0);
    speaker.handle_message(peers.back(), bgp::KeepAliveMessage{}, 0.0);
  }
  // Warm-up round: one announce + withdraw per peer, so the persistent
  // per-peer adj-out bookkeeping exists before the baseline is captured —
  // the drain check below then verifies routes alone leak nothing.
  for (int p = 0; p < kPeers; ++p) {
    bgp::UpdateMessage announce;
    announce.attributes = block_attrs(p, 0);
    announce.nlri.push_back(nth_prefix(0));
    speaker.handle_message(peers[p], bgp::Message{std::move(announce)}, 0.0);
  }
  for (int p = 0; p < kPeers; ++p) {
    bgp::UpdateMessage retract;
    retract.withdrawn.push_back(nth_prefix(0));
    speaker.handle_message(peers[p], bgp::Message{std::move(retract)}, 0.0);
  }
  const std::size_t empty_bytes = speaker.rib_arena().bytes_in_use();
  const std::size_t empty_live = speaker.attr_interner().live();

  // -- full_table_load --------------------------------------------------------
  bench::Stopwatch load_watch;
  for (int p = 0; p < kPeers; ++p) {
    for (std::size_t i = 0; i < prefixes; i += kNlriPerUpdate) {
      bgp::UpdateMessage update;
      update.attributes = block_attrs(p, static_cast<std::uint32_t>(i / kNlriPerUpdate));
      for (std::size_t k = i; k < i + kNlriPerUpdate && k < prefixes; ++k) {
        update.nlri.push_back(nth_prefix(k));
      }
      speaker.handle_message(peers[p], bgp::Message{std::move(update)}, 0.0);
    }
  }
  const double load_s = load_watch.elapsed_s();

  const std::size_t loc_routes = speaker.loc_rib().routes().size();
  if (loc_routes != prefixes) {
    std::fprintf(stderr, "bench_memory: expected %zu Loc-RIB routes, got %zu\n", prefixes,
                 loc_routes);
    return 1;
  }
  const std::size_t interned = measured_bytes(speaker);
  const std::size_t naive = naive_bytes(speaker, peers);
  const auto& stats = speaker.attr_interner().stats();
  const double per_prefix = static_cast<double>(interned) / static_cast<double>(prefixes);
  const double naive_per_prefix = static_cast<double>(naive) / static_cast<double>(prefixes);

  auto& load = json.add_run("full_table_load", static_cast<double>(prefixes), load_s);
  load.counters.emplace_back("bytes_per_prefix", per_prefix);
  load.counters.emplace_back("naive_bytes_per_prefix", naive_per_prefix);
  load.counters.emplace_back("reduction_ratio", naive_per_prefix / per_prefix);
  load.counters.emplace_back("load_wall_s", load_s);
  load.counters.emplace_back("arena_bytes_in_use",
                             static_cast<double>(speaker.rib_arena().bytes_in_use()));
  load.counters.emplace_back("arena_bytes_reserved",
                             static_cast<double>(speaker.rib_arena().bytes_reserved()));
  load.counters.emplace_back("interner_hits", static_cast<double>(stats.hits));
  load.counters.emplace_back("interner_misses", static_cast<double>(stats.misses));
  load.counters.emplace_back("interner_live",
                             static_cast<double>(speaker.attr_interner().live()));
  load.counters.emplace_back("interner_hit_rate", speaker.attr_interner().hit_rate());
  std::printf("full_table_load: %zu prefixes x %d peers in %.2fs\n", prefixes, kPeers,
              load_s);
  std::printf("  bytes/prefix %.1f (naive %.1f, reduction %.1fx), interner live %zu, "
              "hit rate %.4f\n",
              per_prefix, naive_per_prefix, naive_per_prefix / per_prefix,
              speaker.attr_interner().live(), speaker.attr_interner().hit_rate());

  // -- churn_drain ------------------------------------------------------------
  bench::Stopwatch drain_watch;
  for (int p = 0; p < kPeers; ++p) {
    for (std::size_t i = 0; i < prefixes; i += kNlriPerUpdate) {
      bgp::UpdateMessage update;
      for (std::size_t k = i; k < i + kNlriPerUpdate && k < prefixes; ++k) {
        update.withdrawn.push_back(nth_prefix(k));
      }
      speaker.handle_message(peers[p], bgp::Message{std::move(update)}, 0.0);
    }
  }
  const double drain_s = drain_watch.elapsed_s();
  if (speaker.attr_interner().live() != empty_live ||
      speaker.rib_arena().bytes_in_use() != empty_bytes) {
    std::fprintf(stderr,
                 "bench_memory: drain leaked (live %zu vs %zu, arena %zu vs %zu)\n",
                 speaker.attr_interner().live(), empty_live,
                 speaker.rib_arena().bytes_in_use(), empty_bytes);
    return 1;
  }
  auto& drain = json.add_run("churn_drain", static_cast<double>(prefixes), drain_s);
  drain.counters.emplace_back("arena_bytes_reserved",
                              static_cast<double>(speaker.rib_arena().bytes_reserved()));
  std::printf("churn_drain: table withdrawn in %.2fs, interner and arena back to "
              "baseline\n",
              drain_s);

  return json.write() ? 0 : 1;
}
