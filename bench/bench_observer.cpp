// Observer-plane overhead: what does live observation cost the hot path?
//
// The telemetry plane added for the convergence oracle (DESIGN.md §15) rides
// on the same speaker the stress test measures: the TimeSeriesSampler
// snapshots the registry mid-replay, the EventLog appends session events,
// and the ConvergenceOracle classifies the causal trace when the run ends.
// This bench replays the BGP-only stress workload (bench_stress's
// BM_Beagle_BgpOnly shape: 6 peers, tiny IAs, one DbgpSpeaker) twice:
//
//   * observer_off — causal-traced replay, no sampler/event log/oracle;
//   * observer_on  — same replay with the sampler ticking every simulated
//     500 ms and the event log recording; afterwards one oracle
//     classification of the full trace, timed on its own.
//
// Both modes attach a CausalTracer so the delta isolates the *observer*
// plane, not PR 4's tracing (whose cost is gated separately by the stress
// bench). The throughput delta covers what runs concurrently with update
// processing (sampler snapshots + event-log appends); the oracle is a
// one-shot post-run analysis over the whole trace — its wall time scales
// with trace size, not update rate, so folding it into a sub-second replay
// window would swamp the rate it is supposed to qualify. It is reported as
// its own oracle_classify_wall_s counter instead.
//
// The gated number is *direct attribution*: the wall time spent inside the
// sampler/event-log calls during the observed replay, as a percentage of
// that replay's wall — exactly the work the observer adds to the hot loop.
// End-to-end off-vs-on wall deltas are also measured (median of per-pair
// relative deltas over interleaved replays, reported as
// overhead_walldelta_pct) but not gated: on this class of box the deltas of
// two identical binaries swing 0-3.5% run to run from code-layout and
// scheduler artifacts — an order of magnitude above the effect under test —
// while the attributed cost is stable. The acceptance budget is 2%: the
// bench exits non-zero beyond it, which is what gates it inside
// dbgp_bench_check; bench_compare additionally tracks the budget row as
// lower-is-better against the committed BENCH_observer.json. The sampler
// history is embedded as a top-level "series" section so bench_report's
// time-series table has real data to render.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "core/speaker.h"
#include "protocols/bgp_module.h"
#include "telemetry/causal.h"
#include "telemetry/event_log.h"
#include "telemetry/metrics.h"
#include "telemetry/oracle.h"
#include "telemetry/sampler.h"
#include "workload.h"

using namespace dbgp;

namespace {

constexpr int kPeers = 6;
constexpr std::size_t kUpdatesPerPeer = 3000;
constexpr int kReps = 5;          // timed repetitions per mode (best wall wins)
constexpr double kRoundSeconds = 0.01;  // simulated time per replay round
constexpr double kSampleInterval = 0.5; // sampler default cadence (every 50 rounds)
constexpr double kBudgetPct = 2.0;      // acceptance bound on the overhead

struct ReplayResult {
  double wall_s = 0.0;
  double observer_work_s = 0.0;  // attributed sampler + event-log time
  double classify_wall_s = 0.0;
  std::uint64_t prefixes = 0;
};

struct ObserverOutputs {
  std::size_t samples = 0;
  std::size_t series = 0;
  std::size_t events = 0;
  std::size_t oracle_prefixes = 0;
  util::json::Value series_json;
};

ReplayResult replay(const std::vector<std::vector<std::vector<std::uint8_t>>>& streams,
                    bool observe, ObserverOutputs* outputs) {
  telemetry::CausalTracer tracer;
  telemetry::TimeSeriesSampler sampler({.interval = kSampleInterval, .capacity = 720});
  telemetry::EventLog event_log;

  core::DbgpConfig config;
  config.asn = 65000;
  config.next_hop = net::Ipv4Address(10, 0, 0, 1);
  core::DbgpSpeaker speaker(config);
  speaker.add_module(std::make_unique<protocols::BgpModule>());
  speaker.set_causal(&tracer);
  std::vector<bgp::PeerId> peers;
  for (int p = 0; p < kPeers; ++p) peers.push_back(speaker.add_peer(65001 + p));

  double observer_work_s = 0.0;
  bench::Stopwatch attributed;  // restarted around every observer call
  bench::Stopwatch timer;
  if (observe) {
    attributed.restart();
    for (int p = 0; p < kPeers; ++p) {
      event_log.record(0.0, "session_up", 65000, 65001 + static_cast<std::uint32_t>(p),
                       "bench replay peer");
    }
    observer_work_s += attributed.elapsed_s();
  }
  for (std::size_t i = 0; i < kUpdatesPerPeer; ++i) {
    for (int p = 0; p < kPeers; ++p) {
      speaker.handle_frame(peers[p], streams[p][i]);
    }
    if (observe) {
      attributed.restart();
      sampler.sample(static_cast<double>(i) * kRoundSeconds);
      observer_work_s += attributed.elapsed_s();
    }
  }
  if (observe) {
    attributed.restart();
    sampler.sample(static_cast<double>(kUpdatesPerPeer) * kRoundSeconds, /*force=*/true);
    observer_work_s += attributed.elapsed_s();
  }
  ReplayResult result;
  result.wall_s = timer.elapsed_s();
  result.observer_work_s = observer_work_s;
  result.prefixes = speaker.stats().ias_received;

  telemetry::ConvergenceOracle::RunReport report;
  if (observe) {
    timer.restart();
    report = telemetry::ConvergenceOracle().classify(tracer);
    result.classify_wall_s = timer.elapsed_s();
    event_log.record(static_cast<double>(kUpdatesPerPeer) * kRoundSeconds, "oracle",
                     65000, 0, std::string("verdict=") + to_string(report.verdict));
  }

  if (observe && outputs != nullptr) {
    outputs->samples = sampler.sample_count();
    outputs->series = sampler.series_names().size();
    outputs->events = event_log.size();
    outputs->oracle_prefixes = report.prefixes.size();
    // A trimmed history is plenty for bench_report's rate table and keeps
    // the committed baseline JSON reviewable.
    outputs->series_json = sampler.to_json(/*last_n=*/50);
  }
  return result;
}

}  // namespace

int main() {
  std::vector<std::vector<std::vector<std::uint8_t>>> streams;
  for (int p = 0; p < kPeers; ++p) {
    bench::WorkloadConfig config;
    config.updates = kUpdatesPerPeer;
    config.seed = static_cast<std::uint64_t>(p) + 1;
    streams.push_back(bench::synth_ia_stream(config, /*target_bytes=*/0,
                                             /*protocols_on_path=*/0));
  }

  // Warmup populates the registry (per-peer series included) so neither
  // timed mode pays first-touch metric registration.
  replay(streams, /*observe=*/true, nullptr);

  // Interleaved off/on pairs: the best wall per mode feeds the throughput
  // rows, the per-pair relative wall deltas give the (informational,
  // noise-dominated) end-to-end median, and the gated overhead is the
  // median attributed observer share across the on-replays.
  ReplayResult best_off;
  ReplayResult best_on;
  ObserverOutputs outputs;
  std::vector<double> pair_deltas;
  std::vector<double> attributed_shares;
  bool first = true;
  for (int rep = 0; rep < kReps; ++rep) {
    const ReplayResult off = replay(streams, /*observe=*/false, nullptr);
    if (first || off.wall_s < best_off.wall_s) best_off = off;
    ObserverOutputs rep_outputs;
    const ReplayResult on = replay(streams, /*observe=*/true, &rep_outputs);
    if (first || on.wall_s < best_on.wall_s) {
      best_on = on;
      outputs = std::move(rep_outputs);
    }
    first = false;
    if (off.wall_s > 0.0) {
      pair_deltas.push_back((on.wall_s - off.wall_s) / off.wall_s);
    }
    if (on.wall_s > 0.0) attributed_shares.push_back(on.observer_work_s / on.wall_s);
  }
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v.empty() ? 0.0 : v[v.size() / 2];
  };
  const double overhead_pct = std::max(0.0, median(attributed_shares) * 100.0);
  const double walldelta_pct = std::max(0.0, median(pair_deltas) * 100.0);

  const double rate_off = static_cast<double>(best_off.prefixes) / best_off.wall_s;
  const double rate_on = static_cast<double>(best_on.prefixes) / best_on.wall_s;

  bench::BenchJson out("observer");
  auto& off_run = out.add_run("bgp_only/observer_off",
                              static_cast<double>(best_off.prefixes), best_off.wall_s);
  off_run.counters.emplace_back("prefixes/s", rate_off);
  auto& on_run = out.add_run("bgp_only/observer_on",
                             static_cast<double>(best_on.prefixes), best_on.wall_s);
  on_run.counters.emplace_back("prefixes/s", rate_on);
  // Two rows, two gates: the measured overhead is absolutely capped by this
  // binary's own exit code (wall-clock noise makes a *relative* gate on a
  // sub-percent number flap), while the budget constant is the row
  // bench_compare tracks lower-is-better — quietly raising the budget in a
  // later commit trips the baseline comparison.
  on_run.counters.emplace_back("observe_overhead_budget_pct", kBudgetPct);
  on_run.counters.emplace_back("overhead_measured_pct", overhead_pct);
  on_run.counters.emplace_back("overhead_walldelta_pct", walldelta_pct);
  on_run.counters.emplace_back("oracle_classify_wall_s", best_on.classify_wall_s);
  on_run.counters.emplace_back("samples", static_cast<double>(outputs.samples));
  on_run.counters.emplace_back("series", static_cast<double>(outputs.series));
  on_run.counters.emplace_back("events", static_cast<double>(outputs.events));
  on_run.counters.emplace_back("oracle_prefixes",
                               static_cast<double>(outputs.oracle_prefixes));
  out.set_extra("series", outputs.series_json);

  std::printf("observer_off: %8.0f pfx/s  (best of %d, %zu prefixes, %.3fs)\n",
              rate_off, kReps, static_cast<std::size_t>(best_off.prefixes),
              best_off.wall_s);
  std::printf("observer_on : %8.0f pfx/s  (%zu samples, %zu series, %zu events, "
              "%zu oracle prefixes)\n",
              rate_on, outputs.samples, outputs.series, outputs.events,
              outputs.oracle_prefixes);
  std::printf("oracle classify: %.1f ms one-shot over the full trace\n",
              best_on.classify_wall_s * 1e3);
  std::printf("observer overhead: %.2f%% attributed (budget %.1f%%; end-to-end wall "
              "delta %.2f%%, informational)\n",
              overhead_pct, kBudgetPct, walldelta_pct);

  if (!out.write()) return 1;
  if (overhead_pct > kBudgetPct) {
    std::fprintf(stderr,
                 "bench_observer: observer overhead %.2f%% exceeds the %.1f%% budget\n",
                 overhead_pct, kBudgetPct);
    return 1;
  }
  return 0;
}
