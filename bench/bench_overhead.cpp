// E3 — Tables 2 & 3: control-plane overhead at a tier-1 AS.
//
// Prints the analytical model's four rows (Basic, +Avg path lengths,
// +Sharing, Single protocol) and the headline overhead factor (paper: 1.3x
// min estimates, 2.5x max estimates), then cross-checks the sharing
// mechanism empirically against the real IA codec and reports compression.
#include <cstdio>

#include "bench_json.h"
#include "ia/codec.h"
#include "overhead/model.h"
#include "util/rng.h"
#include "util/strings.h"
#include "workload.h"

using namespace dbgp;

namespace {

void print_parameters(const overhead::Parameters& p) {
  std::printf("Table 2 — parameters and ranges considered\n");
  std::printf("  %-38s %12.0f - %12.0f\n", "# of prefixes (P)", p.prefixes.min,
              p.prefixes.max);
  std::printf("  %-38s %12.0f - %12.0f\n", "# of prefixes, D-BGP Internet (Pd)",
              p.dbgp_prefixes.min, p.dbgp_prefixes.max);
  std::printf("  %-38s %12.0f - %12.0f\n", "Avg. BGP path length (PL)", p.path_length.min,
              p.path_length.max);
  std::printf("  %-38s %12.0f - %12.0f\n", "# of critical fixes (CFs)",
              p.critical_fixes.min, p.critical_fixes.max);
  std::printf("  %-38s %12.0f - %12.0f\n", "Critical fixes / path",
              p.critical_fixes_per_path.min, p.critical_fixes_per_path.max);
  std::printf("  %-38s %10s - %10s\n", "Control info / critical fix",
              util::format_bytes(p.control_info_per_fix.min).c_str(),
              util::format_bytes(p.control_info_per_fix.max).c_str());
  std::printf("  %-38s %12.2f - %12.2f\n", "Unique control info fraction (CFu)",
              p.unique_fraction.min, p.unique_fraction.max);
  std::printf("  %-38s %12.0f - %12.0f\n", "# of custom/replacements (CRs)",
              p.custom_replacements.min, p.custom_replacements.max);
  std::printf("  %-38s %12.0f - %12.0f\n", "Custom/replacements / path",
              p.custom_replacements_per_path.min, p.custom_replacements_per_path.max);
  std::printf("  %-38s %10s - %10s\n", "Control info / custom or replacement",
              util::format_bytes(p.control_info_per_cr.min).c_str(),
              util::format_bytes(p.control_info_per_cr.max).c_str());
  std::printf("\n");
}

void empirical_sharing_check() {
  std::printf("Empirical cross-check (real IA codec, 5 critical fixes on path,\n");
  std::printf("4 KB control info each, CFu = 0.1):\n");
  util::Rng rng(99);
  bench::WorkloadConfig config;
  // 5 protocols x 4 KB nominal control info; 90%% of it identical.
  const auto ia = bench::synth_ia(rng, config, 5 * 4096, 5, 0.9);
  const auto shared = ia::measure_ia(ia, {.compress = false, .share_blobs = true});
  const auto unshared = ia::measure_ia(ia, {.compress = false, .share_blobs = false});
  const auto compressed = ia::measure_ia(ia, {.compress = true, .share_blobs = true});
  std::printf("  IA size without sharing : %s\n",
              util::format_bytes(static_cast<double>(unshared.total)).c_str());
  std::printf("  IA size with sharing    : %s  (saved %s)\n",
              util::format_bytes(static_cast<double>(shared.total)).c_str(),
              util::format_bytes(static_cast<double>(shared.shared_savings)).c_str());
  std::printf("  + LZ compression        : %s\n",
              util::format_bytes(static_cast<double>(compressed.total)).c_str());
  std::printf("  sharing ratio measured  : %.2fx smaller\n",
              static_cast<double>(unshared.total) / static_cast<double>(shared.total));
}

}  // namespace

int main() {
  bench::BenchJson out("overhead");
  const overhead::Parameters params;
  print_parameters(params);

  bench::Stopwatch sw;
  std::printf("Table 3 — estimated IA sizes and aggregate overhead at a tier-1 AS\n");
  const auto rows = overhead::analyze(params);
  for (const auto& row : rows) {
    std::printf("  %s\n", overhead::format_row(row).c_str());
  }
  const auto factor = overhead::overhead_factor(params);
  auto& model_run = out.add_run("table3_model", static_cast<double>(rows.size()),
                                sw.elapsed_s());
  model_run.counters.emplace_back("overhead_factor_min", factor.min);
  model_run.counters.emplace_back("overhead_factor_max", factor.max);
  std::printf("\nHeadline: D-BGP (+Sharing) vs single protocol = %.2fx (min estimates), "
              "%.2fx (max estimates)\n",
              factor.min, factor.max);
  std::printf("Paper reports: 1.3x and 2.5x\n\n");

  sw.restart();
  empirical_sharing_check();
  out.add_run("empirical_sharing_check", 1.0, sw.elapsed_s());
  return out.write() ? 0 : 1;
}
