// E3 — Tables 2 & 3: control-plane overhead at a tier-1 AS.
//
// Prints the analytical model's four rows (Basic, +Avg path lengths,
// +Sharing, Single protocol) and the headline overhead factor (paper: 1.3x
// min estimates, 2.5x max estimates), then cross-checks the sharing
// mechanism empirically against the real IA codec and reports compression.
#include <cstdio>

#include "bench_json.h"
#include "ia/codec.h"
#include "overhead/model.h"
#include "protocols/fcbgp.h"
#include "protocols/stackvec.h"
#include "util/rng.h"
#include "util/strings.h"
#include "workload.h"

using namespace dbgp;

namespace {

void print_parameters(const overhead::Parameters& p) {
  std::printf("Table 2 — parameters and ranges considered\n");
  std::printf("  %-38s %12.0f - %12.0f\n", "# of prefixes (P)", p.prefixes.min,
              p.prefixes.max);
  std::printf("  %-38s %12.0f - %12.0f\n", "# of prefixes, D-BGP Internet (Pd)",
              p.dbgp_prefixes.min, p.dbgp_prefixes.max);
  std::printf("  %-38s %12.0f - %12.0f\n", "Avg. BGP path length (PL)", p.path_length.min,
              p.path_length.max);
  std::printf("  %-38s %12.0f - %12.0f\n", "# of critical fixes (CFs)",
              p.critical_fixes.min, p.critical_fixes.max);
  std::printf("  %-38s %12.0f - %12.0f\n", "Critical fixes / path",
              p.critical_fixes_per_path.min, p.critical_fixes_per_path.max);
  std::printf("  %-38s %10s - %10s\n", "Control info / critical fix",
              util::format_bytes(p.control_info_per_fix.min).c_str(),
              util::format_bytes(p.control_info_per_fix.max).c_str());
  std::printf("  %-38s %12.2f - %12.2f\n", "Unique control info fraction (CFu)",
              p.unique_fraction.min, p.unique_fraction.max);
  std::printf("  %-38s %12.0f - %12.0f\n", "# of custom/replacements (CRs)",
              p.custom_replacements.min, p.custom_replacements.max);
  std::printf("  %-38s %12.0f - %12.0f\n", "Custom/replacements / path",
              p.custom_replacements_per_path.min, p.custom_replacements_per_path.max);
  std::printf("  %-38s %10s - %10s\n", "Control info / custom or replacement",
              util::format_bytes(p.control_info_per_cr.min).c_str(),
              util::format_bytes(p.control_info_per_cr.max).c_str());
  std::printf("\n");
}

void empirical_sharing_check() {
  std::printf("Empirical cross-check (real IA codec, 5 critical fixes on path,\n");
  std::printf("4 KB control info each, CFu = 0.1):\n");
  util::Rng rng(99);
  bench::WorkloadConfig config;
  // 5 protocols x 4 KB nominal control info; 90%% of it identical.
  const auto ia = bench::synth_ia(rng, config, 5 * 4096, 5, 0.9);
  const auto shared = ia::measure_ia(ia, {.compress = false, .share_blobs = true});
  const auto unshared = ia::measure_ia(ia, {.compress = false, .share_blobs = false});
  const auto compressed = ia::measure_ia(ia, {.compress = true, .share_blobs = true});
  std::printf("  IA size without sharing : %s\n",
              util::format_bytes(static_cast<double>(unshared.total)).c_str());
  std::printf("  IA size with sharing    : %s  (saved %s)\n",
              util::format_bytes(static_cast<double>(shared.total)).c_str(),
              util::format_bytes(static_cast<double>(shared.shared_savings)).c_str());
  std::printf("  + LZ compression        : %s\n",
              util::format_bytes(static_cast<double>(compressed.total)).c_str());
  std::printf("  sharing ratio measured  : %.2fx smaller\n",
              static_cast<double>(unshared.total) / static_cast<double>(shared.total));
}

// Encoded descriptor payload for an FC-BGP commitment list covering a path
// of `hops` ASes (one commitment per hop, as annotate_export leaves it).
std::size_t fc_payload_bytes(const protocols::AttestationAuthority& authority,
                             std::size_t hops) {
  const auto prefix = *net::Prefix::parse("10.99.0.0/16");
  std::vector<protocols::ForwardingCommitment> list;
  for (std::size_t i = 0; i < hops; ++i) {
    const bgp::AsNumber signer = static_cast<bgp::AsNumber>(100 + i);
    const bgp::AsNumber next = i == 0 ? 0 : static_cast<bgp::AsNumber>(99 + i);
    list.push_back({signer, next, protocols::fc_sign(authority, signer, next, prefix)});
  }
  return protocols::encode_commitments(list).size();
}

// Encoded descriptor payload for a StackVec gateway stack of `gateways`
// entries (worst case: every hop on the path is an island gateway).
std::size_t stackvec_payload_bytes(std::size_t gateways) {
  std::vector<protocols::StackVecEntry> entries;
  for (std::size_t i = 0; i < gateways; ++i) {
    entries.push_back({static_cast<bgp::AsNumber>(200 + i),
                       net::Ipv4Address(static_cast<std::uint32_t>(200 + i))});
  }
  return protocols::encode_stack_vector(entries).size();
}

// Table-3-style marginal rows for the two newest protocol archetypes, with
// the per-unit payload measured from the real codec rather than assumed.
void new_protocol_rows(bench::BenchJson& out, const overhead::Parameters& params) {
  std::printf("\nNew-protocol marginal overhead (payloads measured, PL %.0f-%.0f hops)\n",
              params.path_length.min, params.path_length.max);
  const protocols::AttestationAuthority authority;
  const auto pl_min = static_cast<std::size_t>(params.path_length.min);
  const auto pl_max = static_cast<std::size_t>(params.path_length.max);

  const double fc_min = static_cast<double>(fc_payload_bytes(authority, pl_min));
  const double fc_max = static_cast<double>(fc_payload_bytes(authority, pl_max));
  // protocol_overhead multiplies per-unit bytes by the path length; feed it
  // the measured per-hop cost (payload / hops) so the row stays honest about
  // the varint framing amortized across entries.
  const auto fc_row = overhead::protocol_overhead(
      params, "FC-BGP", {fc_min / static_cast<double>(pl_min),
                         fc_max / static_cast<double>(pl_max)},
      /*per_hop=*/true);
  std::printf("  %s\n", overhead::format_protocol_row(fc_row).c_str());

  const double sv_min = static_cast<double>(stackvec_payload_bytes(pl_min));
  const double sv_max = static_cast<double>(stackvec_payload_bytes(pl_max));
  const auto sv_row = overhead::protocol_overhead(
      params, "StackVec", {sv_min / static_cast<double>(pl_min),
                           sv_max / static_cast<double>(pl_max)},
      /*per_hop=*/true);
  std::printf("  %s\n", overhead::format_protocol_row(sv_row).c_str());

  auto& run = out.add_run("table3_new_protocols", 2.0, 0.0);
  run.counters.emplace_back("bytes_per_prefix_fcbgp", fc_row.bytes_per_ad.max);
  run.counters.emplace_back("bytes_per_prefix_stackvec", sv_row.bytes_per_ad.max);
}

}  // namespace

int main() {
  bench::BenchJson out("overhead");
  const overhead::Parameters params;
  print_parameters(params);

  bench::Stopwatch sw;
  std::printf("Table 3 — estimated IA sizes and aggregate overhead at a tier-1 AS\n");
  const auto rows = overhead::analyze(params);
  for (const auto& row : rows) {
    std::printf("  %s\n", overhead::format_row(row).c_str());
  }
  const auto factor = overhead::overhead_factor(params);
  auto& model_run = out.add_run("table3_model", static_cast<double>(rows.size()),
                                sw.elapsed_s());
  model_run.counters.emplace_back("overhead_factor_min", factor.min);
  model_run.counters.emplace_back("overhead_factor_max", factor.max);
  std::printf("\nHeadline: D-BGP (+Sharing) vs single protocol = %.2fx (min estimates), "
              "%.2fx (max estimates)\n",
              factor.min, factor.max);
  std::printf("Paper reports: 1.3x and 2.5x\n\n");

  new_protocol_rows(out, params);

  sw.restart();
  empirical_sharing_check();
  out.add_run("empirical_sharing_check", 1.0, sw.elapsed_s());
  return out.write() ? 0 : 1;
}
