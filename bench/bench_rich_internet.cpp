// Empirical companion to Table 3: instead of the analytical model, run an
// actual heterogeneous Internet (the Figure-6 world at scale) and measure
// what the control plane really costs.
//
// A hierarchy of ASes is generated; a fraction of them deploy protocols
// (Wiser, EQ-BGP, BGPSec, SCION, Pathlet Routing, R-BGP) as singleton
// islands. Every stub originates a prefix. We report: convergence events,
// total frames/bytes, per-IA wire sizes (mean/p50/p99/max), measured
// sharing savings, and the byte overhead relative to the same topology
// running pure BGP — the empirical "overhead factor".
#include <cstdio>

#include "bench_json.h"
#include "ia/codec.h"
#include "protocols/bgp_module.h"
#include "protocols/bgpsec.h"
#include "protocols/eqbgp.h"
#include "protocols/pathlet.h"
#include "protocols/rbgp.h"
#include "protocols/scion.h"
#include "protocols/wiser.h"
#include "simnet/network.h"
#include "topology/adoption.h"
#include "topology/hierarchy.h"
#include "util/flags.h"
#include "util/stats.h"

using namespace dbgp;

namespace {

struct Measurement {
  std::size_t events = 0;
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  util::Summary ia_sizes;
  double avg_protocols_per_path = 0.0;
};

int g_force_proto = -1;  // -1 = mixed; 0..5 force one protocol (debugging)

Measurement run(double adoption, std::uint64_t seed, std::size_t scale) {
  util::Rng rng(seed);
  topology::HierarchyConfig topo;
  topo.tier1 = 3;
  topo.transits = scale / 5;
  topo.stubs = scale - 3 - topo.transits;
  const auto hierarchy = topology::generate_hierarchy(topo, rng);
  const std::size_t n = hierarchy.graph.size();

  static protocols::AttestationAuthority authority;
  simnet::DbgpNetwork net;
  std::vector<std::unique_ptr<protocols::PathletStore>> stores;

  const auto upgraded = topology::random_adoption(n, adoption, rng);
  for (std::size_t u = 0; u < n; ++u) {
    const bgp::AsNumber asn = static_cast<bgp::AsNumber>(u + 1);
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    if (!upgraded[u]) {
      net.add_as(config).add_module(std::make_unique<protocols::BgpModule>());
      continue;
    }
    const auto island = ia::IslandId::from_as(asn);
    config.island = island;
    const std::uint32_t pick =
        g_force_proto >= 0 ? static_cast<std::uint32_t>(g_force_proto) : rng.next_below(6);
    switch (pick) {
      case 0: {
        config.island_protocol = ia::kProtoWiser;
        config.active_protocol = ia::kProtoWiser;
        auto& speaker = net.add_as(config);
        speaker.add_module(std::make_unique<protocols::WiserModule>(
            protocols::WiserModule::Config{island, rng.next_below(90) + 10ull,
                                           net::Ipv4Address(asn)},
            nullptr));
        speaker.add_module(std::make_unique<protocols::BgpModule>());
        break;
      }
      case 1: {
        config.island_protocol = ia::kProtoEqBgp;
        config.active_protocol = ia::kProtoEqBgp;
        auto& speaker = net.add_as(config);
        speaker.add_module(std::make_unique<protocols::EqBgpModule>(
            protocols::EqBgpModule::Config{island, rng.next_below(1000) + 10ull}));
        speaker.add_module(std::make_unique<protocols::BgpModule>());
        break;
      }
      case 2: {
        config.island_protocol = ia::kProtoBgpSec;
        config.active_protocol = ia::kProtoBgpSec;
        auto& speaker = net.add_as(config);
        speaker.add_module(std::make_unique<protocols::BgpSecModule>(
            protocols::BgpSecModule::Config{asn, island, false}, &authority));
        speaker.add_module(std::make_unique<protocols::BgpModule>());
        break;
      }
      case 3: {
        config.island_protocol = ia::kProtoScion;
        config.active_protocol = ia::kProtoScion;
        auto& speaker = net.add_as(config);
        speaker.add_module(std::make_unique<protocols::ScionModule>(
            protocols::ScionModule::Config{
                island, {{{asn * 10, asn * 10 + 1}}, {{asn * 10, asn * 10 + 2}}}}));
        speaker.add_module(std::make_unique<protocols::BgpModule>());
        break;
      }
      case 4: {
        config.island_protocol = ia::kProtoPathlets;
        config.active_protocol = ia::kProtoPathlets;
        auto store = std::make_unique<protocols::PathletStore>();
        store->add_local({asn * 100, {asn * 10, asn * 10 + 1}, std::nullopt});
        store->add_local({asn * 100 + 1, {asn * 10 + 1, asn * 10 + 2}, std::nullopt});
        auto& speaker = net.add_as(config);
        speaker.add_module(std::make_unique<protocols::PathletModule>(
            protocols::PathletModule::Config{island}, store.get()));
        speaker.add_module(std::make_unique<protocols::BgpModule>());
        stores.push_back(std::move(store));
        break;
      }
      default: {
        config.island_protocol = ia::kProtoRBgp;
        config.active_protocol = ia::kProtoRBgp;
        auto& speaker = net.add_as(config);
        speaker.add_module(std::make_unique<protocols::RBgpModule>(
            protocols::RBgpModule::Config{island}));
        speaker.add_module(std::make_unique<protocols::BgpModule>());
        break;
      }
    }
  }

  for (topology::NodeId u = 0; u < n; ++u) {
    for (const auto& e : hierarchy.graph.neighbors(u)) {
      if (e.neighbor > u) net.add_link(u + 1, e.neighbor + 1);
    }
  }
  // Every stub originates one prefix.
  std::size_t idx = 0;
  for (const auto stub : hierarchy.graph.stubs()) {
    net.originate(stub + 1,
                  net::Prefix(net::Ipv4Address(0x0a000000u + (static_cast<std::uint32_t>(idx++)
                                                              << 12)),
                              20));
  }

  Measurement m;
  m.events = net.run_to_convergence(5'000'000);

  std::vector<double> sizes;
  double protocol_sum = 0.0;
  std::size_t routes = 0;
  for (const auto asn : net.as_numbers()) {
    const auto& speaker = net.speaker(asn);
    m.frames += speaker.stats().ias_sent + speaker.stats().withdraws_sent;
    m.bytes += speaker.stats().bytes_sent;
    for (const auto& prefix : speaker.selected_prefixes()) {
      const auto* best = speaker.best(prefix);
      sizes.push_back(static_cast<double>(ia::encode_ia(best->ia, {}).size()));
      protocol_sum += static_cast<double>(best->ia.protocols_on_path().size());
      ++routes;
    }
  }
  m.ia_sizes = util::summarize(sizes);
  m.avg_protocols_per_path = routes == 0 ? 0.0 : protocol_sum / static_cast<double>(routes);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    std::fprintf(stderr, "bad flags: %s\n", error.c_str());
    return 1;
  }
  const std::size_t scale = static_cast<std::size_t>(flags.get_int("scale", 60));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  g_force_proto = static_cast<int>(flags.get_int("proto", -1));

  std::printf("Empirical rich-Internet control-plane cost (hierarchy of %zu ASes)\n\n",
              scale);
  std::printf("%9s | %9s | %8s | %10s | %9s | %9s | %11s\n", "adoption", "events",
              "frames", "bytes", "IA mean", "IA max", "proto/path");
  std::printf("----------+-----------+----------+------------+-----------+-----------+------------\n");

  bench::BenchJson out("rich_internet");
  Measurement baseline;
  bool have_baseline = false;
  double max_factor = 0.0;
  for (double adoption : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    bench::Stopwatch sw;
    const auto m = run(adoption, seed, scale);
    auto& bench_run = out.add_run(
        "adoption_" + std::to_string(static_cast<int>(adoption * 100)),
        static_cast<double>(m.events), sw.elapsed_s());
    bench_run.counters.emplace_back("bytes", static_cast<double>(m.bytes));
    bench_run.counters.emplace_back("ia_mean_bytes", m.ia_sizes.mean);
    std::printf("%8.0f%% | %9zu | %8llu | %10llu | %8.0f B | %8.0f B | %10.2f\n",
                adoption * 100, m.events, static_cast<unsigned long long>(m.frames),
                static_cast<unsigned long long>(m.bytes), m.ia_sizes.mean, m.ia_sizes.max,
                m.avg_protocols_per_path);
    if (!have_baseline) {
      baseline = m;
      have_baseline = true;
    } else if (baseline.bytes > 0) {
      max_factor = std::max(
          max_factor, static_cast<double>(m.bytes) / static_cast<double>(baseline.bytes));
    }
  }
  std::printf("\nempirical overhead factor vs pure-BGP Internet: up to %.2fx\n", max_factor);
  std::printf("(Table 3's analytical bound with sharing: 1.3x-2.5x; small-topology\n");
  std::printf("descriptors are lighter than Table 2's worst-case CI sizes)\n");
  return out.write() ? 0 : 1;
}
