// E1 — the Section 5 stress test.
//
// Paper setup: 6 peers each replay 150,000 RIS advertisements at the router
// under test (Quagga vs Beagle), one core. Paper result: Beagle's
// processing overhead for BGP-only advertisements is negligible
// (40,700 pfx/s vs 40,900 pfx/s); with IAs attached, throughput falls with
// IA size (7,073 pfx/s at 32 KB, 926 pfx/s at 256 KB) due to serialization.
//
// Here: BM_Quagga_BgpOnly is the unmodified BgpSpeaker; BM_Beagle_* is the
// DbgpSpeaker. Counters report prefixes/s; expect near-parity for BGP-only
// and a steep decline as IA size grows. BM_Beagle_OutOfBand measures the
// constant external-access penalty of out-of-band dissemination (CF-R2).
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "bgp/speaker.h"
#include "core/speaker.h"
#include "ia/frame_cache.h"
#include "protocols/bgp_module.h"
#include "telemetry/metrics.h"
#include "util/thread_pool.h"
#include "workload.h"

namespace {

using namespace dbgp;

constexpr int kPeers = 6;
constexpr std::size_t kUpdatesPerPeer = 2000;  // scaled-down replay per iteration

bench::WorkloadConfig stream_config(std::uint64_t seed) {
  bench::WorkloadConfig config;
  config.updates = kUpdatesPerPeer;
  config.seed = seed;
  return config;
}

void BM_Quagga_BgpOnly(benchmark::State& state) {
  std::vector<std::vector<std::vector<std::uint8_t>>> streams;
  for (int p = 0; p < kPeers; ++p) streams.push_back(bench::synth_bgp_stream(stream_config(p + 1)));

  std::uint64_t prefixes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    bgp::BgpSpeaker::Config config;
    config.asn = 65000;
    config.router_id = net::Ipv4Address(10, 0, 0, 1);
    config.next_hop = net::Ipv4Address(10, 0, 0, 1);
    config.hold_time = 0;  // no timer noise
    bgp::BgpSpeaker speaker(config);
    std::vector<bgp::PeerId> peers;
    for (int p = 0; p < kPeers; ++p) {
      peers.push_back(speaker.add_peer(65001 + p));
      speaker.start_peer(peers.back(), 0.0);
      speaker.handle_message(peers.back(), bgp::OpenMessage{4, 65001u + p, 0,
                                                            net::Ipv4Address(p + 1), {}},
                             0.0);
      speaker.handle_message(peers.back(), bgp::KeepAliveMessage{}, 0.0);
    }
    state.ResumeTiming();

    for (std::size_t i = 0; i < kUpdatesPerPeer; ++i) {
      for (int p = 0; p < kPeers; ++p) {
        benchmark::DoNotOptimize(speaker.handle_bytes(peers[p], streams[p][i], 0.0));
      }
    }
    prefixes += speaker.stats().prefixes_processed;
  }
  state.counters["prefixes/s"] =
      benchmark::Counter(static_cast<double>(prefixes), benchmark::Counter::kIsRate);
}
// MinTime forces multiple iterations (one ~150 ms replay per iteration used
// to yield iterations:1, i.e. a single sample with no averaging).
BENCHMARK(BM_Quagga_BgpOnly)->Unit(benchmark::kMillisecond)->MinTime(2.0);

// The Beagle-equivalent on BGP-only advertisements (tiny IAs, no extra
// protocol control information). Parameterized over the telemetry registry
// kill switch: the acceptance bound for the telemetry subsystem is <5%
// overhead here, so run with `--benchmark_filter=BM_Beagle_BgpOnly` and
// compare the enabled/disabled rows.
void beagle_bgp_only(benchmark::State& state, bool telemetry_on) {
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(telemetry_on);

  std::vector<std::vector<std::vector<std::uint8_t>>> streams;
  for (int p = 0; p < kPeers; ++p) {
    streams.push_back(bench::synth_ia_stream(stream_config(p + 1), /*target_bytes=*/0,
                                             /*protocols_on_path=*/0));
  }
  std::uint64_t prefixes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::DbgpConfig config;
    config.asn = 65000;
    config.next_hop = net::Ipv4Address(10, 0, 0, 1);
    core::DbgpSpeaker speaker(config);
    speaker.add_module(std::make_unique<protocols::BgpModule>());
    std::vector<bgp::PeerId> peers;
    for (int p = 0; p < kPeers; ++p) peers.push_back(speaker.add_peer(65001 + p));
    state.ResumeTiming();

    for (std::size_t i = 0; i < kUpdatesPerPeer; ++i) {
      for (int p = 0; p < kPeers; ++p) {
        benchmark::DoNotOptimize(speaker.handle_frame(peers[p], streams[p][i]));
      }
    }
    prefixes += speaker.stats().ias_received;
  }
  state.counters["prefixes/s"] =
      benchmark::Counter(static_cast<double>(prefixes), benchmark::Counter::kIsRate);
  telemetry::set_enabled(was_enabled);
}

void BM_Beagle_BgpOnly(benchmark::State& state) { beagle_bgp_only(state, true); }
BENCHMARK(BM_Beagle_BgpOnly)->Unit(benchmark::kMillisecond)->MinTime(2.0);

void BM_Beagle_BgpOnly_NoTelemetry(benchmark::State& state) {
  beagle_bgp_only(state, false);
}
BENCHMARK(BM_Beagle_BgpOnly_NoTelemetry)->Unit(benchmark::kMillisecond)->MinTime(2.0);

// Same workload through the batched pipeline: frames are staged per round
// of peers, then one flush runs the decision process once per touched
// prefix (dbgp.speaker.batch_size records the drain sizes).
void BM_Beagle_BgpOnly_Batched(benchmark::State& state) {
  std::vector<std::vector<std::vector<std::uint8_t>>> streams;
  for (int p = 0; p < kPeers; ++p) {
    streams.push_back(bench::synth_ia_stream(stream_config(p + 1), /*target_bytes=*/0,
                                             /*protocols_on_path=*/0));
  }
  std::uint64_t prefixes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::DbgpConfig config;
    config.asn = 65000;
    config.next_hop = net::Ipv4Address(10, 0, 0, 1);
    core::DbgpSpeaker speaker(config);
    speaker.add_module(std::make_unique<protocols::BgpModule>());
    std::vector<bgp::PeerId> peers;
    for (int p = 0; p < kPeers; ++p) peers.push_back(speaker.add_peer(65001 + p));
    state.ResumeTiming();

    for (std::size_t i = 0; i < kUpdatesPerPeer; ++i) {
      for (int p = 0; p < kPeers; ++p) {
        benchmark::DoNotOptimize(speaker.enqueue_frame(peers[p], streams[p][i]));
      }
    }
    benchmark::DoNotOptimize(speaker.flush());
    prefixes += speaker.stats().ias_received;
  }
  state.counters["prefixes/s"] =
      benchmark::Counter(static_cast<double>(prefixes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Beagle_BgpOnly_Batched)->Unit(benchmark::kMillisecond)->MinTime(2.0);

// The sharded parallel pipeline (DESIGN.md §13): frames staged raw via the
// refcounted overload (max_batch = 0 defers decode to flush), then one flush
// runs parallel decode, per-shard decision planning, and the sequential
// deterministic commit on a `threads`-wide pool. threads:1 takes the exact
// sequential path — its rate is the baseline the speedup column divides by
// (tools/bench_report prints the speedup-vs-threads table from the `threads`
// counter). On a single-core host all rows land near threads:1 — the curve
// is only meaningful on real multicore hardware.
void BM_Beagle_BgpOnly_Sharded(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  util::ThreadPool pool(threads);
  std::vector<std::vector<ia::SharedFrame>> streams;
  for (int p = 0; p < kPeers; ++p) {
    std::vector<ia::SharedFrame> stream;
    for (auto& bytes : bench::synth_ia_stream(stream_config(p + 1), /*target_bytes=*/0,
                                              /*protocols_on_path=*/0)) {
      stream.push_back(ia::make_shared_frame(std::move(bytes)));
    }
    streams.push_back(std::move(stream));
  }
  std::uint64_t prefixes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::DbgpConfig config;
    config.asn = 65000;
    config.next_hop = net::Ipv4Address(10, 0, 0, 1);
    config.max_batch = 0;  // explicit flush only: the whole replay is one batch
    core::DbgpSpeaker speaker(config);
    speaker.add_module(std::make_unique<protocols::BgpModule>());
    std::vector<bgp::PeerId> peers;
    for (int p = 0; p < kPeers; ++p) peers.push_back(speaker.add_peer(65001 + p));
    speaker.set_parallel(&pool);
    state.ResumeTiming();

    for (std::size_t i = 0; i < kUpdatesPerPeer; ++i) {
      for (int p = 0; p < kPeers; ++p) {
        benchmark::DoNotOptimize(speaker.enqueue_frame(peers[p], streams[p][i]));
      }
    }
    benchmark::DoNotOptimize(speaker.flush());
    prefixes += speaker.stats().ias_received;
  }
  state.counters["prefixes/s"] =
      benchmark::Counter(static_cast<double>(prefixes), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(threads);
}
// UseRealTime: with workers doing the decode/planning, the main thread's CPU
// time understates the work, which would inflate the rate counter. Wall-clock
// is the honest denominator for a multicore throughput claim.
BENCHMARK(BM_Beagle_BgpOnly_Sharded)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(2.0);

// Throughput vs IA size (the paper's 32 KB / 256 KB points plus the 4 KB
// BGP-message ceiling from Table 2).
void BM_Beagle_IaSize(benchmark::State& state) {
  const std::size_t ia_bytes = static_cast<std::size_t>(state.range(0));
  const std::size_t updates = std::max<std::size_t>(64, (1u << 22) / ia_bytes);
  bench::WorkloadConfig config = stream_config(7);
  config.updates = updates;
  const auto stream = bench::synth_ia_stream(config, ia_bytes);

  std::uint64_t prefixes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::DbgpConfig speaker_config;
    speaker_config.asn = 65000;
    speaker_config.next_hop = net::Ipv4Address(10, 0, 0, 1);
    core::DbgpSpeaker speaker(speaker_config);
    speaker.add_module(std::make_unique<protocols::BgpModule>());
    const bgp::PeerId peer = speaker.add_peer(65001);
    state.ResumeTiming();

    for (const auto& frame : stream) {
      benchmark::DoNotOptimize(speaker.handle_frame(peer, frame));
    }
    prefixes += updates;
  }
  state.counters["prefixes/s"] =
      benchmark::Counter(static_cast<double>(prefixes), benchmark::Counter::kIsRate);
  state.counters["ia_bytes"] = static_cast<double>(ia_bytes);
}
BENCHMARK(BM_Beagle_IaSize)
    ->Arg(4 * 1024)
    ->Arg(32 * 1024)
    ->Arg(128 * 1024)
    ->Arg(256 * 1024)
    ->Unit(benchmark::kMillisecond);

// Out-of-band dissemination: same IAs, but each advertisement costs a
// lookup-service round trip — the constant penalty Section 2.2 predicts.
void BM_Beagle_OutOfBand(benchmark::State& state) {
  const std::size_t ia_bytes = static_cast<std::size_t>(state.range(0));
  bench::WorkloadConfig config = stream_config(7);
  config.updates = 512;
  util::Rng rng(config.seed);

  std::uint64_t prefixes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::LookupService lookup;
    core::DbgpConfig sender_config;
    sender_config.asn = 65001;
    sender_config.next_hop = net::Ipv4Address(1, 1, 1, 1);
    sender_config.dissemination = core::Dissemination::kOutOfBand;
    core::DbgpSpeaker sender(sender_config, &lookup);
    sender.add_module(std::make_unique<protocols::BgpModule>());
    sender.add_peer(65000);

    core::DbgpConfig receiver_config;
    receiver_config.asn = 65000;
    receiver_config.next_hop = net::Ipv4Address(10, 0, 0, 1);
    core::DbgpSpeaker receiver(receiver_config, &lookup);
    receiver.add_module(std::make_unique<protocols::BgpModule>());
    const bgp::PeerId from = receiver.add_peer(65001);

    // Pre-generate distinct IAs and originate them at the sender so the
    // lookup service holds the full advertisement per prefix.
    std::vector<std::vector<std::uint8_t>> notices;
    for (std::size_t i = 0; i < config.updates; ++i) {
      auto ia = bench::synth_ia(rng, config, ia_bytes);
      lookup.put(core::LookupService::ia_key(65001, 65000, ia.destination),
                 ia::encode_ia(ia, {}));
      notices.push_back(core::DbgpSpeaker::encode_notice(ia.destination));
    }
    state.ResumeTiming();

    for (const auto& notice : notices) {
      benchmark::DoNotOptimize(receiver.handle_frame(from, notice));
    }
    prefixes += config.updates;
  }
  state.counters["prefixes/s"] =
      benchmark::Counter(static_cast<double>(prefixes), benchmark::Counter::kIsRate);
  state.counters["ia_bytes"] = static_cast<double>(ia_bytes);
}
BENCHMARK(BM_Beagle_OutOfBand)->Arg(32 * 1024)->Unit(benchmark::kMillisecond);

}  // namespace

DBGP_BENCH_MAIN("stress");
