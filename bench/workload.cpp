#include "workload.h"

#include "core/speaker.h"

namespace dbgp::bench {

namespace {

// Prefix-length distribution loosely following global-table statistics:
// ~55% /24, the rest spread over /16../23 and a few shorter.
std::uint8_t synth_prefix_length(util::Rng& rng) {
  const std::uint32_t roll = rng.next_below(100);
  if (roll < 55) return 24;
  if (roll < 65) return 22;
  if (roll < 75) return 20;
  if (roll < 85) return 19;
  if (roll < 93) return 16;
  if (roll < 97) return 21;
  return 12;
}

net::Prefix synth_prefix(util::Rng& rng) {
  return net::Prefix(net::Ipv4Address(rng.next_u32()), synth_prefix_length(rng));
}

bgp::AsPath synth_path(util::Rng& rng, const WorkloadConfig& config) {
  const std::size_t len =
      config.path_min +
      rng.next_below(static_cast<std::uint32_t>(config.path_max - config.path_min + 1));
  std::vector<bgp::AsNumber> asns;
  asns.reserve(len);
  for (std::size_t i = 0; i < len; ++i) asns.push_back(rng.next_u32() % 64000 + 1);
  return bgp::AsPath(std::move(asns));
}

}  // namespace

bgp::UpdateMessage synth_update(util::Rng& rng, const WorkloadConfig& config) {
  bgp::UpdateMessage update;
  bgp::PathAttributes attrs;
  attrs.origin = static_cast<bgp::Origin>(rng.next_below(3));
  attrs.as_path = synth_path(rng, config);
  attrs.next_hop = net::Ipv4Address(rng.next_u32());
  if (rng.next_bool(0.3)) attrs.med = rng.next_u32() % 1000;
  if (rng.next_bool(0.4)) {
    const auto n = rng.next_below(3) + 1;
    for (std::uint32_t i = 0; i < n; ++i) attrs.communities.push_back(rng.next_u32());
  }
  update.attributes = std::move(attrs);
  update.nlri.push_back(synth_prefix(rng));
  return update;
}

std::vector<std::vector<std::uint8_t>> synth_bgp_stream(const WorkloadConfig& config) {
  util::Rng rng(config.seed);
  std::vector<std::vector<std::uint8_t>> stream;
  stream.reserve(config.updates);
  for (std::size_t i = 0; i < config.updates; ++i) {
    stream.push_back(bgp::encode_message(bgp::Message{synth_update(rng, config)}));
  }
  return stream;
}

ia::IntegratedAdvertisement synth_ia(util::Rng& rng, const WorkloadConfig& config,
                                     std::size_t target_bytes,
                                     std::size_t protocols_on_path, double shared_fraction) {
  ia::IntegratedAdvertisement out;
  out.destination = synth_prefix(rng);
  const bgp::AsPath path = synth_path(rng, config);
  for (auto it = path.segments()[0].asns.rbegin(); it != path.segments()[0].asns.rend();
       ++it) {
    out.path_vector.prepend_as(*it);
  }
  out.baseline.origin = bgp::Origin::kIgp;
  out.baseline.as_path = path;
  out.baseline.next_hop = net::Ipv4Address(rng.next_u32());

  if (protocols_on_path == 0 || target_bytes == 0) return out;

  // Split the byte budget across the protocols on the path: a shared blob
  // all critical fixes reference, plus per-protocol unique payloads — the
  // Section 3.2 sharing structure.
  const std::size_t budget = target_bytes;
  const std::size_t shared_size =
      static_cast<std::size_t>(static_cast<double>(budget) * shared_fraction);
  std::vector<std::uint8_t> shared(shared_size);
  for (auto& b : shared) b = static_cast<std::uint8_t>(rng.next_u32());
  const std::size_t unique_each =
      protocols_on_path == 0 ? 0 : (budget - shared_size) / protocols_on_path;
  for (std::size_t p = 0; p < protocols_on_path; ++p) {
    const ia::ProtocolId proto = static_cast<ia::ProtocolId>(100 + p);
    out.set_path_descriptor(proto, 1, shared);  // deduplicated by the codec
    std::vector<std::uint8_t> unique(unique_each);
    for (auto& b : unique) b = static_cast<std::uint8_t>(rng.next_u32());
    out.set_path_descriptor(proto, 2, std::move(unique));
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> synth_ia_stream(const WorkloadConfig& config,
                                                       std::size_t target_bytes,
                                                       std::size_t protocols_on_path,
                                                       double shared_fraction) {
  util::Rng rng(config.seed);
  std::vector<std::vector<std::uint8_t>> stream;
  stream.reserve(config.updates);
  for (std::size_t i = 0; i < config.updates; ++i) {
    const auto ia = synth_ia(rng, config, target_bytes, protocols_on_path, shared_fraction);
    stream.push_back(core::DbgpSpeaker::encode_announce(ia, {}));
  }
  return stream;
}

}  // namespace dbgp::bench
