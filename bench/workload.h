// Synthetic RIS-like workloads for the benchmarks.
//
// The paper's stress test replayed 150,000 advertisements per peer collected
// from RIPE RIS. We have no traces here (DESIGN.md substitution), so this
// generator synthesizes streams with the distributions the paper's overhead
// analysis cites: prefix lengths concentrated at /24 and /16-/22, AS-path
// lengths 3-5 ([7] in the paper), and a realistic attribute mix. IA
// workloads additionally pad per-protocol descriptors to hit a target
// advertisement size (4 KB - 256 KB, Table 2's CI/CF range).
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/message.h"
#include "ia/codec.h"
#include "ia/integrated_advertisement.h"
#include "util/rng.h"

namespace dbgp::bench {

struct WorkloadConfig {
  std::size_t updates = 10000;
  std::uint64_t seed = 1;
  // AS-path length range (paper: average BGP path length 3-5).
  std::size_t path_min = 3;
  std::size_t path_max = 5;
};

// One synthetic BGP UPDATE (announce, single NLRI).
bgp::UpdateMessage synth_update(util::Rng& rng, const WorkloadConfig& config);

// A stream of encoded BGP UPDATE messages.
std::vector<std::vector<std::uint8_t>> synth_bgp_stream(const WorkloadConfig& config);

// One synthetic IA whose encoded size is approximately `target_bytes`
// (padded via per-protocol descriptors; `protocols_on_path` descriptors are
// attached, sharing a `shared_fraction` of their control information).
ia::IntegratedAdvertisement synth_ia(util::Rng& rng, const WorkloadConfig& config,
                                     std::size_t target_bytes,
                                     std::size_t protocols_on_path = 4,
                                     double shared_fraction = 0.9);

// A stream of encoded D-BGP announce frames with IAs of ~target_bytes.
std::vector<std::vector<std::uint8_t>> synth_ia_stream(const WorkloadConfig& config,
                                                       std::size_t target_bytes,
                                                       std::size_t protocols_on_path = 4,
                                                       double shared_fraction = 0.9);

}  // namespace dbgp::bench
