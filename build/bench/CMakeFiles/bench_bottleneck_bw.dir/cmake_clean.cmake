file(REMOVE_RECURSE
  "CMakeFiles/bench_bottleneck_bw.dir/bench_bottleneck_bw.cpp.o"
  "CMakeFiles/bench_bottleneck_bw.dir/bench_bottleneck_bw.cpp.o.d"
  "bench_bottleneck_bw"
  "bench_bottleneck_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bottleneck_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
