# Empty dependencies file for bench_bottleneck_bw.
# This may be replaced when dependencies are built.
