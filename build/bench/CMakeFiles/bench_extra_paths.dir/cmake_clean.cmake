file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_paths.dir/bench_extra_paths.cpp.o"
  "CMakeFiles/bench_extra_paths.dir/bench_extra_paths.cpp.o.d"
  "bench_extra_paths"
  "bench_extra_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
