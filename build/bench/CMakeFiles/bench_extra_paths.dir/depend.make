# Empty dependencies file for bench_extra_paths.
# This may be replaced when dependencies are built.
