
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_rich_internet.cpp" "bench/CMakeFiles/bench_rich_internet.dir/bench_rich_internet.cpp.o" "gcc" "bench/CMakeFiles/bench_rich_internet.dir/bench_rich_internet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dbgp_bench_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dbgp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/dbgp_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/dbgp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ia/CMakeFiles/dbgp_ia.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/dbgp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dbgp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dbgp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/overhead/CMakeFiles/dbgp_overhead.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
