file(REMOVE_RECURSE
  "CMakeFiles/bench_rich_internet.dir/bench_rich_internet.cpp.o"
  "CMakeFiles/bench_rich_internet.dir/bench_rich_internet.cpp.o.d"
  "bench_rich_internet"
  "bench_rich_internet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rich_internet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
