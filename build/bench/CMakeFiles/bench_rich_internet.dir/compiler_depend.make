# Empty compiler generated dependencies file for bench_rich_internet.
# This may be replaced when dependencies are built.
