file(REMOVE_RECURSE
  "CMakeFiles/dbgp_bench_workload.dir/workload.cpp.o"
  "CMakeFiles/dbgp_bench_workload.dir/workload.cpp.o.d"
  "libdbgp_bench_workload.a"
  "libdbgp_bench_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgp_bench_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
