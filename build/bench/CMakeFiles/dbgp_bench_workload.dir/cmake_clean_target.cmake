file(REMOVE_RECURSE
  "libdbgp_bench_workload.a"
)
