# Empty dependencies file for dbgp_bench_workload.
# This may be replaced when dependencies are built.
