file(REMOVE_RECURSE
  "CMakeFiles/evolution.dir/evolution.cpp.o"
  "CMakeFiles/evolution.dir/evolution.cpp.o.d"
  "evolution"
  "evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
