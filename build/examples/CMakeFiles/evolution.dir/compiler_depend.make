# Empty compiler generated dependencies file for evolution.
# This may be replaced when dependencies are built.
