file(REMOVE_RECURSE
  "CMakeFiles/miro_discovery.dir/miro_discovery.cpp.o"
  "CMakeFiles/miro_discovery.dir/miro_discovery.cpp.o.d"
  "miro_discovery"
  "miro_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miro_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
