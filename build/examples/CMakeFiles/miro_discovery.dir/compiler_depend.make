# Empty compiler generated dependencies file for miro_discovery.
# This may be replaced when dependencies are built.
