file(REMOVE_RECURSE
  "CMakeFiles/pathlet_across_gulf.dir/pathlet_across_gulf.cpp.o"
  "CMakeFiles/pathlet_across_gulf.dir/pathlet_across_gulf.cpp.o.d"
  "pathlet_across_gulf"
  "pathlet_across_gulf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathlet_across_gulf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
