# Empty dependencies file for pathlet_across_gulf.
# This may be replaced when dependencies are built.
