file(REMOVE_RECURSE
  "CMakeFiles/rich_internet.dir/rich_internet.cpp.o"
  "CMakeFiles/rich_internet.dir/rich_internet.cpp.o.d"
  "rich_internet"
  "rich_internet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rich_internet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
