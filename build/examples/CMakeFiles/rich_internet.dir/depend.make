# Empty dependencies file for rich_internet.
# This may be replaced when dependencies are built.
