file(REMOVE_RECURSE
  "CMakeFiles/wiser_across_gulf.dir/wiser_across_gulf.cpp.o"
  "CMakeFiles/wiser_across_gulf.dir/wiser_across_gulf.cpp.o.d"
  "wiser_across_gulf"
  "wiser_across_gulf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiser_across_gulf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
