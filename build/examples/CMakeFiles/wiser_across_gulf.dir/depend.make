# Empty dependencies file for wiser_across_gulf.
# This may be replaced when dependencies are built.
