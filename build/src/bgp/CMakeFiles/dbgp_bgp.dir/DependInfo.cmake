
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/decision.cpp" "src/bgp/CMakeFiles/dbgp_bgp.dir/decision.cpp.o" "gcc" "src/bgp/CMakeFiles/dbgp_bgp.dir/decision.cpp.o.d"
  "/root/repo/src/bgp/fsm.cpp" "src/bgp/CMakeFiles/dbgp_bgp.dir/fsm.cpp.o" "gcc" "src/bgp/CMakeFiles/dbgp_bgp.dir/fsm.cpp.o.d"
  "/root/repo/src/bgp/message.cpp" "src/bgp/CMakeFiles/dbgp_bgp.dir/message.cpp.o" "gcc" "src/bgp/CMakeFiles/dbgp_bgp.dir/message.cpp.o.d"
  "/root/repo/src/bgp/path_attributes.cpp" "src/bgp/CMakeFiles/dbgp_bgp.dir/path_attributes.cpp.o" "gcc" "src/bgp/CMakeFiles/dbgp_bgp.dir/path_attributes.cpp.o.d"
  "/root/repo/src/bgp/policy.cpp" "src/bgp/CMakeFiles/dbgp_bgp.dir/policy.cpp.o" "gcc" "src/bgp/CMakeFiles/dbgp_bgp.dir/policy.cpp.o.d"
  "/root/repo/src/bgp/rib.cpp" "src/bgp/CMakeFiles/dbgp_bgp.dir/rib.cpp.o" "gcc" "src/bgp/CMakeFiles/dbgp_bgp.dir/rib.cpp.o.d"
  "/root/repo/src/bgp/speaker.cpp" "src/bgp/CMakeFiles/dbgp_bgp.dir/speaker.cpp.o" "gcc" "src/bgp/CMakeFiles/dbgp_bgp.dir/speaker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dbgp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
