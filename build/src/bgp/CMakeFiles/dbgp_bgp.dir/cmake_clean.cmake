file(REMOVE_RECURSE
  "CMakeFiles/dbgp_bgp.dir/decision.cpp.o"
  "CMakeFiles/dbgp_bgp.dir/decision.cpp.o.d"
  "CMakeFiles/dbgp_bgp.dir/fsm.cpp.o"
  "CMakeFiles/dbgp_bgp.dir/fsm.cpp.o.d"
  "CMakeFiles/dbgp_bgp.dir/message.cpp.o"
  "CMakeFiles/dbgp_bgp.dir/message.cpp.o.d"
  "CMakeFiles/dbgp_bgp.dir/path_attributes.cpp.o"
  "CMakeFiles/dbgp_bgp.dir/path_attributes.cpp.o.d"
  "CMakeFiles/dbgp_bgp.dir/policy.cpp.o"
  "CMakeFiles/dbgp_bgp.dir/policy.cpp.o.d"
  "CMakeFiles/dbgp_bgp.dir/rib.cpp.o"
  "CMakeFiles/dbgp_bgp.dir/rib.cpp.o.d"
  "CMakeFiles/dbgp_bgp.dir/speaker.cpp.o"
  "CMakeFiles/dbgp_bgp.dir/speaker.cpp.o.d"
  "libdbgp_bgp.a"
  "libdbgp_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgp_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
