file(REMOVE_RECURSE
  "libdbgp_bgp.a"
)
