# Empty dependencies file for dbgp_bgp.
# This may be replaced when dependencies are built.
