
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/filters.cpp" "src/core/CMakeFiles/dbgp_core.dir/filters.cpp.o" "gcc" "src/core/CMakeFiles/dbgp_core.dir/filters.cpp.o.d"
  "/root/repo/src/core/ia_db.cpp" "src/core/CMakeFiles/dbgp_core.dir/ia_db.cpp.o" "gcc" "src/core/CMakeFiles/dbgp_core.dir/ia_db.cpp.o.d"
  "/root/repo/src/core/ia_factory.cpp" "src/core/CMakeFiles/dbgp_core.dir/ia_factory.cpp.o" "gcc" "src/core/CMakeFiles/dbgp_core.dir/ia_factory.cpp.o.d"
  "/root/repo/src/core/legacy_bridge.cpp" "src/core/CMakeFiles/dbgp_core.dir/legacy_bridge.cpp.o" "gcc" "src/core/CMakeFiles/dbgp_core.dir/legacy_bridge.cpp.o.d"
  "/root/repo/src/core/lookup_service.cpp" "src/core/CMakeFiles/dbgp_core.dir/lookup_service.cpp.o" "gcc" "src/core/CMakeFiles/dbgp_core.dir/lookup_service.cpp.o.d"
  "/root/repo/src/core/speaker.cpp" "src/core/CMakeFiles/dbgp_core.dir/speaker.cpp.o" "gcc" "src/core/CMakeFiles/dbgp_core.dir/speaker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ia/CMakeFiles/dbgp_ia.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/dbgp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dbgp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
