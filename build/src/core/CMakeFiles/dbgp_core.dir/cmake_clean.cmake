file(REMOVE_RECURSE
  "CMakeFiles/dbgp_core.dir/filters.cpp.o"
  "CMakeFiles/dbgp_core.dir/filters.cpp.o.d"
  "CMakeFiles/dbgp_core.dir/ia_db.cpp.o"
  "CMakeFiles/dbgp_core.dir/ia_db.cpp.o.d"
  "CMakeFiles/dbgp_core.dir/ia_factory.cpp.o"
  "CMakeFiles/dbgp_core.dir/ia_factory.cpp.o.d"
  "CMakeFiles/dbgp_core.dir/legacy_bridge.cpp.o"
  "CMakeFiles/dbgp_core.dir/legacy_bridge.cpp.o.d"
  "CMakeFiles/dbgp_core.dir/lookup_service.cpp.o"
  "CMakeFiles/dbgp_core.dir/lookup_service.cpp.o.d"
  "CMakeFiles/dbgp_core.dir/speaker.cpp.o"
  "CMakeFiles/dbgp_core.dir/speaker.cpp.o.d"
  "libdbgp_core.a"
  "libdbgp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
