file(REMOVE_RECURSE
  "libdbgp_core.a"
)
