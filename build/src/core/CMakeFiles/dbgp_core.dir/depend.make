# Empty dependencies file for dbgp_core.
# This may be replaced when dependencies are built.
