
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ia/codec.cpp" "src/ia/CMakeFiles/dbgp_ia.dir/codec.cpp.o" "gcc" "src/ia/CMakeFiles/dbgp_ia.dir/codec.cpp.o.d"
  "/root/repo/src/ia/compress.cpp" "src/ia/CMakeFiles/dbgp_ia.dir/compress.cpp.o" "gcc" "src/ia/CMakeFiles/dbgp_ia.dir/compress.cpp.o.d"
  "/root/repo/src/ia/descriptors.cpp" "src/ia/CMakeFiles/dbgp_ia.dir/descriptors.cpp.o" "gcc" "src/ia/CMakeFiles/dbgp_ia.dir/descriptors.cpp.o.d"
  "/root/repo/src/ia/ids.cpp" "src/ia/CMakeFiles/dbgp_ia.dir/ids.cpp.o" "gcc" "src/ia/CMakeFiles/dbgp_ia.dir/ids.cpp.o.d"
  "/root/repo/src/ia/integrated_advertisement.cpp" "src/ia/CMakeFiles/dbgp_ia.dir/integrated_advertisement.cpp.o" "gcc" "src/ia/CMakeFiles/dbgp_ia.dir/integrated_advertisement.cpp.o.d"
  "/root/repo/src/ia/path_vector.cpp" "src/ia/CMakeFiles/dbgp_ia.dir/path_vector.cpp.o" "gcc" "src/ia/CMakeFiles/dbgp_ia.dir/path_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/dbgp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dbgp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
