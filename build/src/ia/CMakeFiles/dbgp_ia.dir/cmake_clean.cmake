file(REMOVE_RECURSE
  "CMakeFiles/dbgp_ia.dir/codec.cpp.o"
  "CMakeFiles/dbgp_ia.dir/codec.cpp.o.d"
  "CMakeFiles/dbgp_ia.dir/compress.cpp.o"
  "CMakeFiles/dbgp_ia.dir/compress.cpp.o.d"
  "CMakeFiles/dbgp_ia.dir/descriptors.cpp.o"
  "CMakeFiles/dbgp_ia.dir/descriptors.cpp.o.d"
  "CMakeFiles/dbgp_ia.dir/ids.cpp.o"
  "CMakeFiles/dbgp_ia.dir/ids.cpp.o.d"
  "CMakeFiles/dbgp_ia.dir/integrated_advertisement.cpp.o"
  "CMakeFiles/dbgp_ia.dir/integrated_advertisement.cpp.o.d"
  "CMakeFiles/dbgp_ia.dir/path_vector.cpp.o"
  "CMakeFiles/dbgp_ia.dir/path_vector.cpp.o.d"
  "libdbgp_ia.a"
  "libdbgp_ia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgp_ia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
