file(REMOVE_RECURSE
  "libdbgp_ia.a"
)
