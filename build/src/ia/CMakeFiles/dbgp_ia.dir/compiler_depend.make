# Empty compiler generated dependencies file for dbgp_ia.
# This may be replaced when dependencies are built.
