file(REMOVE_RECURSE
  "CMakeFiles/dbgp_net.dir/ipv4.cpp.o"
  "CMakeFiles/dbgp_net.dir/ipv4.cpp.o.d"
  "libdbgp_net.a"
  "libdbgp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
