file(REMOVE_RECURSE
  "libdbgp_net.a"
)
