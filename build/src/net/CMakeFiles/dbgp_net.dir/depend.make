# Empty dependencies file for dbgp_net.
# This may be replaced when dependencies are built.
