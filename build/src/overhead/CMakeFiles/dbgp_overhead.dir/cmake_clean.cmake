file(REMOVE_RECURSE
  "CMakeFiles/dbgp_overhead.dir/model.cpp.o"
  "CMakeFiles/dbgp_overhead.dir/model.cpp.o.d"
  "libdbgp_overhead.a"
  "libdbgp_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgp_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
