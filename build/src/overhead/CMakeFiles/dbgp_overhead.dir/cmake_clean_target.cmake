file(REMOVE_RECURSE
  "libdbgp_overhead.a"
)
