# Empty compiler generated dependencies file for dbgp_overhead.
# This may be replaced when dependencies are built.
