
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/bgp_module.cpp" "src/protocols/CMakeFiles/dbgp_protocols.dir/bgp_module.cpp.o" "gcc" "src/protocols/CMakeFiles/dbgp_protocols.dir/bgp_module.cpp.o.d"
  "/root/repo/src/protocols/bgpsec.cpp" "src/protocols/CMakeFiles/dbgp_protocols.dir/bgpsec.cpp.o" "gcc" "src/protocols/CMakeFiles/dbgp_protocols.dir/bgpsec.cpp.o.d"
  "/root/repo/src/protocols/eqbgp.cpp" "src/protocols/CMakeFiles/dbgp_protocols.dir/eqbgp.cpp.o" "gcc" "src/protocols/CMakeFiles/dbgp_protocols.dir/eqbgp.cpp.o.d"
  "/root/repo/src/protocols/hlp.cpp" "src/protocols/CMakeFiles/dbgp_protocols.dir/hlp.cpp.o" "gcc" "src/protocols/CMakeFiles/dbgp_protocols.dir/hlp.cpp.o.d"
  "/root/repo/src/protocols/lisp.cpp" "src/protocols/CMakeFiles/dbgp_protocols.dir/lisp.cpp.o" "gcc" "src/protocols/CMakeFiles/dbgp_protocols.dir/lisp.cpp.o.d"
  "/root/repo/src/protocols/miro.cpp" "src/protocols/CMakeFiles/dbgp_protocols.dir/miro.cpp.o" "gcc" "src/protocols/CMakeFiles/dbgp_protocols.dir/miro.cpp.o.d"
  "/root/repo/src/protocols/pathlet.cpp" "src/protocols/CMakeFiles/dbgp_protocols.dir/pathlet.cpp.o" "gcc" "src/protocols/CMakeFiles/dbgp_protocols.dir/pathlet.cpp.o.d"
  "/root/repo/src/protocols/rbgp.cpp" "src/protocols/CMakeFiles/dbgp_protocols.dir/rbgp.cpp.o" "gcc" "src/protocols/CMakeFiles/dbgp_protocols.dir/rbgp.cpp.o.d"
  "/root/repo/src/protocols/scion.cpp" "src/protocols/CMakeFiles/dbgp_protocols.dir/scion.cpp.o" "gcc" "src/protocols/CMakeFiles/dbgp_protocols.dir/scion.cpp.o.d"
  "/root/repo/src/protocols/taxonomy.cpp" "src/protocols/CMakeFiles/dbgp_protocols.dir/taxonomy.cpp.o" "gcc" "src/protocols/CMakeFiles/dbgp_protocols.dir/taxonomy.cpp.o.d"
  "/root/repo/src/protocols/wiser.cpp" "src/protocols/CMakeFiles/dbgp_protocols.dir/wiser.cpp.o" "gcc" "src/protocols/CMakeFiles/dbgp_protocols.dir/wiser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dbgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ia/CMakeFiles/dbgp_ia.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/dbgp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dbgp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
