file(REMOVE_RECURSE
  "CMakeFiles/dbgp_protocols.dir/bgp_module.cpp.o"
  "CMakeFiles/dbgp_protocols.dir/bgp_module.cpp.o.d"
  "CMakeFiles/dbgp_protocols.dir/bgpsec.cpp.o"
  "CMakeFiles/dbgp_protocols.dir/bgpsec.cpp.o.d"
  "CMakeFiles/dbgp_protocols.dir/eqbgp.cpp.o"
  "CMakeFiles/dbgp_protocols.dir/eqbgp.cpp.o.d"
  "CMakeFiles/dbgp_protocols.dir/hlp.cpp.o"
  "CMakeFiles/dbgp_protocols.dir/hlp.cpp.o.d"
  "CMakeFiles/dbgp_protocols.dir/lisp.cpp.o"
  "CMakeFiles/dbgp_protocols.dir/lisp.cpp.o.d"
  "CMakeFiles/dbgp_protocols.dir/miro.cpp.o"
  "CMakeFiles/dbgp_protocols.dir/miro.cpp.o.d"
  "CMakeFiles/dbgp_protocols.dir/pathlet.cpp.o"
  "CMakeFiles/dbgp_protocols.dir/pathlet.cpp.o.d"
  "CMakeFiles/dbgp_protocols.dir/rbgp.cpp.o"
  "CMakeFiles/dbgp_protocols.dir/rbgp.cpp.o.d"
  "CMakeFiles/dbgp_protocols.dir/scion.cpp.o"
  "CMakeFiles/dbgp_protocols.dir/scion.cpp.o.d"
  "CMakeFiles/dbgp_protocols.dir/taxonomy.cpp.o"
  "CMakeFiles/dbgp_protocols.dir/taxonomy.cpp.o.d"
  "CMakeFiles/dbgp_protocols.dir/wiser.cpp.o"
  "CMakeFiles/dbgp_protocols.dir/wiser.cpp.o.d"
  "libdbgp_protocols.a"
  "libdbgp_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgp_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
