file(REMOVE_RECURSE
  "libdbgp_protocols.a"
)
