# Empty dependencies file for dbgp_protocols.
# This may be replaced when dependencies are built.
