file(REMOVE_RECURSE
  "CMakeFiles/dbgp_scenario.dir/parser.cpp.o"
  "CMakeFiles/dbgp_scenario.dir/parser.cpp.o.d"
  "CMakeFiles/dbgp_scenario.dir/runner.cpp.o"
  "CMakeFiles/dbgp_scenario.dir/runner.cpp.o.d"
  "libdbgp_scenario.a"
  "libdbgp_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgp_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
