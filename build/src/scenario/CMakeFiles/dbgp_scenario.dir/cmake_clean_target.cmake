file(REMOVE_RECURSE
  "libdbgp_scenario.a"
)
