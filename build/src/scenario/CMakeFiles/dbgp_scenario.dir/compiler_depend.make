# Empty compiler generated dependencies file for dbgp_scenario.
# This may be replaced when dependencies are built.
