file(REMOVE_RECURSE
  "CMakeFiles/dbgp_sim.dir/archetypes.cpp.o"
  "CMakeFiles/dbgp_sim.dir/archetypes.cpp.o.d"
  "CMakeFiles/dbgp_sim.dir/experiment.cpp.o"
  "CMakeFiles/dbgp_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/dbgp_sim.dir/routing.cpp.o"
  "CMakeFiles/dbgp_sim.dir/routing.cpp.o.d"
  "libdbgp_sim.a"
  "libdbgp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
