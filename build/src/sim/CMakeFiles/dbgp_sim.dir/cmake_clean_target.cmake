file(REMOVE_RECURSE
  "libdbgp_sim.a"
)
