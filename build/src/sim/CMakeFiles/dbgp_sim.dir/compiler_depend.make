# Empty compiler generated dependencies file for dbgp_sim.
# This may be replaced when dependencies are built.
