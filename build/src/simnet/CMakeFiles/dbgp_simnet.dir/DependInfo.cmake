
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/dataplane.cpp" "src/simnet/CMakeFiles/dbgp_simnet.dir/dataplane.cpp.o" "gcc" "src/simnet/CMakeFiles/dbgp_simnet.dir/dataplane.cpp.o.d"
  "/root/repo/src/simnet/event_queue.cpp" "src/simnet/CMakeFiles/dbgp_simnet.dir/event_queue.cpp.o" "gcc" "src/simnet/CMakeFiles/dbgp_simnet.dir/event_queue.cpp.o.d"
  "/root/repo/src/simnet/fib_builder.cpp" "src/simnet/CMakeFiles/dbgp_simnet.dir/fib_builder.cpp.o" "gcc" "src/simnet/CMakeFiles/dbgp_simnet.dir/fib_builder.cpp.o.d"
  "/root/repo/src/simnet/network.cpp" "src/simnet/CMakeFiles/dbgp_simnet.dir/network.cpp.o" "gcc" "src/simnet/CMakeFiles/dbgp_simnet.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dbgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/dbgp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/dbgp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dbgp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbgp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ia/CMakeFiles/dbgp_ia.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
