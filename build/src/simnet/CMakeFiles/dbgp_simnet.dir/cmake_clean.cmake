file(REMOVE_RECURSE
  "CMakeFiles/dbgp_simnet.dir/dataplane.cpp.o"
  "CMakeFiles/dbgp_simnet.dir/dataplane.cpp.o.d"
  "CMakeFiles/dbgp_simnet.dir/event_queue.cpp.o"
  "CMakeFiles/dbgp_simnet.dir/event_queue.cpp.o.d"
  "CMakeFiles/dbgp_simnet.dir/fib_builder.cpp.o"
  "CMakeFiles/dbgp_simnet.dir/fib_builder.cpp.o.d"
  "CMakeFiles/dbgp_simnet.dir/network.cpp.o"
  "CMakeFiles/dbgp_simnet.dir/network.cpp.o.d"
  "libdbgp_simnet.a"
  "libdbgp_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgp_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
