file(REMOVE_RECURSE
  "libdbgp_simnet.a"
)
