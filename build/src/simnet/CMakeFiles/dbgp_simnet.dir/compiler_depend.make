# Empty compiler generated dependencies file for dbgp_simnet.
# This may be replaced when dependencies are built.
