
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/adoption.cpp" "src/topology/CMakeFiles/dbgp_topology.dir/adoption.cpp.o" "gcc" "src/topology/CMakeFiles/dbgp_topology.dir/adoption.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/topology/CMakeFiles/dbgp_topology.dir/graph.cpp.o" "gcc" "src/topology/CMakeFiles/dbgp_topology.dir/graph.cpp.o.d"
  "/root/repo/src/topology/hierarchy.cpp" "src/topology/CMakeFiles/dbgp_topology.dir/hierarchy.cpp.o" "gcc" "src/topology/CMakeFiles/dbgp_topology.dir/hierarchy.cpp.o.d"
  "/root/repo/src/topology/waxman.cpp" "src/topology/CMakeFiles/dbgp_topology.dir/waxman.cpp.o" "gcc" "src/topology/CMakeFiles/dbgp_topology.dir/waxman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dbgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
