file(REMOVE_RECURSE
  "CMakeFiles/dbgp_topology.dir/adoption.cpp.o"
  "CMakeFiles/dbgp_topology.dir/adoption.cpp.o.d"
  "CMakeFiles/dbgp_topology.dir/graph.cpp.o"
  "CMakeFiles/dbgp_topology.dir/graph.cpp.o.d"
  "CMakeFiles/dbgp_topology.dir/hierarchy.cpp.o"
  "CMakeFiles/dbgp_topology.dir/hierarchy.cpp.o.d"
  "CMakeFiles/dbgp_topology.dir/waxman.cpp.o"
  "CMakeFiles/dbgp_topology.dir/waxman.cpp.o.d"
  "libdbgp_topology.a"
  "libdbgp_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgp_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
