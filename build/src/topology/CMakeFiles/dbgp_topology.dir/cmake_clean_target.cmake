file(REMOVE_RECURSE
  "libdbgp_topology.a"
)
