# Empty compiler generated dependencies file for dbgp_topology.
# This may be replaced when dependencies are built.
