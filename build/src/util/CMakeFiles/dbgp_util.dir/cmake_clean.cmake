file(REMOVE_RECURSE
  "CMakeFiles/dbgp_util.dir/bytes.cpp.o"
  "CMakeFiles/dbgp_util.dir/bytes.cpp.o.d"
  "CMakeFiles/dbgp_util.dir/flags.cpp.o"
  "CMakeFiles/dbgp_util.dir/flags.cpp.o.d"
  "CMakeFiles/dbgp_util.dir/logging.cpp.o"
  "CMakeFiles/dbgp_util.dir/logging.cpp.o.d"
  "CMakeFiles/dbgp_util.dir/rng.cpp.o"
  "CMakeFiles/dbgp_util.dir/rng.cpp.o.d"
  "CMakeFiles/dbgp_util.dir/stats.cpp.o"
  "CMakeFiles/dbgp_util.dir/stats.cpp.o.d"
  "CMakeFiles/dbgp_util.dir/strings.cpp.o"
  "CMakeFiles/dbgp_util.dir/strings.cpp.o.d"
  "libdbgp_util.a"
  "libdbgp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
