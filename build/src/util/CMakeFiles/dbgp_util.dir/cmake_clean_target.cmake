file(REMOVE_RECURSE
  "libdbgp_util.a"
)
