# Empty dependencies file for dbgp_util.
# This may be replaced when dependencies are built.
