
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bgp_attrs_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/bgp_attrs_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/bgp_attrs_test.cpp.o.d"
  "/root/repo/tests/bgp_decision_policy_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/bgp_decision_policy_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/bgp_decision_policy_test.cpp.o.d"
  "/root/repo/tests/bgp_fsm_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/bgp_fsm_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/bgp_fsm_test.cpp.o.d"
  "/root/repo/tests/bgp_message_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/bgp_message_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/bgp_message_test.cpp.o.d"
  "/root/repo/tests/bgp_mrai_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/bgp_mrai_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/bgp_mrai_test.cpp.o.d"
  "/root/repo/tests/bgp_speaker_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/bgp_speaker_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/bgp_speaker_test.cpp.o.d"
  "/root/repo/tests/bgpsec_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/bgpsec_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/bgpsec_test.cpp.o.d"
  "/root/repo/tests/core_pipeline_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/core_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/core_pipeline_test.cpp.o.d"
  "/root/repo/tests/hlp_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/hlp_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/hlp_test.cpp.o.d"
  "/root/repo/tests/ia_codec_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/ia_codec_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/ia_codec_test.cpp.o.d"
  "/root/repo/tests/ia_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/ia_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/ia_test.cpp.o.d"
  "/root/repo/tests/legacy_bridge_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/legacy_bridge_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/legacy_bridge_test.cpp.o.d"
  "/root/repo/tests/misc_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/misc_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/misc_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/overhead_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/overhead_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/overhead_test.cpp.o.d"
  "/root/repo/tests/pathlet_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/pathlet_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/pathlet_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/rbgp_lisp_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/rbgp_lisp_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/rbgp_lisp_test.cpp.o.d"
  "/root/repo/tests/rich_internet_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/rich_internet_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/rich_internet_test.cpp.o.d"
  "/root/repo/tests/scenario_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/scenario_test.cpp.o.d"
  "/root/repo/tests/scion_miro_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/scion_miro_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/scion_miro_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/simnet_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/simnet_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/simnet_test.cpp.o.d"
  "/root/repo/tests/taxonomy_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/taxonomy_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/taxonomy_test.cpp.o.d"
  "/root/repo/tests/topology_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/topology_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/topology_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/wiser_test.cpp" "tests/CMakeFiles/dbgp_tests.dir/wiser_test.cpp.o" "gcc" "tests/CMakeFiles/dbgp_tests.dir/wiser_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/dbgp_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dbgp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/dbgp_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/dbgp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ia/CMakeFiles/dbgp_ia.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/dbgp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dbgp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dbgp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/overhead/CMakeFiles/dbgp_overhead.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
