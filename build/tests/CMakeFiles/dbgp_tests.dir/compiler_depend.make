# Empty compiler generated dependencies file for dbgp_tests.
# This may be replaced when dependencies are built.
