
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/dbgp_run.cpp" "tools/CMakeFiles/dbgp_run.dir/dbgp_run.cpp.o" "gcc" "tools/CMakeFiles/dbgp_run.dir/dbgp_run.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/dbgp_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/dbgp_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/dbgp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ia/CMakeFiles/dbgp_ia.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/dbgp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dbgp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
