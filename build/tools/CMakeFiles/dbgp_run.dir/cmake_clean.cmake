file(REMOVE_RECURSE
  "CMakeFiles/dbgp_run.dir/dbgp_run.cpp.o"
  "CMakeFiles/dbgp_run.dir/dbgp_run.cpp.o.d"
  "dbgp_run"
  "dbgp_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgp_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
