# Empty compiler generated dependencies file for dbgp_run.
# This may be replaced when dependencies are built.
