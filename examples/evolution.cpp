// An evolution timeline: the Internet-wide story of Section 2, animated.
//
// A 30-AS hierarchy starts as pure BGP. Waves of ASes then deploy Wiser.
// After every wave we re-run route selection and report (a) how many
// upgraded ASes can actually see path costs for their selected routes and
// (b) the average cost of the paths chosen — the benefit adopters get at
// each adoption level, with D-BGP's pass-through doing the bootstrapping.
#include <cstdio>
#include <map>

#include "protocols/bgp_module.h"
#include "protocols/wiser.h"
#include "simnet/network.h"
#include "topology/hierarchy.h"
#include "util/rng.h"

using namespace dbgp;

namespace {

simnet::DbgpNetwork* g_net = nullptr;

core::DbgpSpeaker& make_as(simnet::DbgpNetwork& net, bgp::AsNumber asn, bool upgraded,
                           std::uint64_t cost) {
  core::DbgpConfig config;
  config.asn = asn;
  config.next_hop = net::Ipv4Address(asn);
  if (upgraded) {
    config.island = ia::IslandId::from_as(asn);
    config.island_protocol = ia::kProtoWiser;
    config.active_protocol = ia::kProtoWiser;
  }
  auto& speaker = net.add_as(config);
  if (upgraded) {
    speaker.add_module(std::make_unique<protocols::WiserModule>(
        protocols::WiserModule::Config{ia::IslandId::from_as(asn), cost,
                                       net::Ipv4Address(asn)},
        nullptr));
  }
  speaker.add_module(std::make_unique<protocols::BgpModule>());
  return speaker;
}

}  // namespace

int main() {
  util::Rng rng(2017);
  topology::HierarchyConfig topo_config;
  topo_config.tier1 = 3;
  topo_config.transits = 7;
  topo_config.stubs = 20;
  const auto hierarchy = topology::generate_hierarchy(topo_config, rng);
  const std::size_t n = hierarchy.graph.size();

  // Each AS gets a fixed internal cost; upgrade order is a fixed shuffle.
  std::vector<std::uint64_t> costs(n);
  for (auto& c : costs) c = rng.next_below(90) + 10;
  std::vector<std::size_t> upgrade_order(n);
  for (std::size_t i = 0; i < n; ++i) upgrade_order[i] = i;
  rng.shuffle(upgrade_order);

  const auto prefix = *net::Prefix::parse("198.51.100.0/24");
  const topology::NodeId dest_node = static_cast<topology::NodeId>(n - 1);

  std::printf("Evolution timeline: %zu ASes, Wiser deployed in waves of 20%%\n", n);
  std::printf("(destination prefix %s hosted by AS %u)\n\n", prefix.to_string().c_str(),
              dest_node + 1);
  std::printf("%9s | %9s | %16s | %14s\n", "adoption", "upgraded", "see path costs",
              "avg cost seen");
  std::printf("----------+-----------+------------------+---------------\n");

  for (int wave = 0; wave <= 5; ++wave) {
    const std::size_t upgraded_count = n * wave / 5;
    std::vector<bool> upgraded(n, false);
    for (std::size_t i = 0; i < upgraded_count; ++i) upgraded[upgrade_order[i]] = true;

    // Rebuild the network at this adoption level (a fresh control plane —
    // real deployments converge in place; rebuilding keeps runs independent
    // and deterministic).
    simnet::DbgpNetwork net;
    g_net = &net;
    for (std::size_t u = 0; u < n; ++u) {
      make_as(net, static_cast<bgp::AsNumber>(u + 1), upgraded[u], costs[u]);
    }
    for (topology::NodeId u = 0; u < n; ++u) {
      for (const auto& edge : hierarchy.graph.neighbors(u)) {
        if (edge.neighbor > u) net.add_link(u + 1, edge.neighbor + 1);
      }
    }
    net.originate(dest_node + 1, prefix);
    net.run_to_convergence();

    std::size_t can_see = 0;
    std::uint64_t cost_sum = 0;
    std::size_t with_route = 0;
    for (std::size_t u = 0; u < n; ++u) {
      if (!upgraded[u] || u == dest_node) continue;
      const auto* best = net.speaker(static_cast<bgp::AsNumber>(u + 1)).best(prefix);
      if (best == nullptr) continue;
      ++with_route;
      const std::uint64_t cost = protocols::WiserModule::path_cost(*best);
      if (cost > 0) {
        ++can_see;
        cost_sum += cost;
      }
    }
    std::printf("%8d%% | %9zu | %10zu of %3zu | %14.1f\n", wave * 20, upgraded_count,
                can_see, with_route,
                can_see > 0 ? static_cast<double>(cost_sum) / static_cast<double>(can_see)
                            : 0.0);
  }

  std::printf("\nEvery upgraded AS whose selected path crosses at least one other\n");
  std::printf("adopter sees costs immediately — no contiguity required. That is the\n");
  std::printf("incremental-benefit acceleration of Figure 9/10, in miniature.\n");
  return 0;
}
