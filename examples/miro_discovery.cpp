// Figure 2 / Section 3.4: off-path discovery of a custom protocol (MIRO).
//
// Island M sells alternate paths. Under plain BGP, a remote transit island
// T has no way to learn the service exists. Under D-BGP, M attaches a
// service-portal island descriptor to its own prefix advertisements; the
// descriptor crosses the gulf via pass-through, T discovers the portal,
// negotiates a path purchase out-of-band, and tunnels traffic over it.
#include <cstdio>

#include "protocols/bgp_module.h"
#include "protocols/miro.h"
#include "simnet/dataplane.h"
#include "simnet/network.h"

using namespace dbgp;

int main() {
  core::LookupService lookup;  // plays every out-of-band portal
  simnet::DbgpNetwork net(&lookup);
  const auto island_m = ia::IslandId::assigned(0xE1);
  const auto miro_prefix = *net::Prefix::parse("173.82.2.0/24");
  const auto dest = *net::Prefix::parse("131.2.0.0/24");

  protocols::MiroService service(&lookup, island_m, net::Ipv4Address(173, 82, 2, 0),
                                 net::Ipv4Address(173, 82, 2, 99));

  // M = AS 30 (sells MIRO), gulf = AS 20, T = AS 10 (wants a better path).
  core::DbgpConfig m_config;
  m_config.asn = 30;
  m_config.next_hop = net::Ipv4Address(30);
  m_config.island = island_m;
  m_config.island_protocol = ia::kProtoMiro;
  auto& m_speaker = net.add_as(m_config);
  m_speaker.add_module(std::make_unique<protocols::BgpModule>());
  m_speaker.export_filters().add(
      "miro-portal", [&service](ia::IntegratedAdvertisement& ia, const core::FilterContext&) {
        service.attach_descriptor(ia);
        return true;
      });
  for (bgp::AsNumber asn : {20u, 10u}) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    net.add_as(config).add_module(std::make_unique<protocols::BgpModule>());
  }
  net.add_link(30, 20);
  net.add_link(20, 10);
  net.originate(30, miro_prefix);
  net.run_to_convergence();

  // M publishes two purchasable alternate paths toward the destination.
  protocols::MiroOffer cheap;
  cheap.offer_id = 1;
  cheap.path.prepend_as(32);
  cheap.path.prepend_as(30);
  cheap.price = 100;
  protocols::MiroOffer premium;
  premium.offer_id = 2;
  premium.path.prepend_as(31);
  premium.path.prepend_as(30);
  premium.price = 400;
  service.publish_offers(dest, {cheap, premium});

  // T discovers the portal from the IA that crossed the gulf.
  const auto* at_t = net.speaker(10).best(miro_prefix);
  if (at_t == nullptr) {
    std::printf("T never received M's advertisement\n");
    return 1;
  }
  const auto found = protocols::MiroClient::discover(at_t->ia);
  if (found.empty()) {
    std::printf("T could not discover the MIRO service — Figure 2's failure mode\n");
    return 1;
  }
  std::printf("T discovered a MIRO service: island %s, portal %s\n",
              found[0].island.to_string().c_str(), found[0].portal_addr.to_string().c_str());

  protocols::MiroClient client(&lookup);
  const auto offers = client.fetch_offers(found[0].island, dest);
  std::printf("offers toward %s:\n", dest.to_string().c_str());
  for (const auto& offer : offers) {
    std::printf("  #%u: path [%s], price %llu\n", offer.offer_id,
                offer.path.to_string().c_str(),
                static_cast<unsigned long long>(offer.price));
  }

  const auto grant = service.handle_purchase(dest, 2, 400);
  if (!grant) {
    std::printf("purchase failed\n");
    return 1;
  }
  std::printf("T purchased offer #2; tunnel endpoint %s (island revenue: %llu)\n",
              grant->tunnel_endpoint.to_string().c_str(),
              static_cast<unsigned long long>(service.revenue()));

  // T tunnels traffic to the endpoint; M forwards over the sold path.
  simnet::DataPlane dp;
  dp.set_next_hop(10, miro_prefix, 20);
  dp.set_next_hop(20, miro_prefix, 30);
  dp.set_address_owner(grant->tunnel_endpoint, 30);
  dp.set_next_hop(30, dest, 31);
  dp.set_local_delivery(31, dest);
  dp.add_link(30, 31);
  simnet::Packet packet;
  packet.stack.push_back(simnet::Header::ipv4(net::Ipv4Address(131, 2, 0, 1)));
  packet.stack.push_back(simnet::Header::tunnel(grant->tunnel_endpoint));
  const auto trace = dp.forward(10, packet);
  std::printf("tunneled packet traversed [");
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    std::printf("%s%u", i ? " " : "", trace.hops[i]);
  }
  std::printf("] delivered=%s\n", trace.delivered ? "yes" : trace.drop_reason.c_str());
  return trace.delivered ? 0 : 1;
}
