// Figure 8 / Section 6.1: deploying Pathlet Routing (a replacement
// protocol) across a BGP gulf.
//
// Island A holds four one-hop pathlets toward the destination; border AS A2
// composes two of them into a two-hop pathlet, translates everything into
// an Integrated Advertisement, and sends it across the gulf. Island B's
// ingress translates the IA back into pathlet advertisements: the source S
// ends up with all five pathlets, exactly as the paper's experiment
// verified.
#include <cstdio>

#include "protocols/bgp_module.h"
#include "protocols/pathlet.h"
#include "simnet/dataplane.h"
#include "simnet/network.h"

using namespace dbgp;

int main() {
  simnet::DbgpNetwork net;
  const auto island_a = ia::IslandId::assigned(0xA);
  const auto island_b = ia::IslandId::assigned(0xB);
  const auto dest = *net::Prefix::parse("131.1.4.0/24");

  protocols::PathletStore store_a2, store_s;
  auto add_pathlet_as = [&](bgp::AsNumber asn, ia::IslandId island,
                            protocols::PathletStore* store) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    config.island = island;
    config.island_protocol = ia::kProtoPathlets;
    config.active_protocol = ia::kProtoPathlets;
    auto& speaker = net.add_as(config);
    speaker.add_module(std::make_unique<protocols::PathletModule>(
        protocols::PathletModule::Config{island}, store));
    speaker.add_module(std::make_unique<protocols::BgpModule>());
  };

  add_pathlet_as(1, island_a, nullptr);   // A1 (hosts the destination)
  add_pathlet_as(2, island_a, &store_a2); // A2 (composing border AS)
  core::DbgpConfig gulf;
  gulf.asn = 7;
  gulf.next_hop = net::Ipv4Address(7);
  net.add_as(gulf).add_module(std::make_unique<protocols::BgpModule>());  // the gulf
  add_pathlet_as(9, island_b, &store_s);  // S

  // The four one-hop pathlets disseminated within island A. Vnode IDs play
  // the role of the paper's br1/br2... router names.
  store_a2.add_local({1, {101, 102}, std::nullopt});
  store_a2.add_local({2, {102, 104}, dest});
  store_a2.add_local({3, {101, 103}, std::nullopt});
  store_a2.add_local({4, {103, 104}, dest});
  // A2 composes pathlets 1 and 2 into two-hop pathlet 50.
  store_a2.compose(1, 2, 50);

  net.add_link(1, 2, /*same_island=*/true);
  net.add_link(2, 7);
  net.add_link(7, 9);
  net.originate(1, dest);
  net.run_to_convergence();

  const auto* best = net.speaker(9).best(dest);
  if (best == nullptr) {
    std::printf("S has no route\n");
    return 1;
  }
  std::printf("IA received by S:\n\n%s\n", best->ia.dump().c_str());
  std::printf("pathlets S learned (%zu):\n", store_s.all().size());
  for (const auto& p : store_s.all()) {
    std::printf("  fid %u: vias [", p.fid);
    for (std::size_t i = 0; i < p.vias.size(); ++i) {
      std::printf("%s%u", i ? " " : "", p.vias[i]);
    }
    std::printf("]%s\n", p.delivers ? (" -> " + p.delivers->to_string()).c_str() : "");
  }

  // S picks the composed two-hop pathlet and forwards over it: at the AS
  // level the traffic crosses the gulf inside an IPv4 header and uses
  // pathlet forwarding inside island A (multi-network-protocol headers).
  simnet::DataPlane dp;
  dp.set_next_hop(9, dest, 7);
  dp.set_next_hop(7, dest, 2);
  dp.set_local_delivery(2, dest);  // island A border: pathlet takes over
  dp.add_link(2, 1);
  simnet::Packet packet;
  packet.stack.push_back(simnet::Header::source_route({1}));  // pathlet leg
  packet.stack.push_back(simnet::Header::ipv4(net::Ipv4Address(131 << 24 | 1 << 16 | 4 << 8 | 1)));
  const auto trace = dp.forward(9, packet);
  std::printf("\ndata plane: packet from S traversed ASes [");
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    std::printf("%s%u", i ? " " : "", trace.hops[i]);
  }
  std::printf("] delivered=%s\n", trace.delivered ? "yes" : trace.drop_reason.c_str());

  return store_s.all().size() == 5 && trace.delivered ? 0 : 1;
}
