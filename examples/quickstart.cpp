// Quickstart: three ASes in a line exchanging Integrated Advertisements.
//
//   AS 100 (originates 198.51.100.0/24) -- AS 200 (gulf) -- AS 300
//
// AS 100 attaches control information for a protocol AS 200 has never heard
// of; pass-through still delivers it to AS 300 — the paper's core
// evolvability feature in its smallest form.
#include <cstdio>

#include "protocols/bgp_module.h"
#include "simnet/network.h"

using namespace dbgp;

int main() {
  simnet::DbgpNetwork net;

  // Every AS runs a D-BGP speaker with a BGP decision module.
  for (bgp::AsNumber asn : {100u, 200u, 300u}) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    net.add_as(config).add_module(std::make_unique<protocols::BgpModule>());
  }

  // AS 100 deploys a brand-new protocol (id 4242): stamp its control
  // information on every advertisement it exports.
  const ia::ProtocolId my_protocol = 4242;
  net.speaker(100).export_filters().add(
      "my-protocol", [my_protocol](ia::IntegratedAdvertisement& ia,
                                   const core::FilterContext&) {
        ia.set_path_descriptor(my_protocol, 1, {'h', 'i', '!'});
        return true;
      });

  net.add_link(100, 200);
  net.add_link(200, 300);

  const auto prefix = *net::Prefix::parse("198.51.100.0/24");
  net.originate(100, prefix);
  net.run_to_convergence();

  const auto* best = net.speaker(300).best(prefix);
  if (best == nullptr) {
    std::printf("AS 300 has no route — something is wrong\n");
    return 1;
  }
  std::printf("AS 300 selected a route for %s:\n\n%s\n", prefix.to_string().c_str(),
              best->ia.dump().c_str());

  const auto* descriptor = best->ia.find_path_descriptor(my_protocol, 1);
  if (descriptor != nullptr) {
    std::printf("protocol %u's control info crossed AS 200 untouched: \"%.*s\"\n",
                my_protocol, static_cast<int>(descriptor->value.size()),
                reinterpret_cast<const char*>(descriptor->value.data()));
    std::printf("(AS 200 never heard of protocol %u — that is the point.)\n", my_protocol);
    return 0;
  }
  std::printf("descriptor lost in transit — pass-through failed\n");
  return 1;
}
