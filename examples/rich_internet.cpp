// Figures 6 & 7: the rich, evolvable Internet D-BGP enables.
//
// Chain (destination -> source):
//   island D (Pathlet Routing, {21, 22}) -> AS 14 (BGP gulf) ->
//   island F (SCION, {41}) -> island 11 (Wiser // MIRO) ->
//   island G (Pathlet Routing, {61, 62}) -> island 8 (BGP)
//
// Prints the Integrated Advertisement island 8 receives for 131.4.0.0/24 —
// the Figure-7 IA: one advertisement simultaneously carrying BGP, Wiser,
// MIRO, SCION, and Pathlet Routing control information.
#include <cstdio>

#include "protocols/bgp_module.h"
#include "protocols/miro.h"
#include "protocols/pathlet.h"
#include "protocols/scion.h"
#include "protocols/wiser.h"
#include "simnet/network.h"

using namespace dbgp;

int main() {
  core::LookupService lookup;
  simnet::DbgpNetwork net(&lookup);
  const auto island_d = ia::IslandId::assigned(0xD0);
  const auto island_f = ia::IslandId::assigned(0xF0);
  const auto island_g = ia::IslandId::assigned(0x60);
  const auto island_11 = ia::IslandId::from_as(11);
  const auto dest = *net::Prefix::parse("131.4.0.0/24");

  auto base = [](bgp::AsNumber asn) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    return config;
  };

  // Island D: Pathlet Routing ({21, 22}, abstracted at egress).
  protocols::PathletStore store_d;
  store_d.add_local({1, {201, 202}, std::nullopt});
  store_d.add_local({5, {202, 204}, std::nullopt});
  store_d.add_local({9, {204}, dest});
  for (bgp::AsNumber asn : {21u, 22u}) {
    auto config = base(asn);
    config.island = island_d;
    config.island_protocol = ia::kProtoPathlets;
    config.abstract_island = true;
    config.island_members = {21, 22};
    config.active_protocol = ia::kProtoPathlets;
    auto& speaker = net.add_as(config);
    speaker.add_module(std::make_unique<protocols::PathletModule>(
        protocols::PathletModule::Config{island_d}, &store_d));
    speaker.add_module(std::make_unique<protocols::BgpModule>());
  }

  // AS 14: a plain BGP gulf AS.
  net.add_as(base(14)).add_module(std::make_unique<protocols::BgpModule>());

  // Island F: SCION with two within-island paths (fr-granularity).
  {
    auto config = base(41);
    config.island = island_f;
    config.island_protocol = ia::kProtoScion;
    config.abstract_island = true;
    config.island_members = {41};
    config.active_protocol = ia::kProtoScion;
    auto& speaker = net.add_as(config);
    speaker.add_module(std::make_unique<protocols::ScionModule>(protocols::ScionModule::Config{
        island_f, {{{401, 409, 411, 407}}, {{401, 402, 403, 407}}}}));
    speaker.add_module(std::make_unique<protocols::BgpModule>());
  }

  // Island 11: Wiser (cost 75) in parallel with a MIRO service.
  protocols::MiroService miro(&lookup, island_11, net::Ipv4Address(154, 63, 23, 2),
                              net::Ipv4Address(154, 63, 23, 99));
  {
    auto config = base(11);
    config.island = island_11;
    config.island_protocol = ia::kProtoWiser;
    config.active_protocol = ia::kProtoWiser;
    auto& speaker = net.add_as(config);
    speaker.add_module(std::make_unique<protocols::WiserModule>(
        protocols::WiserModule::Config{island_11, 75, net::Ipv4Address(154, 63, 23, 1)},
        nullptr));
    speaker.add_module(std::make_unique<protocols::BgpModule>());
    speaker.export_filters().add(
        "miro-portal", [&miro](ia::IntegratedAdvertisement& ia, const core::FilterContext&) {
          miro.attach_descriptor(ia);
          return true;
        });
  }

  // Island G: Pathlet Routing ({61, 62}), with the inter-island pathlet
  // (gr10 -> dr1) of Figure 6.
  protocols::PathletStore store_g;
  store_g.add_local({3, {601, 604}, std::nullopt});
  store_g.add_local({7, {603, 610}, std::nullopt});
  store_g.add_local({8, {610, 201}, std::nullopt});
  for (bgp::AsNumber asn : {61u, 62u}) {
    auto config = base(asn);
    config.island = island_g;
    config.island_protocol = ia::kProtoPathlets;
    config.abstract_island = true;
    config.island_members = {61, 62};
    config.active_protocol = ia::kProtoPathlets;
    auto& speaker = net.add_as(config);
    speaker.add_module(std::make_unique<protocols::PathletModule>(
        protocols::PathletModule::Config{island_g}, &store_g));
    speaker.add_module(std::make_unique<protocols::BgpModule>());
  }

  // Island 8: a plain BGP island — yet it can see everything.
  net.add_as(base(8)).add_module(std::make_unique<protocols::BgpModule>());

  net.add_link(21, 22, /*same_island=*/true);
  net.add_link(22, 14);
  net.add_link(14, 41);
  net.add_link(41, 11);
  net.add_link(11, 61);
  net.add_link(61, 62, /*same_island=*/true);
  net.add_link(62, 8);

  net.originate(21, dest);
  net.run_to_convergence();

  const auto* best = net.speaker(8).best(dest);
  if (best == nullptr) {
    std::printf("island 8 has no route to %s\n", dest.to_string().c_str());
    return 1;
  }

  std::printf("The Figure-7 IA, as received by island 8 for %s:\n\n%s\n",
              dest.to_string().c_str(), best->ia.dump().c_str());

  std::printf("protocols on this path:");
  const auto registry = ia::default_registry();
  for (ia::ProtocolId protocol : best->ia.protocols_on_path()) {
    std::printf(" %s", registry.name(protocol).c_str());
  }
  std::printf("\nencoded IA size: %zu bytes (with sharing), %zu bytes (compressed)\n",
              ia::encode_ia(best->ia, {.compress = false, .share_blobs = true}).size(),
              ia::encode_ia(best->ia, {.compress = true, .share_blobs = true}).size());
  return 0;
}
