// Figure 1 / Section 3.4: deploying Wiser (a critical fix) across a BGP
// gulf.
//
// A Wiser island containing the destination D exposes two egress paths: a
// short one with a high path cost (via E1) and a longer, cheap one (via
// E2). The source S is a Wiser island on the far side of a BGP gulf.
//
//   D(1) -- E1(2, cost 100) -- 4 ------\
//   D(1) -- E2(3, cost   5) -- 5 -- 6 --+-- S(9)
//
// Run with --legacy to simulate plain-BGP gulf ASes that drop Wiser's
// control information: S then picks the expensive short path — exactly the
// failure Figure 1 illustrates.
#include <cstdio>
#include <string>

#include "protocols/bgp_module.h"
#include "protocols/wiser.h"
#include "simnet/network.h"
#include "util/flags.h"

using namespace dbgp;

int main(int argc, char** argv) {
  util::Flags flags;
  std::string error;
  if (!flags.parse(argc, argv, error)) {
    std::fprintf(stderr, "bad flags: %s\n", error.c_str());
    return 1;
  }
  const bool legacy = flags.get_bool("legacy", false);

  core::LookupService lookup;
  simnet::DbgpNetwork net(&lookup);
  const auto island_a = ia::IslandId::assigned(0xA);
  const auto island_b = ia::IslandId::assigned(0xB);
  const auto dest = *net::Prefix::parse("128.6.0.0/16");

  auto add_wiser = [&](bgp::AsNumber asn, ia::IslandId island, std::uint64_t cost) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    config.island = island;
    config.island_protocol = ia::kProtoWiser;
    config.active_protocol = ia::kProtoWiser;
    auto& speaker = net.add_as(config);
    speaker.add_module(std::make_unique<protocols::WiserModule>(
        protocols::WiserModule::Config{island, cost, net::Ipv4Address(asn)}, nullptr));
    speaker.add_module(std::make_unique<protocols::BgpModule>());
  };
  auto add_gulf = [&](bgp::AsNumber asn) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    auto& speaker = net.add_as(config);
    speaker.add_module(std::make_unique<protocols::BgpModule>());
    if (legacy) {
      speaker.import_filters().add("legacy-strip",
                                   core::strip_protocol_filter(ia::kProtoWiser));
    }
  };

  add_wiser(1, island_a, 1);    // D
  add_wiser(2, island_a, 100);  // E1
  add_wiser(3, island_a, 5);    // E2
  add_gulf(4);
  add_gulf(5);
  add_gulf(6);
  add_wiser(9, island_b, 1);  // S

  net.add_link(1, 2, /*same_island=*/true);
  net.add_link(1, 3, /*same_island=*/true);
  net.add_link(2, 4);
  net.add_link(4, 9);
  net.add_link(3, 5);
  net.add_link(5, 6);
  net.add_link(6, 9);

  net.originate(1, dest);
  net.run_to_convergence();

  std::printf("gulf mode: %s\n\n", legacy ? "legacy BGP (drops Wiser info)"
                                          : "D-BGP (passes Wiser info through)");

  const auto* best = net.speaker(9).best(dest);
  if (best == nullptr) {
    std::printf("S has no route to %s\n", dest.to_string().c_str());
    return 1;
  }
  std::printf("S's selected IA for %s:\n\n%s\n", dest.to_string().c_str(),
              best->ia.dump().c_str());

  const std::uint64_t cost = protocols::WiserModule::path_cost(*best);
  const bool via_cheap_egress = best->ia.path_vector.contains_as(3);
  std::printf("path: %s\n", best->ia.path_vector.to_string().c_str());
  std::printf("Wiser cost visible at S: %llu\n", static_cast<unsigned long long>(cost));
  std::printf("S chose the %s path (%s)\n",
              via_cheap_egress ? "LOW-cost longer" : "HIGH-cost shorter",
              via_cheap_egress
                  ? "D-BGP's pass-through made the costs visible across the gulf"
                  : "without cost information S falls back to shortest-path — "
                    "Figure 1's failure mode");
  return 0;
}
