#include "bgp/attr_interner.h"

#include "telemetry/metrics.h"

namespace dbgp::bgp {

namespace {

// Registry mirrors, aggregated across every interner in the process (each
// speaker owns one; the per-interner stats struct stays authoritative).
struct InternerMetrics {
  telemetry::Counter* hits;
  telemetry::Counter* misses;
  telemetry::Gauge* live;

  static InternerMetrics& get() {
    static InternerMetrics m = [] {
      auto& reg = telemetry::MetricsRegistry::global();
      return InternerMetrics{&reg.counter("dbgp.rib.interner.hits"),
                             &reg.counter("dbgp.rib.interner.misses"),
                             &reg.gauge("dbgp.rib.interner.live")};
    }();
    return m;
  }
};

inline void hash_combine(std::size_t& seed, std::uint64_t v) noexcept {
  // SplitMix64 finalizer, folded into the running seed.
  std::uint64_t z = v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  seed ^= static_cast<std::size_t>(z ^ (z >> 31));
}

}  // namespace

std::size_t hash_attrs(const PathAttributes& attrs) noexcept {
  std::size_t seed = 0x8f3a91b7u;
  hash_combine(seed, static_cast<std::uint64_t>(attrs.origin));
  for (const AsPathSegment& seg : attrs.as_path.segments()) {
    hash_combine(seed, static_cast<std::uint64_t>(seg.type));
    hash_combine(seed, seg.asns.size());
    for (AsNumber asn : seg.asns) hash_combine(seed, asn);
  }
  hash_combine(seed, attrs.next_hop.value());
  hash_combine(seed, attrs.med ? (1ULL << 32) | *attrs.med : 0);
  hash_combine(seed, attrs.local_pref ? (1ULL << 32) | *attrs.local_pref : 0);
  hash_combine(seed, attrs.atomic_aggregate ? 1 : 0);
  if (attrs.aggregator) {
    hash_combine(seed, attrs.aggregator->first);
    hash_combine(seed, attrs.aggregator->second.value());
  }
  hash_combine(seed, attrs.communities.size());
  for (std::uint32_t c : attrs.communities) hash_combine(seed, c);
  hash_combine(seed, attrs.unknown.size());
  for (const UnknownAttribute& u : attrs.unknown) {
    hash_combine(seed, (static_cast<std::uint64_t>(u.flags) << 8) | u.type);
    hash_combine(seed, u.value.size());
    for (std::uint8_t b : u.value) hash_combine(seed, b);
  }
  return seed;
}

std::size_t deep_size(const PathAttributes& attrs) noexcept {
  std::size_t bytes = sizeof(PathAttributes);
  for (const AsPathSegment& seg : attrs.as_path.segments()) {
    bytes += sizeof(AsPathSegment) + seg.asns.size() * sizeof(AsNumber);
  }
  bytes += attrs.communities.size() * sizeof(std::uint32_t);
  for (const UnknownAttribute& u : attrs.unknown) {
    bytes += sizeof(UnknownAttribute) + u.value.size();
  }
  return bytes;
}

AttrHandle AttrInterner::intern(PathAttributes&& attrs) {
  const std::size_t h = hash_attrs(attrs);
  auto [lo, hi] = entries_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (it->second->attrs == attrs) {
      ++stats_.hits;
      InternerMetrics::get().hits->inc();
      ++it->second->refs;
      return AttrHandle(it->second.get());
    }
  }
  auto entry = std::make_unique<detail::AttrEntry>();
  entry->attrs = std::move(attrs);
  entry->hash = h;
  entry->deep_bytes = deep_size(entry->attrs);
  entry->refs = 1;
  entry->owner = this;
  ++stats_.misses;
  ++stats_.live;
  stats_.bytes += entry->deep_bytes;
  auto& metrics = InternerMetrics::get();
  metrics.misses->inc();
  metrics.live->add(1);
  detail::AttrEntry* raw = entry.get();
  entries_.emplace(h, std::move(entry));
  return AttrHandle(raw);
}

void AttrInterner::erase_entry(detail::AttrEntry* entry) noexcept {
  --stats_.live;
  stats_.bytes -= entry->deep_bytes;
  InternerMetrics::get().live->add(-1);
  auto [lo, hi] = entries_.equal_range(entry->hash);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.get() == entry) {
      entries_.erase(it);
      return;
    }
  }
}

}  // namespace dbgp::bgp
