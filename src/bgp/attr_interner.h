// Hash-consed path-attribute interning (DESIGN.md §14).
//
// Real daemons survive full-table scale by canonicalizing: a million routes
// share a few thousand distinct attribute sets, so the RIBs store refcounted
// handles to canonical PathAttributes objects instead of per-route copies.
// Within one interner, content equality IS handle identity — comparing two
// AttrHandles is a single pointer compare, never an attribute walk — which
// is what makes LocRib change detection and Adj-RIB-Out delta suppression
// O(1) per route.
//
// Construction is funneled through AttrBuilder: call sites stage a mutable
// PathAttributes, then finalize with std::move(builder).intern(interner).
// After that point nothing can mutate the canonical object in place; an
// "edited" attribute set is a new builder and a new (or rediscovered)
// canonical entry.
//
// One interner belongs to one speaker (shard-local, like its RibArena) and
// is deliberately not thread-safe: every RIB mutation on a speaker runs
// sequentially (the thread pool only runs the pure decode/plan stages).
// Handles must not outlive their interner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "bgp/path_attributes.h"

namespace dbgp::bgp {

class AttrInterner;

// Content hash over every field that participates in PathAttributes
// equality. Stable within a process run only (not a wire artifact).
std::size_t hash_attrs(const PathAttributes& attrs) noexcept;

// Deep footprint of one PathAttributes value: the struct itself plus every
// heap block it owns (AS-path segments, communities, unknown payloads).
// This is what a non-interned RIB would pay per route; the interner's bytes
// accounting and bench_memory's naive-layout comparison both build on it.
std::size_t deep_size(const PathAttributes& attrs) noexcept;

namespace detail {
// One canonical attribute set. Stable address for the lifetime of its
// references; owned by the interner's table.
struct AttrEntry {
  PathAttributes attrs;
  std::size_t hash = 0;
  std::size_t deep_bytes = 0;
  std::uint32_t refs = 0;
  AttrInterner* owner = nullptr;
};
}  // namespace detail

// Refcounted handle to one canonical attribute set. Copy = refcount bump;
// the last handle to drop erases the entry from its interner.
class AttrHandle {
 public:
  AttrHandle() noexcept = default;
  AttrHandle(const AttrHandle& other) noexcept : entry_(other.entry_) {
    if (entry_ != nullptr) ++entry_->refs;
  }
  AttrHandle(AttrHandle&& other) noexcept : entry_(other.entry_) { other.entry_ = nullptr; }
  AttrHandle& operator=(const AttrHandle& other) noexcept {
    if (this != &other) {
      AttrHandle tmp(other);
      std::swap(entry_, tmp.entry_);
    }
    return *this;
  }
  AttrHandle& operator=(AttrHandle&& other) noexcept {
    if (this != &other) {
      release();
      entry_ = other.entry_;
      other.entry_ = nullptr;
    }
    return *this;
  }
  ~AttrHandle() { release(); }

  explicit operator bool() const noexcept { return entry_ != nullptr; }
  const PathAttributes& operator*() const noexcept { return entry_->attrs; }
  const PathAttributes* operator->() const noexcept { return &entry_->attrs; }
  const PathAttributes* get() const noexcept {
    return entry_ != nullptr ? &entry_->attrs : nullptr;
  }

  // Identity is content equality within one interner.
  friend bool operator==(const AttrHandle& a, const AttrHandle& b) noexcept {
    return a.entry_ == b.entry_;
  }

 private:
  friend class AttrInterner;
  explicit AttrHandle(detail::AttrEntry* entry) noexcept : entry_(entry) {}  // adopts one ref
  inline void release() noexcept;  // defined after AttrInterner

  detail::AttrEntry* entry_ = nullptr;
};

struct AttrInternerStats {
  std::uint64_t hits = 0;    // intern() found an existing canonical entry
  std::uint64_t misses = 0;  // intern() created a new canonical entry
  std::size_t live = 0;      // canonical entries currently referenced
  std::size_t bytes = 0;     // deep bytes across live canonical entries
};

class AttrInterner {
 public:
  AttrInterner() = default;
  // Entries back-reference the interner; pin its address.
  AttrInterner(const AttrInterner&) = delete;
  AttrInterner& operator=(const AttrInterner&) = delete;

  const AttrInternerStats& stats() const noexcept { return stats_; }
  std::size_t live() const noexcept { return stats_.live; }
  std::size_t bytes() const noexcept { return stats_.bytes; }
  double hit_rate() const noexcept {
    const std::uint64_t total = stats_.hits + stats_.misses;
    return total == 0 ? 0.0 : static_cast<double>(stats_.hits) / static_cast<double>(total);
  }

 private:
  friend class AttrBuilder;
  friend class AttrHandle;

  // Only AttrBuilder::intern may mint handles (the single-construction-path
  // invariant); only AttrHandle::release may erase entries.
  AttrHandle intern(PathAttributes&& attrs);
  void erase_entry(detail::AttrEntry* entry) noexcept;

  // hash -> canonical entries with that hash (collisions chain in the
  // multimap). unique_ptr keeps entry addresses stable across rehashes.
  std::unordered_multimap<std::size_t, std::unique_ptr<detail::AttrEntry>> entries_;
  AttrInternerStats stats_;
};

inline void AttrHandle::release() noexcept {
  if (entry_ != nullptr && --entry_->refs == 0) entry_->owner->erase_entry(entry_);
  entry_ = nullptr;
}

// The single construction path for canonical attribute sets. Stage freely
// through attrs(), then finalize exactly once:
//
//   AttrBuilder b(*route.attrs);      // seed from a canonical set
//   b.attrs().as_path.prepend(asn);   // stage edits on the private copy
//   AttrHandle h = std::move(b).intern(interner);
class AttrBuilder {
 public:
  AttrBuilder() = default;
  explicit AttrBuilder(PathAttributes seed) : attrs_(std::move(seed)) {}
  explicit AttrBuilder(const AttrHandle& seed) : attrs_(seed ? *seed : PathAttributes{}) {}

  PathAttributes& attrs() noexcept { return attrs_; }
  const PathAttributes& attrs() const noexcept { return attrs_; }

  // Finalizes the staged set into its canonical handle. Rvalue-qualified:
  // the builder is consumed, so a staged set is interned at most once.
  AttrHandle intern(AttrInterner& interner) && { return interner.intern(std::move(attrs_)); }

 private:
  PathAttributes attrs_;
};

}  // namespace dbgp::bgp
