#include "bgp/decision.h"

namespace dbgp::bgp {

bool better_route(const Route& a, const Route& b) noexcept {
  const std::uint32_t lp_a = a.attrs->local_pref.value_or(kDefaultLocalPref);
  const std::uint32_t lp_b = b.attrs->local_pref.value_or(kDefaultLocalPref);
  if (lp_a != lp_b) return lp_a > lp_b;

  const std::size_t len_a = a.attrs->as_path.hop_count();
  const std::size_t len_b = b.attrs->as_path.hop_count();
  if (len_a != len_b) return len_a < len_b;

  if (a.attrs->origin != b.attrs->origin) {
    return static_cast<int>(a.attrs->origin) < static_cast<int>(b.attrs->origin);
  }

  // MED applies only between routes from the same neighboring AS.
  if (a.neighbor_as == b.neighbor_as && a.neighbor_as != 0) {
    const std::uint32_t med_a = a.attrs->med.value_or(0);
    const std::uint32_t med_b = b.attrs->med.value_or(0);
    if (med_a != med_b) return med_a < med_b;
  }

  if (a.from_peer != b.from_peer) return a.from_peer < b.from_peer;
  return a.sequence < b.sequence;
}

const char* to_string(SelectionStep step) noexcept {
  switch (step) {
    case SelectionStep::kLocalPref: return "local-pref";
    case SelectionStep::kPathLength: return "path-length";
    case SelectionStep::kOrigin: return "origin";
    case SelectionStep::kMed: return "med";
    case SelectionStep::kPeerId: return "peer-id";
    case SelectionStep::kArrivalOrder: return "arrival-order";
  }
  return "?";
}

SelectionStep deciding_step(const Route& a, const Route& b) noexcept {
  if (a.attrs->local_pref.value_or(kDefaultLocalPref) !=
      b.attrs->local_pref.value_or(kDefaultLocalPref)) {
    return SelectionStep::kLocalPref;
  }
  if (a.attrs->as_path.hop_count() != b.attrs->as_path.hop_count()) {
    return SelectionStep::kPathLength;
  }
  if (a.attrs->origin != b.attrs->origin) return SelectionStep::kOrigin;
  if (a.neighbor_as == b.neighbor_as && a.neighbor_as != 0 &&
      a.attrs->med.value_or(0) != b.attrs->med.value_or(0)) {
    return SelectionStep::kMed;
  }
  if (a.from_peer != b.from_peer) return SelectionStep::kPeerId;
  return SelectionStep::kArrivalOrder;
}

RouteView select_best(std::span<const Route> candidates) noexcept {
  const Route* best = nullptr;
  for (const Route& r : candidates) {
    if (best == nullptr || better_route(r, *best)) best = &r;
  }
  return RouteView{best};
}

RouteView select_best(std::span<const Route> candidates, std::vector<std::string>& outcomes) {
  const RouteView best = select_best(candidates);
  outcomes.clear();
  outcomes.reserve(candidates.size());
  for (const Route& r : candidates) {
    outcomes.push_back(&r == best.get()
                           ? std::string("selected")
                           : std::string("lost:") + to_string(deciding_step(*best, r)));
  }
  return best;
}

}  // namespace dbgp::bgp
