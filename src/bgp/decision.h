// The BGP decision process (RFC 4271 section 9.1.2.2), phase 2.
//
// Selection order, all eBGP (the simulator models one speaker per AS):
//   1. highest LOCAL_PREF (absent treated as 100, the conventional default)
//   2. shortest AS_PATH hop count (AS_SET counts as one hop)
//   3. lowest ORIGIN (IGP < EGP < INCOMPLETE)
//   4. lowest MED, compared only between routes from the same neighbor AS
//   5. lowest peer id (stands in for lowest BGP identifier / peer address)
//   6. lowest arrival sequence (deterministic final tie-break)
#pragma once

#include <vector>

#include "bgp/rib.h"

namespace dbgp::bgp {

inline constexpr std::uint32_t kDefaultLocalPref = 100;

// Returns true if `a` is preferred over `b`.
bool better_route(const Route& a, const Route& b) noexcept;

// Picks the best candidate; nullptr for an empty set.
const Route* select_best(const std::vector<const Route*>& candidates) noexcept;

}  // namespace dbgp::bgp
