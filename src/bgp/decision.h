// The BGP decision process (RFC 4271 section 9.1.2.2), phase 2.
//
// Selection order, all eBGP (the simulator models one speaker per AS):
//   1. highest LOCAL_PREF (absent treated as 100, the conventional default)
//   2. shortest AS_PATH hop count (AS_SET counts as one hop)
//   3. lowest ORIGIN (IGP < EGP < INCOMPLETE)
//   4. lowest MED, compared only between routes from the same neighbor AS
//   5. lowest peer id (stands in for lowest BGP identifier / peer address)
//   6. lowest arrival sequence (deterministic final tie-break)
#pragma once

#include <span>
#include <string>
#include <vector>

#include "bgp/rib.h"

namespace dbgp::bgp {

inline constexpr std::uint32_t kDefaultLocalPref = 100;

// Returns true if `a` is preferred over `b`.
bool better_route(const Route& a, const Route& b) noexcept;

// The ladder step that ordered two routes — provenance audits record the
// *reason* a candidate lost, not just that it lost.
enum class SelectionStep : std::uint8_t {
  kLocalPref,
  kPathLength,
  kOrigin,
  kMed,
  kPeerId,
  kArrivalOrder,
};
const char* to_string(SelectionStep step) noexcept;

// The first ladder step at which `a` and `b` differ (kArrivalOrder when the
// whole ladder ties down to the sequence number).
SelectionStep deciding_step(const Route& a, const Route& b) noexcept;

// Picks the best candidate from a borrowed view (AdjRibIn::candidates());
// a null view for an empty set. The view borrows the candidate storage, so
// it is valid exactly as long as the input span.
RouteView select_best(std::span<const Route> candidates) noexcept;

// Audited variant: fills `outcomes` (parallel to `candidates`) with
// "selected" for the winner and "lost:<step>" for everyone else.
RouteView select_best(std::span<const Route> candidates, std::vector<std::string>& outcomes);

}  // namespace dbgp::bgp
