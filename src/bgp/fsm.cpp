#include "bgp/fsm.h"

namespace dbgp::bgp {

const char* to_string(FsmState state) noexcept {
  switch (state) {
    case FsmState::kIdle: return "Idle";
    case FsmState::kConnect: return "Connect";
    case FsmState::kActive: return "Active";
    case FsmState::kOpenSent: return "OpenSent";
    case FsmState::kOpenConfirm: return "OpenConfirm";
    case FsmState::kEstablished: return "Established";
  }
  return "?";
}

SessionFsm::SessionFsm(std::uint32_t hold_time_secs) noexcept
    : configured_hold_time_(hold_time_secs), hold_time_(hold_time_secs) {}

void SessionFsm::negotiate_hold_time(std::uint32_t peer_hold_time) noexcept {
  hold_time_ = peer_hold_time < hold_time_ ? peer_hold_time : hold_time_;
}

void SessionFsm::arm_timers(double now_secs) noexcept {
  if (hold_time_ == 0) return;
  hold_deadline_ = now_secs + hold_time_;
  // RFC 4271 suggests keepalive = hold/3.
  keepalive_deadline_ = now_secs + hold_time_ / 3.0;
}

void SessionFsm::reset() noexcept {
  state_ = FsmState::kIdle;
  hold_time_ = configured_hold_time_;
  hold_deadline_ = 0.0;
  keepalive_deadline_ = 0.0;
}

FsmAction SessionFsm::handle(FsmEvent event, double now_secs) noexcept {
  switch (event) {
    case FsmEvent::kManualStart:
      if (state_ == FsmState::kIdle) {
        state_ = FsmState::kConnect;
      }
      return FsmAction::kNone;

    case FsmEvent::kManualStop: {
      const bool was_up = established();
      reset();
      return was_up ? FsmAction::kSessionDown : FsmAction::kNone;
    }

    case FsmEvent::kTcpConnected:
      if (state_ == FsmState::kConnect || state_ == FsmState::kActive) {
        state_ = FsmState::kOpenSent;
        return FsmAction::kSendOpen;
      }
      return FsmAction::kNone;

    case FsmEvent::kTcpFailed:
      if (state_ == FsmState::kConnect) {
        state_ = FsmState::kActive;  // retry path
        return FsmAction::kNone;
      }
      if (established()) {
        reset();
        return FsmAction::kSessionDown;
      }
      reset();
      return FsmAction::kNone;

    case FsmEvent::kOpenReceived:
      if (state_ == FsmState::kOpenSent) {
        state_ = FsmState::kOpenConfirm;
        arm_timers(now_secs);
        return FsmAction::kSendKeepAlive;
      }
      if (state_ == FsmState::kConnect || state_ == FsmState::kActive) {
        // Collision-simplified: treat as passive open.
        state_ = FsmState::kOpenConfirm;
        arm_timers(now_secs);
        return FsmAction::kSendOpen;  // speaker sends OPEN then KEEPALIVE
      }
      return FsmAction::kSendNotificationAndDrop;

    case FsmEvent::kKeepAliveReceived:
      if (state_ == FsmState::kOpenConfirm) {
        state_ = FsmState::kEstablished;
        arm_timers(now_secs);
        return FsmAction::kSessionUp;
      }
      if (established()) {
        if (hold_time_ != 0) hold_deadline_ = now_secs + hold_time_;
        return FsmAction::kNone;
      }
      return FsmAction::kSendNotificationAndDrop;

    case FsmEvent::kUpdateReceived:
      if (!established()) return FsmAction::kSendNotificationAndDrop;
      if (hold_time_ != 0) hold_deadline_ = now_secs + hold_time_;
      return FsmAction::kNone;

    case FsmEvent::kNotificationReceived: {
      const bool was_up = established();
      reset();
      return was_up ? FsmAction::kSessionDown : FsmAction::kNone;
    }

    case FsmEvent::kHoldTimerExpired: {
      const bool was_up = established();
      reset();
      return was_up ? FsmAction::kSessionDown : FsmAction::kSendNotificationAndDrop;
    }
  }
  return FsmAction::kNone;
}

FsmAction SessionFsm::tick(double now_secs) noexcept {
  if (hold_time_ == 0) return FsmAction::kNone;
  if ((state_ == FsmState::kOpenConfirm || established()) && now_secs >= hold_deadline_) {
    return handle(FsmEvent::kHoldTimerExpired, now_secs);
  }
  if (established() && now_secs >= keepalive_deadline_) {
    keepalive_deadline_ = now_secs + hold_time_ / 3.0;
    return FsmAction::kSendKeepAlive;
  }
  return FsmAction::kNone;
}

}  // namespace dbgp::bgp
