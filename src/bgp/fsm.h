// BGP session finite state machine (RFC 4271 section 8, simplified to the
// transport model of the discrete-event simulator: "TCP" connections succeed
// instantly when both ends have started, so Connect/Active collapse quickly).
//
// The FSM owns hold/keepalive timing; the embedding speaker supplies the
// current simulation time and polls for timer-driven actions via tick().
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace dbgp::bgp {

enum class FsmState : std::uint8_t {
  kIdle,
  kConnect,
  kActive,
  kOpenSent,
  kOpenConfirm,
  kEstablished,
};

const char* to_string(FsmState state) noexcept;

enum class FsmEvent : std::uint8_t {
  kManualStart,
  kManualStop,
  kTcpConnected,
  kTcpFailed,
  kOpenReceived,
  kKeepAliveReceived,
  kUpdateReceived,
  kNotificationReceived,
  kHoldTimerExpired,
};

// What the embedding speaker must do after feeding an event / ticking.
enum class FsmAction : std::uint8_t {
  kNone,
  kSendOpen,
  kSendKeepAlive,          // ack an OPEN or refresh the keepalive timer
  kSendNotificationAndDrop,  // protocol error: tear down
  kSessionUp,              // entered Established: send initial table
  kSessionDown,            // left Established: flush routes learned here
};

class SessionFsm {
 public:
  // hold_time of 0 disables keepalive/hold supervision (RFC 4271 allows 0).
  explicit SessionFsm(std::uint32_t hold_time_secs = 90) noexcept;

  FsmState state() const noexcept { return state_; }
  bool established() const noexcept { return state_ == FsmState::kEstablished; }
  std::uint32_t hold_time() const noexcept { return hold_time_; }

  // Negotiated hold time is the min of ours and the peer's (RFC 4271 4.2).
  void negotiate_hold_time(std::uint32_t peer_hold_time) noexcept;

  // Feeds one event at simulation time `now_secs`; returns the action the
  // speaker must carry out.
  FsmAction handle(FsmEvent event, double now_secs) noexcept;

  // Advances timers; returns kSendKeepAlive when the keepalive interval has
  // elapsed, kSessionDown (after internal reset) when the hold timer fired.
  FsmAction tick(double now_secs) noexcept;

 private:
  void arm_timers(double now_secs) noexcept;
  void reset() noexcept;

  FsmState state_ = FsmState::kIdle;
  std::uint32_t configured_hold_time_;
  std::uint32_t hold_time_;
  double hold_deadline_ = 0.0;
  double keepalive_deadline_ = 0.0;
};

}  // namespace dbgp::bgp
