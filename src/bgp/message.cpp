#include "bgp/message.h"

namespace dbgp::bgp {

using util::ByteReader;
using util::ByteWriter;
using util::DecodeError;

MessageType message_type(const Message& m) noexcept {
  if (std::holds_alternative<OpenMessage>(m)) return MessageType::kOpen;
  if (std::holds_alternative<UpdateMessage>(m)) return MessageType::kUpdate;
  if (std::holds_alternative<NotificationMessage>(m)) return MessageType::kNotification;
  if (std::holds_alternative<RouteRefreshMessage>(m)) return MessageType::kRouteRefresh;
  return MessageType::kKeepAlive;
}

void encode_nlri_prefix(ByteWriter& out, const net::Prefix& p) {
  out.put_u8(p.length());
  const std::uint32_t addr = p.address().value();
  const int octets = (p.length() + 7) / 8;
  for (int i = 0; i < octets; ++i) {
    out.put_u8(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
  }
}

net::Prefix decode_nlri_prefix(ByteReader& in) {
  const std::uint8_t len = in.get_u8();
  if (len > 32) throw DecodeError("NLRI prefix length > 32");
  const int octets = (len + 7) / 8;
  std::uint32_t addr = 0;
  for (int i = 0; i < octets; ++i) {
    addr |= static_cast<std::uint32_t>(in.get_u8()) << (24 - 8 * i);
  }
  return net::Prefix(net::Ipv4Address(addr), len);
}

namespace {

// Capability codes (RFC 5492 registry subset).
constexpr std::uint8_t kCapMultiprotocol = 1;
constexpr std::uint8_t kCapRouteRefresh = 2;
constexpr std::uint8_t kCapFourOctetAs = 65;

void encode_open(ByteWriter& out, const OpenMessage& open) {
  out.put_u8(open.version);
  out.put_u16(open.asn <= 65535 ? static_cast<std::uint16_t>(open.asn)
                                : static_cast<std::uint16_t>(kAsTrans));
  out.put_u16(open.hold_time);
  out.put_u32(open.router_id.value());
  // Optional parameters: one capabilities parameter (type 2).
  ByteWriter caps;
  for (const auto& [afi, safi] : open.capabilities.multiprotocol) {
    caps.put_u8(kCapMultiprotocol);
    caps.put_u8(4);
    caps.put_u16(afi);
    caps.put_u8(0);
    caps.put_u8(safi);
  }
  if (open.capabilities.route_refresh) {
    caps.put_u8(kCapRouteRefresh);
    caps.put_u8(0);
  }
  if (open.capabilities.four_octet_as) {
    caps.put_u8(kCapFourOctetAs);
    caps.put_u8(4);
    caps.put_u32(open.asn);
  }
  const auto& cap_bytes = caps.bytes();
  if (cap_bytes.empty()) {
    out.put_u8(0);  // no optional parameters
  } else {
    out.put_u8(static_cast<std::uint8_t>(cap_bytes.size() + 2));
    out.put_u8(2);  // parameter type: capabilities
    out.put_u8(static_cast<std::uint8_t>(cap_bytes.size()));
    out.put_bytes(cap_bytes);
  }
}

OpenMessage decode_open(ByteReader& r) {
  OpenMessage open;
  open.version = r.get_u8();
  if (open.version != 4) throw DecodeError("unsupported BGP version");
  open.asn = r.get_u16();
  open.hold_time = r.get_u16();
  open.router_id = net::Ipv4Address(r.get_u32());
  open.capabilities.multiprotocol.clear();
  open.capabilities.four_octet_as = false;
  const std::size_t opt_len = r.get_u8();
  ByteReader params = r.sub_reader(opt_len);
  while (!params.at_end()) {
    const std::uint8_t param_type = params.get_u8();
    const std::size_t param_len = params.get_u8();
    ByteReader body = params.sub_reader(param_len);
    if (param_type != 2) continue;  // ignore non-capability parameters
    while (!body.at_end()) {
      const std::uint8_t cap = body.get_u8();
      const std::size_t cap_len = body.get_u8();
      ByteReader cap_body = body.sub_reader(cap_len);
      switch (cap) {
        case kCapMultiprotocol: {
          const std::uint16_t afi = cap_body.get_u16();
          cap_body.get_u8();  // reserved
          open.capabilities.multiprotocol.push_back({afi, cap_body.get_u8()});
          break;
        }
        case kCapRouteRefresh:
          open.capabilities.route_refresh = true;
          break;
        case kCapFourOctetAs:
          open.capabilities.four_octet_as = true;
          open.asn = cap_body.get_u32();
          break;
        default:
          break;  // unknown capabilities are ignored
      }
    }
  }
  return open;
}

void encode_update(ByteWriter& out, const UpdateMessage& update) {
  // Withdrawn routes.
  const std::size_t withdrawn_len_at = out.reserve_u16();
  const std::size_t before_withdrawn = out.size();
  for (const auto& p : update.withdrawn) encode_nlri_prefix(out, p);
  out.patch_u16(withdrawn_len_at, static_cast<std::uint16_t>(out.size() - before_withdrawn));
  // Path attributes.
  const std::size_t attrs_len_at = out.reserve_u16();
  const std::size_t before_attrs = out.size();
  if (update.attributes) update.attributes->encode(out);
  out.patch_u16(attrs_len_at, static_cast<std::uint16_t>(out.size() - before_attrs));
  // NLRI.
  for (const auto& p : update.nlri) encode_nlri_prefix(out, p);
}

UpdateMessage decode_update(ByteReader& r) {
  UpdateMessage update;
  const std::size_t withdrawn_len = r.get_u16();
  ByteReader withdrawn = r.sub_reader(withdrawn_len);
  while (!withdrawn.at_end()) update.withdrawn.push_back(decode_nlri_prefix(withdrawn));
  const std::size_t attrs_len = r.get_u16();
  if (attrs_len > 0) update.attributes = PathAttributes::decode(r, attrs_len);
  while (!r.at_end()) update.nlri.push_back(decode_nlri_prefix(r));
  if (!update.nlri.empty() && !update.attributes) {
    throw DecodeError("UPDATE has NLRI but no path attributes");
  }
  return update;
}

}  // namespace

std::vector<std::uint8_t> encode_message(const Message& m) {
  ByteWriter out;
  for (int i = 0; i < 16; ++i) out.put_u8(0xff);  // marker
  const std::size_t length_at = out.reserve_u16();
  out.put_u8(static_cast<std::uint8_t>(message_type(m)));
  std::visit(
      [&out](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, OpenMessage>) {
          encode_open(out, msg);
        } else if constexpr (std::is_same_v<T, UpdateMessage>) {
          encode_update(out, msg);
        } else if constexpr (std::is_same_v<T, NotificationMessage>) {
          out.put_u8(msg.code);
          out.put_u8(msg.subcode);
          out.put_bytes(msg.data);
        } else if constexpr (std::is_same_v<T, RouteRefreshMessage>) {
          out.put_u16(msg.afi);
          out.put_u8(0);  // reserved
          out.put_u8(msg.safi);
        }
        // KEEPALIVE has no body.
      },
      m);
  if (out.size() > kMaxMessageSize) {
    throw DecodeError("message exceeds RFC 4271 4096-byte limit");
  }
  out.patch_u16(length_at, static_cast<std::uint16_t>(out.size()));
  return out.take();
}

Message decode_message(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  for (int i = 0; i < 16; ++i) {
    if (r.get_u8() != 0xff) throw DecodeError("bad marker");
  }
  const std::size_t length = r.get_u16();
  if (length < kHeaderSize || length > kMaxMessageSize || length != data.size()) {
    throw DecodeError("bad message length");
  }
  const std::uint8_t type = r.get_u8();
  switch (static_cast<MessageType>(type)) {
    case MessageType::kOpen:
      return decode_open(r);
    case MessageType::kUpdate:
      return decode_update(r);
    case MessageType::kNotification: {
      NotificationMessage n;
      n.code = r.get_u8();
      n.subcode = r.get_u8();
      auto rest = r.get_bytes(r.remaining());
      n.data.assign(rest.begin(), rest.end());
      return n;
    }
    case MessageType::kKeepAlive:
      if (!r.at_end()) throw DecodeError("KEEPALIVE with body");
      return KeepAliveMessage{};
    case MessageType::kRouteRefresh: {
      RouteRefreshMessage refresh;
      refresh.afi = r.get_u16();
      r.get_u8();  // reserved
      refresh.safi = r.get_u8();
      if (!r.at_end()) throw DecodeError("ROUTE-REFRESH with trailing bytes");
      return refresh;
    }
  }
  throw DecodeError("unknown message type " + std::to_string(type));
}

}  // namespace dbgp::bgp
