// BGP-4 message formats and wire codec (RFC 4271 section 4).
//
// OPEN, UPDATE, NOTIFICATION, and KEEPALIVE are encoded exactly as on the
// wire: 16-byte all-ones marker, 2-byte length, 1-byte type, body. The
// stress benchmark (E1) measures this codec head-to-head against the IA
// codec, mirroring the paper's Beagle-vs-Quagga comparison.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "bgp/path_attributes.h"
#include "bgp/types.h"
#include "net/ipv4.h"
#include "util/bytes.h"

namespace dbgp::bgp {

enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepAlive = 4,
  kRouteRefresh = 5,  // RFC 2918
};

inline constexpr std::size_t kHeaderSize = 19;
inline constexpr std::size_t kMaxMessageSize = 4096;  // RFC 4271 limit

// Capabilities advertised in OPEN (RFC 5492 subset).
struct Capabilities {
  bool four_octet_as = true;   // RFC 6793
  bool route_refresh = false;  // RFC 2918
  // Multiprotocol AFI/SAFI pairs (RFC 4760); (1,1) = IPv4 unicast.
  std::vector<std::pair<std::uint16_t, std::uint8_t>> multiprotocol = {{1, 1}};

  bool operator==(const Capabilities&) const = default;
};

struct OpenMessage {
  std::uint8_t version = 4;
  AsNumber asn = 0;  // encoded as AS_TRANS in the 2-byte field when > 65535
  std::uint16_t hold_time = 90;
  RouterId router_id;
  Capabilities capabilities;

  bool operator==(const OpenMessage&) const = default;
};

struct UpdateMessage {
  std::vector<net::Prefix> withdrawn;
  // Attributes are present iff there is NLRI (or attribute-only updates).
  std::optional<PathAttributes> attributes;
  std::vector<net::Prefix> nlri;

  bool operator==(const UpdateMessage&) const = default;
};

struct NotificationMessage {
  std::uint8_t code = 0;
  std::uint8_t subcode = 0;
  std::vector<std::uint8_t> data;

  bool operator==(const NotificationMessage&) const = default;
};

struct KeepAliveMessage {
  bool operator==(const KeepAliveMessage&) const = default;
};

// RFC 2918: ask the peer to resend its Adj-RIB-Out for one AFI/SAFI.
struct RouteRefreshMessage {
  std::uint16_t afi = 1;   // IPv4
  std::uint8_t safi = 1;   // unicast

  bool operator==(const RouteRefreshMessage&) const = default;
};

using Message = std::variant<OpenMessage, UpdateMessage, NotificationMessage,
                             KeepAliveMessage, RouteRefreshMessage>;

MessageType message_type(const Message& m) noexcept;

// Serializes one message, including the 19-byte header.
// Throws DecodeError if the result would exceed kMaxMessageSize.
std::vector<std::uint8_t> encode_message(const Message& m);

// Decodes one complete message from `data`; throws DecodeError on anything
// malformed (bad marker, bad length, unknown type, truncated body).
Message decode_message(std::span<const std::uint8_t> data);

// NLRI helpers (shared with the UPDATE codec): length byte + minimal octets.
void encode_nlri_prefix(util::ByteWriter& out, const net::Prefix& p);
net::Prefix decode_nlri_prefix(util::ByteReader& in);

}  // namespace dbgp::bgp
