#include "bgp/path_attributes.h"

#include <algorithm>

namespace dbgp::bgp {

using util::ByteReader;
using util::ByteWriter;
using util::DecodeError;

AsPath::AsPath(std::vector<AsNumber> sequence) {
  if (!sequence.empty()) {
    segments_.push_back({AsPathSegment::Type::kSequence, std::move(sequence)});
  }
}

void AsPath::prepend(AsNumber asn) {
  if (segments_.empty() || segments_.front().type != AsPathSegment::Type::kSequence ||
      segments_.front().asns.size() >= 255) {
    segments_.insert(segments_.begin(), {AsPathSegment::Type::kSequence, {asn}});
  } else {
    auto& seq = segments_.front().asns;
    seq.insert(seq.begin(), asn);
  }
}

void AsPath::prepend_set(std::vector<AsNumber> asns) {
  segments_.insert(segments_.begin(), {AsPathSegment::Type::kSet, std::move(asns)});
}

bool AsPath::contains(AsNumber asn) const noexcept {
  for (const auto& seg : segments_) {
    if (std::find(seg.asns.begin(), seg.asns.end(), asn) != seg.asns.end()) return true;
  }
  return false;
}

std::size_t AsPath::hop_count() const noexcept {
  std::size_t count = 0;
  for (const auto& seg : segments_) {
    count += seg.type == AsPathSegment::Type::kSequence ? seg.asns.size() : 1;
  }
  return count;
}

std::size_t AsPath::total_asns() const noexcept {
  std::size_t count = 0;
  for (const auto& seg : segments_) count += seg.asns.size();
  return count;
}

std::string AsPath::to_string() const {
  std::string out;
  for (const auto& seg : segments_) {
    if (!out.empty()) out.push_back(' ');
    const bool set = seg.type == AsPathSegment::Type::kSet;
    if (set) out.push_back('{');
    for (std::size_t i = 0; i < seg.asns.size(); ++i) {
      if (i != 0) out.push_back(set ? ',' : ' ');
      out += std::to_string(seg.asns[i]);
    }
    if (set) out.push_back('}');
  }
  return out;
}

namespace {

// Writes one attribute: flags, type, length (1 or 2 bytes), payload.
void write_attribute(ByteWriter& out, std::uint8_t flags, std::uint8_t type,
                     const std::vector<std::uint8_t>& payload) {
  if (payload.size() > 255) flags |= kAttrFlagExtendedLength;
  out.put_u8(flags);
  out.put_u8(type);
  if ((flags & kAttrFlagExtendedLength) != 0) {
    out.put_u16(static_cast<std::uint16_t>(payload.size()));
  } else {
    out.put_u8(static_cast<std::uint8_t>(payload.size()));
  }
  out.put_bytes(payload);
}

std::vector<std::uint8_t> encode_as_path(const AsPath& path) {
  ByteWriter w;
  for (const auto& seg : path.segments()) {
    w.put_u8(static_cast<std::uint8_t>(seg.type));
    w.put_u8(static_cast<std::uint8_t>(seg.asns.size()));
    for (AsNumber asn : seg.asns) w.put_u32(asn);
  }
  return w.take();
}

AsPath decode_as_path(ByteReader r) {
  AsPath path;
  while (!r.at_end()) {
    const auto type = static_cast<AsPathSegment::Type>(r.get_u8());
    if (type != AsPathSegment::Type::kSet && type != AsPathSegment::Type::kSequence) {
      throw DecodeError("bad AS_PATH segment type");
    }
    const std::size_t n = r.get_u8();
    AsPathSegment seg;
    seg.type = type;
    seg.asns.reserve(n);
    for (std::size_t i = 0; i < n; ++i) seg.asns.push_back(r.get_u32());
    path.segments().push_back(std::move(seg));
  }
  return path;
}

std::vector<std::uint8_t> u32_payload(std::uint32_t v) {
  ByteWriter w;
  w.put_u32(v);
  return w.take();
}

}  // namespace

void PathAttributes::encode(ByteWriter& out) const {
  // Well-known mandatory attributes in canonical (ascending type) order.
  write_attribute(out, kAttrFlagTransitive, static_cast<std::uint8_t>(AttrType::kOrigin),
                  {static_cast<std::uint8_t>(origin)});
  write_attribute(out, kAttrFlagTransitive, static_cast<std::uint8_t>(AttrType::kAsPath),
                  encode_as_path(as_path));
  write_attribute(out, kAttrFlagTransitive, static_cast<std::uint8_t>(AttrType::kNextHop),
                  u32_payload(next_hop.value()));
  if (med) {
    write_attribute(out, kAttrFlagOptional,
                    static_cast<std::uint8_t>(AttrType::kMultiExitDisc), u32_payload(*med));
  }
  if (local_pref) {
    write_attribute(out, kAttrFlagTransitive,
                    static_cast<std::uint8_t>(AttrType::kLocalPref), u32_payload(*local_pref));
  }
  if (atomic_aggregate) {
    write_attribute(out, kAttrFlagTransitive,
                    static_cast<std::uint8_t>(AttrType::kAtomicAggregate), {});
  }
  if (aggregator) {
    ByteWriter w;
    w.put_u32(aggregator->first);
    w.put_u32(aggregator->second.value());
    write_attribute(out, kAttrFlagOptional | kAttrFlagTransitive,
                    static_cast<std::uint8_t>(AttrType::kAggregator), w.take());
  }
  if (!communities.empty()) {
    ByteWriter w;
    for (std::uint32_t c : communities) w.put_u32(c);
    write_attribute(out, kAttrFlagOptional | kAttrFlagTransitive,
                    static_cast<std::uint8_t>(AttrType::kCommunities), w.take());
  }
  for (const auto& attr : unknown) {
    // Forwarded unknowns carry the Partial bit per RFC 4271 (set by the
    // first speaker that did not recognize them).
    write_attribute(out, static_cast<std::uint8_t>(attr.flags | kAttrFlagPartial), attr.type,
                    attr.value);
  }
}

PathAttributes PathAttributes::decode(ByteReader& in, std::size_t length) {
  PathAttributes attrs;
  ByteReader block = in.sub_reader(length);
  bool saw_origin = false, saw_as_path = false, saw_next_hop = false;
  while (!block.at_end()) {
    const std::uint8_t flags = block.get_u8();
    const std::uint8_t type = block.get_u8();
    const std::size_t len = (flags & kAttrFlagExtendedLength) != 0
                                ? block.get_u16()
                                : block.get_u8();
    ByteReader payload = block.sub_reader(len);
    switch (static_cast<AttrType>(type)) {
      case AttrType::kOrigin: {
        const std::uint8_t v = payload.get_u8();
        if (v > 2) throw DecodeError("bad ORIGIN value");
        attrs.origin = static_cast<Origin>(v);
        saw_origin = true;
        break;
      }
      case AttrType::kAsPath:
        attrs.as_path = decode_as_path(payload);
        saw_as_path = true;
        break;
      case AttrType::kNextHop:
        attrs.next_hop = net::Ipv4Address(payload.get_u32());
        saw_next_hop = true;
        break;
      case AttrType::kMultiExitDisc:
        attrs.med = payload.get_u32();
        break;
      case AttrType::kLocalPref:
        attrs.local_pref = payload.get_u32();
        break;
      case AttrType::kAtomicAggregate:
        attrs.atomic_aggregate = true;
        break;
      case AttrType::kAggregator: {
        const AsNumber asn = payload.get_u32();
        attrs.aggregator = {asn, net::Ipv4Address(payload.get_u32())};
        break;
      }
      case AttrType::kCommunities:
        while (!payload.at_end()) attrs.communities.push_back(payload.get_u32());
        break;
      default: {
        if ((flags & kAttrFlagOptional) == 0) {
          throw DecodeError("unrecognized well-known attribute type " + std::to_string(type));
        }
        if ((flags & kAttrFlagTransitive) != 0) {
          // Pass-through: keep for re-advertisement.
          auto bytes = payload.get_bytes(payload.remaining());
          attrs.unknown.push_back(
              {flags, type, std::vector<std::uint8_t>(bytes.begin(), bytes.end())});
        }
        // Optional non-transitive unknowns are silently dropped.
        break;
      }
    }
  }
  if (!saw_origin || !saw_as_path || !saw_next_hop) {
    throw DecodeError("missing well-known mandatory attribute");
  }
  return attrs;
}

}  // namespace dbgp::bgp
