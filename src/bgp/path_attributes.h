// BGP-4 path attributes (RFC 4271 section 4.3 / 5), including the wire codec
// and the optional-transitive pass-through mechanism the paper identifies as
// BGP's existing (but under-used) evolvability hook (Section 2.6).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/types.h"
#include "util/bytes.h"

namespace dbgp::bgp {

// Well-known attribute type codes.
enum class AttrType : std::uint8_t {
  kOrigin = 1,
  kAsPath = 2,
  kNextHop = 3,
  kMultiExitDisc = 4,
  kLocalPref = 5,
  kAtomicAggregate = 6,
  kAggregator = 7,
  kCommunities = 8,
};

// Attribute flag bits (high nibble of the flags octet).
inline constexpr std::uint8_t kAttrFlagOptional = 0x80;
inline constexpr std::uint8_t kAttrFlagTransitive = 0x40;
inline constexpr std::uint8_t kAttrFlagPartial = 0x20;
inline constexpr std::uint8_t kAttrFlagExtendedLength = 0x10;

// One segment of an AS_PATH: an ordered AS_SEQUENCE or an unordered AS_SET
// (used when aggregating, and by D-BGP islands to list member ASes without
// inflating the path length — Section 3.2).
struct AsPathSegment {
  enum class Type : std::uint8_t { kSet = 1, kSequence = 2 };
  Type type = Type::kSequence;
  std::vector<AsNumber> asns;

  bool operator==(const AsPathSegment&) const = default;
};

class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<AsNumber> sequence);

  // Prepends one AS to the leading AS_SEQUENCE (creating it if needed).
  void prepend(AsNumber asn);
  // Prepends an AS_SET segment (aggregation / island membership).
  void prepend_set(std::vector<AsNumber> asns);

  // True if any segment mentions `asn` — the RFC 4271 loop check.
  bool contains(AsNumber asn) const noexcept;

  // Path length for the decision process: each AS in a SEQUENCE counts 1,
  // each AS_SET counts 1 total (RFC 4271 9.1.2.2a).
  std::size_t hop_count() const noexcept;

  // Total number of ASes mentioned across all segments.
  std::size_t total_asns() const noexcept;

  const std::vector<AsPathSegment>& segments() const noexcept { return segments_; }
  std::vector<AsPathSegment>& segments() noexcept { return segments_; }

  std::string to_string() const;

  bool operator==(const AsPath&) const = default;

 private:
  std::vector<AsPathSegment> segments_;
};

// An attribute this speaker does not recognize. Optional-transitive unknowns
// are forwarded unmodified with the Partial bit set; optional-non-transitive
// unknowns are dropped; unrecognized well-known attributes are a session
// error (we surface them as DecodeError).
struct UnknownAttribute {
  std::uint8_t flags = 0;
  std::uint8_t type = 0;
  std::vector<std::uint8_t> value;

  bool transitive() const noexcept { return (flags & kAttrFlagTransitive) != 0; }
  bool optional() const noexcept { return (flags & kAttrFlagOptional) != 0; }
  bool operator==(const UnknownAttribute&) const = default;
};

// The full decoded attribute set of one UPDATE.
struct PathAttributes {
  Origin origin = Origin::kIgp;
  AsPath as_path;
  net::Ipv4Address next_hop;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  bool atomic_aggregate = false;
  std::optional<std::pair<AsNumber, net::Ipv4Address>> aggregator;
  std::vector<std::uint32_t> communities;
  std::vector<UnknownAttribute> unknown;  // pass-through payloads

  // Serializes as an RFC 4271 path-attribute block (without the 2-byte total
  // length field, which the UPDATE codec writes). 4-octet ASes are encoded
  // natively (we model an RFC 6793-capable mesh).
  void encode(util::ByteWriter& out) const;
  // Decodes a path-attribute block of exactly `length` bytes.
  static PathAttributes decode(util::ByteReader& in, std::size_t length);

  bool operator==(const PathAttributes&) const = default;
};

}  // namespace dbgp::bgp
