#include "bgp/policy.h"

#include <algorithm>

namespace dbgp::bgp {

bool MatchCondition::matches(const net::Prefix& prefix, const PathAttributes& attrs) const noexcept {
  if (prefix_exact && !(prefix == *prefix_exact)) return false;
  if (prefix_covered_by && !prefix_covered_by->covers(prefix)) return false;
  if (as_path_contains && !attrs.as_path.contains(*as_path_contains)) return false;
  if (has_community) {
    const auto& cs = attrs.communities;
    if (std::find(cs.begin(), cs.end(), *has_community) == cs.end()) return false;
  }
  return true;
}

void AttributeActions::apply(PathAttributes& attrs, AsNumber own_as) const {
  if (set_local_pref) attrs.local_pref = *set_local_pref;
  if (set_med) attrs.med = *set_med;
  for (std::uint8_t i = 0; i < prepend_count; ++i) attrs.as_path.prepend(own_as);
  for (std::uint32_t c : add_communities) {
    if (std::find(attrs.communities.begin(), attrs.communities.end(), c) ==
        attrs.communities.end()) {
      attrs.communities.push_back(c);
    }
  }
  for (std::uint32_t c : strip_communities) {
    attrs.communities.erase(std::remove(attrs.communities.begin(), attrs.communities.end(), c),
                            attrs.communities.end());
  }
}

bool PolicyChain::apply(const net::Prefix& prefix, PathAttributes& attrs, AsNumber own_as) const {
  for (const PolicyRule& rule : rules_) {
    if (rule.match.matches(prefix, attrs)) {
      if (!rule.accept) return false;
      rule.actions.apply(attrs, own_as);
      return true;
    }
  }
  return true;  // empty / no-match => accept unmodified
}

}  // namespace dbgp::bgp
