// Import/export policy engine.
//
// A PolicyChain is an ordered list of rules; the first matching rule decides
// accept/reject and applies its modifications. An empty chain accepts
// unmodified (Quagga-style implicit permit is deliberately NOT used: D-BGP's
// global filters wrap these chains, and tests cover both defaults).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/path_attributes.h"
#include "bgp/types.h"
#include "net/ipv4.h"

namespace dbgp::bgp {

struct MatchCondition {
  std::optional<net::Prefix> prefix_exact;
  std::optional<net::Prefix> prefix_covered_by;  // match any more-specific
  std::optional<AsNumber> as_path_contains;
  std::optional<std::uint32_t> has_community;

  bool matches(const net::Prefix& prefix, const PathAttributes& attrs) const noexcept;
};

struct AttributeActions {
  std::optional<std::uint32_t> set_local_pref;
  std::optional<std::uint32_t> set_med;
  std::uint8_t prepend_count = 0;  // prepend own AS n extra times on export
  std::vector<std::uint32_t> add_communities;
  std::vector<std::uint32_t> strip_communities;

  void apply(PathAttributes& attrs, AsNumber own_as) const;
};

struct PolicyRule {
  MatchCondition match;
  bool accept = true;
  AttributeActions actions;  // applied only when accepting
};

class PolicyChain {
 public:
  PolicyChain() = default;
  explicit PolicyChain(std::vector<PolicyRule> rules) : rules_(std::move(rules)) {}

  void add_rule(PolicyRule rule) { rules_.push_back(std::move(rule)); }
  bool empty() const noexcept { return rules_.empty(); }

  // Applies the chain; returns false if the route is rejected. On accept,
  // modifications from the matching rule are applied to `attrs`.
  bool apply(const net::Prefix& prefix, PathAttributes& attrs, AsNumber own_as) const;

 private:
  std::vector<PolicyRule> rules_;
};

}  // namespace dbgp::bgp
