#include "bgp/rib.h"

#include <algorithm>

namespace dbgp::bgp {

bool AdjRibIn::upsert(Route route) {
  auto& per_prefix = routes_.try_emplace(route.prefix).first->second;
  auto it = std::lower_bound(
      per_prefix.begin(), per_prefix.end(), route.from_peer,
      [](const Route& r, PeerId peer) { return r.from_peer < peer; });
  if (it != per_prefix.end() && it->from_peer == route.from_peer) {
    *it = std::move(route);
    return true;
  }
  per_prefix.insert(it, std::move(route));
  ++size_;
  return false;
}

bool AdjRibIn::remove(PeerId peer, const net::Prefix& prefix) {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return false;
  auto& per_prefix = it->second;
  auto rit = std::find_if(per_prefix.begin(), per_prefix.end(),
                          [peer](const Route& r) { return r.from_peer == peer; });
  if (rit == per_prefix.end()) return false;
  per_prefix.erase(rit);
  --size_;
  if (per_prefix.empty()) routes_.erase(it);
  return true;
}

std::vector<net::Prefix> AdjRibIn::remove_peer(PeerId peer) {
  std::vector<net::Prefix> affected;
  for (auto it = routes_.begin(); it != routes_.end();) {
    auto& per_prefix = it->second;
    auto rit = std::find_if(per_prefix.begin(), per_prefix.end(),
                            [peer](const Route& r) { return r.from_peer == peer; });
    if (rit != per_prefix.end()) {
      per_prefix.erase(rit);
      --size_;
      affected.push_back(it->first);
    }
    it = per_prefix.empty() ? routes_.erase(it) : std::next(it);
  }
  return affected;
}

std::span<const Route> AdjRibIn::candidates(const net::Prefix& prefix) const noexcept {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return {};
  return {it->second.data(), it->second.size()};
}

RouteView AdjRibIn::find(PeerId peer, const net::Prefix& prefix) const noexcept {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return RouteView{};
  auto rit = std::find_if(it->second.begin(), it->second.end(),
                          [peer](const Route& r) { return r.from_peer == peer; });
  return rit == it->second.end() ? RouteView{} : RouteView{&*rit};
}

bool LocRib::install(const Route& route) {
  auto it = routes_.find(route.prefix);
  if (it != routes_.end() && it->second.attrs == route.attrs &&
      it->second.from_peer == route.from_peer) {
    return false;
  }
  routes_.insert_or_assign(route.prefix, route);
  return true;
}

bool LocRib::remove(const net::Prefix& prefix) { return routes_.erase(prefix) > 0; }

RouteView LocRib::find(const net::Prefix& prefix) const noexcept {
  auto it = routes_.find(prefix);
  return it == routes_.end() ? RouteView{} : RouteView{&it->second};
}

bool AdjRibOut::advertise(PeerId peer, const net::Prefix& prefix, const AttrHandle& attrs) {
  auto& table = per_peer_.try_emplace(peer).first->second;
  auto it = table.find(prefix);
  if (it != table.end() && it->second == attrs) return false;
  table.insert_or_assign(prefix, attrs);
  return true;
}

bool AdjRibOut::withdraw(PeerId peer, const net::Prefix& prefix) {
  auto it = per_peer_.find(peer);
  if (it == per_peer_.end()) return false;
  return it->second.erase(prefix) > 0;
}

void AdjRibOut::clear_peer(PeerId peer) { per_peer_.erase(peer); }

AttrHandle AdjRibOut::find(PeerId peer, const net::Prefix& prefix) const noexcept {
  auto it = per_peer_.find(peer);
  if (it == per_peer_.end()) return {};
  auto pit = it->second.find(prefix);
  return pit == it->second.end() ? AttrHandle{} : pit->second;
}

std::size_t AdjRibOut::advertised_count(PeerId peer) const noexcept {
  auto it = per_peer_.find(peer);
  return it == per_peer_.end() ? 0 : it->second.size();
}

}  // namespace dbgp::bgp
