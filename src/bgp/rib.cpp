#include "bgp/rib.h"

namespace dbgp::bgp {

std::optional<Route> AdjRibIn::upsert(Route route) {
  auto& per_peer = routes_[route.prefix];
  auto it = per_peer.find(route.from_peer);
  std::optional<Route> previous;
  if (it != per_peer.end()) {
    previous = std::move(it->second);
    it->second = std::move(route);
  } else {
    per_peer.emplace(route.from_peer, std::move(route));
    ++size_;
  }
  return previous;
}

bool AdjRibIn::remove(PeerId peer, const net::Prefix& prefix) {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return false;
  const bool removed = it->second.erase(peer) > 0;
  if (removed) {
    --size_;
    if (it->second.empty()) routes_.erase(it);
  }
  return removed;
}

std::vector<net::Prefix> AdjRibIn::remove_peer(PeerId peer) {
  std::vector<net::Prefix> affected;
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->second.erase(peer) > 0) {
      --size_;
      affected.push_back(it->first);
    }
    it = it->second.empty() ? routes_.erase(it) : std::next(it);
  }
  return affected;
}

std::vector<const Route*> AdjRibIn::candidates(const net::Prefix& prefix) const {
  std::vector<const Route*> out;
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [peer, route] : it->second) out.push_back(&route);
  return out;
}

const Route* AdjRibIn::find(PeerId peer, const net::Prefix& prefix) const {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return nullptr;
  auto pit = it->second.find(peer);
  return pit == it->second.end() ? nullptr : &pit->second;
}

bool LocRib::install(const Route& route) {
  auto it = routes_.find(route.prefix);
  if (it != routes_.end() && it->second.attrs == route.attrs &&
      it->second.from_peer == route.from_peer) {
    return false;
  }
  routes_[route.prefix] = route;
  return true;
}

bool LocRib::remove(const net::Prefix& prefix) { return routes_.erase(prefix) > 0; }

const Route* LocRib::find(const net::Prefix& prefix) const {
  auto it = routes_.find(prefix);
  return it == routes_.end() ? nullptr : &it->second;
}

bool AdjRibOut::advertise(PeerId peer, const net::Prefix& prefix, const PathAttributes& attrs) {
  auto& table = per_peer_[peer];
  auto it = table.find(prefix);
  if (it != table.end() && it->second == attrs) return false;
  table[prefix] = attrs;
  return true;
}

bool AdjRibOut::withdraw(PeerId peer, const net::Prefix& prefix) {
  auto it = per_peer_.find(peer);
  if (it == per_peer_.end()) return false;
  return it->second.erase(prefix) > 0;
}

void AdjRibOut::clear_peer(PeerId peer) { per_peer_.erase(peer); }

const PathAttributes* AdjRibOut::find(PeerId peer, const net::Prefix& prefix) const {
  auto it = per_peer_.find(peer);
  if (it == per_peer_.end()) return nullptr;
  auto pit = it->second.find(prefix);
  return pit == it->second.end() ? nullptr : &pit->second;
}

std::vector<std::pair<net::Prefix, PathAttributes>> AdjRibOut::advertised(PeerId peer) const {
  std::vector<std::pair<net::Prefix, PathAttributes>> out;
  auto it = per_peer_.find(peer);
  if (it == per_peer_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [prefix, attrs] : it->second) out.emplace_back(prefix, attrs);
  return out;
}

}  // namespace dbgp::bgp
