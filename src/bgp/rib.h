// Routing Information Bases (RFC 4271 section 3.2), handle-based.
//
// AdjRibIn holds the routes learned from each peer after import policy;
// LocRib holds the selected best route per prefix; AdjRibOut tracks what was
// last advertised to each peer so the speaker only sends deltas.
//
// Memory architecture (DESIGN.md §14): routes carry interned AttrHandles —
// a Route is a fixed ~32-byte record no matter how rich its attribute set —
// and every table allocates from the owning speaker's RibArena via std::pmr.
// Lookups hand out borrowed views (std::span / RouteView / a visitor), never
// allocated copies; a view is invalidated by the next mutation of its table,
// exactly like the iterators it wraps.
#pragma once

#include <cstdint>
#include <map>
#include <memory_resource>
#include <span>
#include <vector>

#include "bgp/attr_interner.h"
#include "bgp/types.h"
#include "net/ipv4.h"

namespace dbgp::bgp {

// One candidate route as stored in Adj-RIB-In.
struct Route {
  net::Prefix prefix;
  AttrHandle attrs;  // canonical, interned; compare with == (pointer identity)
  PeerId from_peer = kInvalidPeer;
  AsNumber neighbor_as = 0;  // first AS of the sending peer (for MED rule)
  std::uint64_t sequence = 0;  // arrival order; final deterministic tie-break

  bool operator==(const Route&) const = default;
};

// Borrowed, non-owning view of one RIB entry. Null when the lookup missed;
// valid until the owning table's next mutation.
class RouteView {
 public:
  RouteView() noexcept = default;
  explicit RouteView(const Route* route) noexcept : route_(route) {}

  explicit operator bool() const noexcept { return route_ != nullptr; }
  const Route& operator*() const noexcept { return *route_; }
  const Route* operator->() const noexcept { return route_; }
  const Route* get() const noexcept { return route_; }

 private:
  const Route* route_ = nullptr;
};

class AdjRibIn {
 public:
  explicit AdjRibIn(std::pmr::memory_resource* arena = std::pmr::get_default_resource())
      : routes_(arena) {}

  // Inserts/replaces the route from (peer, prefix); true if it replaced an
  // existing route from that peer.
  bool upsert(Route route);
  // Removes (peer, prefix); returns true if something was removed.
  bool remove(PeerId peer, const net::Prefix& prefix);
  // Removes everything learned from a peer (session down); returns the
  // affected prefixes.
  std::vector<net::Prefix> remove_peer(PeerId peer);

  // All candidate routes for a prefix (any peer), in peer order — a borrowed
  // view into the arena-backed table; no allocation.
  std::span<const Route> candidates(const net::Prefix& prefix) const noexcept;
  RouteView find(PeerId peer, const net::Prefix& prefix) const noexcept;

  std::size_t size() const noexcept { return size_; }

 private:
  // prefix -> routes sorted by from_peer. The per-prefix table is a flat
  // arena-backed vector: candidate iteration is one contiguous scan, and the
  // old nested map's per-route node overhead is gone.
  std::pmr::map<net::Prefix, std::pmr::vector<Route>> routes_;
  std::size_t size_ = 0;
};

class LocRib {
 public:
  explicit LocRib(std::pmr::memory_resource* arena = std::pmr::get_default_resource())
      : routes_(arena) {}

  // Installs a best route; returns true if it changed (newly present, new
  // attribute handle, or new sending peer). Attribute change detection is a
  // handle compare — one pointer — because equal attrs intern to the same
  // canonical entry.
  bool install(const Route& route);
  // Removes the best route for a prefix; returns true if present.
  bool remove(const net::Prefix& prefix);

  RouteView find(const net::Prefix& prefix) const noexcept;
  const std::pmr::map<net::Prefix, Route>& routes() const noexcept { return routes_; }
  std::size_t size() const noexcept { return routes_.size(); }

 private:
  std::pmr::map<net::Prefix, Route> routes_;
};

// Tracks per-peer advertised state for delta generation. Stores only the
// interned handle per (peer, prefix) — the exported attribute sets are
// shared with the interner's canonical objects, not copied per peer.
class AdjRibOut {
 public:
  explicit AdjRibOut(std::pmr::memory_resource* arena = std::pmr::get_default_resource())
      : per_peer_(arena) {}

  // Records an advertisement; returns true if it differs from what was last
  // sent (i.e., a real UPDATE is needed). Handle-identity compare.
  bool advertise(PeerId peer, const net::Prefix& prefix, const AttrHandle& attrs);
  // Records a withdrawal; returns true if the peer had the prefix.
  bool withdraw(PeerId peer, const net::Prefix& prefix);
  void clear_peer(PeerId peer);

  // Last advertised attrs for (peer, prefix); null handle when none.
  AttrHandle find(PeerId peer, const net::Prefix& prefix) const noexcept;
  std::size_t advertised_count(PeerId peer) const noexcept;

  // Visits everything currently advertised to `peer` in prefix order,
  // without materializing a copy: visit(const net::Prefix&, const AttrHandle&).
  template <typename Visitor>
  void for_each_advertised(PeerId peer, Visitor&& visit) const {
    auto it = per_peer_.find(peer);
    if (it == per_peer_.end()) return;
    for (const auto& [prefix, attrs] : it->second) visit(prefix, attrs);
  }

 private:
  std::pmr::map<PeerId, std::pmr::map<net::Prefix, AttrHandle>> per_peer_;
};

}  // namespace dbgp::bgp
