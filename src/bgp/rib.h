// Routing Information Bases (RFC 4271 section 3.2).
//
// AdjRibIn holds the routes learned from each peer after import policy;
// LocRib holds the selected best route per prefix; AdjRibOut tracks what was
// last advertised to each peer so the speaker only sends deltas.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/path_attributes.h"
#include "bgp/types.h"
#include "net/ipv4.h"

namespace dbgp::bgp {

// One candidate route as stored in Adj-RIB-In.
struct Route {
  net::Prefix prefix;
  PathAttributes attrs;
  PeerId from_peer = kInvalidPeer;
  AsNumber neighbor_as = 0;  // first AS of the sending peer (for MED rule)
  std::uint64_t sequence = 0;  // arrival order; final deterministic tie-break

  bool operator==(const Route&) const = default;
};

class AdjRibIn {
 public:
  // Inserts/replaces the route from (peer, prefix). Returns previous route
  // if one existed.
  std::optional<Route> upsert(Route route);
  // Removes (peer, prefix); returns true if something was removed.
  bool remove(PeerId peer, const net::Prefix& prefix);
  // Removes everything learned from a peer (session down); returns the
  // affected prefixes.
  std::vector<net::Prefix> remove_peer(PeerId peer);

  // All candidate routes for a prefix (any peer), in peer order.
  std::vector<const Route*> candidates(const net::Prefix& prefix) const;
  const Route* find(PeerId peer, const net::Prefix& prefix) const;

  std::size_t size() const noexcept { return size_; }

 private:
  // prefix -> (peer -> route). std::map keeps deterministic iteration.
  std::map<net::Prefix, std::map<PeerId, Route>> routes_;
  std::size_t size_ = 0;
};

class LocRib {
 public:
  // Installs a best route; returns true if it changed (different attrs or
  // newly present).
  bool install(const Route& route);
  // Removes the best route for a prefix; returns true if present.
  bool remove(const net::Prefix& prefix);

  const Route* find(const net::Prefix& prefix) const;
  const std::map<net::Prefix, Route>& routes() const noexcept { return routes_; }
  std::size_t size() const noexcept { return routes_.size(); }

 private:
  std::map<net::Prefix, Route> routes_;
};

// Tracks per-peer advertised state for delta generation.
class AdjRibOut {
 public:
  // Records an advertisement; returns true if it differs from what was last
  // sent (i.e., a real UPDATE is needed).
  bool advertise(PeerId peer, const net::Prefix& prefix, const PathAttributes& attrs);
  // Records a withdrawal; returns true if the peer had the prefix.
  bool withdraw(PeerId peer, const net::Prefix& prefix);
  void clear_peer(PeerId peer);

  const PathAttributes* find(PeerId peer, const net::Prefix& prefix) const;
  // Everything currently advertised to `peer` (for initial table dump).
  std::vector<std::pair<net::Prefix, PathAttributes>> advertised(PeerId peer) const;

 private:
  std::map<PeerId, std::map<net::Prefix, PathAttributes>> per_peer_;
};

}  // namespace dbgp::bgp
