#include "bgp/speaker.h"

#include <optional>
#include <set>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace dbgp::bgp {

namespace {
constexpr auto kLog = "bgp.speaker";

// Registry mirrors of SpeakerStats, aggregated across every baseline BGP
// speaker in the process (the per-speaker struct stays authoritative).
struct BgpMetrics {
  telemetry::Counter* updates_received;
  telemetry::Counter* prefixes_processed;
  telemetry::Counter* updates_sent;
  telemetry::Counter* routes_rejected_by_policy;
  telemetry::Counter* routes_rejected_by_loop;
  telemetry::Counter* decode_errors;
  telemetry::Counter* refreshes_received;
  telemetry::Histogram* batch_size;

  static BgpMetrics& get() {
    static BgpMetrics m = [] {
      auto& reg = telemetry::MetricsRegistry::global();
      return BgpMetrics{&reg.counter("bgp.speaker.updates_received"),
                        &reg.counter("bgp.speaker.prefixes_processed"),
                        &reg.counter("bgp.speaker.updates_sent"),
                        &reg.counter("bgp.speaker.routes_rejected_by_policy"),
                        &reg.counter("bgp.speaker.routes_rejected_by_loop"),
                        &reg.counter("bgp.speaker.decode_errors"),
                        &reg.counter("bgp.speaker.refreshes_received"),
                        &reg.histogram(
                            "bgp.speaker.batch_size",
                            telemetry::Histogram::exponential_bounds(1.0, 4096.0, 2.0))};
    }();
    return m;
  }
};
}  // namespace

BgpSpeaker::BgpSpeaker(Config config)
    : config_(config),
      arena_(std::make_unique<util::RibArena>()),
      interner_(std::make_unique<AttrInterner>()),
      adj_rib_in_(arena_->resource()),
      loc_rib_(arena_->resource()),
      adj_rib_out_(arena_->resource()) {}

PeerId BgpSpeaker::add_peer(AsNumber peer_as, PolicyChain import_policy,
                            PolicyChain export_policy) {
  Peer peer;
  peer.asn = peer_as;
  peer.fsm = SessionFsm(config_.hold_time);
  peer.import_policy = std::move(import_policy);
  peer.export_policy = std::move(export_policy);
  peers_.push_back(std::move(peer));
  peer_metrics_.push_back(telemetry::PeerMetrics::create("bgp.peer", config_.asn, peer_as));
  return static_cast<PeerId>(peers_.size() - 1);
}

Message BgpSpeaker::make_open() const {
  OpenMessage open;
  open.asn = config_.asn;
  open.hold_time = static_cast<std::uint16_t>(config_.hold_time);
  open.router_id = config_.router_id;
  return open;
}

std::vector<Outgoing> BgpSpeaker::start_peer(PeerId peer, double now) {
  std::vector<Outgoing> out;
  Peer& p = peers_.at(peer);
  p.fsm.handle(FsmEvent::kManualStart, now);
  if (p.fsm.handle(FsmEvent::kTcpConnected, now) == FsmAction::kSendOpen) {
    out.push_back({peer, encode_message(make_open())});
  }
  return out;
}

std::vector<Outgoing> BgpSpeaker::stop_peer(PeerId peer, double now) {
  std::vector<Outgoing> out;
  Peer& p = peers_.at(peer);
  const bool was_up = p.fsm.established();
  if (p.fsm.handle(FsmEvent::kManualStop, now) == FsmAction::kSessionDown) {
    // RFC 4271: administrative shutdown sends a Cease NOTIFICATION.
    out.push_back({peer, encode_message(Message{NotificationMessage{6 /* Cease */, 0, {}}})});
    session_down(peer, out, now);
  } else if (was_up) {
    session_down(peer, out, now);
  }
  return out;
}

bool BgpSpeaker::session_established(PeerId peer) const {
  return peers_.at(peer).fsm.established();
}

FsmState BgpSpeaker::session_state(PeerId peer) const { return peers_.at(peer).fsm.state(); }

std::vector<Outgoing> BgpSpeaker::handle_bytes(PeerId from, std::span<const std::uint8_t> data,
                                               double now) {
  try {
    return handle_message(from, decode_message(data), now);
  } catch (const util::DecodeError& e) {
    ++stats_.decode_errors;
    BgpMetrics::get().decode_errors->inc();
    peer_metrics_[from].rejects->inc();
    DBGP_LOG(util::LogLevel::kWarn, kLog) << "decode error from peer " << from << ": "
                                          << e.what();
    // RFC 4271: message error -> NOTIFICATION + close.
    std::vector<Outgoing> out;
    NotificationMessage notif{1 /* Message Header Error */, 0, {}};
    out.push_back({from, encode_message(Message{notif})});
    Peer& p = peers_.at(from);
    if (p.fsm.handle(FsmEvent::kManualStop, now) == FsmAction::kSessionDown) {
      session_down(from, out, now);
    }
    return out;
  }
}

std::vector<Outgoing> BgpSpeaker::handle_message(PeerId from, const Message& m, double now) {
  std::vector<Outgoing> out;
  Peer& p = peers_.at(from);
  switch (message_type(m)) {
    case MessageType::kOpen: {
      const auto& open = std::get<OpenMessage>(m);
      p.fsm.negotiate_hold_time(open.hold_time);
      const FsmAction action = p.fsm.handle(FsmEvent::kOpenReceived, now);
      if (action == FsmAction::kSendKeepAlive) {
        out.push_back({from, encode_message(Message{KeepAliveMessage{}})});
      } else if (action == FsmAction::kSendOpen) {
        // Passive side: answer with our OPEN, then confirm with KEEPALIVE.
        out.push_back({from, encode_message(make_open())});
        out.push_back({from, encode_message(Message{KeepAliveMessage{}})});
      } else if (action == FsmAction::kSendNotificationAndDrop) {
        out.push_back({from, encode_message(Message{NotificationMessage{6, 0, {}}})});
      }
      break;
    }
    case MessageType::kKeepAlive: {
      const FsmAction action = p.fsm.handle(FsmEvent::kKeepAliveReceived, now);
      if (action == FsmAction::kSessionUp) {
        DBGP_LOG(util::LogLevel::kInfo, kLog)
            << "AS" << config_.asn << ": session up with peer " << from;
        send_full_table(from, out, now);
      }
      break;
    }
    case MessageType::kUpdate: {
      const FsmAction action = p.fsm.handle(FsmEvent::kUpdateReceived, now);
      if (action == FsmAction::kSendNotificationAndDrop) {
        out.push_back(
            {from, encode_message(Message{NotificationMessage{5 /* FSM error */, 0, {}}})});
        break;
      }
      auto more = process_update(from, std::get<UpdateMessage>(m), now);
      out.insert(out.end(), std::make_move_iterator(more.begin()),
                 std::make_move_iterator(more.end()));
      break;
    }
    case MessageType::kNotification: {
      if (p.fsm.handle(FsmEvent::kNotificationReceived, now) == FsmAction::kSessionDown) {
        session_down(from, out, now);
      }
      break;
    }
    case MessageType::kRouteRefresh: {
      // RFC 2918: resend our Adj-RIB-Out toward this peer from scratch.
      if (!p.fsm.established()) {
        out.push_back(
            {from, encode_message(Message{NotificationMessage{5 /* FSM error */, 0, {}}})});
        break;
      }
      ++stats_.refreshes_received;
      BgpMetrics::get().refreshes_received->inc();
      adj_rib_out_.clear_peer(from);
      p.pending.clear();
      send_full_table(from, out, now);
      break;
    }
  }
  return out;
}

std::vector<Outgoing> BgpSpeaker::request_refresh(PeerId peer, double /*now*/) {
  std::vector<Outgoing> out;
  if (peers_.at(peer).fsm.established()) {
    out.push_back({peer, encode_message(Message{RouteRefreshMessage{}})});
  }
  return out;
}

bool BgpSpeaker::stage_withdraw(PeerId from, const net::Prefix& prefix) {
  ++stats_.prefixes_processed;
  BgpMetrics::get().prefixes_processed->inc();
  peer_metrics_[from].withdraws_in->inc();
  return adj_rib_in_.remove(from, prefix);
}

bool BgpSpeaker::stage_nlri(PeerId from, const net::Prefix& prefix,
                            const PathAttributes& update_attrs) {
  ++stats_.prefixes_processed;
  BgpMetrics::get().prefixes_processed->inc();
  Peer& p = peers_.at(from);
  AttrBuilder builder(update_attrs);
  // RFC 4271 loop detection: our own AS in the path means discard.
  if (builder.attrs().as_path.contains(config_.asn)) {
    ++stats_.routes_rejected_by_loop;
    BgpMetrics::get().routes_rejected_by_loop->inc();
    peer_metrics_[from].rejects->inc();
    return adj_rib_in_.remove(from, prefix);
  }
  if (!p.import_policy.apply(prefix, builder.attrs(), config_.asn)) {
    ++stats_.routes_rejected_by_policy;
    BgpMetrics::get().routes_rejected_by_policy->inc();
    peer_metrics_[from].rejects->inc();
    // Policy reject acts as an implicit withdraw of the previous route.
    return adj_rib_in_.remove(from, prefix);
  }
  Route route;
  route.prefix = prefix;
  route.attrs = std::move(builder).intern(*interner_);
  route.from_peer = from;
  route.neighbor_as = p.asn;
  route.sequence = ++sequence_;
  adj_rib_in_.upsert(std::move(route));
  return true;
}

std::vector<Outgoing> BgpSpeaker::process_update(PeerId from, const UpdateMessage& update,
                                                 double now) {
  std::vector<Outgoing> out;
  ++stats_.updates_received;
  BgpMetrics::get().updates_received->inc();
  peer_metrics_[from].updates_in->inc();

  for (const auto& prefix : update.withdrawn) {
    if (stage_withdraw(from, prefix)) run_decision(prefix, out, now);
  }

  if (!update.attributes) return out;
  for (const auto& prefix : update.nlri) {
    if (stage_nlri(from, prefix, *update.attributes)) run_decision(prefix, out, now);
  }
  return out;
}

std::vector<Outgoing> BgpSpeaker::handle_batch(std::span<const Incoming> batch, double now) {
  std::vector<Outgoing> out;
  std::vector<net::Prefix> touched;  // first-touch order
  std::set<net::Prefix> seen;
  const auto touch = [&](const net::Prefix& prefix) {
    if (seen.insert(prefix).second) touched.push_back(prefix);
  };

  // Stage 1: pre-decode. Parsing is pure, so with an attached pool the
  // whole batch decodes in parallel into index-addressed slots; the
  // stateful consumption below stays strictly in arrival order either way,
  // so thread count never shows in the output.
  std::vector<std::optional<Message>> decoded(batch.size());
  const auto decode_one = [&](std::size_t i) {
    try {
      decoded[i] = decode_message(batch[i].bytes);
    } catch (const util::DecodeError&) {
      // Slot stays empty; the sequential pass runs the full error protocol.
    }
  };
  if (pool_ != nullptr && pool_->size() > 1 && batch.size() > 1) {
    pool_->parallel_for_stage("decode", 0, batch.size(), 0, decode_one);
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) decode_one(i);
  }

  for (std::size_t bi = 0; bi < batch.size(); ++bi) {
    const auto& msg = batch[bi];
    if (!decoded[bi].has_value()) {
      // Cold path: re-run the regular handler for its full error protocol.
      auto more = handle_bytes(msg.peer, msg.bytes, now);
      out.insert(out.end(), std::make_move_iterator(more.begin()),
                 std::make_move_iterator(more.end()));
      continue;
    }
    Message& m = *decoded[bi];
    if (message_type(m) != MessageType::kUpdate) {
      // Session control changes routing state synchronously; handle inline.
      auto more = handle_message(msg.peer, m, now);
      out.insert(out.end(), std::make_move_iterator(more.begin()),
                 std::make_move_iterator(more.end()));
      continue;
    }
    Peer& p = peers_.at(msg.peer);
    if (p.fsm.handle(FsmEvent::kUpdateReceived, now) == FsmAction::kSendNotificationAndDrop) {
      out.push_back(
          {msg.peer, encode_message(Message{NotificationMessage{5 /* FSM error */, 0, {}}})});
      continue;
    }
    ++stats_.updates_received;
    BgpMetrics::get().updates_received->inc();
    peer_metrics_[msg.peer].updates_in->inc();
    const auto& update = std::get<UpdateMessage>(m);
    for (const auto& prefix : update.withdrawn) {
      if (stage_withdraw(msg.peer, prefix)) touch(prefix);
    }
    if (!update.attributes) continue;
    for (const auto& prefix : update.nlri) {
      if (stage_nlri(msg.peer, prefix, *update.attributes)) touch(prefix);
    }
  }

  BgpMetrics::get().batch_size->record(static_cast<double>(touched.size()));
  for (const auto& prefix : touched) run_decision(prefix, out, now);
  return out;
}

void BgpSpeaker::run_decision(const net::Prefix& prefix, std::vector<Outgoing>& out,
                              double now) {
  // Locally originated routes always win (they model LOCAL_PREF infinity /
  // the IGP route to our own prefix).
  RouteView best;
  Route local_route;
  auto origin_it = originated_.find(prefix);
  if (origin_it != originated_.end()) {
    local_route.prefix = prefix;
    local_route.attrs = origin_it->second;
    local_route.from_peer = kInvalidPeer;
    best = RouteView{&local_route};
  } else {
    best = select_best(adj_rib_in_.candidates(prefix));
  }

  if (!best) {
    // Prefix lost entirely: withdraw everywhere it was advertised.
    if (loc_rib_.remove(prefix)) {
      for (PeerId peer = 0; peer < peers_.size(); ++peer) {
        if (!peers_[peer].fsm.established()) continue;
        if (adj_rib_out_.withdraw(peer, prefix)) {
          queue_delta(peer, prefix, std::nullopt, out, now);
        }
      }
    }
    return;
  }

  if (!loc_rib_.install(*best)) return;  // unchanged

  for (PeerId peer = 0; peer < peers_.size(); ++peer) {
    if (!peers_[peer].fsm.established()) continue;
    if (peer == best->from_peer) {
      // Split horizon: never advertise a route back to the peer it came
      // from; withdraw anything previously sent.
      if (adj_rib_out_.withdraw(peer, prefix)) {
        queue_delta(peer, prefix, std::nullopt, out, now);
      }
      continue;
    }
    AttrHandle export_attrs = export_route(peer, *best);
    if (!export_attrs) {
      if (adj_rib_out_.withdraw(peer, prefix)) {
        queue_delta(peer, prefix, std::nullopt, out, now);
      }
      continue;
    }
    if (adj_rib_out_.advertise(peer, prefix, export_attrs)) {
      queue_delta(peer, prefix, std::move(export_attrs), out, now);
    }
  }
}

AttrHandle BgpSpeaker::export_route(PeerId to, const Route& route) const {
  AttrBuilder builder(*route.attrs);
  PathAttributes& attrs = builder.attrs();
  // eBGP export: prepend own AS, set next-hop-self, strip LOCAL_PREF and MED
  // (MED is non-transitive beyond the neighboring AS).
  attrs.as_path.prepend(config_.asn);
  attrs.next_hop = config_.next_hop;
  attrs.local_pref.reset();
  if (route.from_peer != kInvalidPeer) attrs.med.reset();
  if (!peers_.at(to).export_policy.apply(route.prefix, attrs, config_.asn)) return {};
  return std::move(builder).intern(*interner_);
}

void BgpSpeaker::queue_delta(PeerId to, const net::Prefix& prefix,
                             std::optional<AttrHandle> attrs, std::vector<Outgoing>& out,
                             double now) {
  Peer& p = peers_.at(to);
  if (config_.mrai <= 0.0) {
    UpdateMessage update;
    if (attrs) {
      update.attributes = **attrs;  // canonical -> wire copy at the boundary
      update.nlri.push_back(prefix);
    } else {
      update.withdrawn.push_back(prefix);
    }
    emit_update(to, update, out);
    return;
  }
  // MRAI pacing: coalesce (latest state per prefix wins) and flush when the
  // interval allows.
  p.pending[prefix] = std::move(attrs);
  peer_metrics_[to].adj_out_depth->set(static_cast<std::int64_t>(p.pending.size()));
  if (now >= p.next_send) flush_pending(to, out, now);
}

void BgpSpeaker::flush_pending(PeerId to, std::vector<Outgoing>& out, double now) {
  Peer& p = peers_.at(to);
  if (p.pending.empty()) return;
  // One UPDATE carries all withdrawals; announces are grouped per distinct
  // attribute set (here: one message per prefix for simplicity, except the
  // shared withdrawal block).
  UpdateMessage withdraws;
  for (auto& [prefix, attrs] : p.pending) {
    if (attrs) {
      UpdateMessage update;
      update.attributes = **attrs;  // canonical -> wire copy at the boundary
      update.nlri.push_back(prefix);
      emit_update(to, update, out);
    } else {
      withdraws.withdrawn.push_back(prefix);
    }
  }
  if (!withdraws.withdrawn.empty()) emit_update(to, withdraws, out);
  p.pending.clear();
  peer_metrics_[to].adj_out_depth->set(0);
  p.next_send = now + config_.mrai;
}

void BgpSpeaker::emit_update(PeerId to, const UpdateMessage& update, std::vector<Outgoing>& out) {
  ++stats_.updates_sent;
  BgpMetrics::get().updates_sent->inc();
  peer_metrics_[to].updates_out->inc();
  if (!update.withdrawn.empty()) {
    peer_metrics_[to].withdraws_out->inc(update.withdrawn.size());
  }
  out.push_back({to, encode_message(Message{update})});
}

void BgpSpeaker::send_full_table(PeerId to, std::vector<Outgoing>& out, double now) {
  for (const auto& [prefix, route] : loc_rib_.routes()) {
    if (route.from_peer == to) continue;
    AttrHandle export_attrs = export_route(to, route);
    if (!export_attrs) continue;
    if (adj_rib_out_.advertise(to, prefix, export_attrs)) {
      queue_delta(to, prefix, std::move(export_attrs), out, now);
    }
  }
}

void BgpSpeaker::session_down(PeerId peer, std::vector<Outgoing>& out, double now) {
  DBGP_LOG(util::LogLevel::kInfo, kLog)
      << "AS" << config_.asn << ": session down with peer " << peer;
  adj_rib_out_.clear_peer(peer);
  peers_.at(peer).pending.clear();
  peer_metrics_[peer].flaps->inc();
  peer_metrics_[peer].adj_out_depth->set(0);
  for (const auto& prefix : adj_rib_in_.remove_peer(peer)) {
    run_decision(prefix, out, now);
  }
}

std::vector<Outgoing> BgpSpeaker::tick(double now) {
  std::vector<Outgoing> out;
  for (PeerId peer = 0; peer < peers_.size(); ++peer) {
    const FsmAction action = peers_[peer].fsm.tick(now);
    if (action == FsmAction::kSendKeepAlive) {
      out.push_back({peer, encode_message(Message{KeepAliveMessage{}})});
    } else if (action == FsmAction::kSessionDown) {
      NotificationMessage notif{4 /* Hold Timer Expired */, 0, {}};
      out.push_back({peer, encode_message(Message{notif})});
      session_down(peer, out, now);
    }
    // Flush MRAI-paced deltas whose interval has elapsed.
    if (peers_[peer].fsm.established() && now >= peers_[peer].next_send) {
      flush_pending(peer, out, now);
    }
  }
  return out;
}

std::vector<Outgoing> BgpSpeaker::originate(const net::Prefix& prefix, double now) {
  AttrBuilder builder;
  builder.attrs().origin = Origin::kIgp;
  builder.attrs().next_hop = config_.next_hop;
  originated_[prefix] = std::move(builder).intern(*interner_);
  std::vector<Outgoing> out;
  run_decision(prefix, out, now);
  return out;
}

std::vector<Outgoing> BgpSpeaker::withdraw_origin(const net::Prefix& prefix, double now) {
  std::vector<Outgoing> out;
  if (originated_.erase(prefix) > 0) run_decision(prefix, out, now);
  return out;
}

}  // namespace dbgp::bgp
