// A complete BGP-4 speaker: sessions, RIBs, decision process, policy, and
// update generation. One speaker models one AS border (the paper's
// experiments use one speaker per AS; centralized control per Section 3).
//
// Transport is abstracted: the speaker consumes raw message bytes and emits
// (peer, bytes) pairs; the discrete-event simulator (or a test) moves them.
// This is the baseline "Quagga" stand-in that D-BGP's Beagle-equivalent
// extends, and the unmodified comparator for the E1 stress benchmark.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "bgp/attr_interner.h"
#include "bgp/decision.h"
#include "bgp/fsm.h"
#include "bgp/message.h"
#include "bgp/policy.h"
#include "bgp/rib.h"
#include "bgp/types.h"
#include "telemetry/peer_metrics.h"
#include "util/arena.h"
#include "util/thread_pool.h"

namespace dbgp::bgp {

// One encoded message queued for a peer.
struct Outgoing {
  PeerId peer = kInvalidPeer;
  std::vector<std::uint8_t> bytes;
};

// Counters exposed for benchmarks and tests. Each field is mirrored into
// the process-wide telemetry registry under "bgp.speaker.<field>"
// (aggregated across speakers).
struct SpeakerStats {
  std::uint64_t updates_received = 0;
  std::uint64_t prefixes_processed = 0;  // NLRI + withdrawals handled
  std::uint64_t updates_sent = 0;
  std::uint64_t routes_rejected_by_policy = 0;
  std::uint64_t routes_rejected_by_loop = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t refreshes_received = 0;
};

class BgpSpeaker {
 public:
  struct Config {
    AsNumber asn = 0;
    RouterId router_id;
    std::uint32_t hold_time = 90;
    net::Ipv4Address next_hop;  // address used for next-hop-self on export
    // MinRouteAdvertisementInterval (RFC 4271 9.2.1.1), seconds. 0 disables
    // pacing (every delta is sent immediately). With a non-zero MRAI,
    // updates toward a peer are batched: at most one burst per interval,
    // carrying only the latest state per prefix (intermediate flaps are
    // coalesced away). Withdrawals are paced too (simplified from the RFC,
    // which allows immediate withdraws).
    double mrai = 0.0;
  };

  explicit BgpSpeaker(Config config);

  // Movable (containers keep pointing at the same heap-pinned arena and
  // interner, which move over with the unique_ptrs), but not move-assignable:
  // member-wise move assignment would replace the arena while arena-backed
  // maps still reference it.
  BgpSpeaker(BgpSpeaker&&) noexcept = default;
  BgpSpeaker& operator=(BgpSpeaker&&) = delete;

  // -- Configuration ------------------------------------------------------
  PeerId add_peer(AsNumber peer_as, PolicyChain import_policy = {},
                  PolicyChain export_policy = {});
  std::size_t peer_count() const noexcept { return peers_.size(); }
  AsNumber peer_as(PeerId peer) const { return peers_.at(peer).asn; }
  const Config& config() const noexcept { return config_; }
  // Attaches a pool for handle_batch's pre-decode stage. Message parsing is
  // pure, so batches decode in parallel into index-addressed slots; all
  // stateful processing stays sequential in arrival order, making the
  // thread count unobservable in the output.
  void set_thread_pool(util::ThreadPool* pool) noexcept { pool_ = pool; }

  // -- Session control ----------------------------------------------------
  // Starts the session toward `peer` (manual start + instant TCP connect in
  // the sim model); returns the OPEN to transmit.
  std::vector<Outgoing> start_peer(PeerId peer, double now);
  std::vector<Outgoing> stop_peer(PeerId peer, double now);
  bool session_established(PeerId peer) const;
  FsmState session_state(PeerId peer) const;

  // -- Input --------------------------------------------------------------
  // Feeds one complete raw message from a peer. Returns messages to send.
  std::vector<Outgoing> handle_bytes(PeerId from, std::span<const std::uint8_t> data,
                                     double now);
  // Same, for an already-decoded message (used by tests and by D-BGP).
  std::vector<Outgoing> handle_message(PeerId from, const Message& m, double now);

  // One raw message within a batch (bytes are only borrowed for the call).
  struct Incoming {
    PeerId peer = kInvalidPeer;
    std::span<const std::uint8_t> bytes;
  };
  // Batched input: UPDATEs across the whole batch are staged into the
  // Adj-RIB-In first, then the decision process runs once per touched prefix
  // (first-touch order) — a burst of k updates for one prefix costs one
  // decision instead of k. Non-UPDATE messages (session control) are
  // processed immediately, in order. Same single-threaded determinism as
  // feeding handle_bytes one message at a time.
  std::vector<Outgoing> handle_batch(std::span<const Incoming> batch, double now);

  // Drives timers; may emit KEEPALIVEs, flush MRAI-paced deltas, or tear
  // down expired sessions.
  std::vector<Outgoing> tick(double now);

  // RFC 2918: asks `peer` to resend its table (e.g., after an import-policy
  // change on our side). The peer answers with a fresh full table.
  std::vector<Outgoing> request_refresh(PeerId peer, double now);

  // -- Origination --------------------------------------------------------
  std::vector<Outgoing> originate(const net::Prefix& prefix, double now);
  std::vector<Outgoing> withdraw_origin(const net::Prefix& prefix, double now);

  // -- Inspection ---------------------------------------------------------
  const LocRib& loc_rib() const noexcept { return loc_rib_; }
  const AdjRibIn& adj_rib_in() const noexcept { return adj_rib_in_; }
  const AdjRibOut& adj_rib_out() const noexcept { return adj_rib_out_; }
  const SpeakerStats& stats() const noexcept { return stats_; }
  const AttrInterner& attr_interner() const noexcept { return *interner_; }
  const util::RibArena& rib_arena() const noexcept { return *arena_; }

 private:
  struct Peer {
    AsNumber asn = 0;
    SessionFsm fsm;
    PolicyChain import_policy;
    PolicyChain export_policy;
    // MRAI state: when we may next send, and the coalesced pending deltas
    // (value = interned attributes to announce; nullopt = withdraw).
    double next_send = 0.0;
    std::map<net::Prefix, std::optional<AttrHandle>> pending;
  };

  std::vector<Outgoing> process_update(PeerId from, const UpdateMessage& update, double now);
  // Stages one withdrawal / one NLRI into the Adj-RIB-In; returns true when
  // the decision process must run for the prefix. Shared by the immediate
  // (process_update) and batched (handle_batch) paths.
  bool stage_withdraw(PeerId from, const net::Prefix& prefix);
  bool stage_nlri(PeerId from, const net::Prefix& prefix, const PathAttributes& update_attrs);
  // Re-runs the decision process for `prefix`; queues deltas to all peers.
  void run_decision(const net::Prefix& prefix, std::vector<Outgoing>& out, double now);
  // Builds export attributes (policy, next-hop-self, AS prepend) for a peer
  // and interns them; returns a null handle if export policy rejects.
  AttrHandle export_route(PeerId to, const Route& route) const;
  // Queues one announce (attrs) or withdraw (nullopt) toward a peer,
  // applying MRAI pacing.
  void queue_delta(PeerId to, const net::Prefix& prefix, std::optional<AttrHandle> attrs,
                   std::vector<Outgoing>& out, double now);
  void emit_update(PeerId to, const UpdateMessage& update, std::vector<Outgoing>& out);
  // Flushes a peer's pending deltas as batched UPDATEs.
  void flush_pending(PeerId to, std::vector<Outgoing>& out, double now);
  void send_full_table(PeerId to, std::vector<Outgoing>& out, double now);
  void session_down(PeerId peer, std::vector<Outgoing>& out, double now);
  Message make_open() const;

  Config config_;
  // Declared (and so constructed) before the RIBs that allocate from them;
  // heap-pinned so moving the speaker cannot invalidate container
  // allocators or interned handles.
  std::unique_ptr<util::RibArena> arena_;
  std::unique_ptr<AttrInterner> interner_;
  std::vector<Peer> peers_;
  // Labeled per-peer session counters ("bgp.peer.*|as=..,peer=.."), parallel
  // to peers_; the adj_out_depth gauge tracks the MRAI pending-queue depth.
  std::vector<telemetry::PeerMetrics> peer_metrics_;
  AdjRibIn adj_rib_in_;
  LocRib loc_rib_;
  AdjRibOut adj_rib_out_;
  std::map<net::Prefix, AttrHandle> originated_;
  std::uint64_t sequence_ = 0;
  SpeakerStats stats_;
  util::ThreadPool* pool_ = nullptr;  // pre-decode stage only; see set_thread_pool
};

}  // namespace dbgp::bgp
