// Core BGP scalar types shared across the bgp module.
#pragma once

#include <cstdint>

#include "net/ipv4.h"

namespace dbgp::bgp {

// 4-octet AS numbers (RFC 6793). 2-octet ASes are the subset <= 65535.
using AsNumber = std::uint32_t;

// AS_TRANS: placeholder advertised in OPEN by 4-octet-AS speakers when
// talking to peers that only understand 2-octet AS numbers.
inline constexpr AsNumber kAsTrans = 23456;

// BGP identifier: an IPv4 address per RFC 4271.
using RouterId = net::Ipv4Address;

// Identifies a configured peer within one speaker (dense index).
using PeerId = std::uint32_t;
inline constexpr PeerId kInvalidPeer = ~0u;

enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

inline const char* to_string(Origin origin) noexcept {
  switch (origin) {
    case Origin::kIgp: return "IGP";
    case Origin::kEgp: return "EGP";
    case Origin::kIncomplete: return "INCOMPLETE";
  }
  return "?";
}

}  // namespace dbgp::bgp
