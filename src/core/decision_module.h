// Decision-module API (Figure 5): the unit of protocol pluggability.
//
// A decision module encapsulates one protocol's path-selection algorithm and
// its protocol-specific import/export filtering. Only one module is active
// per address range at a time (Section 3.3: "only a single protocol's path
// choice can be installed in a single IP forwarding table"); inactive
// protocols' control information is passed through by the IA factory.
//
// The embedding DbgpSpeaker owns the candidate store (the IA DB) and the
// selection loop; modules contribute the protocol-specific pieces:
//   * import_filter  — accept/reject/modify incoming control info
//   * better         — the path-selection comparator
//   * annotate_export — write this protocol's control info into outgoing IAs
//   * annotate_origin — control info for locally originated prefixes
// This mirrors the paper's experience that Wiser "simply extends Beagle's
// existing BGP decision module" — most modules are a comparator plus a
// couple of descriptor read/write hooks.
#pragma once

#include <string>

#include "core/ia_db.h"
#include "ia/ids.h"

namespace dbgp::core {

// Context handed to export hooks.
struct ExportContext {
  bgp::AsNumber own_as = 0;
  ia::IslandId own_island;
  bgp::PeerId to_peer = bgp::kInvalidPeer;
  bgp::AsNumber to_peer_as = 0;
  bool to_peer_in_same_island = false;
};

class DecisionModule {
 public:
  virtual ~DecisionModule() = default;

  virtual ia::ProtocolId protocol() const noexcept = 0;
  virtual std::string name() const = 0;

  // Protocol-specific import filter (stage 3 of Figure 5). May mutate the
  // stored IA (e.g., scale Wiser costs). Returning false rejects the route
  // for this protocol's selection (it is still stored for pass-through).
  virtual bool import_filter(IaRoute& route) {
    (void)route;
    return true;
  }

  // The path-selection algorithm (stage 4): true if `a` beats `b`.
  virtual bool better(const IaRoute& a, const IaRoute& b) const = 0;

  // The step of the module's comparison at which `winner` beat `loser`
  // (precondition: better(winner, loser)). Decision audits record this as
  // the per-candidate rejection reason; modules with a multi-step ladder
  // should name the deciding rung.
  virtual std::string explain_better(const IaRoute& winner, const IaRoute& loser) const {
    (void)winner;
    (void)loser;
    return "preference";
  }

  // Protocol-specific export filter (stage 5): (re)writes this protocol's
  // descriptors in the outgoing IA. `best` is the selected incoming route
  // (already copied into `out` by the IA factory, including pass-through).
  virtual void annotate_export(const IaRoute& best, ia::IntegratedAdvertisement& out,
                               const ExportContext& ctx) {
    (void)best;
    (void)out;
    (void)ctx;
  }

  // Control information for prefixes this AS originates.
  virtual void annotate_origin(ia::IntegratedAdvertisement& out, const ExportContext& ctx) {
    (void)out;
    (void)ctx;
  }

  // Notification that the best route changed (e.g., to program a FIB).
  // `best` is nullptr when the prefix became unreachable.
  virtual void on_best_changed(const net::Prefix& prefix, const IaRoute* best) {
    (void)prefix;
    (void)best;
  }
};

}  // namespace dbgp::core
