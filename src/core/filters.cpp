#include "core/filters.h"

#include <algorithm>

namespace dbgp::core {

bool GlobalFilterChain::apply(ia::IntegratedAdvertisement& ia, const FilterContext& ctx,
                              std::string* rejected_by) const {
  for (const auto& filter : filters_) {
    if (!filter.fn(ia, ctx)) {
      if (rejected_by != nullptr) *rejected_by = filter.name;
      return false;
    }
  }
  return true;
}

GlobalFilterFn loop_detection_filter() {
  return [](ia::IntegratedAdvertisement& ia, const FilterContext& ctx) {
    return !ia.path_vector.would_loop(ctx.own_as, ctx.own_island);
  };
}

GlobalFilterFn strip_protocol_filter(ia::ProtocolId protocol) {
  return [protocol](ia::IntegratedAdvertisement& ia, const FilterContext&) {
    ia.remove_path_descriptors(protocol);
    ia.remove_island_descriptors(protocol);
    return true;
  };
}

GlobalFilterFn island_abstraction_filter(std::vector<bgp::AsNumber> members,
                                         ia::ProtocolId island_protocol) {
  return [members = std::move(members), island_protocol](ia::IntegratedAdvertisement& ia,
                                                         const FilterContext& ctx) {
    if (!ctx.ingress && ctx.own_island.valid()) {
      const std::size_t replaced =
          ia.path_vector.abstract_leading_members(ctx.own_island, members);
      if (replaced > 0) {
        // Abstracted membership hides the member list (competitive reasons,
        // Section 3.2) but still names the island and its protocol.
        ia.add_membership({ctx.own_island, {}, island_protocol});
      }
    }
    return true;
  };
}

GlobalFilterFn membership_stamp_filter(ia::ProtocolId island_protocol) {
  return [island_protocol](ia::IntegratedAdvertisement& ia, const FilterContext& ctx) {
    if (!ctx.ingress && ctx.own_island.valid()) {
      ia::IslandMembership membership;
      if (const auto* existing = ia.find_membership(ctx.own_island)) {
        membership = *existing;
      } else {
        membership.island = ctx.own_island;
        membership.protocol = island_protocol;
      }
      if (std::find(membership.members.begin(), membership.members.end(), ctx.own_as) ==
          membership.members.end()) {
        membership.members.push_back(ctx.own_as);
      }
      ia.add_membership(std::move(membership));
    }
    return true;
  };
}

GlobalFilterFn max_path_length_filter(std::size_t max_hops) {
  return [max_hops](ia::IntegratedAdvertisement& ia, const FilterContext&) {
    return ia.path_vector.hop_count() <= max_hops;
  };
}

GlobalFilterFn permitted_paths_filter(net::Prefix prefix, std::vector<RankedPath> ranked) {
  return [prefix, ranked = std::move(ranked)](ia::IntegratedAdvertisement& ia,
                                              const FilterContext&) {
    if (ia.destination != prefix) return true;
    for (const auto& path : ranked) {
      const auto& elements = ia.path_vector.elements();
      if (elements.size() != path.hops.size()) continue;
      bool match = true;
      for (std::size_t i = 0; i < elements.size(); ++i) {
        if (elements[i].kind != ia::PathElement::Kind::kAs ||
            elements[i].asn != path.hops[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        ia.baseline.local_pref = path.local_pref;
        return true;
      }
    }
    return false;
  };
}

}  // namespace dbgp::core
