// Global import/export filters (Figure 5, stage 1 and 7).
//
// Global filters enforce policies common to all protocols: loop detection,
// island-membership stamping, island abstraction, and gulf operators'
// limited control (e.g., stripping control information of protocols known to
// be problematic — Section 3.3: "they would only need to know the protocol
// ID to do so").
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "ia/integrated_advertisement.h"
#include "ia/ids.h"

namespace dbgp::core {

struct FilterContext {
  bgp::AsNumber own_as = 0;
  ia::IslandId own_island;
  bgp::PeerId peer = bgp::kInvalidPeer;  // sender (import) or receiver (export)
  bgp::AsNumber peer_as = 0;
  bool ingress = true;
};

// Returns false to drop the IA entirely; may mutate it.
using GlobalFilterFn = std::function<bool(ia::IntegratedAdvertisement&, const FilterContext&)>;

struct GlobalFilter {
  std::string name;
  GlobalFilterFn fn;
};

class GlobalFilterChain {
 public:
  void add(std::string name, GlobalFilterFn fn) { filters_.push_back({std::move(name), std::move(fn)}); }
  // Removes the first filter with this name (runtime policy reload); true if
  // one was removed. Remaining filters keep their relative order.
  bool remove(std::string_view name) {
    for (auto it = filters_.begin(); it != filters_.end(); ++it) {
      if (it->name == name) {
        filters_.erase(it);
        return true;
      }
    }
    return false;
  }
  bool has(std::string_view name) const noexcept {
    for (const auto& f : filters_) {
      if (f.name == name) return true;
    }
    return false;
  }
  // Applies filters in order; false as soon as one drops the IA. When
  // `rejected_by` is non-null and the IA is dropped, it receives the name of
  // the filter responsible (for decision audits / dbgp_explain).
  bool apply(ia::IntegratedAdvertisement& ia, const FilterContext& ctx,
             std::string* rejected_by = nullptr) const;
  std::size_t size() const noexcept { return filters_.size(); }

 private:
  std::vector<GlobalFilter> filters_;
};

// -- Built-in filters -------------------------------------------------------

// Unified loop detection over the IA path vector (G-R5). Drops IAs whose
// path already mentions our AS or island.
GlobalFilterFn loop_detection_filter();

// Strips all control information (path + island descriptors) of a protocol;
// gulf operators use this against problematic protocols. The path vector and
// baseline info are untouched, so reachability is preserved.
GlobalFilterFn strip_protocol_filter(ia::ProtocolId protocol);

// Egress filter that replaces the leading run of own-island member ASes in
// the path vector with the island ID (Section 3.2 abstraction) and records
// the membership statement.
GlobalFilterFn island_abstraction_filter(std::vector<bgp::AsNumber> members,
                                         ia::ProtocolId island_protocol);

// Egress filter for islands that keep per-AS paths visible: stamps an
// island-membership statement naming this AS as a member without collapsing
// the path vector.
GlobalFilterFn membership_stamp_filter(ia::ProtocolId island_protocol);

// Drops IAs whose path vector is longer than `max_hops` (sanity policy).
GlobalFilterFn max_path_length_filter(std::size_t max_hops);

// One permitted path for `permitted_paths_filter`: the exact AS-level path
// vector (first hop first, origin last) and the LOCAL_PREF stamped on a
// match. Higher pref = more preferred under the baseline BGP ladder.
struct RankedPath {
  std::vector<bgp::AsNumber> hops;
  std::uint32_t local_pref = 100;
};

// Permitted-path import policy for one prefix: IAs for `prefix` whose path
// vector is not exactly one of `ranked` are dropped (an implicit withdraw of
// any prior route from that peer); matches get their LOCAL_PREF overwritten
// with the rank value. IAs for other prefixes pass untouched. This is the
// Gao–Rexford-violating policy knob behind topology/dispute_wheel.h: rings
// of such filters provably oscillate.
GlobalFilterFn permitted_paths_filter(net::Prefix prefix, std::vector<RankedPath> ranked);

}  // namespace dbgp::core
