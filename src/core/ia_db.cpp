#include "core/ia_db.h"

namespace dbgp::core {

void IaDb::upsert(IaRoute route) {
  const net::Prefix prefix = route.ia.destination;
  auto& per_peer = routes_[prefix];
  auto it = per_peer.find(route.from_peer);
  if (it == per_peer.end()) {
    per_peer.emplace(route.from_peer, std::move(route));
    ++size_;
  } else {
    it->second = std::move(route);
  }
}

bool IaDb::remove(bgp::PeerId peer, const net::Prefix& prefix) {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return false;
  const bool removed = it->second.erase(peer) > 0;
  if (removed) {
    --size_;
    if (it->second.empty()) routes_.erase(it);
  }
  return removed;
}

std::vector<net::Prefix> IaDb::remove_peer(bgp::PeerId peer) {
  std::vector<net::Prefix> affected;
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->second.erase(peer) > 0) {
      --size_;
      affected.push_back(it->first);
    }
    it = it->second.empty() ? routes_.erase(it) : std::next(it);
  }
  return affected;
}

IaRoute* IaDb::find_mutable(bgp::PeerId peer, const net::Prefix& prefix) {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return nullptr;
  auto pit = it->second.find(peer);
  return pit == it->second.end() ? nullptr : &pit->second;
}

std::vector<IaRoute*> IaDb::candidates_mutable(const net::Prefix& prefix) {
  std::vector<IaRoute*> out;
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return out;
  out.reserve(it->second.size());
  for (auto& [peer, route] : it->second) out.push_back(&route);
  return out;
}

const IaRoute* IaDb::find(bgp::PeerId peer, const net::Prefix& prefix) const {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return nullptr;
  auto pit = it->second.find(peer);
  return pit == it->second.end() ? nullptr : &pit->second;
}

std::vector<const IaRoute*> IaDb::candidates(const net::Prefix& prefix) const {
  std::vector<const IaRoute*> out;
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [peer, route] : it->second) out.push_back(&route);
  return out;
}

const std::pmr::map<bgp::PeerId, IaRoute>* IaDb::candidate_map(const net::Prefix& prefix) const {
  auto it = routes_.find(prefix);
  return it == routes_.end() ? nullptr : &it->second;
}

void IaDb::clear() noexcept {
  routes_.clear();
  size_ = 0;
}

std::vector<net::Prefix> IaDb::prefixes() const {
  std::vector<net::Prefix> out;
  out.reserve(routes_.size());
  for (const auto& [prefix, routes] : routes_) out.push_back(prefix);
  return out;
}

}  // namespace dbgp::core
