// The IA DB (Figure 5): stores every Integrated Advertisement received, so
// the IA factory can provide pass-through — when a best path is selected,
// the factory re-reads the *incoming* IA for that path and copies over
// control information for protocols that were not used in selection.
#pragma once

#include <cstdint>
#include <map>
#include <memory_resource>
#include <optional>
#include <vector>

#include "bgp/types.h"
#include "ia/integrated_advertisement.h"
#include "net/ipv4.h"

namespace dbgp::core {

// One received IA plus arrival metadata.
struct IaRoute {
  ia::IntegratedAdvertisement ia;
  bgp::PeerId from_peer = bgp::kInvalidPeer;
  bgp::AsNumber neighbor_as = 0;
  std::uint64_t sequence = 0;  // arrival order; deterministic tie-break
  // Causal backlink: the telemetry span of the frame (or origination) that
  // installed this route; 0 when tracing is off. Provenance queries walk
  // these links from any RIB state back to the origination.
  std::uint64_t via_span = 0;
  // Set by the active decision module's import filter. Ineligible routes are
  // never selected but remain stored: their control information must still
  // pass through if another route drags them along, and they become
  // candidates again if the active protocol changes.
  bool eligible = true;
};

class IaDb {
 public:
  // Table storage (map nodes) comes from `arena` — the owning speaker's
  // shard-local RibArena (DESIGN.md §14). The IAs themselves hold their
  // descriptor bytes via shared (interned) OpaqueTail arenas.
  explicit IaDb(std::pmr::memory_resource* arena = std::pmr::get_default_resource())
      : routes_(arena) {}

  // Inserts or replaces the IA from (peer, prefix).
  void upsert(IaRoute route);
  // Removes (peer, prefix); true if present.
  bool remove(bgp::PeerId peer, const net::Prefix& prefix);
  // Drops everything from a peer; returns affected prefixes.
  std::vector<net::Prefix> remove_peer(bgp::PeerId peer);
  // Drops every route (crash/restart reset) without disturbing the arena
  // binding — unlike assigning a fresh IaDb, which std::pmr forbids to
  // retarget allocators.
  void clear() noexcept;

  const IaRoute* find(bgp::PeerId peer, const net::Prefix& prefix) const;
  IaRoute* find_mutable(bgp::PeerId peer, const net::Prefix& prefix);
  // All candidates for a prefix in peer order (deterministic).
  std::vector<const IaRoute*> candidates(const net::Prefix& prefix) const;
  std::vector<IaRoute*> candidates_mutable(const net::Prefix& prefix);
  // Allocation-free view of the same candidates: the per-peer map for a
  // prefix, nullptr when the prefix is unknown. Iteration order (peer id)
  // matches candidates(); the pointer is invalidated by upsert/remove. The
  // decision hot path iterates this instead of materializing a vector.
  const std::pmr::map<bgp::PeerId, IaRoute>* candidate_map(const net::Prefix& prefix) const;
  // All prefixes currently known (for full-table dumps to new peers).
  std::vector<net::Prefix> prefixes() const;

  std::size_t size() const noexcept { return size_; }

 private:
  std::pmr::map<net::Prefix, std::pmr::map<bgp::PeerId, IaRoute>> routes_;
  std::size_t size_ = 0;
};

}  // namespace dbgp::core
