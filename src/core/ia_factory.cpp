#include "core/ia_factory.h"

namespace dbgp::core {

ia::IntegratedAdvertisement IaFactory::create_from_best(const IaRoute& best,
                                                        DecisionModule* active,
                                                        const ExportContext& ctx) const {
  // Pass-through: start from the incoming IA so unused protocols' control
  // information (path descriptors, island descriptors, memberships) is
  // copied verbatim into the new advertisement.
  ia::IntegratedAdvertisement out = best.ia;

  // Baseline updates common to every protocol.
  if (params_.prepend_own_as) out.path_vector.prepend_as(params_.own_as);
  out.baseline.as_path = out.path_vector.to_bgp_as_path();
  out.baseline.next_hop = params_.next_hop;
  out.baseline.local_pref.reset();
  out.baseline.med.reset();

  // Active protocol rewrites its own control information.
  if (active != nullptr) active->annotate_export(best, out, ctx);
  return out;
}

ia::IntegratedAdvertisement IaFactory::create_origin(const net::Prefix& prefix,
                                                     DecisionModule* active,
                                                     const ExportContext& ctx) const {
  ia::IntegratedAdvertisement out;
  out.destination = prefix;
  if (params_.prepend_own_as) out.path_vector.prepend_as(params_.own_as);
  out.baseline.origin = bgp::Origin::kIgp;
  out.baseline.as_path = out.path_vector.to_bgp_as_path();
  out.baseline.next_hop = params_.next_hop;
  if (active != nullptr) active->annotate_origin(out, ctx);
  return out;
}

}  // namespace dbgp::core
