// The IA factory (Figure 5, stage 6).
//
// Creates outgoing IAs for selected best paths. Its defining behaviour is
// *pass-through*: the new IA starts as a copy of the stored incoming IA for
// the chosen best path, so every protocol's control information survives
// even when this speaker does not understand it. The factory then applies
// the baseline updates every D-BGP hop must make (path-vector prepend,
// next-hop rewrite) and hands the result to the active decision module's
// export hook for protocol-specific rewriting.
//
// The factory is deliberately agnostic to per-protocol information — it
// "only needs to know the active protocols' IDs to do its job".
#pragma once

#include "core/decision_module.h"
#include "core/ia_db.h"
#include "ia/integrated_advertisement.h"

namespace dbgp::core {

class IaFactory {
 public:
  struct Params {
    bgp::AsNumber own_as = 0;
    ia::IslandId own_island;
    net::Ipv4Address next_hop;
    // Islands that keep per-AS paths list themselves in the path vector;
    // islands that abstract rely on the egress global filter instead.
    bool prepend_own_as = true;
  };

  explicit IaFactory(Params params) : params_(params) {}

  // Builds the outgoing IA for a selected best route. `active` may be null
  // (pure gulf AS: pass-through only). Pass-through happens here: `best.ia`
  // is the stored incoming advertisement from the IA DB.
  ia::IntegratedAdvertisement create_from_best(const IaRoute& best, DecisionModule* active,
                                               const ExportContext& ctx) const;

  // Builds the IA for a locally originated prefix.
  ia::IntegratedAdvertisement create_origin(const net::Prefix& prefix, DecisionModule* active,
                                            const ExportContext& ctx) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace dbgp::core
