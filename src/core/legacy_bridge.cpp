#include "core/legacy_bridge.h"

#include "bgp/path_attributes.h"

namespace dbgp::core {

ia::IntegratedAdvertisement ia_from_attributes(const net::Prefix& prefix,
                                               const bgp::PathAttributes& attrs) {
  ia::IntegratedAdvertisement out;
  out.destination = prefix;
  out.baseline = attrs;
  // Rebuild the unified path vector from the AS_PATH: sequences become AS
  // entries, AS_SETs stay sets.
  for (const auto& segment : attrs.as_path.segments()) {
    if (segment.type == bgp::AsPathSegment::Type::kSequence) {
      for (bgp::AsNumber asn : segment.asns) {
        out.path_vector.elements().push_back(ia::PathElement::as(asn));
      }
    } else {
      out.path_vector.elements().push_back(ia::PathElement::as_set(segment.asns));
    }
  }
  return out;
}

bgp::UpdateMessage LegacyBridge::ia_to_update(const ia::IntegratedAdvertisement& ia) {
  bgp::UpdateMessage update;
  update.nlri.push_back(ia.destination);

  bgp::PathAttributes attrs = ia.baseline;
  // The legacy world routes on the AS_PATH; make sure it reflects the
  // current path vector (island entries collapse per to_bgp_as_path).
  attrs.as_path = ia.path_vector.to_bgp_as_path();

  // Try to carry the full IA in the transit attribute.
  auto encoded = ia::encode_ia(ia, codec_);
  bgp::UnknownAttribute transit;
  transit.flags = bgp::kAttrFlagOptional | bgp::kAttrFlagTransitive;
  transit.type = kDbgpTransitAttr;
  transit.value = std::move(encoded);
  attrs.unknown.push_back(std::move(transit));
  update.attributes = attrs;
  try {
    (void)bgp::encode_message(bgp::Message{update});
    ++stats_.packed;
    return update;
  } catch (const util::DecodeError&) {
    // Too large for RFC 4271's 4096-byte limit: drop the extras and send
    // baseline reachability only (the paper's transitional fallback).
    ++stats_.dropped_oversize;
    attrs.unknown.pop_back();
    update.attributes = std::move(attrs);
    return update;
  }
}

std::vector<ia::IntegratedAdvertisement> LegacyBridge::update_to_ia(
    const bgp::UpdateMessage& update) {
  std::vector<ia::IntegratedAdvertisement> out;
  if (!update.attributes) return out;

  // Look for the D-BGP transit attribute among the pass-through unknowns.
  const bgp::UnknownAttribute* transit = nullptr;
  for (const auto& attr : update.attributes->unknown) {
    if (attr.type == kDbgpTransitAttr) {
      transit = &attr;
      break;
    }
  }

  for (const auto& prefix : update.nlri) {
    if (transit != nullptr) {
      try {
        ia::IntegratedAdvertisement ia = ia::decode_ia(transit->value);
        // Trust the wire prefix over the embedded one (a legacy speaker may
        // have split the NLRI) and refresh the baseline attributes, which
        // legacy hops legitimately modified (AS_PATH prepends, next hop).
        ia.destination = prefix;
        ia.baseline = *update.attributes;
        ia.baseline.unknown.clear();  // the transit attr itself is consumed
        // Extend the path vector with legacy hops that prepended themselves
        // to the AS_PATH but could not touch the path vector.
        const auto synthesized = ia_from_attributes(prefix, *update.attributes);
        if (synthesized.path_vector.hop_count() > ia.path_vector.hop_count()) {
          const auto& full = synthesized.path_vector.elements();
          const std::size_t extra = full.size() - ia.path_vector.elements().size();
          ia.path_vector.elements().insert(ia.path_vector.elements().begin(),
                                           full.begin(),
                                           full.begin() + static_cast<std::ptrdiff_t>(extra));
        }
        ++stats_.recovered;
        out.push_back(std::move(ia));
        continue;
      } catch (const util::DecodeError&) {
        ++stats_.malformed;
        // fall through to baseline synthesis
      }
    }
    auto ia = ia_from_attributes(prefix, *update.attributes);
    ia.baseline.unknown.clear();
    ++stats_.synthesized;
    out.push_back(std::move(ia));
  }
  return out;
}

}  // namespace dbgp::core
