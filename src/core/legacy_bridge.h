// The D-BGP transition phase (Section 3.5, "Deployment of D-BGP itself",
// and Section 7's observation that optional transitive attributes are "a
// promising avenue for deploying D-BGP").
//
// While D-BGP is only partially deployed, D-BGP speakers must interoperate
// with legacy BGP-4 speakers. The bridge converts between the two worlds:
//
//   * ia_to_update: packs an IA into a plain RFC 4271 UPDATE. The IA's
//     multi-protocol extras ride in optional transitive attribute
//     kDbgpTransitAttr, so legacy speakers pass them through untouched. If
//     the encoded IA would blow BGP's 4096-byte message limit the extras
//     are dropped (the paper's fallback: "D-BGP speakers could simply drop
//     IAs' extra fields before sending advertisements to legacy ones") and
//     only baseline reachability survives.
//   * update_to_ia: recovers the IA on the far side — either the full one
//     from the transit attribute, or a baseline-only IA synthesized from
//     the UPDATE's path attributes (AS_PATH becomes the path vector).
//
// This is exactly how two D-BGP islands separated by a legacy-BGP gulf keep
// exchanging new protocols' control information before the gulf upgrades.
#pragma once

#include <optional>

#include "bgp/message.h"
#include "ia/codec.h"
#include "ia/integrated_advertisement.h"

namespace dbgp::core {

// Attribute type code used for the IA payload (from the "reserved for
// development" range legacy implementations treat as opaque).
inline constexpr std::uint8_t kDbgpTransitAttr = 240;

struct BridgeStats {
  std::uint64_t packed = 0;           // IAs carried in attr 240
  std::uint64_t dropped_oversize = 0; // extras dropped: message would exceed 4 KB
  std::uint64_t recovered = 0;        // IAs recovered from attr 240
  std::uint64_t synthesized = 0;      // baseline-only IAs built from plain updates
  std::uint64_t malformed = 0;        // attr 240 present but undecodable
};

class LegacyBridge {
 public:
  explicit LegacyBridge(ia::CodecOptions codec = {}) : codec_(codec) {}

  // Converts an IA into a legacy UPDATE announcing ia.destination. Extras
  // are dropped (not an error) when they cannot fit; the returned UPDATE is
  // always encodable within kMaxMessageSize.
  bgp::UpdateMessage ia_to_update(const ia::IntegratedAdvertisement& ia);

  // Converts an UPDATE received from a legacy peer back into IAs, one per
  // NLRI prefix. Withdrawals are reported separately by the caller.
  std::vector<ia::IntegratedAdvertisement> update_to_ia(const bgp::UpdateMessage& update);

  const BridgeStats& stats() const noexcept { return stats_; }

 private:
  ia::CodecOptions codec_;
  BridgeStats stats_;
};

// Builds a baseline-only IA from plain BGP path attributes (the synthesized
// path vector mirrors the AS_PATH). Exposed for reuse by redistribution.
ia::IntegratedAdvertisement ia_from_attributes(const net::Prefix& prefix,
                                               const bgp::PathAttributes& attrs);

}  // namespace dbgp::core
