#include "core/lookup_service.h"

namespace dbgp::core {

void LookupService::put(const std::string& key, std::vector<std::uint8_t> value) {
  ++puts_;
  store_[key] = std::move(value);
}

std::optional<std::vector<std::uint8_t>> LookupService::get(const std::string& key) const {
  ++gets_;
  auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  return it->second;
}

bool LookupService::erase(const std::string& key) { return store_.erase(key) > 0; }

std::vector<std::string> LookupService::keys_with_prefix(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = store_.lower_bound(prefix); it != store_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::string LookupService::ia_key(std::uint32_t speaker_as, std::uint32_t peer_as,
                                  const net::Prefix& prefix) {
  return "ia/" + std::to_string(speaker_as) + "/" + std::to_string(peer_as) + "/" +
         prefix.to_string();
}

}  // namespace dbgp::core
