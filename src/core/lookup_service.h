// Out-of-band lookup service (Section 5: Beagle "disseminates IAs
// out-of-band by storing them in a lookup service"; Section 3.4: Wiser
// cost-exchange portals and MIRO service portals).
//
// A LookupService is an addressable key/value store reachable at an IPv4
// address. Islands publish full IAs, portal records, or negotiation state;
// remote speakers fetch by key. Access counters let the overhead benchmark
// charge the "constant performance penalty due to the overhead of external
// accesses" the paper attributes to out-of-band dissemination (CF-R2).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"

namespace dbgp::core {

class LookupService {
 public:
  explicit LookupService(net::Ipv4Address address = net::Ipv4Address(0x0a000001))
      : address_(address) {}

  net::Ipv4Address address() const noexcept { return address_; }

  void put(const std::string& key, std::vector<std::uint8_t> value);
  std::optional<std::vector<std::uint8_t>> get(const std::string& key) const;
  bool erase(const std::string& key);
  // All keys with a given prefix (portal discovery, debugging).
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  std::uint64_t put_count() const noexcept { return puts_; }
  std::uint64_t get_count() const noexcept { return gets_; }
  std::size_t size() const noexcept { return store_.size(); }

  // Canonical key for the full-IA record advertised by `speaker_as` for
  // `prefix` toward `peer_as` (Beagle's out-of-band IA exchange).
  static std::string ia_key(std::uint32_t speaker_as, std::uint32_t peer_as,
                            const net::Prefix& prefix);

 private:
  net::Ipv4Address address_;
  std::map<std::string, std::vector<std::uint8_t>> store_;
  mutable std::uint64_t gets_ = 0;
  std::uint64_t puts_ = 0;
};

}  // namespace dbgp::core
