#include "core/speaker.h"

#include <algorithm>
#include <string>

#include "telemetry/metrics.h"
#include "telemetry/timer.h"
#include "util/bytes.h"
#include "util/logging.h"

namespace dbgp::core {

namespace {
constexpr auto kLog = "dbgp.speaker";

// Registry mirrors of DbgpStats, aggregated across every speaker in the
// process (the per-speaker struct stays authoritative for tests). Pointers
// are resolved once; each update is a relaxed atomic add.
struct SpeakerMetrics {
  telemetry::Counter* ias_received;
  telemetry::Counter* ias_sent;
  telemetry::Counter* withdraws_received;
  telemetry::Counter* withdraws_sent;
  telemetry::Counter* dropped_by_global_filter;
  telemetry::Counter* rejected_by_module;
  telemetry::Counter* lookup_fetches;
  telemetry::Counter* lookup_misses;
  telemetry::Counter* bytes_sent;
  telemetry::Counter* bytes_received;
  telemetry::Histogram* frame_seconds;
  telemetry::Histogram* batch_size;

  static SpeakerMetrics& get() {
    static SpeakerMetrics m = [] {
      auto& reg = telemetry::MetricsRegistry::global();
      return SpeakerMetrics{&reg.counter("dbgp.speaker.ias_received"),
                            &reg.counter("dbgp.speaker.ias_sent"),
                            &reg.counter("dbgp.speaker.withdraws_received"),
                            &reg.counter("dbgp.speaker.withdraws_sent"),
                            &reg.counter("dbgp.speaker.dropped_by_global_filter"),
                            &reg.counter("dbgp.speaker.rejected_by_module"),
                            &reg.counter("dbgp.speaker.lookup_fetches"),
                            &reg.counter("dbgp.speaker.lookup_misses"),
                            &reg.counter("dbgp.speaker.bytes_sent"),
                            &reg.counter("dbgp.speaker.bytes_received"),
                            &reg.histogram("dbgp.speaker.frame_seconds"),
                            &reg.histogram(
                                "dbgp.speaker.batch_size",
                                telemetry::Histogram::exponential_bounds(1.0, 4096.0, 2.0))};
    }();
    return m;
  }
};

// Shard-pipeline telemetry (dbgp.shard.*). Stage wall times arrive through
// the thread pool's stage observer; the commit stage is timed directly since
// it never leaves the flushing thread.
struct ShardMetrics {
  telemetry::Counter* flushes;
  telemetry::Histogram* batch_size;       // per-shard slice of one flush
  telemetry::Gauge* imbalance_permille;   // max shard slice / mean, x1000
  telemetry::Histogram* commit_wall_s;

  static ShardMetrics& get() {
    static ShardMetrics m = [] {
      auto& reg = telemetry::MetricsRegistry::global();
      return ShardMetrics{
          &reg.counter("dbgp.shard.flushes"),
          &reg.histogram("dbgp.shard.batch_size",
                         telemetry::Histogram::exponential_bounds(1.0, 4096.0, 2.0)),
          &reg.gauge("dbgp.shard.imbalance_permille"),
          &reg.histogram("dbgp.shard.stage_wall_s.commit",
                         telemetry::Histogram::default_latency_bounds())};
    }();
    return m;
  }
};

// Pool stage observer: routes parallel_for_stage wall times into
// dbgp.shard.stage_wall_s.<stage> histograms. Name lookup is per flush, not
// per prefix, so the registry mutex is off the hot path.
void record_stage_wall(const char* stage, std::uint64_t wall_ns) {
  telemetry::MetricsRegistry::global()
      .histogram(std::string("dbgp.shard.stage_wall_s.") + stage,
                 telemetry::Histogram::default_latency_bounds())
      .record(static_cast<double>(wall_ns) * 1e-9);
}
}  // namespace

DbgpSpeaker::DbgpSpeaker(DbgpConfig config, LookupService* lookup)
    : config_(std::move(config)),
      lookup_(lookup),
      factory_(IaFactory::Params{config_.asn, config_.island, config_.next_hop,
                                 /*prepend_own_as=*/true}),
      arena_(std::make_unique<util::RibArena>()),
      ia_db_(arena_->resource()),
      selected_(arena_->resource()),
      adj_out_(arena_->resource()) {
  // Default global filters per Figure 5: unified loop detection on import;
  // island handling on export.
  import_filters_.add("loop-detection", loop_detection_filter());
  if (config_.island.valid()) {
    if (config_.abstract_island) {
      export_filters_.add("island-abstraction",
                          island_abstraction_filter(config_.island_members,
                                                    config_.island_protocol));
    } else {
      export_filters_.add("membership-stamp", membership_stamp_filter(config_.island_protocol));
    }
  }
}

bgp::PeerId DbgpSpeaker::add_peer(bgp::AsNumber peer_as, bool same_island) {
  peers_.push_back({peer_as, same_island});
  peer_metrics_.push_back(telemetry::PeerMetrics::create("dbgp.peer", config_.asn, peer_as));
  return static_cast<bgp::PeerId>(peers_.size() - 1);
}

void DbgpSpeaker::add_module(std::unique_ptr<DecisionModule> module) {
  modules_.push_back(std::move(module));
}

DecisionModule* DbgpSpeaker::module(ia::ProtocolId protocol) const {
  for (const auto& m : modules_) {
    if (m->protocol() == protocol) return m.get();
  }
  return nullptr;
}

void DbgpSpeaker::set_active_protocol(const net::Prefix& range, ia::ProtocolId protocol) {
  active_ranges_.insert(range, protocol);
}

ia::ProtocolId DbgpSpeaker::active_protocol_for(const net::Prefix& prefix) const {
  const ia::ProtocolId* assigned = active_ranges_.longest_match(prefix.address());
  return assigned != nullptr ? *assigned : config_.active_protocol;
}

DecisionModule* DbgpSpeaker::active_module(const net::Prefix& prefix) const {
  return module(active_protocol_for(prefix));
}

// -- Sharded parallel pipeline ------------------------------------------------

void DbgpSpeaker::set_parallel(util::ThreadPool* pool, std::size_t shards) {
  pool_ = pool;
  shards_ = pool_ == nullptr ? 1 : (shards == 0 ? pool_->size() : shards);
  if (shards_ == 0) shards_ = 1;
  shard_caches_.assign(shards_, ia::FrameCache{});
  if (pool_ != nullptr) pool_->set_stage_observer(&record_stage_wall);
}

std::size_t DbgpSpeaker::shard_of(const net::Prefix& prefix, std::size_t shards) noexcept {
  return shards <= 1 ? 0 : net::PrefixHash{}(prefix) % shards;
}

bool DbgpSpeaker::parallel_enabled() const noexcept {
  return pool_ != nullptr && pool_->size() > 1 && shards_ > 1 && causal_ == nullptr &&
         config_.dissemination == Dissemination::kInBand;
}

bool DbgpSpeaker::parallel_active() const noexcept { return parallel_enabled(); }

bool DbgpSpeaker::defer_decode() const noexcept {
  // Deferred decode changes *when* staging runs, so it is confined to
  // explicit-flush configurations: with auto-flush (max_batch > 0) the
  // trigger counts staged prefixes, which requires staging at enqueue time.
  return parallel_enabled() && config_.max_batch == 0;
}

void DbgpSpeaker::drain_staged() {
  if (staged_.empty()) return;
  // Parallel decode: announce frames carry their IA inline; everything else
  // (withdraws, notices) is trivially cheap and decodes during staging.
  const auto decode_one = [this](std::size_t i) {
    StagedFrame& s = staged_[i];
    const auto& bytes = *s.frame;
    if (bytes.empty() || static_cast<FrameType>(bytes[0]) != FrameType::kAnnounce) return;
    try {
      s.ia.emplace(ia::decode_ia(std::span<const std::uint8_t>(bytes).subspan(1)));
    } catch (const util::DecodeError&) {
      // Corrupted frame (chaos profiles). The eager path throws out of
      // enqueue_frame per frame; here the error may surface on a pool
      // thread, so it is recorded and counted instead of thrown.
      s.bad = true;
    }
  };
  if (pool_ != nullptr && pool_->size() > 1) {
    pool_->parallel_for_stage("decode", 0, staged_.size(), 0, decode_one);
  } else {
    for (std::size_t i = 0; i < staged_.size(); ++i) decode_one(i);
  }
  // Sequential staging in arrival order: filters, sequence numbers, and the
  // IA DB upsert are order-sensitive and stay exactly as the eager path.
  for (StagedFrame& s : staged_) {
    std::optional<net::Prefix> prefix;
    if (s.bad) {
      // stage_frame counts bytes before decoding, so a rejected frame still
      // counts its wire bytes — identical to the eager path's stats.
      stats_.bytes_received += s.frame->size();
      SpeakerMetrics::get().bytes_received->inc(s.frame->size());
      peer_metrics_[s.from].rejects->inc();
      ++deferred_rejects_;
      continue;
    }
    try {
      if (s.ia.has_value()) {
        stats_.bytes_received += s.frame->size();
        SpeakerMetrics::get().bytes_received->inc(s.frame->size());
        prefix = stage_ia(s.from, std::move(*s.ia), s.cause);
      } else {
        prefix = stage_frame(s.from, *s.frame, s.cause);
      }
    } catch (const util::DecodeError&) {
      // Corrupted withdraw/notice (announce corruption was caught above).
      // One bad frame must not abort the rest of the drain: each eager
      // enqueue_frame call fails independently, so each staged frame does
      // too.
      ++deferred_rejects_;
      continue;
    }
    if (prefix && batch_seen_.insert(*prefix).second) batch_.push_back(*prefix);
  }
  staged_.clear();
}

// -- Frame codec -------------------------------------------------------------

std::vector<std::uint8_t> DbgpSpeaker::encode_announce(const ia::IntegratedAdvertisement& ia,
                                                       const ia::CodecOptions& codec) {
  util::ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(FrameType::kAnnounce));
  w.put_bytes(ia::encode_ia(ia, codec));
  return w.take();
}

namespace {
std::vector<std::uint8_t> encode_prefix_frame(FrameType type, const net::Prefix& prefix) {
  util::ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_u32(prefix.address().value());
  w.put_u8(prefix.length());
  return w.take();
}
}  // namespace

std::vector<std::uint8_t> DbgpSpeaker::encode_withdraw(const net::Prefix& prefix) {
  return encode_prefix_frame(FrameType::kWithdraw, prefix);
}

std::vector<std::uint8_t> DbgpSpeaker::encode_notice(const net::Prefix& prefix) {
  return encode_prefix_frame(FrameType::kNotice, prefix);
}

// -- Input -------------------------------------------------------------------

std::vector<DbgpOutgoing> DbgpSpeaker::handle_frame(bgp::PeerId from,
                                                    std::span<const std::uint8_t> bytes,
                                                    telemetry::SpanId cause) {
  telemetry::ScopedTimer frame_timer(SpeakerMetrics::get().frame_seconds);
  drain_staged();  // deferred frames arrived first; stage them first
  std::vector<DbgpOutgoing> out;
  if (auto prefix = stage_frame(from, bytes, cause)) run_decision(*prefix, out);
  return out;
}

std::vector<DbgpOutgoing> DbgpSpeaker::handle_ia(bgp::PeerId from,
                                                 ia::IntegratedAdvertisement ia,
                                                 telemetry::SpanId cause) {
  drain_staged();
  std::vector<DbgpOutgoing> out;
  if (auto prefix = stage_ia(from, std::move(ia), cause)) run_decision(*prefix, out);
  return out;
}

std::vector<DbgpOutgoing> DbgpSpeaker::enqueue_frame(bgp::PeerId from,
                                                     std::span<const std::uint8_t> bytes,
                                                     telemetry::SpanId cause) {
  if (defer_decode()) {
    return enqueue_frame(from, ia::make_shared_frame({bytes.begin(), bytes.end()}), cause);
  }
  telemetry::ScopedTimer frame_timer(SpeakerMetrics::get().frame_seconds);
  std::vector<DbgpOutgoing> out;
  if (auto prefix = stage_frame(from, bytes, cause)) {
    if (batch_seen_.insert(*prefix).second) batch_.push_back(*prefix);
  }
  if (config_.max_batch > 0 && batch_.size() >= config_.max_batch) flush_into(out);
  return out;
}

std::vector<DbgpOutgoing> DbgpSpeaker::enqueue_frame(bgp::PeerId from, ia::SharedFrame frame,
                                                     telemetry::SpanId cause) {
  if (defer_decode()) {
    staged_.push_back({from, std::move(frame), cause, std::nullopt});
    return {};
  }
  return enqueue_frame(from, std::span<const std::uint8_t>(*frame), cause);
}

std::vector<DbgpOutgoing> DbgpSpeaker::flush() {
  std::vector<DbgpOutgoing> out;
  flush_into(out);
  return out;
}

void DbgpSpeaker::flush_into(std::vector<DbgpOutgoing>& out) {
  drain_staged();
  if (batch_.empty()) return;
  SpeakerMetrics::get().batch_size->record(static_cast<double>(batch_.size()));
  if (parallel_enabled()) {
    ShardMetrics::get().flushes->inc();
    // Stage 2a: per-shard decision planning. Each shard owns a slice of the
    // batch; plans read only the frozen pre-batch state (IA DB, Loc-RIB,
    // adj-out) plus their shard-private FrameCache, so no two tasks touch
    // the same mutable data.
    std::vector<std::vector<std::size_t>> shard_work(shards_);
    for (std::size_t i = 0; i < batch_.size(); ++i) {
      shard_work[shard_of(batch_[i], shards_)].push_back(i);
    }
    std::size_t max_slice = 0;
    for (const auto& slice : shard_work) {
      ShardMetrics::get().batch_size->record(static_cast<double>(slice.size()));
      max_slice = std::max(max_slice, slice.size());
    }
    ShardMetrics::get().imbalance_permille->set(static_cast<std::int64_t>(
        max_slice * 1000 * shards_ / batch_.size()));
    std::vector<DecisionPlan> plans(batch_.size());
    pool_->parallel_for_stage("decision", 0, shards_, 1, [&](std::size_t s) {
      for (std::size_t idx : shard_work[s]) {
        plans[idx] = plan_decision(batch_[idx], shard_caches_[s]);
      }
    });
    // Stage 3: sequential commit in global first-touch order — the only
    // place shared state mutates, which is what makes the thread and shard
    // counts unobservable in the output.
    telemetry::ScopedTimer commit_timer(ShardMetrics::get().commit_wall_s);
    for (DecisionPlan& plan : plans) commit_plan(plan, out);
  } else {
    // First-touch order: decisions run in the order prefixes first appeared,
    // so a batched run remains deterministic for a given arrival sequence.
    for (const auto& prefix : batch_) run_decision(prefix, out);
  }
  batch_.clear();
  batch_seen_.clear();
}

std::optional<net::Prefix> DbgpSpeaker::stage_frame(bgp::PeerId from,
                                                    std::span<const std::uint8_t> bytes,
                                                    telemetry::SpanId cause) {
  stats_.bytes_received += bytes.size();
  SpeakerMetrics::get().bytes_received->inc(bytes.size());
  util::ByteReader r(bytes);
  // Undecodable input counts as a per-peer reject on every path: the eager
  // caller sees the throw, the deferred drain counts its own bad frames, and
  // both leave the same labeled counter value behind.
  try {
  const auto type = static_cast<FrameType>(r.get_u8());
  switch (type) {
    case FrameType::kAnnounce:
      return stage_ia(from, ia::decode_ia(r.get_bytes(r.remaining())), cause);
    case FrameType::kWithdraw: {
      const std::uint32_t addr = r.get_u32();
      const std::uint8_t len = r.get_u8();
      ++stats_.withdraws_received;
      SpeakerMetrics::get().withdraws_received->inc();
      peer_metrics_[from].withdraws_in->inc();
      const net::Prefix prefix(net::Ipv4Address(addr), len);
      if (ia_db_.remove(from, prefix)) {
        if (causal_ != nullptr && cause != 0) pending_cause_[prefix] = cause;
        return prefix;
      }
      return std::nullopt;
    }
    case FrameType::kNotice: {
      const std::uint32_t addr = r.get_u32();
      const std::uint8_t len = r.get_u8();
      const net::Prefix prefix(net::Ipv4Address(addr), len);
      ++stats_.lookup_fetches;
      SpeakerMetrics::get().lookup_fetches->inc();
      if (lookup_ == nullptr) {
        ++stats_.lookup_misses;
        SpeakerMetrics::get().lookup_misses->inc();
        return std::nullopt;
      }
      const auto key =
          LookupService::ia_key(peers_.at(from).asn, config_.asn, prefix);
      auto stored = lookup_->get(key);
      if (!stored) {
        ++stats_.lookup_misses;
        SpeakerMetrics::get().lookup_misses->inc();
        DBGP_LOG(util::LogLevel::kWarn, kLog)
            << "AS" << config_.asn << ": notice for " << prefix.to_string()
            << " but lookup service has no IA under " << key;
        return std::nullopt;
      }
      return stage_ia(from, ia::decode_ia(*stored), cause);
    }
  }
  throw util::DecodeError("unknown D-BGP frame type");
  } catch (const util::DecodeError&) {
    peer_metrics_[from].rejects->inc();
    throw;
  }
}

std::optional<net::Prefix> DbgpSpeaker::stage_ia(bgp::PeerId from,
                                                 ia::IntegratedAdvertisement ia,
                                                 telemetry::SpanId cause) {
  ++stats_.ias_received;
  SpeakerMetrics::get().ias_received->inc();
  peer_metrics_[from].updates_in->inc();

  // Stage 1: global import filters.
  FilterContext ctx;
  ctx.own_as = config_.asn;
  ctx.own_island = config_.island;
  ctx.peer = from;
  ctx.peer_as = peers_.at(from).asn;
  ctx.ingress = true;
  std::string rejected_by;
  if (!import_filters_.apply(ia, ctx, causal_ != nullptr ? &rejected_by : nullptr)) {
    ++stats_.dropped_by_global_filter;
    SpeakerMetrics::get().dropped_by_global_filter->inc();
    peer_metrics_[from].rejects->inc();
    telemetry::SpanId drop_span = 0;
    if (causal_ != nullptr) {
      drop_span = causal_->instant(telemetry::SpanKind::kFilter, cause, trace_now(),
                                   config_.asn, peers_.at(from).asn, "filter-drop",
                                   ia.destination.to_string(), std::move(rejected_by));
    }
    // A dropped IA acts as an implicit withdraw of the prior route.
    if (ia_db_.remove(from, ia.destination)) {
      if (drop_span != 0) pending_cause_[ia.destination] = drop_span;
      return ia.destination;
    }
    return std::nullopt;
  }

  const net::Prefix prefix = ia.destination;

  // Stages 2-3: extractor picks the active module; its import filter runs.
  IaRoute route;
  route.ia = std::move(ia);
  route.from_peer = from;
  route.neighbor_as = peers_.at(from).asn;
  route.sequence = ++sequence_;
  route.via_span = cause;
  if (DecisionModule* active = active_module(prefix)) {
    route.eligible = active->import_filter(route);
    if (!route.eligible) {
      ++stats_.rejected_by_module;
      SpeakerMetrics::get().rejected_by_module->inc();
      peer_metrics_[from].rejects->inc();
    }
  }
  // Canonicalize the descriptor tail before storing: identical tails across
  // peers/prefixes collapse onto one shared arena, and the IA lets go of its
  // whole-frame receive buffer.
  desc_interner_.intern(route.ia);
  ia_db_.upsert(std::move(route));
  if (causal_ != nullptr && cause != 0) pending_cause_[prefix] = cause;
  return prefix;
}

std::vector<DbgpOutgoing> DbgpSpeaker::peer_down(bgp::PeerId peer, telemetry::SpanId cause) {
  drain_staged();
  std::vector<DbgpOutgoing> out;
  peers_.at(peer).up = false;
  adj_out_.erase(peer);
  peer_metrics_[peer].flaps->inc();
  peer_metrics_[peer].adj_out_depth->set(0);
  external_cause_ = cause;
  for (const auto& prefix : ia_db_.remove_peer(peer)) run_decision(prefix, out);
  external_cause_ = 0;
  return out;
}

std::vector<DbgpOutgoing> DbgpSpeaker::peer_up(bgp::PeerId peer, telemetry::SpanId cause) {
  drain_staged();
  peers_.at(peer).up = true;
  external_cause_ = cause;
  auto out = sync_peer(peer);
  external_cause_ = 0;
  return out;
}

void DbgpSpeaker::reset_routes() {
  ia_db_.clear();
  selected_.clear();
  adj_out_.clear();
  batch_.clear();
  batch_seen_.clear();
  staged_.clear();
  frame_cache_.clear();
  for (ia::FrameCache& cache : shard_caches_) cache.clear();
  // Learned causal state dies with the routes; origin_span_ survives like
  // originated_ (a reboot does not re-originate).
  pending_cause_.clear();
  emit_parent_ = 0;
  for (auto& pm : peer_metrics_) pm.adj_out_depth->set(0);
}

// -- Origination ---------------------------------------------------------------

std::vector<DbgpOutgoing> DbgpSpeaker::originate(const net::Prefix& prefix,
                                                 telemetry::SpanId cause) {
  drain_staged();
  std::vector<DbgpOutgoing> out;
  originated_[prefix] = true;
  if (causal_ != nullptr) {
    // The root of a new trace: everything this advertisement causes anywhere
    // in the network shares the minted trace id.
    const telemetry::SpanId root =
        causal_->instant(telemetry::SpanKind::kOrigination, cause, trace_now(),
                         config_.asn, 0, "originate", prefix.to_string());
    origin_span_[prefix] = root;
    pending_cause_[prefix] = root;
  }
  run_decision(prefix, out);
  return out;
}

std::vector<DbgpOutgoing> DbgpSpeaker::withdraw_origin(const net::Prefix& prefix,
                                                       telemetry::SpanId cause) {
  drain_staged();
  std::vector<DbgpOutgoing> out;
  if (originated_.erase(prefix) > 0) {
    if (causal_ != nullptr) {
      // Linked to the origination so the withdrawal stays in the same trace.
      auto it = origin_span_.find(prefix);
      const telemetry::SpanId parent =
          cause != 0 ? cause : it != origin_span_.end() ? it->second : 0;
      pending_cause_[prefix] =
          causal_->instant(telemetry::SpanKind::kOrigination, parent, trace_now(),
                           config_.asn, 0, "withdraw-origin", prefix.to_string());
      if (it != origin_span_.end()) origin_span_.erase(it);
    }
    run_decision(prefix, out);
  }
  return out;
}

// -- Decision ------------------------------------------------------------------

void DbgpSpeaker::run_decision(const net::Prefix& prefix, std::vector<DbgpOutgoing>& out) {
  DecisionModule* active = active_module(prefix);

  // Open the decision span, parented to the staged update that triggered
  // this run (or to the external cause: a chaos event, a protocol switch).
  const bool tracing = causal_ != nullptr;
  telemetry::SpanId dspan = 0;
  telemetry::DecisionAudit audit;
  double t = 0.0;
  if (tracing) {
    t = trace_now();
    telemetry::SpanId parent = external_cause_;
    if (auto it = pending_cause_.find(prefix); it != pending_cause_.end()) {
      parent = it->second;
      pending_cause_.erase(it);
    }
    dspan = causal_->begin_span(telemetry::SpanKind::kDecision, parent, t, config_.asn, 0,
                                "decision", prefix.to_string());
    audit.span = dspan;
    audit.time = t;
    audit.as = config_.asn;
    audit.prefix = prefix.to_string();
    if (auto it = selected_.find(prefix); it != selected_.end()) {
      audit.prev_path = it->second.ia.path_vector.to_string();
    }
  }
  const auto finish = [&](const IaRoute* result, bool origin, bool changed) {
    if (!tracing) return;
    audit.origin = origin;
    audit.changed = changed;
    if (result != nullptr) {
      audit.best_path = result->ia.path_vector.to_string();
      audit.best_via = result->via_span;
    }
    causal_->record_audit(std::move(audit));
    causal_->end_span(dspan, t);
    emit_parent_ = dspan;  // frames below chain to this decision
  };

  if (originated_.count(prefix) > 0) {
    // Locally originated prefixes always win.
    ExportContext octx;
    octx.own_as = config_.asn;
    octx.own_island = config_.island;
    IaRoute origin;
    origin.ia = factory_.create_origin(prefix, active, octx);
    origin.from_peer = bgp::kInvalidPeer;
    if (auto it = origin_span_.find(prefix); it != origin_span_.end()) {
      origin.via_span = it->second;
    }
    auto [slot, inserted] = selected_.try_emplace(prefix);
    const bool changed = inserted || !(slot->second.ia == origin.ia) ||
                         slot->second.from_peer != bgp::kInvalidPeer;
    slot->second = std::move(origin);
    if (changed && active != nullptr) active->on_best_changed(prefix, &slot->second);
    if (tracing) {
      if (const auto* cands = ia_db_.candidate_map(prefix)) {
        for (const auto& [peer, c] : *cands) {
          audit.candidates.push_back({c.neighbor_as, c.ia.path_vector.to_string(),
                                      c.via_span, c.eligible, "origin-overrides"});
        }
      }
      finish(&slot->second, /*origin=*/true, changed);
    }
    advertise_to_peers(active, prefix, slot->second, /*origin=*/true, out);
    return;
  }

  const auto* candidates = ia_db_.candidate_map(prefix);
  const IaRoute* best = nullptr;
  bool fallback = false;
  if (candidates != nullptr) {
    if (active != nullptr) {
      for (const auto& [peer, c] : *candidates) {
        if (!c.eligible) continue;
        if (best == nullptr || active->better(c, *best)) best = &c;
      }
    }
    if (best == nullptr && !candidates->empty()) {
      // Baseline fallback: no module or no eligible candidates — preserve
      // connectivity by shortest path vector, then arrival order.
      fallback = true;
      for (const auto& [peer, c] : *candidates) {
        if (best == nullptr ||
            c.ia.path_vector.hop_count() < best->ia.path_vector.hop_count() ||
            (c.ia.path_vector.hop_count() == best->ia.path_vector.hop_count() &&
             c.sequence < best->sequence)) {
          best = &c;
        }
      }
    }
  }

  if (tracing && candidates != nullptr) {
    int i = 0;
    for (const auto& [peer, cref] : *candidates) {
      const IaRoute* c = &cref;
      telemetry::AuditCandidate ac{c->neighbor_as, c->ia.path_vector.to_string(),
                                   c->via_span, c->eligible, {}};
      if (c == best) {
        ac.outcome = "selected";
        audit.selected = i;
      } else if (!c->eligible && active != nullptr) {
        ac.outcome = "ineligible:" + active->name();
      } else if (best == nullptr) {
        ac.outcome = "unreachable";
      } else if (!fallback) {
        ac.outcome = "lost:" + active->explain_better(*best, *c);
      } else {
        ac.outcome = best->ia.path_vector.hop_count() != c->ia.path_vector.hop_count()
                         ? "lost:path-length"
                         : "lost:arrival-order";
      }
      audit.candidates.push_back(std::move(ac));
      ++i;
    }
  }

  if (best == nullptr) {
    const bool had_route = selected_.count(prefix) > 0;
    finish(nullptr, /*origin=*/false, had_route);
    if (selected_.erase(prefix) > 0) {
      if (active != nullptr) active->on_best_changed(prefix, nullptr);
      for (bgp::PeerId peer = 0; peer < peers_.size(); ++peer) {
        withdraw_from_peer(peer, prefix, out);
      }
    }
    return;
  }

  auto [slot, inserted] = selected_.try_emplace(prefix);
  const bool changed = inserted || slot->second.from_peer != best->from_peer ||
                       !(slot->second.ia == best->ia);
  if (changed) {
    slot->second = *best;
    if (active != nullptr) active->on_best_changed(prefix, &slot->second);
  }
  finish(&slot->second, /*origin=*/false, changed);
  // Even when the selection is unchanged we re-advertise through delta
  // suppression, which is a no-op if nothing differs.
  advertise_to_peers(active, prefix, slot->second, /*origin=*/false, out);
}

// -- Parallel decision planning ----------------------------------------------
//
// plan_decision mirrors run_decision with tracing off, split into a pure
// planning half (runs concurrently, reads the frozen pre-batch state, writes
// only the plan and its shard's FrameCache) and commit_plan (runs
// sequentially in first-touch order, performs every mutation run_decision
// would have, in the same order). Keep the three in lockstep when changing
// decision semantics — shard_pipeline_test pins their bit-identity.

DbgpSpeaker::DecisionPlan DbgpSpeaker::plan_decision(const net::Prefix& prefix,
                                                     ia::FrameCache& cache) const {
  DecisionPlan plan;
  plan.prefix = prefix;
  DecisionModule* active = active_module(prefix);

  if (originated_.count(prefix) > 0) {
    ExportContext octx;
    octx.own_as = config_.asn;
    octx.own_island = config_.island;
    IaRoute origin;
    origin.ia = factory_.create_origin(prefix, active, octx);
    origin.from_peer = bgp::kInvalidPeer;
    auto it = selected_.find(prefix);
    plan.changed = it == selected_.end() || !(it->second.ia == origin.ia) ||
                   it->second.from_peer != bgp::kInvalidPeer;
    plan.has_best = true;
    plan.store = true;  // the sequential path overwrites even when unchanged
    plan.best = std::move(origin);
    plan_advertise(active, prefix, plan.best, /*origin=*/true, cache, plan);
    return plan;
  }

  const auto* candidates = ia_db_.candidate_map(prefix);
  const IaRoute* best = nullptr;
  if (candidates != nullptr) {
    if (active != nullptr) {
      for (const auto& [peer, c] : *candidates) {
        if (!c.eligible) continue;
        if (best == nullptr || active->better(c, *best)) best = &c;
      }
    }
    if (best == nullptr && !candidates->empty()) {
      for (const auto& [peer, c] : *candidates) {
        if (best == nullptr ||
            c.ia.path_vector.hop_count() < best->ia.path_vector.hop_count() ||
            (c.ia.path_vector.hop_count() == best->ia.path_vector.hop_count() &&
             c.sequence < best->sequence)) {
          best = &c;
        }
      }
    }
  }

  if (best == nullptr) {
    plan.has_best = false;
    if (selected_.count(prefix) > 0) {
      for (bgp::PeerId peer = 0; peer < peers_.size(); ++peer) {
        plan_withdraw(peer, prefix, plan);
      }
    }
    return plan;
  }

  auto it = selected_.find(prefix);
  plan.changed = it == selected_.end() || it->second.from_peer != best->from_peer ||
                 !(it->second.ia == best->ia);
  plan.has_best = true;
  plan.store = plan.changed;
  plan.best = *best;
  plan_advertise(active, prefix, plan.best, /*origin=*/false, cache, plan);
  return plan;
}

void DbgpSpeaker::plan_advertise(DecisionModule* active, const net::Prefix& prefix,
                                 const IaRoute& best, bool origin, ia::FrameCache& cache,
                                 DecisionPlan& plan) const {
  for (bgp::PeerId peer = 0; peer < peers_.size(); ++peer) {
    if (!peers_[peer].up) continue;
    if (!origin && peer == best.from_peer) {
      plan_withdraw(peer, prefix, plan);  // split horizon
      continue;
    }
    ExportContext ectx;
    ectx.own_as = config_.asn;
    ectx.own_island = config_.island;
    ectx.to_peer = peer;
    ectx.to_peer_as = peers_[peer].asn;
    ectx.to_peer_in_same_island = peers_[peer].same_island;
    ia::IntegratedAdvertisement ia_out =
        origin ? factory_.create_origin(prefix, active, ectx)
               : factory_.create_from_best(best, active, ectx);
    if (!peers_[peer].same_island) {
      FilterContext fctx;
      fctx.own_as = config_.asn;
      fctx.own_island = config_.island;
      fctx.peer = peer;
      fctx.peer_as = peers_[peer].asn;
      fctx.ingress = false;
      if (!export_filters_.apply(ia_out, fctx)) {
        plan_withdraw(peer, prefix, plan);
        continue;
      }
    }
    ia::SharedFrame frame = cache.get_or_encode(ia_out, config_.codec, [&] {
      return encode_announce(ia_out, config_.codec);
    });
    // Delta suppression against the pre-batch adj-out. Only this prefix's
    // own commit can touch adj_out_[peer][prefix], so the pre-batch value
    // is also the commit-time value and the decision is safe to make here.
    if (auto pit = adj_out_.find(peer); pit != adj_out_.end()) {
      if (auto sit = pit->second.find(prefix); sit != pit->second.end()) {
        const ia::SharedFrame& sent = sit->second;
        if (sent != nullptr && (sent == frame || *sent == *frame)) continue;
      }
    }
    plan.emits.push_back({peer, std::move(frame), /*withdraw=*/false});
  }
}

void DbgpSpeaker::plan_withdraw(bgp::PeerId peer, const net::Prefix& prefix,
                                DecisionPlan& plan) const {
  auto it = adj_out_.find(peer);
  if (it == adj_out_.end() || it->second.count(prefix) == 0) return;
  plan.emits.push_back(
      {peer, ia::make_shared_frame(encode_withdraw(prefix)), /*withdraw=*/true});
}

void DbgpSpeaker::commit_plan(DecisionPlan& plan, std::vector<DbgpOutgoing>& out) {
  DecisionModule* active = active_module(plan.prefix);
  if (!plan.has_best) {
    if (selected_.erase(plan.prefix) > 0 && active != nullptr) {
      active->on_best_changed(plan.prefix, nullptr);
    }
  } else if (plan.store) {
    auto& slot = selected_[plan.prefix];
    slot = std::move(plan.best);
    if (plan.changed && active != nullptr) active->on_best_changed(plan.prefix, &slot);
  }
  for (PlannedEmit& e : plan.emits) {
    if (e.withdraw) {
      auto it = adj_out_.find(e.peer);
      if (it == adj_out_.end() || it->second.erase(plan.prefix) == 0) continue;
      ++stats_.withdraws_sent;
      SpeakerMetrics::get().withdraws_sent->inc();
      peer_metrics_[e.peer].withdraws_out->inc();
      peer_metrics_[e.peer].adj_out_depth->set(
          static_cast<std::int64_t>(it->second.size()));
    } else {
      adj_out_[e.peer][plan.prefix] = e.frame;
      ++stats_.ias_sent;
      SpeakerMetrics::get().ias_sent->inc();
      peer_metrics_[e.peer].updates_out->inc();
      peer_metrics_[e.peer].adj_out_depth->set(
          static_cast<std::int64_t>(adj_out_[e.peer].size()));
    }
    stats_.bytes_sent += e.frame->size();
    SpeakerMetrics::get().bytes_sent->inc(e.frame->size());
    out.push_back({e.peer, std::move(e.frame), 0});
  }
}

void DbgpSpeaker::advertise_to_peers(DecisionModule* active, const net::Prefix& prefix,
                                     const IaRoute& best, bool origin,
                                     std::vector<DbgpOutgoing>& out) {
  for (bgp::PeerId peer = 0; peer < peers_.size(); ++peer) {
    if (!peers_[peer].up) continue;
    if (!origin && peer == best.from_peer) {
      // Split horizon.
      withdraw_from_peer(peer, prefix, out);
      continue;
    }
    ExportContext ectx;
    ectx.own_as = config_.asn;
    ectx.own_island = config_.island;
    ectx.to_peer = peer;
    ectx.to_peer_as = peers_[peer].asn;
    ectx.to_peer_in_same_island = peers_[peer].same_island;

    // Origins are rebuilt per peer: some protocols (e.g., BGPSec) bind their
    // control information to the specific peer the IA is sent to.
    ia::IntegratedAdvertisement ia_out =
        origin ? factory_.create_origin(prefix, active, ectx)
               : factory_.create_from_best(best, active, ectx);

    // Stage 7: global export filters (skip island handling toward peers in
    // our own island — abstraction happens only at the true egress).
    if (!peers_[peer].same_island) {
      FilterContext fctx;
      fctx.own_as = config_.asn;
      fctx.own_island = config_.island;
      fctx.peer = peer;
      fctx.peer_as = peers_[peer].asn;
      fctx.ingress = false;
      if (!export_filters_.apply(ia_out, fctx)) {
        withdraw_from_peer(peer, prefix, out);
        continue;
      }
    }
    emit(peer, prefix, ia_out, out);
  }
}

void DbgpSpeaker::withdraw_from_peer(bgp::PeerId peer, const net::Prefix& prefix,
                                     std::vector<DbgpOutgoing>& out) {
  auto it = adj_out_.find(peer);
  if (it == adj_out_.end() || it->second.erase(prefix) == 0) return;
  ++stats_.withdraws_sent;
  SpeakerMetrics::get().withdraws_sent->inc();
  peer_metrics_[peer].withdraws_out->inc();
  peer_metrics_[peer].adj_out_depth->set(static_cast<std::int64_t>(it->second.size()));
  auto frame = ia::make_shared_frame(encode_withdraw(prefix));
  stats_.bytes_sent += frame->size();
  SpeakerMetrics::get().bytes_sent->inc(frame->size());
  telemetry::SpanId span = 0;
  if (causal_ != nullptr) {
    span = causal_->begin_span(telemetry::SpanKind::kFrame, emit_parent_, trace_now(),
                               config_.asn, peers_.at(peer).asn, "withdraw",
                               prefix.to_string());
  }
  out.push_back({peer, std::move(frame), span});
}

void DbgpSpeaker::emit(bgp::PeerId peer, const net::Prefix& prefix,
                       const ia::IntegratedAdvertisement& ia, std::vector<DbgpOutgoing>& out) {
  if (!peers_.at(peer).up) return;  // nothing reaches (or is recorded for) a down peer
  // Encode-once fan-out: identical per-peer advertisements (the common case
  // — export rewrites are the exception) resolve to one shared frame.
  ia::SharedFrame frame = frame_cache_.get_or_encode(ia, config_.codec, [&] {
    return encode_announce(ia, config_.codec);
  });
  auto& sent = adj_out_[peer][prefix];
  // Delta suppression; same cache entry => pointer equality, no byte walk.
  if (sent != nullptr && (sent == frame || *sent == *frame)) return;
  sent = frame;
  ++stats_.ias_sent;
  SpeakerMetrics::get().ias_sent->inc();
  peer_metrics_[peer].updates_out->inc();
  peer_metrics_[peer].adj_out_depth->set(
      static_cast<std::int64_t>(adj_out_[peer].size()));
  telemetry::SpanId span = 0;
  if (causal_ != nullptr) {
    span = causal_->begin_span(
        telemetry::SpanKind::kFrame, emit_parent_, trace_now(), config_.asn,
        peers_.at(peer).asn,
        config_.dissemination == Dissemination::kOutOfBand && lookup_ != nullptr
            ? "notice"
            : "announce",
        prefix.to_string());
  }
  if (config_.dissemination == Dissemination::kOutOfBand && lookup_ != nullptr) {
    // The lookup service stores the bare IA bytes (no frame-type byte).
    lookup_->put(LookupService::ia_key(config_.asn, peers_.at(peer).asn, prefix),
                 std::vector<std::uint8_t>(frame->begin() + 1, frame->end()));
    auto notice = ia::make_shared_frame(encode_notice(prefix));
    stats_.bytes_sent += notice->size();
    SpeakerMetrics::get().bytes_sent->inc(notice->size());
    out.push_back({peer, std::move(notice), span});
  } else {
    stats_.bytes_sent += frame->size();
    SpeakerMetrics::get().bytes_sent->inc(frame->size());
    out.push_back({peer, std::move(frame), span});
  }
}

std::vector<DbgpOutgoing> DbgpSpeaker::sync_peer(bgp::PeerId peer) {
  std::vector<DbgpOutgoing> out;
  if (!peers_.at(peer).up) return out;
  DecisionModule* active = nullptr;
  for (const auto& [prefix, best] : selected_) {
    if (best.from_peer == peer) continue;
    // No decision runs here: a synced frame chains straight to whatever span
    // installed the route (its provenance), or to the session event itself.
    if (causal_ != nullptr) {
      emit_parent_ = best.via_span != 0 ? best.via_span : external_cause_;
    }
    active = active_module(prefix);
    ExportContext ectx;
    ectx.own_as = config_.asn;
    ectx.own_island = config_.island;
    ectx.to_peer = peer;
    ectx.to_peer_as = peers_.at(peer).asn;
    ectx.to_peer_in_same_island = peers_.at(peer).same_island;
    const bool origin = best.from_peer == bgp::kInvalidPeer;
    ia::IntegratedAdvertisement ia_out =
        origin ? factory_.create_origin(prefix, active, ectx)
               : factory_.create_from_best(best, active, ectx);
    if (!peers_[peer].same_island) {
      FilterContext fctx;
      fctx.own_as = config_.asn;
      fctx.own_island = config_.island;
      fctx.peer = peer;
      fctx.peer_as = peers_[peer].asn;
      fctx.ingress = false;
      if (!export_filters_.apply(ia_out, fctx)) continue;
    }
    emit(peer, prefix, ia_out, out);
  }
  return out;
}

std::vector<DbgpOutgoing> DbgpSpeaker::reevaluate_all(telemetry::SpanId cause) {
  drain_staged();
  std::vector<DbgpOutgoing> out;
  external_cause_ = cause;
  // Re-run module import filters (the active protocol may have changed).
  for (const auto& prefix : ia_db_.prefixes()) {
    DecisionModule* active = active_module(prefix);
    for (IaRoute* route : ia_db_.candidates_mutable(prefix)) {
      route->eligible = active == nullptr || active->import_filter(*route);
    }
  }
  for (const auto& prefix : ia_db_.prefixes()) run_decision(prefix, out);
  for (const auto& [prefix, unused] : originated_) run_decision(prefix, out);
  external_cause_ = 0;
  return out;
}

// -- Snapshot / restore --------------------------------------------------------

DbgpSpeaker::SpeakerState DbgpSpeaker::export_state() const {
  SpeakerState state;
  state.sequence = sequence_;
  state.originated.reserve(originated_.size());
  for (const auto& [prefix, unused] : originated_) state.originated.push_back(prefix);
  for (const auto& prefix : ia_db_.prefixes()) {
    for (const IaRoute* route : ia_db_.candidates(prefix)) {
      state.adj_in.push_back({prefix, route->from_peer, route->neighbor_as,
                              route->sequence, route->eligible,
                              ia::encode_ia(route->ia, config_.codec)});
    }
  }
  for (const auto& [prefix, route] : selected_) {
    state.selected.push_back({prefix, route.from_peer, route.neighbor_as,
                              route.sequence, route.eligible,
                              ia::encode_ia(route.ia, config_.codec)});
  }
  for (const auto& [peer, table] : adj_out_) {
    for (const auto& [prefix, frame] : table) {
      state.adj_out.push_back({prefix, peer, 0, 0, true, *frame});
    }
  }
  return state;
}

void DbgpSpeaker::restore_state(const SpeakerState& state, bool keep_adj_out) {
  reset_routes();
  // Unlike a reboot, a restore replaces configuration-level origination state
  // too: the snapshot is authoritative.
  originated_.clear();
  origin_span_.clear();
  sequence_ = state.sequence;
  for (const auto& prefix : state.originated) originated_[prefix] = true;
  for (const auto& r : state.adj_in) {
    IaRoute route;
    route.ia = ia::decode_ia(r.bytes);
    desc_interner_.intern(route.ia);
    route.from_peer = r.from_peer;
    route.neighbor_as = r.neighbor_as;
    route.sequence = r.sequence;
    route.eligible = r.eligible;
    ia_db_.upsert(std::move(route));
  }
  for (const auto& r : state.selected) {
    IaRoute route;
    route.ia = ia::decode_ia(r.bytes);
    desc_interner_.intern(route.ia);
    route.from_peer = r.from_peer;
    route.neighbor_as = r.neighbor_as;
    route.sequence = r.sequence;
    route.eligible = r.eligible;
    selected_[r.prefix] = std::move(route);
  }
  if (!keep_adj_out) return;
  for (const auto& r : state.adj_out) {
    adj_out_[r.from_peer][r.prefix] = ia::make_shared_frame(r.bytes);
  }
  for (bgp::PeerId peer = 0; peer < peers_.size(); ++peer) {
    const auto it = adj_out_.find(peer);
    peer_metrics_[peer].adj_out_depth->set(
        it == adj_out_.end() ? 0 : static_cast<std::int64_t>(it->second.size()));
  }
}

const IaRoute* DbgpSpeaker::best(const net::Prefix& prefix) const {
  auto it = selected_.find(prefix);
  return it == selected_.end() ? nullptr : &it->second;
}

std::vector<net::Prefix> DbgpSpeaker::selected_prefixes() const {
  std::vector<net::Prefix> out;
  out.reserve(selected_.size());
  for (const auto& [prefix, route] : selected_) out.push_back(prefix);
  return out;
}

}  // namespace dbgp::core
