// DbgpSpeaker: the Beagle-equivalent D-BGP speaker (Figure 5).
//
// One speaker per AS (distributed control) or per island controller
// (centralized control). It implements the full IA-processing pipeline:
//
//   (1) global import filters (loop detection, operator policy)
//   (2) protocol extractor: picks the active decision module for the prefix
//   (3) the module's import filter stores/adjusts control info (IA DB)
//   (4) the module's path-selection algorithm picks the best path
//   (5) the module's export hook rewrites its control info
//   (6) the IA factory builds the new IA with pass-through of unused
//       protocols' control information
//   (7) global export filters (island abstraction / membership stamping)
//
// Dissemination is in-band (IA bytes in the frame — CF-R2's preferred mode)
// or out-of-band (frame carries only a notice; the full IA is stored in a
// LookupService, as Beagle did). Both paths exercise the same pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <unordered_set>
#include <vector>

#include "core/decision_module.h"
#include "core/filters.h"
#include "core/ia_db.h"
#include "core/ia_factory.h"
#include "core/lookup_service.h"
#include "ia/codec.h"
#include "ia/descriptor_interner.h"
#include "ia/frame_cache.h"
#include "net/prefix_trie.h"
#include "telemetry/causal.h"
#include "telemetry/peer_metrics.h"
#include "util/arena.h"
#include "util/thread_pool.h"

namespace dbgp::core {

enum class Dissemination { kInBand, kOutOfBand };

struct DbgpConfig {
  bgp::AsNumber asn = 0;
  net::Ipv4Address next_hop;
  // Invalid island => this AS is in a gulf (baseline-only, pass-through).
  ia::IslandId island;
  ia::ProtocolId island_protocol = ia::kProtoBgp;
  // Abstract away member ASes at egress (list island ID in the path vector).
  bool abstract_island = false;
  std::vector<bgp::AsNumber> island_members;
  Dissemination dissemination = Dissemination::kInBand;
  ia::CodecOptions codec;
  // Bound on the number of distinct prefixes staged via enqueue_frame before
  // an automatic flush (0 = unbounded, flush only on flush()).
  std::size_t max_batch = 256;
  // Default active protocol (per-prefix overrides via set_active_protocol).
  ia::ProtocolId active_protocol = ia::kProtoBgp;
};

// Wire frames exchanged between D-BGP peers (sessions are managed by the
// host network; Beagle similarly reused Quagga's session layer).
enum class FrameType : std::uint8_t { kAnnounce = 1, kWithdraw = 2, kNotice = 3 };

// An outgoing frame. The bytes are refcounted so one encoded advertisement
// fans out to N peers (and through the simulated network's in-flight
// messages) without N copies — see ia::FrameCache.
struct DbgpOutgoing {
  bgp::PeerId peer = bgp::kInvalidPeer;
  ia::SharedFrame frame;
  // Causal span of this frame's wire transit (0 when tracing is off). The
  // span is opened at emit time and closed by the transport at delivery.
  telemetry::SpanId span = 0;

  const std::vector<std::uint8_t>& bytes() const noexcept { return *frame; }
};

// Per-speaker counters. Every field is mirrored into the process-wide
// telemetry registry under "dbgp.speaker.<field>" (aggregated across
// speakers); the struct remains the cheap per-instance view.
struct DbgpStats {
  std::uint64_t ias_received = 0;
  std::uint64_t ias_sent = 0;
  std::uint64_t withdraws_received = 0;
  std::uint64_t withdraws_sent = 0;
  std::uint64_t dropped_by_global_filter = 0;
  std::uint64_t rejected_by_module = 0;  // kept for pass-through, not selected
  std::uint64_t lookup_fetches = 0;
  std::uint64_t lookup_misses = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class DbgpSpeaker {
 public:
  explicit DbgpSpeaker(DbgpConfig config, LookupService* lookup = nullptr);

  // Movable (the arena is heap-pinned and moves over with its unique_ptr)
  // but not move-assignable: member-wise move assignment would replace the
  // arena while arena-backed tables still reference it.
  DbgpSpeaker(DbgpSpeaker&&) noexcept = default;
  DbgpSpeaker& operator=(DbgpSpeaker&&) = delete;

  // -- Configuration -------------------------------------------------------
  bgp::PeerId add_peer(bgp::AsNumber peer_as, bool same_island = false);
  void add_module(std::unique_ptr<DecisionModule> module);
  DecisionModule* module(ia::ProtocolId protocol) const;
  // Sets the active protocol for an address range (longest match wins);
  // ranges default to config.active_protocol.
  void set_active_protocol(const net::Prefix& range, ia::ProtocolId protocol);
  ia::ProtocolId active_protocol_for(const net::Prefix& prefix) const;

  GlobalFilterChain& import_filters() noexcept { return import_filters_; }
  GlobalFilterChain& export_filters() noexcept { return export_filters_; }

  const DbgpConfig& config() const noexcept { return config_; }

  // -- Sharded parallel pipeline -------------------------------------------
  // Attaches a thread pool and partitions the prefix space into `shards`
  // table shards (0 = one per pool thread). With an attached pool of size
  // > 1, flush() runs as a pipeline: parallel frame decode, sequential
  // staging in arrival order, per-shard parallel decision planning (each
  // shard owns its slice of the batch and its own FrameCache, so planning
  // is lock-free within a shard), then a sequential commit in global
  // first-touch order. Plans only read the pre-batch RIB state and commits
  // are the only mutation, so the emitted frames, RIB contents, and stats
  // are bit-identical at every thread count and shard count — and identical
  // to the sequential path a single-threaded pool (or no pool) takes.
  //
  // The parallel path disengages automatically (falling back to the exact
  // sequential code) when causal tracing is attached (the tracer is
  // single-threaded and span ids must be minted in order), or when
  // dissemination is out-of-band (emit writes the lookup service).
  //
  // Module contract: better() / annotate_export() / annotate_origin() /
  // explain_better() run concurrently across shards and must not mutate
  // module state; import_filter() and on_best_changed() remain sequential
  // and may. Every in-tree module satisfies this.
  void set_parallel(util::ThreadPool* pool, std::size_t shards = 0);
  std::size_t shard_count() const noexcept { return shards_; }
  // True when the next flush will take the parallel path.
  bool parallel_active() const noexcept;
  // The shard owning a prefix (stable hash; independent of thread count).
  static std::size_t shard_of(const net::Prefix& prefix, std::size_t shards) noexcept;

  // -- Causal tracing -------------------------------------------------------
  // Attaches a causal tracer (nullptr disables — the default; every tracing
  // hook below is guarded so a disabled speaker does no extra work, mints no
  // ids, and renders no strings). `clock` supplies the timeline (sim time
  // under simnet); without one spans are stamped 0.
  void set_causal(telemetry::CausalTracer* tracer) noexcept { causal_ = tracer; }
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }
  telemetry::CausalTracer* causal() const noexcept { return causal_; }

  // The `cause` parameter on the entry points below is the caller's causal
  // span (the frame that arrived, the chaos event that forced the call);
  // 0 = no cause / tracing off.

  // -- Control-plane input/output -----------------------------------------
  std::vector<DbgpOutgoing> originate(const net::Prefix& prefix,
                                      telemetry::SpanId cause = 0);
  std::vector<DbgpOutgoing> withdraw_origin(const net::Prefix& prefix,
                                            telemetry::SpanId cause = 0);
  std::vector<DbgpOutgoing> handle_frame(bgp::PeerId from, std::span<const std::uint8_t> bytes,
                                         telemetry::SpanId cause = 0);
  // Convenience: feed a decoded IA as if announced by `from`.
  std::vector<DbgpOutgoing> handle_ia(bgp::PeerId from, ia::IntegratedAdvertisement ia,
                                      telemetry::SpanId cause = 0);

  // -- Batched input --------------------------------------------------------
  // Stages a frame (filters + IA DB update) without running the decision
  // process; prefixes accumulate in first-touch order until flush(). The
  // returned frames are empty except when the batch reaches config.max_batch
  // and auto-flushes. A burst of k updates for one prefix then costs one
  // decision + one encode instead of k.
  std::vector<DbgpOutgoing> enqueue_frame(bgp::PeerId from,
                                          std::span<const std::uint8_t> bytes,
                                          telemetry::SpanId cause = 0);
  // Refcounted-frame overload. In parallel mode with max_batch == 0 the
  // frame is staged raw (no copy, no decode) and decoded in parallel at
  // flush(); otherwise identical to the span overload.
  std::vector<DbgpOutgoing> enqueue_frame(bgp::PeerId from, ia::SharedFrame frame,
                                          telemetry::SpanId cause = 0);
  // Runs the decision process once per staged prefix (in first-touch order)
  // and returns the resulting frames. Call at quiescence.
  std::vector<DbgpOutgoing> flush();
  std::size_t pending_batch() const noexcept { return batch_.size() + staged_.size(); }
  // Frames the deferred-decode drain rejected as undecodable since the last
  // call (resets the count). The eager path throws util::DecodeError from
  // enqueue_frame instead; a caller that counts those rejections should add
  // this after each flush so the totals match at any thread count.
  std::uint64_t take_deferred_rejects() noexcept {
    const std::uint64_t n = deferred_rejects_;
    deferred_rejects_ = 0;
    return n;
  }
  // Session teardown: marks the peer down, purges its adj-in and adj-out,
  // and re-runs decisions for the affected prefixes. While a peer is down no
  // advertisement or withdraw is emitted toward it (and adj-out stays empty),
  // so a later peer_up()'s full-table sync is never delta-suppressed by
  // state staged during the outage.
  std::vector<DbgpOutgoing> peer_down(bgp::PeerId peer, telemetry::SpanId cause = 0);
  // Session (re-)establishment: marks the peer up and returns the full-table
  // sync a real session performs on open.
  std::vector<DbgpOutgoing> peer_up(bgp::PeerId peer, telemetry::SpanId cause = 0);
  bool peer_is_up(bgp::PeerId peer) const { return peers_.at(peer).up; }
  // Crash recovery: drops all learned state (adj-in, selected routes,
  // adj-out, staged batch, frame cache) while keeping configuration —
  // originated prefixes, modules, filters, and the peer roster survive like
  // a config file across a reboot. Pair with reevaluate_all() to re-announce
  // local prefixes and with the peers' sync to re-learn the rest.
  void reset_routes();
  // Sends the current table to a (newly established) peer.
  std::vector<DbgpOutgoing> sync_peer(bgp::PeerId peer);
  // Re-runs selection for every known prefix (after activating a protocol).
  std::vector<DbgpOutgoing> reevaluate_all(telemetry::SpanId cause = 0);

  // -- Inspection -----------------------------------------------------------
  // Selected best route; nullptr if unreachable. Originated prefixes return
  // a synthetic route with from_peer == kInvalidPeer.
  const IaRoute* best(const net::Prefix& prefix) const;
  const IaDb& ia_db() const noexcept { return ia_db_; }
  const ia::DescriptorInterner& descriptor_interner() const noexcept { return desc_interner_; }
  const util::RibArena& rib_arena() const noexcept { return *arena_; }
  const DbgpStats& stats() const noexcept { return stats_; }
  std::size_t peer_count() const noexcept { return peers_.size(); }
  bgp::AsNumber peer_as(bgp::PeerId peer) const { return peers_.at(peer).asn; }
  std::vector<net::Prefix> selected_prefixes() const;

  // Frame helpers (exposed for tests/benchmarks).
  static std::vector<std::uint8_t> encode_announce(const ia::IntegratedAdvertisement& ia,
                                                   const ia::CodecOptions& codec);
  static std::vector<std::uint8_t> encode_withdraw(const net::Prefix& prefix);
  static std::vector<std::uint8_t> encode_notice(const net::Prefix& prefix);

  // -- Snapshot / restore ---------------------------------------------------
  // Learned state as plain data, with every IA (and adj-out frame) as its
  // codec bytes, so the route server's snapshot format serializes speakers
  // without a parallel schema and a restore rebuilds byte-identical
  // advertisements (server/snapshot.h carries these records on the wire).
  struct RouteRecord {
    net::Prefix prefix;
    bgp::PeerId from_peer = bgp::kInvalidPeer;  // adj-out: the destination peer
    bgp::AsNumber neighbor_as = 0;
    std::uint64_t sequence = 0;
    bool eligible = true;
    std::vector<std::uint8_t> bytes;  // encoded IA (adj-in/selected) or frame (adj-out)
  };
  struct SpeakerState {
    std::vector<net::Prefix> originated;
    std::uint64_t sequence = 0;  // arrival counter; restored so later
                                 // tie-breaks continue deterministically
    std::vector<RouteRecord> adj_in;    // IA DB, peer order within prefix order
    std::vector<RouteRecord> selected;  // Loc-RIB
    std::vector<RouteRecord> adj_out;   // last advertisement per (peer, prefix)
  };
  // Serializes originated prefixes, the IA DB, the Loc-RIB, adj-out, and the
  // arrival counter. Configuration (peers, modules, filters) is not included:
  // it is rebuilt from declarations, like a config file across a reboot.
  SpeakerState export_state() const;
  // Replaces all learned state with `state` without running any decision or
  // emitting any frame — the restored Loc-RIB is byte-identical to the
  // exported one by construction. `keep_adj_out = false` drops the adj-out
  // (warm restart: peers purged our routes at session loss, so the next
  // sync_peer must not be delta-suppressed). Module-internal state is not
  // restored; it rebuilds as later decisions run. Throws util::DecodeError
  // on malformed IA bytes, leaving the speaker wiped but consistent.
  void restore_state(const SpeakerState& state, bool keep_adj_out = true);

 private:
  struct Peer {
    bgp::AsNumber asn = 0;
    bool same_island = false;
    bool up = true;  // session state; down peers receive nothing
  };

  // Pipeline stages 1-3 for one frame/IA (filters, extractor, IA DB).
  // Returns the prefix whose decision process must run, if any; shared by
  // the immediate (handle_frame) and batched (enqueue_frame) paths.
  std::optional<net::Prefix> stage_frame(bgp::PeerId from,
                                         std::span<const std::uint8_t> bytes,
                                         telemetry::SpanId cause);
  std::optional<net::Prefix> stage_ia(bgp::PeerId from, ia::IntegratedAdvertisement ia,
                                      telemetry::SpanId cause);
  void flush_into(std::vector<DbgpOutgoing>& out);
  // Decision + dissemination for one prefix (stages 4-7).
  void run_decision(const net::Prefix& prefix, std::vector<DbgpOutgoing>& out);
  void advertise_to_peers(DecisionModule* active, const net::Prefix& prefix,
                          const IaRoute& best, bool origin,
                          std::vector<DbgpOutgoing>& out);
  void withdraw_from_peer(bgp::PeerId peer, const net::Prefix& prefix,
                          std::vector<DbgpOutgoing>& out);
  void emit(bgp::PeerId peer, const net::Prefix& prefix, const ia::IntegratedAdvertisement& ia,
            std::vector<DbgpOutgoing>& out);
  DecisionModule* active_module(const net::Prefix& prefix) const;

  // -- Parallel pipeline internals ------------------------------------------
  // A frame staged raw by enqueue_frame in deferred-decode mode; `ia` is
  // filled by the parallel decode stage for announce frames.
  struct StagedFrame {
    bgp::PeerId from = bgp::kInvalidPeer;
    ia::SharedFrame frame;
    telemetry::SpanId cause = 0;
    std::optional<ia::IntegratedAdvertisement> ia;
    // Decode failed (set by the decode stage, which must not throw across
    // pool threads); the staging loop skips the frame and counts it.
    bool bad = false;
  };
  // One frame a committed decision will send, suppression already decided
  // against the (frozen) pre-batch adj-out.
  struct PlannedEmit {
    bgp::PeerId peer = bgp::kInvalidPeer;
    ia::SharedFrame frame;
    bool withdraw = false;
  };
  // The full effect of one prefix's decision, computed in parallel against
  // the pre-batch state and applied by commit_plan in first-touch order.
  struct DecisionPlan {
    net::Prefix prefix;
    bool has_best = false;  // false => erase from Loc-RIB, withdraw everywhere
    bool store = false;     // write `best` into selected_
    bool changed = false;   // fire on_best_changed
    IaRoute best;
    std::vector<PlannedEmit> emits;
  };
  bool parallel_enabled() const noexcept;
  bool defer_decode() const noexcept;
  // Decodes staged raw frames (parallel) and stages them in arrival order
  // (sequential), building batch_ exactly as eager staging would have.
  void drain_staged();
  DecisionPlan plan_decision(const net::Prefix& prefix, ia::FrameCache& cache) const;
  void plan_advertise(DecisionModule* active, const net::Prefix& prefix, const IaRoute& best,
                      bool origin, ia::FrameCache& cache, DecisionPlan& plan) const;
  void plan_withdraw(bgp::PeerId peer, const net::Prefix& prefix, DecisionPlan& plan) const;
  void commit_plan(DecisionPlan& plan, std::vector<DbgpOutgoing>& out);

  DbgpConfig config_;
  LookupService* lookup_;
  IaFactory factory_;
  std::vector<Peer> peers_;
  // Labeled per-peer session counters ("dbgp.peer.*|as=..,peer=..");
  // parallel to peers_, resolved once at add_peer. Updated identically on
  // the sequential (run_decision/emit) and parallel (commit_plan) paths so
  // the shard pipeline's bit-identity extends to the telemetry plane.
  std::vector<telemetry::PeerMetrics> peer_metrics_;
  std::vector<std::unique_ptr<DecisionModule>> modules_;
  net::PrefixTrie<ia::ProtocolId> active_ranges_;
  GlobalFilterChain import_filters_;
  GlobalFilterChain export_filters_;
  // Shard-local arena backing the RIB tables below (DESIGN.md §14);
  // heap-pinned and declared before them so construction and destruction
  // order is right.
  std::unique_ptr<util::RibArena> arena_;
  IaDb ia_db_;
  // Canonicalizes descriptor tails across peers/prefixes; every IA entering
  // ia_db_ or selected_ passes through it (stage_ia, restore_state).
  ia::DescriptorInterner desc_interner_;
  // Selected best per prefix (the Loc-RIB analog).
  std::pmr::map<net::Prefix, IaRoute> selected_;
  std::map<net::Prefix, bool> originated_;  // value unused; set semantics
  // Last advertisement frame per (peer, prefix) for delta suppression.
  // Frames are shared with the cache, so the pointer-equality fast path
  // suppresses a re-advertisement without touching the bytes.
  std::pmr::map<bgp::PeerId, std::pmr::map<net::Prefix, ia::SharedFrame>> adj_out_;
  // Encode-once fan-out across peers (and across decisions that re-select
  // the same route).
  ia::FrameCache frame_cache_;
  // Prefixes staged by enqueue_frame, awaiting one decision each. The dedup
  // set is hashed, not ordered: it eats one insert per staged frame on the
  // batched hot path, and first-touch ordering lives in batch_ anyway.
  std::vector<net::Prefix> batch_;       // first-touch order
  std::unordered_set<net::Prefix, net::PrefixHash> batch_seen_;
  std::uint64_t sequence_ = 0;
  DbgpStats stats_;

  // -- Parallel pipeline state ----------------------------------------------
  util::ThreadPool* pool_ = nullptr;
  std::size_t shards_ = 1;
  // One FrameCache per shard: the cache's map is not thread-safe, but a
  // shard's prefixes are planned by exactly one task per flush.
  std::vector<ia::FrameCache> shard_caches_;
  // Raw frames awaiting the deferred parallel decode (max_batch == 0 only).
  std::vector<StagedFrame> staged_;
  // Undecodable staged frames dropped by drain_staged; see take_deferred_rejects.
  std::uint64_t deferred_rejects_ = 0;

  // -- Causal-tracing state (inert unless causal_ != nullptr) ---------------
  double trace_now() const { return clock_ ? clock_() : 0.0; }
  telemetry::CausalTracer* causal_ = nullptr;
  std::function<double()> clock_;
  // Span of the most recent staged update per prefix — becomes the parent of
  // that prefix's next decision run (covers both the immediate path and
  // batched coalescing, where the last of k staged updates wins).
  std::map<net::Prefix, telemetry::SpanId> pending_cause_;
  // Root origination span per locally originated prefix. Survives
  // reset_routes() like originated_: a reboot does not re-originate.
  std::map<net::Prefix, telemetry::SpanId> origin_span_;
  // Parent for frame spans minted by emit()/withdraw_from_peer(): the
  // current decision span, or the synced route's via_span in sync_peer.
  telemetry::SpanId emit_parent_ = 0;
  // Fallback decision parent for externally caused runs (peer_down after a
  // link cut, reevaluate_all after a protocol activation, ...).
  telemetry::SpanId external_cause_ = 0;
};

}  // namespace dbgp::core
