// DbgpSpeaker: the Beagle-equivalent D-BGP speaker (Figure 5).
//
// One speaker per AS (distributed control) or per island controller
// (centralized control). It implements the full IA-processing pipeline:
//
//   (1) global import filters (loop detection, operator policy)
//   (2) protocol extractor: picks the active decision module for the prefix
//   (3) the module's import filter stores/adjusts control info (IA DB)
//   (4) the module's path-selection algorithm picks the best path
//   (5) the module's export hook rewrites its control info
//   (6) the IA factory builds the new IA with pass-through of unused
//       protocols' control information
//   (7) global export filters (island abstraction / membership stamping)
//
// Dissemination is in-band (IA bytes in the frame — CF-R2's preferred mode)
// or out-of-band (frame carries only a notice; the full IA is stored in a
// LookupService, as Beagle did). Both paths exercise the same pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "core/decision_module.h"
#include "core/filters.h"
#include "core/ia_db.h"
#include "core/ia_factory.h"
#include "core/lookup_service.h"
#include "ia/codec.h"
#include "ia/frame_cache.h"
#include "net/prefix_trie.h"
#include "telemetry/causal.h"

namespace dbgp::core {

enum class Dissemination { kInBand, kOutOfBand };

struct DbgpConfig {
  bgp::AsNumber asn = 0;
  net::Ipv4Address next_hop;
  // Invalid island => this AS is in a gulf (baseline-only, pass-through).
  ia::IslandId island;
  ia::ProtocolId island_protocol = ia::kProtoBgp;
  // Abstract away member ASes at egress (list island ID in the path vector).
  bool abstract_island = false;
  std::vector<bgp::AsNumber> island_members;
  Dissemination dissemination = Dissemination::kInBand;
  ia::CodecOptions codec;
  // Bound on the number of distinct prefixes staged via enqueue_frame before
  // an automatic flush (0 = unbounded, flush only on flush()).
  std::size_t max_batch = 256;
  // Default active protocol (per-prefix overrides via set_active_protocol).
  ia::ProtocolId active_protocol = ia::kProtoBgp;
};

// Wire frames exchanged between D-BGP peers (sessions are managed by the
// host network; Beagle similarly reused Quagga's session layer).
enum class FrameType : std::uint8_t { kAnnounce = 1, kWithdraw = 2, kNotice = 3 };

// An outgoing frame. The bytes are refcounted so one encoded advertisement
// fans out to N peers (and through the simulated network's in-flight
// messages) without N copies — see ia::FrameCache.
struct DbgpOutgoing {
  bgp::PeerId peer = bgp::kInvalidPeer;
  ia::SharedFrame frame;
  // Causal span of this frame's wire transit (0 when tracing is off). The
  // span is opened at emit time and closed by the transport at delivery.
  telemetry::SpanId span = 0;

  const std::vector<std::uint8_t>& bytes() const noexcept { return *frame; }
};

// Per-speaker counters. Every field is mirrored into the process-wide
// telemetry registry under "dbgp.speaker.<field>" (aggregated across
// speakers); the struct remains the cheap per-instance view.
struct DbgpStats {
  std::uint64_t ias_received = 0;
  std::uint64_t ias_sent = 0;
  std::uint64_t withdraws_received = 0;
  std::uint64_t withdraws_sent = 0;
  std::uint64_t dropped_by_global_filter = 0;
  std::uint64_t rejected_by_module = 0;  // kept for pass-through, not selected
  std::uint64_t lookup_fetches = 0;
  std::uint64_t lookup_misses = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class DbgpSpeaker {
 public:
  explicit DbgpSpeaker(DbgpConfig config, LookupService* lookup = nullptr);

  // -- Configuration -------------------------------------------------------
  bgp::PeerId add_peer(bgp::AsNumber peer_as, bool same_island = false);
  void add_module(std::unique_ptr<DecisionModule> module);
  DecisionModule* module(ia::ProtocolId protocol) const;
  // Sets the active protocol for an address range (longest match wins);
  // ranges default to config.active_protocol.
  void set_active_protocol(const net::Prefix& range, ia::ProtocolId protocol);
  ia::ProtocolId active_protocol_for(const net::Prefix& prefix) const;

  GlobalFilterChain& import_filters() noexcept { return import_filters_; }
  GlobalFilterChain& export_filters() noexcept { return export_filters_; }

  const DbgpConfig& config() const noexcept { return config_; }

  // -- Causal tracing -------------------------------------------------------
  // Attaches a causal tracer (nullptr disables — the default; every tracing
  // hook below is guarded so a disabled speaker does no extra work, mints no
  // ids, and renders no strings). `clock` supplies the timeline (sim time
  // under simnet); without one spans are stamped 0.
  void set_causal(telemetry::CausalTracer* tracer) noexcept { causal_ = tracer; }
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }
  telemetry::CausalTracer* causal() const noexcept { return causal_; }

  // The `cause` parameter on the entry points below is the caller's causal
  // span (the frame that arrived, the chaos event that forced the call);
  // 0 = no cause / tracing off.

  // -- Control-plane input/output -----------------------------------------
  std::vector<DbgpOutgoing> originate(const net::Prefix& prefix,
                                      telemetry::SpanId cause = 0);
  std::vector<DbgpOutgoing> withdraw_origin(const net::Prefix& prefix,
                                            telemetry::SpanId cause = 0);
  std::vector<DbgpOutgoing> handle_frame(bgp::PeerId from, std::span<const std::uint8_t> bytes,
                                         telemetry::SpanId cause = 0);
  // Convenience: feed a decoded IA as if announced by `from`.
  std::vector<DbgpOutgoing> handle_ia(bgp::PeerId from, ia::IntegratedAdvertisement ia,
                                      telemetry::SpanId cause = 0);

  // -- Batched input --------------------------------------------------------
  // Stages a frame (filters + IA DB update) without running the decision
  // process; prefixes accumulate in first-touch order until flush(). The
  // returned frames are empty except when the batch reaches config.max_batch
  // and auto-flushes. A burst of k updates for one prefix then costs one
  // decision + one encode instead of k.
  std::vector<DbgpOutgoing> enqueue_frame(bgp::PeerId from,
                                          std::span<const std::uint8_t> bytes,
                                          telemetry::SpanId cause = 0);
  // Runs the decision process once per staged prefix (in first-touch order)
  // and returns the resulting frames. Call at quiescence.
  std::vector<DbgpOutgoing> flush();
  std::size_t pending_batch() const noexcept { return batch_.size(); }
  // Session teardown: marks the peer down, purges its adj-in and adj-out,
  // and re-runs decisions for the affected prefixes. While a peer is down no
  // advertisement or withdraw is emitted toward it (and adj-out stays empty),
  // so a later peer_up()'s full-table sync is never delta-suppressed by
  // state staged during the outage.
  std::vector<DbgpOutgoing> peer_down(bgp::PeerId peer, telemetry::SpanId cause = 0);
  // Session (re-)establishment: marks the peer up and returns the full-table
  // sync a real session performs on open.
  std::vector<DbgpOutgoing> peer_up(bgp::PeerId peer, telemetry::SpanId cause = 0);
  bool peer_is_up(bgp::PeerId peer) const { return peers_.at(peer).up; }
  // Crash recovery: drops all learned state (adj-in, selected routes,
  // adj-out, staged batch, frame cache) while keeping configuration —
  // originated prefixes, modules, filters, and the peer roster survive like
  // a config file across a reboot. Pair with reevaluate_all() to re-announce
  // local prefixes and with the peers' sync to re-learn the rest.
  void reset_routes();
  // Sends the current table to a (newly established) peer.
  std::vector<DbgpOutgoing> sync_peer(bgp::PeerId peer);
  // Re-runs selection for every known prefix (after activating a protocol).
  std::vector<DbgpOutgoing> reevaluate_all(telemetry::SpanId cause = 0);

  // -- Inspection -----------------------------------------------------------
  // Selected best route; nullptr if unreachable. Originated prefixes return
  // a synthetic route with from_peer == kInvalidPeer.
  const IaRoute* best(const net::Prefix& prefix) const;
  const IaDb& ia_db() const noexcept { return ia_db_; }
  const DbgpStats& stats() const noexcept { return stats_; }
  std::size_t peer_count() const noexcept { return peers_.size(); }
  bgp::AsNumber peer_as(bgp::PeerId peer) const { return peers_.at(peer).asn; }
  std::vector<net::Prefix> selected_prefixes() const;

  // Frame helpers (exposed for tests/benchmarks).
  static std::vector<std::uint8_t> encode_announce(const ia::IntegratedAdvertisement& ia,
                                                   const ia::CodecOptions& codec);
  static std::vector<std::uint8_t> encode_withdraw(const net::Prefix& prefix);
  static std::vector<std::uint8_t> encode_notice(const net::Prefix& prefix);

  // -- Snapshot / restore ---------------------------------------------------
  // Learned state as plain data, with every IA (and adj-out frame) as its
  // codec bytes, so the route server's snapshot format serializes speakers
  // without a parallel schema and a restore rebuilds byte-identical
  // advertisements (server/snapshot.h carries these records on the wire).
  struct RouteRecord {
    net::Prefix prefix;
    bgp::PeerId from_peer = bgp::kInvalidPeer;  // adj-out: the destination peer
    bgp::AsNumber neighbor_as = 0;
    std::uint64_t sequence = 0;
    bool eligible = true;
    std::vector<std::uint8_t> bytes;  // encoded IA (adj-in/selected) or frame (adj-out)
  };
  struct SpeakerState {
    std::vector<net::Prefix> originated;
    std::uint64_t sequence = 0;  // arrival counter; restored so later
                                 // tie-breaks continue deterministically
    std::vector<RouteRecord> adj_in;    // IA DB, peer order within prefix order
    std::vector<RouteRecord> selected;  // Loc-RIB
    std::vector<RouteRecord> adj_out;   // last advertisement per (peer, prefix)
  };
  // Serializes originated prefixes, the IA DB, the Loc-RIB, adj-out, and the
  // arrival counter. Configuration (peers, modules, filters) is not included:
  // it is rebuilt from declarations, like a config file across a reboot.
  SpeakerState export_state() const;
  // Replaces all learned state with `state` without running any decision or
  // emitting any frame — the restored Loc-RIB is byte-identical to the
  // exported one by construction. `keep_adj_out = false` drops the adj-out
  // (warm restart: peers purged our routes at session loss, so the next
  // sync_peer must not be delta-suppressed). Module-internal state is not
  // restored; it rebuilds as later decisions run. Throws util::DecodeError
  // on malformed IA bytes, leaving the speaker wiped but consistent.
  void restore_state(const SpeakerState& state, bool keep_adj_out = true);

 private:
  struct Peer {
    bgp::AsNumber asn = 0;
    bool same_island = false;
    bool up = true;  // session state; down peers receive nothing
  };

  // Pipeline stages 1-3 for one frame/IA (filters, extractor, IA DB).
  // Returns the prefix whose decision process must run, if any; shared by
  // the immediate (handle_frame) and batched (enqueue_frame) paths.
  std::optional<net::Prefix> stage_frame(bgp::PeerId from,
                                         std::span<const std::uint8_t> bytes,
                                         telemetry::SpanId cause);
  std::optional<net::Prefix> stage_ia(bgp::PeerId from, ia::IntegratedAdvertisement ia,
                                      telemetry::SpanId cause);
  void flush_into(std::vector<DbgpOutgoing>& out);
  // Decision + dissemination for one prefix (stages 4-7).
  void run_decision(const net::Prefix& prefix, std::vector<DbgpOutgoing>& out);
  void advertise_to_peers(const net::Prefix& prefix, const IaRoute& best, bool origin,
                          std::vector<DbgpOutgoing>& out);
  void withdraw_from_peer(bgp::PeerId peer, const net::Prefix& prefix,
                          std::vector<DbgpOutgoing>& out);
  void emit(bgp::PeerId peer, const net::Prefix& prefix, const ia::IntegratedAdvertisement& ia,
            std::vector<DbgpOutgoing>& out);
  DecisionModule* active_module(const net::Prefix& prefix) const;

  DbgpConfig config_;
  LookupService* lookup_;
  IaFactory factory_;
  std::vector<Peer> peers_;
  std::vector<std::unique_ptr<DecisionModule>> modules_;
  net::PrefixTrie<ia::ProtocolId> active_ranges_;
  GlobalFilterChain import_filters_;
  GlobalFilterChain export_filters_;
  IaDb ia_db_;
  // Selected best per prefix (the Loc-RIB analog).
  std::map<net::Prefix, IaRoute> selected_;
  std::map<net::Prefix, bool> originated_;  // value unused; set semantics
  // Last advertisement frame per (peer, prefix) for delta suppression.
  // Frames are shared with the cache, so the pointer-equality fast path
  // suppresses a re-advertisement without touching the bytes.
  std::map<bgp::PeerId, std::map<net::Prefix, ia::SharedFrame>> adj_out_;
  // Encode-once fan-out across peers (and across decisions that re-select
  // the same route).
  ia::FrameCache frame_cache_;
  // Prefixes staged by enqueue_frame, awaiting one decision each.
  std::vector<net::Prefix> batch_;       // first-touch order
  std::set<net::Prefix> batch_seen_;     // dedup for batch_
  std::uint64_t sequence_ = 0;
  DbgpStats stats_;

  // -- Causal-tracing state (inert unless causal_ != nullptr) ---------------
  double trace_now() const { return clock_ ? clock_() : 0.0; }
  telemetry::CausalTracer* causal_ = nullptr;
  std::function<double()> clock_;
  // Span of the most recent staged update per prefix — becomes the parent of
  // that prefix's next decision run (covers both the immediate path and
  // batched coalescing, where the last of k staged updates wins).
  std::map<net::Prefix, telemetry::SpanId> pending_cause_;
  // Root origination span per locally originated prefix. Survives
  // reset_routes() like originated_: a reboot does not re-originate.
  std::map<net::Prefix, telemetry::SpanId> origin_span_;
  // Parent for frame spans minted by emit()/withdraw_from_peer(): the
  // current decision span, or the synced route's via_span in sync_peer.
  telemetry::SpanId emit_parent_ = 0;
  // Fallback decision parent for externally caused runs (peer_down after a
  // link cut, reevaluate_all after a protocol activation, ...).
  telemetry::SpanId external_cause_ = 0;
};

}  // namespace dbgp::core
