// Module APIs for replacement protocols (Section 3.3, "Supporting islands
// running replacement protocols").
//
// A replacement protocol (e.g., Pathlet Routing, SCION) keeps its own
// advertisement format inside its island and uses D-BGP only at the island's
// borders. Each replacement provides, in addition to a decision module:
//   * an ingress translation module — maps arriving IAs into the protocol's
//     within-island advertisement format (preserving the D-BGP path vector),
//   * an egress translation module — encodes within-island state into IAs
//     that cross gulfs,
//   * a redistribution module — exports a usable route into plain BGP so
//     ASes in gulfs can still reach destinations behind the island.
#pragma once

#include <optional>
#include <vector>

#include "bgp/path_attributes.h"
#include "ia/integrated_advertisement.h"

namespace dbgp::core {

// A protocol-specific within-island advertisement, opaque to D-BGP.
struct WithinIslandAd {
  ia::ProtocolId protocol = 0;
  std::vector<std::uint8_t> payload;
  // The D-BGP path vector at ingress, preserved so the island's egress can
  // re-attach it ("the ingress module is responsible for preserving D-BGP
  // path vectors").
  ia::IaPathVector ingress_path_vector;
};

class IngressTranslationModule {
 public:
  virtual ~IngressTranslationModule() = default;
  // Translates one arriving IA into zero or more within-island ads.
  virtual std::vector<WithinIslandAd> from_ia(const ia::IntegratedAdvertisement& ia) = 0;
};

class EgressTranslationModule {
 public:
  virtual ~EgressTranslationModule() = default;
  // Folds within-island advertisements into the IA that will cross the gulf
  // (fills island descriptors; encodes within-island paths).
  virtual void to_ia(const std::vector<WithinIslandAd>& ads,
                     ia::IntegratedAdvertisement& out) = 0;
};

class RedistributionModule {
 public:
  virtual ~RedistributionModule() = default;
  // Produces the plain-BGP route (attributes) to redistribute for `prefix`,
  // or nullopt if the protocol cannot expose a baseline-compatible route.
  virtual std::optional<bgp::PathAttributes> redistribute(
      const net::Prefix& prefix, const ia::IntegratedAdvertisement& ia) = 0;
};

}  // namespace dbgp::core
