#include "ia/codec.h"

#include <map>

#include "ia/compress.h"
#include "telemetry/metrics.h"
#include "telemetry/timer.h"
#include "util/bytes.h"

namespace dbgp::ia {

using util::ByteReader;
using util::ByteWriter;
using util::DecodeError;

namespace {

constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFlagCompressed = 0x01;

void encode_path_vector(ByteWriter& w, const IaPathVector& pv) {
  w.put_varint(pv.elements().size());
  for (const auto& e : pv.elements()) {
    w.put_u8(static_cast<std::uint8_t>(e.kind));
    switch (e.kind) {
      case PathElement::Kind::kAs:
        w.put_varint(e.asn);
        break;
      case PathElement::Kind::kIsland:
        w.put_varint(e.island_id.raw());
        break;
      case PathElement::Kind::kAsSet:
        w.put_varint(e.set.size());
        for (auto a : e.set) w.put_varint(a);
        break;
    }
  }
}

IaPathVector decode_path_vector(ByteReader& r) {
  const std::uint64_t raw_count = r.get_varint();
  r.expect_items(raw_count, 2);  // kind byte + at least one payload byte
  const std::size_t count = static_cast<std::size_t>(raw_count);
  std::vector<PathElement> elements;
  elements.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto kind = static_cast<PathElement::Kind>(r.get_u8());
    switch (kind) {
      case PathElement::Kind::kAs:
        elements.push_back(PathElement::as(static_cast<bgp::AsNumber>(r.get_varint())));
        break;
      case PathElement::Kind::kIsland:
        elements.push_back(PathElement::island(IslandId::from_raw(r.get_varint())));
        break;
      case PathElement::Kind::kAsSet: {
        const std::uint64_t raw_n = r.get_varint();
        r.expect_items(raw_n);
        const std::size_t n = static_cast<std::size_t>(raw_n);
        std::vector<bgp::AsNumber> set;
        set.reserve(n);
        for (std::size_t j = 0; j < n; ++j) {
          set.push_back(static_cast<bgp::AsNumber>(r.get_varint()));
        }
        elements.push_back(PathElement::as_set(std::move(set)));
        break;
      }
      default:
        throw DecodeError("bad path-vector element kind");
    }
  }
  return IaPathVector(std::move(elements));
}

struct BlobTable {
  std::vector<const std::vector<std::uint8_t>*> blobs;
  std::map<std::vector<std::uint8_t>, std::size_t> index;
  std::size_t shared_savings = 0;
  bool share = true;

  std::size_t intern(const std::vector<std::uint8_t>& value) {
    if (share) {
      auto it = index.find(value);
      if (it != index.end()) {
        shared_savings += value.size();
        return it->second;
      }
      const std::size_t id = blobs.size();
      blobs.push_back(&value);
      index.emplace(value, id);
      return id;
    }
    blobs.push_back(&value);
    return blobs.size() - 1;
  }
};

// Writes the blob-table + descriptor section from materialized descriptor
// vectors — the eager path, and the reference the splice fast path must
// reproduce byte-for-byte for canonically encoded input (verified by the
// fast-path property tests).
struct TailStats {
  std::size_t descriptor_bytes = 0;
  std::size_t shared_savings = 0;
};

TailStats encode_descriptor_tail(ByteWriter& w, const IntegratedAdvertisement& ia,
                                 bool share_blobs) {
  const auto& path_descriptors = ia.path_descriptors();
  const auto& island_descriptors = ia.island_descriptors();

  BlobTable table;
  table.share = share_blobs;
  std::vector<std::size_t> path_blob(path_descriptors.size());
  for (std::size_t i = 0; i < path_descriptors.size(); ++i) {
    path_blob[i] = table.intern(path_descriptors[i].value);
  }
  std::vector<std::size_t> island_blob(island_descriptors.size());
  for (std::size_t i = 0; i < island_descriptors.size(); ++i) {
    island_blob[i] = table.intern(island_descriptors[i].value);
  }

  TailStats stats;
  stats.shared_savings = table.shared_savings;
  w.put_varint(table.blobs.size());
  for (const auto* blob : table.blobs) {
    stats.descriptor_bytes += blob->size();
    w.put_varint(blob->size());
    w.put_bytes(*blob);
  }

  w.put_varint(path_descriptors.size());
  for (std::size_t i = 0; i < path_descriptors.size(); ++i) {
    w.put_varint(path_descriptors[i].protocol);
    w.put_varint(path_descriptors[i].key);
    w.put_varint(path_blob[i]);
  }

  w.put_varint(island_descriptors.size());
  for (std::size_t i = 0; i < island_descriptors.size(); ++i) {
    w.put_varint(island_descriptors[i].island.raw());
    w.put_varint(island_descriptors[i].protocol);
    w.put_varint(island_descriptors[i].key);
    w.put_varint(island_blob[i]);
  }
  return stats;
}

// Walks the tail without materializing payloads: bounds-checks every varint,
// skips over blob bytes, and range-checks blob indices. Lazy decode runs
// this eagerly so malformed input still fails inside decode_ia, while
// well-formed descriptor payloads are never copied until first access.
void validate_descriptor_tail(ByteReader& r) {
  const std::uint64_t raw_blob_count = r.get_varint();
  r.expect_items(raw_blob_count);  // length varint per blob
  const std::size_t blob_count = static_cast<std::size_t>(raw_blob_count);
  for (std::size_t i = 0; i < blob_count; ++i) {
    const std::size_t size = static_cast<std::size_t>(r.get_varint());
    r.get_bytes(size);  // skip, bounds-checked
  }

  const std::uint64_t raw_pd_count = r.get_varint();
  r.expect_items(raw_pd_count, 3);  // protocol + key + blob index
  const std::size_t pd_count = static_cast<std::size_t>(raw_pd_count);
  for (std::size_t i = 0; i < pd_count; ++i) {
    r.get_varint();  // protocol
    r.get_varint();  // key
    if (r.get_varint() >= blob_count) throw DecodeError("blob index out of range");
  }

  const std::uint64_t raw_id_count = r.get_varint();
  r.expect_items(raw_id_count, 4);  // island + protocol + key + blob index
  const std::size_t id_count = static_cast<std::size_t>(raw_id_count);
  for (std::size_t i = 0; i < id_count; ++i) {
    r.get_varint();  // island
    r.get_varint();  // protocol
    r.get_varint();  // key
    if (r.get_varint() >= blob_count) throw DecodeError("blob index out of range");
  }

  if (!r.at_end()) throw DecodeError("trailing bytes after IA body");
}

struct EncodeResult {
  std::vector<std::uint8_t> body;
  std::size_t baseline_bytes = 0;
  std::size_t descriptor_bytes = 0;
  std::size_t shared_savings = 0;
};

EncodeResult encode_body(const IntegratedAdvertisement& ia, bool share_blobs,
                         bool allow_splice) {
  ByteWriter w;
  w.put_u32(ia.destination.address().value());
  w.put_u8(ia.destination.length());

  encode_path_vector(w, ia.path_vector);

  w.put_varint(ia.island_ids.size());
  for (const auto& m : ia.island_ids) {
    w.put_varint(m.island.raw());
    w.put_varint(m.protocol);
    w.put_varint(m.members.size());
    for (auto a : m.members) w.put_varint(a);
  }

  // Baseline attributes: an RFC 4271 attribute block with a 16-bit length.
  const std::size_t baseline_len_at = w.reserve_u16();
  const std::size_t before_baseline = w.size();
  ia.baseline.encode(w);
  const std::size_t baseline_bytes = w.size() - before_baseline;
  w.patch_u16(baseline_len_at, static_cast<std::uint16_t>(baseline_bytes));

  // Pass-through fast path: splice the original wire bytes of the descriptor
  // section. Disabled when sharing is off (the ablation configurations must
  // re-encode to strip the dedup) or when a size breakdown is requested.
  if (allow_splice && share_blobs && ia.has_opaque_tail()) {
    w.put_bytes(ia.opaque_tail().bytes());
    return {w.take(), baseline_bytes, 0, 0};
  }

  const TailStats stats = encode_descriptor_tail(w, ia, share_blobs);
  return {w.take(), baseline_bytes, stats.descriptor_bytes, stats.shared_savings};
}

// Codec latency/size histograms, shared by every encode/decode in the
// process. These bracket exactly the serialization cost the Section 5
// stress test attributes Beagle's throughput loss to; the registry kill
// switch reduces each to a branch.
struct CodecMetrics {
  telemetry::Histogram* encode_seconds;
  telemetry::Histogram* decode_seconds;
  telemetry::Histogram* encode_bytes;
  telemetry::Histogram* decode_bytes;
  telemetry::Counter* encode_spliced;
  telemetry::Counter* decode_lazy;

  static CodecMetrics& get() {
    static CodecMetrics m = [] {
      auto& reg = telemetry::MetricsRegistry::global();
      auto size_bounds = telemetry::Histogram::exponential_bounds(64.0, 1 << 24, 2.0);
      return CodecMetrics{&reg.histogram("dbgp.codec.encode_seconds"),
                          &reg.histogram("dbgp.codec.decode_seconds"),
                          &reg.histogram("dbgp.codec.encode_bytes", size_bounds),
                          &reg.histogram("dbgp.codec.decode_bytes", size_bounds),
                          &reg.counter("dbgp.codec.encode_spliced"),
                          &reg.counter("dbgp.codec.decode_lazy")};
    }();
    return m;
  }
};

std::vector<std::uint8_t> encode_ia_impl(const IntegratedAdvertisement& ia,
                                         const CodecOptions& options, bool allow_splice,
                                         EncodeResult* breakdown) {
  telemetry::ScopedTimer timer(CodecMetrics::get().encode_seconds);
  const bool spliced = allow_splice && options.share_blobs && ia.has_opaque_tail();
  EncodeResult result = encode_body(ia, options.share_blobs, allow_splice);
  if (spliced) CodecMetrics::get().encode_spliced->inc();
  ByteWriter out;
  out.put_u8(kVersion);
  std::vector<std::uint8_t> bytes;
  if (options.compress) {
    auto compressed = lz_compress(result.body);
    if (compressed.size() < result.body.size()) {
      out.put_u8(kFlagCompressed);
      out.put_varint(result.body.size());
      out.put_bytes(compressed);
      bytes = out.take();
      CodecMetrics::get().encode_bytes->record(static_cast<double>(bytes.size()));
      if (breakdown != nullptr) *breakdown = std::move(result);
      return bytes;
    }
  }
  out.put_u8(0);
  out.put_bytes(result.body);
  bytes = out.take();
  CodecMetrics::get().encode_bytes->record(static_cast<double>(bytes.size()));
  if (breakdown != nullptr) *breakdown = std::move(result);
  return bytes;
}

}  // namespace

std::vector<std::uint8_t> encode_ia(const IntegratedAdvertisement& ia,
                                    const CodecOptions& options) {
  return encode_ia_impl(ia, options, /*allow_splice=*/true, nullptr);
}

void decode_descriptor_tail(std::span<const std::uint8_t> tail,
                            std::vector<PathDescriptor>& path_out,
                            std::vector<IslandDescriptor>& island_out) {
  ByteReader r(tail);

  const std::uint64_t raw_blob_count = r.get_varint();
  r.expect_items(raw_blob_count);  // length varint per blob
  const std::size_t blob_count = static_cast<std::size_t>(raw_blob_count);
  std::vector<std::vector<std::uint8_t>> blobs;
  blobs.reserve(blob_count);
  for (std::size_t i = 0; i < blob_count; ++i) {
    const std::size_t size = static_cast<std::size_t>(r.get_varint());
    auto bytes = r.get_bytes(size);
    blobs.emplace_back(bytes.begin(), bytes.end());
  }
  auto blob_at = [&blobs](std::uint64_t idx) -> const std::vector<std::uint8_t>& {
    if (idx >= blobs.size()) throw DecodeError("blob index out of range");
    return blobs[static_cast<std::size_t>(idx)];
  };

  const std::uint64_t raw_pd_count = r.get_varint();
  r.expect_items(raw_pd_count, 3);  // protocol + key + blob index
  const std::size_t pd_count = static_cast<std::size_t>(raw_pd_count);
  path_out.reserve(pd_count);
  for (std::size_t i = 0; i < pd_count; ++i) {
    PathDescriptor d;
    d.protocol = static_cast<ProtocolId>(r.get_varint());
    d.key = static_cast<std::uint16_t>(r.get_varint());
    d.value = blob_at(r.get_varint());
    path_out.push_back(std::move(d));
  }

  const std::uint64_t raw_id_count = r.get_varint();
  r.expect_items(raw_id_count, 4);  // island + protocol + key + blob index
  const std::size_t id_count = static_cast<std::size_t>(raw_id_count);
  island_out.reserve(id_count);
  for (std::size_t i = 0; i < id_count; ++i) {
    IslandDescriptor d;
    d.island = IslandId::from_raw(r.get_varint());
    d.protocol = static_cast<ProtocolId>(r.get_varint());
    d.key = static_cast<std::uint16_t>(r.get_varint());
    d.value = blob_at(r.get_varint());
    island_out.push_back(std::move(d));
  }

  if (!r.at_end()) throw DecodeError("trailing bytes after IA body");
}

IntegratedAdvertisement decode_ia(std::span<const std::uint8_t> data) {
  telemetry::ScopedTimer timer(CodecMetrics::get().decode_seconds);
  CodecMetrics::get().decode_bytes->record(static_cast<double>(data.size()));
  ByteReader outer(data);
  const std::uint8_t version = outer.get_u8();
  if (version != kVersion) throw DecodeError("unsupported IA version");
  const std::uint8_t flags = outer.get_u8();

  std::vector<std::uint8_t> decompressed;
  const bool compressed = (flags & kFlagCompressed) != 0;
  ByteReader r(std::span<const std::uint8_t>{});
  if (compressed) {
    const std::size_t size = static_cast<std::size_t>(outer.get_varint());
    decompressed = lz_decompress(outer.get_bytes(outer.remaining()), size);
    r = ByteReader(decompressed);
  } else {
    r = ByteReader(outer.get_bytes(outer.remaining()));
  }

  IntegratedAdvertisement ia;
  const std::uint32_t addr = r.get_u32();
  const std::uint8_t len = r.get_u8();
  if (len > 32) throw DecodeError("bad IA prefix length");
  ia.destination = net::Prefix(net::Ipv4Address(addr), len);

  ia.path_vector = decode_path_vector(r);

  const std::uint64_t raw_memberships = r.get_varint();
  r.expect_items(raw_memberships, 3);  // island + protocol + count
  const std::size_t memberships = static_cast<std::size_t>(raw_memberships);
  for (std::size_t i = 0; i < memberships; ++i) {
    IslandMembership m;
    m.island = IslandId::from_raw(r.get_varint());
    m.protocol = static_cast<ProtocolId>(r.get_varint());
    const std::uint64_t raw_count = r.get_varint();
    r.expect_items(raw_count);
    const std::size_t count = static_cast<std::size_t>(raw_count);
    m.members.reserve(count);
    for (std::size_t j = 0; j < count; ++j) {
      m.members.push_back(static_cast<bgp::AsNumber>(r.get_varint()));
    }
    ia.island_ids.push_back(std::move(m));
  }

  const std::size_t baseline_len = r.get_u16();
  ia.baseline = bgp::PathAttributes::decode(r, baseline_len);

  // Everything from here on is the blob-table + descriptor section.
  // Validate its structure now (malformed frames must fail inside
  // decode_ia), but keep the bytes opaque: payloads are materialized only if
  // something actually reads descriptors — a pass-through AS never does.
  const std::size_t tail_offset = r.position();
  const std::size_t tail_size = r.remaining();
  {
    ByteReader check = r;  // cheap copy: span + cursor
    validate_descriptor_tail(check);
  }

  // A trivial tail (zero blobs, zero descriptors — every BGP-only IA) is
  // represented directly; no arena allocation, nothing to materialize.
  if (tail_size <= 3) {
    ia.attach_opaque_tail({});
    return ia;
  }

  OpaqueTail tail;
  if (compressed) {
    // The decompressed body is already an owned buffer; adopt it (zero-copy).
    tail.arena = std::make_shared<const std::vector<std::uint8_t>>(std::move(decompressed));
    tail.offset = tail_offset;
  } else {
    // Copy just the descriptor section out of the caller's transient buffer.
    const auto bytes = r.get_bytes(tail_size);
    tail.arena =
        std::make_shared<const std::vector<std::uint8_t>>(bytes.begin(), bytes.end());
    tail.offset = 0;
  }
  ia.attach_opaque_tail(std::move(tail));
  CodecMetrics::get().decode_lazy->inc();
  return ia;
}

IaSizeBreakdown measure_ia(const IntegratedAdvertisement& ia, const CodecOptions& options) {
  // Force the eager encoder: the breakdown must account blob sharing even
  // when the IA could be spliced.
  IaSizeBreakdown b;
  EncodeResult result;
  b.total = encode_ia_impl(ia, options, /*allow_splice=*/false, &result).size();
  b.baseline_bytes = result.baseline_bytes;
  b.descriptor_bytes = result.descriptor_bytes;
  b.shared_savings = result.shared_savings;
  return b;
}

}  // namespace dbgp::ia
