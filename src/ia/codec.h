// Wire codec for Integrated Advertisements.
//
// The paper's prototype serialized IAs with protocol buffers; we use a
// purpose-built varint/TLV encoding with one extra feature protobuf lacks:
// a *blob table* that deduplicates identical descriptor payloads within an
// IA. This directly implements Section 3.2's "critical fixes listed in IAs
// can share control information that is identical across them and BGP", the
// mechanism behind Table 3's "+ Sharing" row.
//
// Layout (big-endian / LEB128 varints):
//   u8  version (=1)
//   u8  flags (bit0: body is LZ-compressed)
//   [varint uncompressed body size, if compressed]
//   body:
//     u32 prefix address, u8 prefix length
//     path vector: varint count, then per element (u8 kind + payload)
//     island memberships
//     baseline attributes (reuses the RFC 4271 attribute block codec)
//     blob table: varint count, then varint length + bytes each
//     path descriptors: (proto, key, blob index)
//     island descriptors: (island, proto, key, blob index)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ia/integrated_advertisement.h"

namespace dbgp::ia {

struct CodecOptions {
  bool compress = false;
  // When false the blob table stores each descriptor payload verbatim even
  // if identical to another (the "Basic" row of Table 3) — used by the
  // overhead benchmarks to isolate sharing's contribution.
  bool share_blobs = true;
};

// When the IA still carries its opaque descriptor tail (lazy decode, no
// descriptor edits since) and `options.share_blobs` is on, the blob-table +
// descriptor section is spliced from the original wire bytes instead of
// being re-encoded — the pass-through fast path (CF-R1).
std::vector<std::uint8_t> encode_ia(const IntegratedAdvertisement& ia,
                                    const CodecOptions& options = {});

// Throws util::DecodeError on malformed input. The returned IA's descriptor
// section is *lazy*: it is validated structurally but only parsed into
// PathDescriptor/IslandDescriptor vectors on first access (see
// IntegratedAdvertisement::materialize_descriptors).
IntegratedAdvertisement decode_ia(std::span<const std::uint8_t> data);

// Parses an encoded blob-table + descriptor section (the opaque tail kept
// by lazy decode) into descriptor vectors. Used by lazy materialization;
// throws util::DecodeError on malformed input.
void decode_descriptor_tail(std::span<const std::uint8_t> tail,
                            std::vector<PathDescriptor>& path_out,
                            std::vector<IslandDescriptor>& island_out);

// Size accounting for the overhead analysis (E3).
struct IaSizeBreakdown {
  std::size_t total = 0;             // encoded size with the given options
  std::size_t baseline_bytes = 0;    // shared BGP attribute block
  std::size_t descriptor_bytes = 0;  // unique blob bytes actually stored
  std::size_t shared_savings = 0;    // bytes avoided by blob deduplication
};

IaSizeBreakdown measure_ia(const IntegratedAdvertisement& ia,
                           const CodecOptions& options = {});

}  // namespace dbgp::ia
