#include "ia/compress.h"

#include <cstring>

#include "util/bytes.h"

namespace dbgp::ia {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxDistance = 64 * 1024;
constexpr std::size_t kHashBits = 15;

std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> input) {
  util::ByteWriter out;
  const std::size_t n = input.size();
  std::vector<std::int64_t> table(1u << kHashBits, -1);

  std::size_t literal_start = 0;
  auto flush_literals = [&](std::size_t end) {
    if (end <= literal_start) return;
    out.put_u8(0x00);
    out.put_varint(end - literal_start);
    out.put_bytes(input.subspan(literal_start, end - literal_start));
  };

  std::size_t i = 0;
  while (i + kMinMatch <= n) {
    const std::uint32_t h = hash4(input.data() + i);
    const std::int64_t candidate = table[h];
    table[h] = static_cast<std::int64_t>(i);
    if (candidate >= 0 && i - static_cast<std::size_t>(candidate) <= kMaxDistance) {
      const std::size_t cand = static_cast<std::size_t>(candidate);
      // Extend the match as far as it goes.
      std::size_t len = 0;
      while (i + len < n && input[cand + len] == input[i + len]) ++len;
      if (len >= kMinMatch) {
        flush_literals(i);
        out.put_u8(0x01);
        out.put_varint(len);
        out.put_varint(i - cand);
        // Insert hash anchors inside the match so later data can refer back.
        const std::size_t stop = i + len;
        for (std::size_t j = i + 1; j + kMinMatch <= stop && j + kMinMatch <= n; j += 2) {
          table[hash4(input.data() + j)] = static_cast<std::int64_t>(j);
        }
        i = stop;
        literal_start = i;
        continue;
      }
    }
    ++i;
  }
  flush_literals(n);
  return out.take();
}

std::vector<std::uint8_t> lz_decompress(std::span<const std::uint8_t> input,
                                        std::size_t expected_size) {
  util::ByteReader r(input);
  std::vector<std::uint8_t> out;
  out.reserve(expected_size);
  while (!r.at_end()) {
    const std::uint8_t tag = r.get_u8();
    if (tag == 0x00) {
      const std::size_t len = static_cast<std::size_t>(r.get_varint());
      auto bytes = r.get_bytes(len);
      out.insert(out.end(), bytes.begin(), bytes.end());
    } else if (tag == 0x01) {
      const std::size_t len = static_cast<std::size_t>(r.get_varint());
      const std::size_t dist = static_cast<std::size_t>(r.get_varint());
      if (dist == 0 || dist > out.size() || len < kMinMatch) {
        throw util::DecodeError("bad LZ match token");
      }
      // Byte-by-byte copy: matches may overlap their own output.
      const std::size_t start = out.size() - dist;
      for (std::size_t j = 0; j < len; ++j) out.push_back(out[start + j]);
    } else {
      throw util::DecodeError("bad LZ token tag");
    }
    if (out.size() > expected_size) throw util::DecodeError("LZ output exceeds declared size");
  }
  if (out.size() != expected_size) throw util::DecodeError("LZ output shorter than declared");
  return out;
}

}  // namespace dbgp::ia
