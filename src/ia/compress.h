// Byte-level compression for Integrated Advertisements (Section 3.2: "IAs
// can be compressed to further reduce their size").
//
// A small self-contained LZ77 variant: greedy longest-match with a hash
// table over 4-byte anchors, 64 KiB window. The format is a token stream:
//   0x00 <varint len> <len literal bytes>
//   0x01 <varint len> <varint distance>     (len >= 4, distance >= 1)
// It is not meant to beat zlib — it exists so compression can be measured as
// a real design knob in the overhead benchmarks with zero dependencies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dbgp::ia {

std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> input);

// Throws util::DecodeError on malformed input.
std::vector<std::uint8_t> lz_decompress(std::span<const std::uint8_t> input,
                                        std::size_t expected_size);

}  // namespace dbgp::ia
