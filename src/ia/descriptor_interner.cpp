#include "ia/descriptor_interner.h"

#include <algorithm>

#include "telemetry/metrics.h"

namespace dbgp::ia {

namespace {

struct DescInternerMetrics {
  telemetry::Counter* hits;
  telemetry::Counter* misses;

  static DescInternerMetrics& get() {
    static DescInternerMetrics m = [] {
      auto& reg = telemetry::MetricsRegistry::global();
      return DescInternerMetrics{&reg.counter("dbgp.ia.interner.hits"),
                                 &reg.counter("dbgp.ia.interner.misses")};
    }();
    return m;
  }
};

std::size_t hash_bytes(std::span<const std::uint8_t> bytes) noexcept {
  // FNV-1a.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

void DescriptorInterner::intern(IntegratedAdvertisement& advert) {
  if (!advert.has_opaque_tail()) return;
  const std::span<const std::uint8_t> bytes = advert.opaque_tail().bytes();
  if (bytes.empty() || bytes.size() > kMaxInternedTailBytes) return;
  const std::size_t h = hash_bytes(bytes);
  auto& bucket = tails_[h];
  for (const Arena& canonical : bucket) {
    if (canonical->size() == bytes.size() &&
        std::equal(canonical->begin(), canonical->end(), bytes.begin())) {
      ++stats_.hits;
      DescInternerMetrics::get().hits->inc();
      // Rebinding releases the IA's grip on its whole-frame buffer; the
      // canonical arena holds only the tail bytes, at offset 0.
      if (advert.opaque_tail().arena != canonical) {
        advert.attach_opaque_tail({canonical, 0});
      }
      return;
    }
  }
  ++stats_.misses;
  DescInternerMetrics::get().misses->inc();
  auto canonical = std::make_shared<const std::vector<std::uint8_t>>(bytes.begin(), bytes.end());
  bytes_ += canonical->size();
  ++entries_;
  bucket.push_back(canonical);
  advert.attach_opaque_tail({std::move(canonical), 0});
  // Bound dead-tail accumulation under churn without forgetting the working
  // set: collect only once unreferenced tails dominate.
  const std::size_t alive = live();
  if (entries_ > 64 && entries_ > 2 * alive) gc();
}

std::size_t DescriptorInterner::live() const noexcept {
  std::size_t alive = 0;
  for (const auto& [hash, bucket] : tails_) {
    for (const Arena& canonical : bucket) {
      if (canonical.use_count() > 1) ++alive;
    }
  }
  return alive;
}

void DescriptorInterner::gc() {
  for (auto it = tails_.begin(); it != tails_.end();) {
    auto& bucket = it->second;
    std::erase_if(bucket, [this](const Arena& canonical) {
      if (canonical.use_count() > 1) return false;
      bytes_ -= canonical->size();
      --entries_;
      return true;
    });
    it = bucket.empty() ? tails_.erase(it) : std::next(it);
  }
}

}  // namespace dbgp::ia
