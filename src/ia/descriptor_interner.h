// Hash-consed IA descriptor-tail interning (DESIGN.md §14).
//
// Decoded Integrated Advertisements keep their descriptor section as a lazy
// OpaqueTail into the received frame's byte arena (PR 2). That is zero-copy
// per frame, but a full table learned from several peers holds thousands of
// frame buffers whose descriptor bytes are identical — D-BGP descriptors are
// mostly shared island/protocol state (the paper's Section 3.2 sharing
// argument, and the `shared_fraction` knob of the synthetic workloads).
//
// The DescriptorInterner canonicalizes: equal tail byte strings share one
// tail-only arena. Rebinding an IA's OpaqueTail to the canonical arena drops
// its reference to the original whole-frame buffer, so the frame's header
// bytes become freeable and N identical tails cost one allocation. Handles
// are the existing shared_ptr arena references — no new handle type — and
// live() counts canonical tails still referenced by at least one IA.
//
// One interner belongs to one DbgpSpeaker. Like AttrInterner it is not
// thread-safe: all IA staging is sequential (stage_ia); the shard planners
// only copy shared_ptrs, whose refcounts are atomic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ia/integrated_advertisement.h"

namespace dbgp::ia {

struct DescriptorInternerStats {
  std::uint64_t hits = 0;    // tail matched an existing canonical arena
  std::uint64_t misses = 0;  // tail copied into a new canonical arena
};

class DescriptorInterner {
 public:
  // Tails longer than this stay on their zero-copy frame arena (the PR 2
  // fast path): hashing + copying a bulk payload costs more than the dedup
  // saves, and the SharedFrame refcount already de-duplicates storage for
  // in-flight fan-out. Small descriptor sections — the island/protocol
  // state that actually repeats across a table — are what interning wins on.
  static constexpr std::size_t kMaxInternedTailBytes = 1024;

  // Rebinds `advert`'s opaque tail to the canonical arena for its byte
  // content (creating one on first sight). No-op for IAs without a clean
  // tail (locally built or already-materialized-and-edited descriptors) and
  // for tails beyond kMaxInternedTailBytes.
  void intern(IntegratedAdvertisement& advert);

  const DescriptorInternerStats& stats() const noexcept { return stats_; }
  // Canonical tails currently referenced by at least one IA.
  std::size_t live() const noexcept;
  // Bytes retained across all canonical tails (referenced or cached).
  std::size_t bytes() const noexcept { return bytes_; }
  double hit_rate() const noexcept {
    const std::uint64_t total = stats_.hits + stats_.misses;
    return total == 0 ? 0.0 : static_cast<double>(stats_.hits) / static_cast<double>(total);
  }

  // Drops canonical tails no longer referenced by any IA (use_count == 1:
  // only the interner's own reference is left). Also runs opportunistically
  // from intern() so churny workloads do not accumulate dead tails.
  void gc();

 private:
  using Arena = std::shared_ptr<const std::vector<std::uint8_t>>;

  // content hash -> canonical tail-only arenas (collisions chain).
  std::unordered_map<std::size_t, std::vector<Arena>> tails_;
  std::size_t entries_ = 0;
  std::size_t bytes_ = 0;
  DescriptorInternerStats stats_;
};

}  // namespace dbgp::ia
