#include "ia/descriptors.h"

// Descriptors are plain data; all behaviour lives in the protocol plugins
// that define payload encodings. This TU exists to anchor the header.

namespace dbgp::ia {}  // namespace dbgp::ia
