// Path descriptors and island descriptors (Section 3.2).
//
// Path descriptors describe per-protocol attributes of the *entire* path
// (e.g., Wiser's scaled cost, BGPSec's attestation chain). Island
// descriptors encode attributes specific to one island (e.g., a SCION
// island's within-island paths, a MIRO island's service portal address, a
// Wiser island's cost-exchange portal).
//
// Payloads are opaque bytes; each protocol plugin defines its own keys and
// payload encodings. This opacity is load-bearing: it is exactly what lets
// gulf ASes pass the data through without understanding it (CF-R1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ia/ids.h"

namespace dbgp::ia {

// Descriptor keys are protocol-scoped; these are the conventional key
// numbers used by the bundled protocol plugins (documented here so dumps are
// readable; plugins are the source of truth for payload layout).
namespace keys {
inline constexpr std::uint16_t kWiserPathCost = 1;       // path descriptor
inline constexpr std::uint16_t kWiserPortalAddr = 2;     // island descriptor
inline constexpr std::uint16_t kBgpSecAttestation = 1;   // path descriptor
inline constexpr std::uint16_t kScionPaths = 1;          // island descriptor
inline constexpr std::uint16_t kPathletList = 1;         // island descriptor
inline constexpr std::uint16_t kMiroPortalAddr = 1;      // island descriptor
inline constexpr std::uint16_t kEqBgpQos = 1;            // path descriptor
inline constexpr std::uint16_t kRBgpBackupPath = 1;      // path descriptor
inline constexpr std::uint16_t kLispMapping = 1;         // island descriptor
inline constexpr std::uint16_t kFcCommitments = 1;       // path descriptor
inline constexpr std::uint16_t kStackVector = 1;         // path descriptor
inline constexpr std::uint16_t kStackVecGateway = 1;     // island descriptor
}  // namespace keys

struct PathDescriptor {
  ProtocolId protocol = 0;
  std::uint16_t key = 0;
  std::vector<std::uint8_t> value;

  bool operator==(const PathDescriptor&) const = default;
};

struct IslandDescriptor {
  IslandId island;
  ProtocolId protocol = 0;
  std::uint16_t key = 0;
  std::vector<std::uint8_t> value;

  bool operator==(const IslandDescriptor&) const = default;
};

// Membership statement emitted by island egress filters: which contiguous
// path-vector ASes belong to which island (the "island IDs" field of
// Figure 4). Needed by sources to build multi-network-protocol headers.
struct IslandMembership {
  IslandId island;
  std::vector<bgp::AsNumber> members;  // may be empty if abstracted away
  ProtocolId protocol = 0;             // protocol the island runs

  bool operator==(const IslandMembership&) const = default;
};

}  // namespace dbgp::ia
