#include "ia/frame_cache.h"

#include <algorithm>
#include <span>

#include "telemetry/metrics.h"
#include "util/bytes.h"

namespace dbgp::ia {

namespace {

struct CacheMetrics {
  telemetry::Counter* hits;
  telemetry::Counter* misses;

  static CacheMetrics& get() {
    static CacheMetrics m = [] {
      auto& reg = telemetry::MetricsRegistry::global();
      return CacheMetrics{&reg.counter("dbgp.codec.frame_cache.hits"),
                          &reg.counter("dbgp.codec.frame_cache.misses")};
    }();
    return m;
  }
};

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

struct Fnv {
  std::uint64_t h = kFnvOffset;

  void byte(std::uint8_t b) noexcept {
    h ^= b;
    h *= kFnvPrime;
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (i * 8)));
  }
  void bytes(std::span<const std::uint8_t> data) noexcept {
    for (std::uint8_t b : data) byte(b);
  }
  // Large descriptor payloads are sampled (length + strided bytes): the hash
  // only routes to an equality-verified bucket, so under-mixing costs a
  // false miss, never a false hit.
  void sampled(std::span<const std::uint8_t> data) noexcept {
    u64(data.size());
    const std::size_t step = std::max<std::size_t>(1, data.size() / 64);
    for (std::size_t i = 0; i < data.size(); i += step) byte(data[i]);
    if (!data.empty()) byte(data.back());
  }
};

}  // namespace

std::uint64_t FrameCache::content_hash(const IntegratedAdvertisement& ia,
                                       const CodecOptions& options) {
  Fnv f;
  f.byte(options.compress ? 1 : 0);
  f.byte(options.share_blobs ? 1 : 0);

  f.u64(ia.destination.address().value());
  f.byte(ia.destination.length());

  f.u64(ia.path_vector.elements().size());
  for (const auto& e : ia.path_vector.elements()) {
    f.byte(static_cast<std::uint8_t>(e.kind));
    switch (e.kind) {
      case PathElement::Kind::kAs:
        f.u64(e.asn);
        break;
      case PathElement::Kind::kIsland:
        f.u64(e.island_id.raw());
        break;
      case PathElement::Kind::kAsSet:
        f.u64(e.set.size());
        for (auto a : e.set) f.u64(a);
        break;
    }
  }

  f.u64(ia.island_ids.size());
  for (const auto& m : ia.island_ids) {
    f.u64(m.island.raw());
    f.u64(m.protocol);
    f.u64(m.members.size());
    for (auto a : m.members) f.u64(a);
  }

  // The baseline attribute block is small; hash its canonical encoding
  // rather than duplicating the attribute walk here.
  util::ByteWriter baseline;
  ia.baseline.encode(baseline);
  f.bytes(baseline.bytes());

  if (ia.has_opaque_tail()) {
    // Identify the tail by provenance, not content: O(1), and two IAs
    // sharing an arena are byte-identical by construction. Different arenas
    // with equal bytes merely hash apart (a false miss).
    const auto& tail = ia.opaque_tail();
    f.u64(reinterpret_cast<std::uintptr_t>(static_cast<const void*>(tail.arena.get())));
    f.u64(tail.offset);
    f.u64(tail.arena->size());
  } else {
    f.byte(0xff);  // domain-separate materialized descriptors from tails
    f.u64(ia.path_descriptors().size());
    for (const auto& d : ia.path_descriptors()) {
      f.u64(d.protocol);
      f.u64(d.key);
      f.sampled(d.value);
    }
    f.u64(ia.island_descriptors().size());
    for (const auto& d : ia.island_descriptors()) {
      f.u64(d.island.raw());
      f.u64(d.protocol);
      f.u64(d.key);
      f.sampled(d.value);
    }
  }
  return f.h;
}

bool FrameCache::frame_equivalent(const Entry& entry, const IntegratedAdvertisement& ia,
                                  const CodecOptions& options) {
  if (entry.options.compress != options.compress ||
      entry.options.share_blobs != options.share_blobs) {
    return false;
  }
  // encode_ia splices a clean opaque tail verbatim but re-encodes
  // materialized descriptors canonically; content-equal IAs on different
  // sides of that split could still produce different bytes, so a hit
  // requires the same encoding path.
  if (entry.ia.has_opaque_tail() != ia.has_opaque_tail()) return false;
  if (entry.ia.has_opaque_tail()) {
    const auto a = entry.ia.opaque_tail().bytes();
    const auto b = ia.opaque_tail().bytes();
    if (a.size() != b.size() ||
        (a.data() != b.data() && !std::equal(a.begin(), a.end(), b.begin()))) {
      return false;
    }
  }
  return entry.ia == ia;
}

SharedFrame FrameCache::get_or_encode(const IntegratedAdvertisement& ia,
                                      const CodecOptions& options,
                                      const std::function<std::vector<std::uint8_t>()>& encode) {
  const std::uint64_t hash = content_hash(ia, options);
  auto it = entries_.find(hash);
  if (it != entries_.end() && frame_equivalent(it->second, ia, options)) {
    CacheMetrics::get().hits->inc();
    return it->second.frame;
  }
  CacheMetrics::get().misses->inc();
  SharedFrame frame = make_shared_frame(encode());
  if (capacity_ == 0) return frame;
  if (it != entries_.end()) {
    // Hash collision with different content: newest advertisement wins.
    it->second = Entry{options, ia, frame};
    return frame;
  }
  while (entries_.size() >= capacity_ && !order_.empty()) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
  entries_.emplace(hash, Entry{options, ia, frame});
  order_.push_back(hash);
  return frame;
}

void FrameCache::clear() {
  entries_.clear();
  order_.clear();
}

}  // namespace dbgp::ia
