// FrameCache: encode-once fan-out for advertisement frames.
//
// A D-BGP speaker advertising one best route to N peers usually produces N
// byte-identical frames — the per-peer export pipeline only rewrites the IA
// when a protocol binds control information to the peer (e.g. BGPSec) or an
// export filter diverges at an island boundary. The cache keys candidate
// frames by a content hash of the IA (+ codec options), verifies hits by
// full equality, and hands every peer the same refcounted frame, so the
// encoder runs once per distinct advertisement instead of once per peer.
//
// Misses from export-policy divergence are handled structurally: a rewritten
// IA hashes (and compares) differently, so it gets its own entry; stale
// entries age out of the bounded FIFO.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ia/codec.h"
#include "ia/integrated_advertisement.h"

namespace dbgp::ia {

// A wire frame shared across peers (and across the simulated network's
// in-flight messages): immutable bytes behind a refcount.
using SharedFrame = std::shared_ptr<const std::vector<std::uint8_t>>;

inline SharedFrame make_shared_frame(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

class FrameCache {
 public:
  explicit FrameCache(std::size_t capacity = 128) : capacity_(capacity) {}

  // Returns the cached frame for an equal (IA, options) pair, or invokes
  // `encode` and caches its result. The encoder's output is whatever frame
  // the caller sends on the wire (it may wrap the IA bytes in speaker
  // framing); the cache only requires that equal inputs produce equal
  // frames.
  SharedFrame get_or_encode(const IntegratedAdvertisement& ia, const CodecOptions& options,
                            const std::function<std::vector<std::uint8_t>()>& encode);

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  void clear();

 private:
  struct Entry {
    CodecOptions options;
    IntegratedAdvertisement ia;  // cheap copy while the tail is lazy
    SharedFrame frame;
  };

  static std::uint64_t content_hash(const IntegratedAdvertisement& ia,
                                    const CodecOptions& options);
  static bool frame_equivalent(const Entry& entry, const IntegratedAdvertisement& ia,
                               const CodecOptions& options);

  std::size_t capacity_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::deque<std::uint64_t> order_;  // insertion order for FIFO eviction
};

}  // namespace dbgp::ia
