#include "ia/ids.h"

#include "util/rng.h"

namespace dbgp::ia {

ProtocolRegistry::ProtocolRegistry() {
  const std::pair<ProtocolId, const char*> builtin[] = {
      {kProtoBgp, "bgp"},        {kProtoWiser, "wiser"}, {kProtoBgpSec, "bgpsec"},
      {kProtoPathlets, "pathlets"}, {kProtoScion, "scion"}, {kProtoMiro, "miro"},
      {kProtoEqBgp, "eq-bgp"},   {kProtoRBgp, "r-bgp"},  {kProtoLisp, "lisp"},
      {kProtoHlp, "hlp"},        {kProtoFcBgp, "fcbgp"}, {kProtoStackVec, "stackvec"},
  };
  for (const auto& [id, name] : builtin) {
    names_[id] = name;
    ids_[name] = id;
  }
}

ProtocolId ProtocolRegistry::register_protocol(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const ProtocolId id = next_++;
  names_[id] = std::string(name);
  ids_[std::string(name)] = id;
  return id;
}

std::string ProtocolRegistry::name(ProtocolId id) const {
  auto it = names_.find(id);
  return it == names_.end() ? "proto-" + std::to_string(id) : it->second;
}

ProtocolId ProtocolRegistry::find(std::string_view name) const noexcept {
  auto it = ids_.find(name);
  return it == ids_.end() ? 0 : it->second;
}

const ProtocolRegistry& default_registry() {
  static const ProtocolRegistry registry;
  return registry;
}

IslandId IslandId::derive(std::span<const bgp::AsNumber> border_ases) noexcept {
  // Order-independent hash so every border AS derives the same ID.
  std::uint64_t acc = 0;
  for (bgp::AsNumber asn : border_ases) {
    std::uint64_t s = asn;
    acc ^= util::splitmix64(s);
  }
  // Fold into the assigned space (32 bits + tag) so it cannot collide with
  // a raw AS number.
  return IslandId::assigned(static_cast<std::uint32_t>(acc ^ (acc >> 32)) | 1u);
}

std::string IslandId::to_string() const {
  if (!valid()) return "island:none";
  if (is_singleton_as()) return "AS" + std::to_string(as_number());
  return "island:" + std::to_string(value_ & 0xffffffffULL);
}

}  // namespace dbgp::ia
