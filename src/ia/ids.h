// Protocol and island identifiers (Section 3.1).
//
// The paper assumes a governing body (IETF/ARIN) assigns unique protocol IDs
// and optionally island IDs; alternatively islands derive an ID by hashing
// their border ASes' numbers. We model both: ProtocolId is a small integer
// from a registry; IslandId is either an AS number (singleton islands) or an
// assigned/derived 64-bit value.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>

#include "bgp/types.h"

namespace dbgp::ia {

using ProtocolId = std::uint32_t;

// Well-known protocol IDs used throughout the library and tests. New
// protocols register at runtime via ProtocolRegistry.
inline constexpr ProtocolId kProtoBgp = 1;
inline constexpr ProtocolId kProtoWiser = 2;
inline constexpr ProtocolId kProtoBgpSec = 3;
inline constexpr ProtocolId kProtoPathlets = 4;
inline constexpr ProtocolId kProtoScion = 5;
inline constexpr ProtocolId kProtoMiro = 6;
inline constexpr ProtocolId kProtoEqBgp = 7;
inline constexpr ProtocolId kProtoRBgp = 8;
inline constexpr ProtocolId kProtoLisp = 9;
inline constexpr ProtocolId kProtoHlp = 10;
inline constexpr ProtocolId kProtoFcBgp = 11;     // forwarding commitments
inline constexpr ProtocolId kProtoStackVec = 12;  // stack-vector tunneling
inline constexpr ProtocolId kFirstDynamicProtocolId = 100;

// Maps protocol IDs to names. A registry instance is plain data (no
// singleton); default_registry() returns one pre-seeded with the well-known
// protocols above.
class ProtocolRegistry {
 public:
  ProtocolRegistry();

  // Registers a new protocol; returns its assigned ID. Registering the same
  // name twice returns the existing ID (idempotent).
  ProtocolId register_protocol(std::string_view name);
  // Name for an ID; "proto-<id>" if unknown.
  std::string name(ProtocolId id) const;
  // ID for a name; 0 if unknown.
  ProtocolId find(std::string_view name) const noexcept;

 private:
  std::map<ProtocolId, std::string> names_;
  std::map<std::string, ProtocolId, std::less<>> ids_;
  ProtocolId next_ = kFirstDynamicProtocolId;
};

const ProtocolRegistry& default_registry();

// Island identifier: an AS number for singleton islands, or an assigned /
// hash-derived value for multi-AS islands. The tag bit keeps the two spaces
// disjoint.
class IslandId {
 public:
  constexpr IslandId() noexcept = default;

  static constexpr IslandId from_as(bgp::AsNumber asn) noexcept {
    return IslandId(static_cast<std::uint64_t>(asn));
  }
  static constexpr IslandId assigned(std::uint32_t value) noexcept {
    return IslandId(kAssignedTag | value);
  }
  // Derives an ID by hashing border-AS numbers (Section 3.1 alternative).
  static IslandId derive(std::span<const bgp::AsNumber> border_ases) noexcept;

  constexpr bool valid() const noexcept { return value_ != 0; }
  constexpr bool is_singleton_as() const noexcept {
    return valid() && (value_ & kAssignedTag) == 0;
  }
  constexpr bgp::AsNumber as_number() const noexcept {
    return static_cast<bgp::AsNumber>(value_);
  }
  constexpr std::uint64_t raw() const noexcept { return value_; }
  static constexpr IslandId from_raw(std::uint64_t raw) noexcept { return IslandId(raw); }

  std::string to_string() const;

  friend constexpr auto operator<=>(IslandId, IslandId) noexcept = default;

 private:
  constexpr explicit IslandId(std::uint64_t value) noexcept : value_(value) {}

  static constexpr std::uint64_t kAssignedTag = 1ULL << 40;
  std::uint64_t value_ = 0;
};

}  // namespace dbgp::ia
