#include "ia/integrated_advertisement.h"

#include <algorithm>
#include <sstream>

namespace dbgp::ia {

const PathDescriptor* IntegratedAdvertisement::find_path_descriptor(
    ProtocolId protocol, std::uint16_t key) const noexcept {
  for (const auto& d : path_descriptors) {
    if (d.protocol == protocol && d.key == key) return &d;
  }
  return nullptr;
}

void IntegratedAdvertisement::set_path_descriptor(ProtocolId protocol, std::uint16_t key,
                                                  std::vector<std::uint8_t> value) {
  for (auto& d : path_descriptors) {
    if (d.protocol == protocol && d.key == key) {
      d.value = std::move(value);
      return;
    }
  }
  path_descriptors.push_back({protocol, key, std::move(value)});
}

void IntegratedAdvertisement::remove_path_descriptors(ProtocolId protocol) {
  std::erase_if(path_descriptors,
                [protocol](const PathDescriptor& d) { return d.protocol == protocol; });
}

const IslandDescriptor* IntegratedAdvertisement::find_island_descriptor(
    IslandId island, ProtocolId protocol, std::uint16_t key) const noexcept {
  for (const auto& d : island_descriptors) {
    if (d.island == island && d.protocol == protocol && d.key == key) return &d;
  }
  return nullptr;
}

std::vector<const IslandDescriptor*> IntegratedAdvertisement::island_descriptors_for(
    ProtocolId protocol) const {
  std::vector<const IslandDescriptor*> out;
  for (const auto& d : island_descriptors) {
    if (d.protocol == protocol) out.push_back(&d);
  }
  return out;
}

void IntegratedAdvertisement::add_island_descriptor(IslandId island, ProtocolId protocol,
                                                    std::uint16_t key,
                                                    std::vector<std::uint8_t> value) {
  for (auto& d : island_descriptors) {
    if (d.island == island && d.protocol == protocol && d.key == key) {
      d.value = std::move(value);
      return;
    }
  }
  island_descriptors.push_back({island, protocol, key, std::move(value)});
}

void IntegratedAdvertisement::remove_island_descriptors(IslandId island, ProtocolId protocol) {
  std::erase_if(island_descriptors, [&](const IslandDescriptor& d) {
    return d.island == island && d.protocol == protocol;
  });
}

const IslandMembership* IntegratedAdvertisement::find_membership(IslandId island) const noexcept {
  for (const auto& m : island_ids) {
    if (m.island == island) return &m;
  }
  return nullptr;
}

void IntegratedAdvertisement::add_membership(IslandMembership membership) {
  for (auto& m : island_ids) {
    if (m.island == membership.island) {
      m = std::move(membership);
      return;
    }
  }
  island_ids.push_back(std::move(membership));
}

std::set<ProtocolId> IntegratedAdvertisement::protocols_on_path() const {
  std::set<ProtocolId> protocols;
  protocols.insert(kProtoBgp);  // the baseline is always present
  for (const auto& d : path_descriptors) protocols.insert(d.protocol);
  for (const auto& d : island_descriptors) protocols.insert(d.protocol);
  for (const auto& m : island_ids) {
    if (m.protocol != 0) protocols.insert(m.protocol);
  }
  return protocols;
}

std::string IntegratedAdvertisement::dump(const ProtocolRegistry& registry) const {
  std::ostringstream out;
  out << "Baseline Address: " << destination.to_string() << "\n";
  out << "Path vector: " << path_vector.to_string() << "\n";
  if (!island_ids.empty()) {
    out << "Island IDs:\n";
    for (const auto& m : island_ids) {
      out << "  " << m.island.to_string();
      if (m.protocol != 0) out << " (" << registry.name(m.protocol) << ")";
      if (!m.members.empty()) {
        out << " members:";
        for (auto a : m.members) out << " " << a;
      }
      out << "\n";
    }
  }
  out << "Shared baseline fields: origin=" << bgp::to_string(baseline.origin)
      << " next-hop=" << baseline.next_hop.to_string() << "\n";
  if (!path_descriptors.empty()) {
    out << "Path descriptors:\n";
    for (const auto& d : path_descriptors) {
      out << "  " << registry.name(d.protocol) << " key=" << d.key << " (" << d.value.size()
          << " bytes)\n";
    }
  }
  if (!island_descriptors.empty()) {
    out << "Island descriptors:\n";
    for (const auto& d : island_descriptors) {
      out << "  " << d.island.to_string() << " " << registry.name(d.protocol)
          << " key=" << d.key << " (" << d.value.size() << " bytes)\n";
    }
  }
  return out.str();
}

}  // namespace dbgp::ia
