#include "ia/integrated_advertisement.h"

#include <algorithm>
#include <sstream>

#include "ia/codec.h"

namespace dbgp::ia {

// -- Lazy descriptor section -------------------------------------------------

void IntegratedAdvertisement::attach_opaque_tail(OpaqueTail tail) {
  tail_ = std::move(tail);
  tail_dirty_ = false;
  materialized_ = !tail_.valid();
  path_descriptors_.clear();
  island_descriptors_.clear();
}

void IntegratedAdvertisement::materialize_descriptors() const {
  if (materialized_) return;
  decode_descriptor_tail(tail_.bytes(), path_descriptors_, island_descriptors_);
  materialized_ = true;
}

const std::vector<PathDescriptor>& IntegratedAdvertisement::path_descriptors() const {
  materialize_descriptors();
  return path_descriptors_;
}

const std::vector<IslandDescriptor>& IntegratedAdvertisement::island_descriptors() const {
  materialize_descriptors();
  return island_descriptors_;
}

std::vector<PathDescriptor>& IntegratedAdvertisement::mutable_path_descriptors() {
  materialize_descriptors();
  tail_dirty_ = true;
  return path_descriptors_;
}

std::vector<IslandDescriptor>& IntegratedAdvertisement::mutable_island_descriptors() {
  materialize_descriptors();
  tail_dirty_ = true;
  return island_descriptors_;
}

// -- Descriptor accessors ----------------------------------------------------

const PathDescriptor* IntegratedAdvertisement::find_path_descriptor(
    ProtocolId protocol, std::uint16_t key) const noexcept {
  for (const auto& d : path_descriptors()) {
    if (d.protocol == protocol && d.key == key) return &d;
  }
  return nullptr;
}

void IntegratedAdvertisement::set_path_descriptor(ProtocolId protocol, std::uint16_t key,
                                                  std::vector<std::uint8_t> value) {
  auto& descriptors = mutable_path_descriptors();
  for (auto& d : descriptors) {
    if (d.protocol == protocol && d.key == key) {
      d.value = std::move(value);
      return;
    }
  }
  descriptors.push_back({protocol, key, std::move(value)});
}

void IntegratedAdvertisement::remove_path_descriptors(ProtocolId protocol) {
  // Avoid dirtying the tail when there is nothing to remove (common for
  // strip filters running over pass-through IAs).
  materialize_descriptors();
  const bool present = std::any_of(path_descriptors_.begin(), path_descriptors_.end(),
                                   [protocol](const PathDescriptor& d) {
                                     return d.protocol == protocol;
                                   });
  if (!present) return;
  std::erase_if(mutable_path_descriptors(),
                [protocol](const PathDescriptor& d) { return d.protocol == protocol; });
}

const IslandDescriptor* IntegratedAdvertisement::find_island_descriptor(
    IslandId island, ProtocolId protocol, std::uint16_t key) const noexcept {
  for (const auto& d : island_descriptors()) {
    if (d.island == island && d.protocol == protocol && d.key == key) return &d;
  }
  return nullptr;
}

std::vector<const IslandDescriptor*> IntegratedAdvertisement::island_descriptors_for(
    ProtocolId protocol) const {
  std::vector<const IslandDescriptor*> out;
  for (const auto& d : island_descriptors()) {
    if (d.protocol == protocol) out.push_back(&d);
  }
  return out;
}

void IntegratedAdvertisement::add_island_descriptor(IslandId island, ProtocolId protocol,
                                                    std::uint16_t key,
                                                    std::vector<std::uint8_t> value) {
  auto& descriptors = mutable_island_descriptors();
  for (auto& d : descriptors) {
    if (d.island == island && d.protocol == protocol && d.key == key) {
      d.value = std::move(value);
      return;
    }
  }
  descriptors.push_back({island, protocol, key, std::move(value)});
}

void IntegratedAdvertisement::remove_island_descriptors(IslandId island, ProtocolId protocol) {
  materialize_descriptors();
  const bool present =
      std::any_of(island_descriptors_.begin(), island_descriptors_.end(),
                  [&](const IslandDescriptor& d) {
                    return d.island == island && d.protocol == protocol;
                  });
  if (!present) return;
  std::erase_if(mutable_island_descriptors(), [&](const IslandDescriptor& d) {
    return d.island == island && d.protocol == protocol;
  });
}

void IntegratedAdvertisement::remove_island_descriptors(ProtocolId protocol) {
  materialize_descriptors();
  const bool present =
      std::any_of(island_descriptors_.begin(), island_descriptors_.end(),
                  [protocol](const IslandDescriptor& d) { return d.protocol == protocol; });
  if (!present) return;
  std::erase_if(mutable_island_descriptors(), [protocol](const IslandDescriptor& d) {
    return d.protocol == protocol;
  });
}

// -- Membership --------------------------------------------------------------

const IslandMembership* IntegratedAdvertisement::find_membership(IslandId island) const noexcept {
  for (const auto& m : island_ids) {
    if (m.island == island) return &m;
  }
  return nullptr;
}

void IntegratedAdvertisement::add_membership(IslandMembership membership) {
  for (auto& m : island_ids) {
    if (m.island == membership.island) {
      m = std::move(membership);
      return;
    }
  }
  island_ids.push_back(std::move(membership));
}

std::set<ProtocolId> IntegratedAdvertisement::protocols_on_path() const {
  std::set<ProtocolId> protocols;
  protocols.insert(kProtoBgp);  // the baseline is always present
  for (const auto& d : path_descriptors()) protocols.insert(d.protocol);
  for (const auto& d : island_descriptors()) protocols.insert(d.protocol);
  for (const auto& m : island_ids) {
    if (m.protocol != 0) protocols.insert(m.protocol);
  }
  return protocols;
}

bool IntegratedAdvertisement::operator==(const IntegratedAdvertisement& other) const {
  if (!(destination == other.destination) || !(path_vector == other.path_vector) ||
      !(island_ids == other.island_ids) || !(baseline == other.baseline)) {
    return false;
  }
  if (has_opaque_tail() && other.has_opaque_tail()) {
    if (tail_.arena == other.tail_.arena && tail_.offset == other.tail_.offset) return true;
    const auto a = tail_.bytes();
    const auto b = other.tail_.bytes();
    if (a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin())) return true;
    // Byte-different tails can still carry identical descriptors (e.g. a
    // different blob-sharing layout); fall through to structural equality.
  }
  materialize_descriptors();
  other.materialize_descriptors();
  return path_descriptors_ == other.path_descriptors_ &&
         island_descriptors_ == other.island_descriptors_;
}

std::string IntegratedAdvertisement::dump(const ProtocolRegistry& registry) const {
  std::ostringstream out;
  out << "Baseline Address: " << destination.to_string() << "\n";
  out << "Path vector: " << path_vector.to_string() << "\n";
  if (!island_ids.empty()) {
    out << "Island IDs:\n";
    for (const auto& m : island_ids) {
      out << "  " << m.island.to_string();
      if (m.protocol != 0) out << " (" << registry.name(m.protocol) << ")";
      if (!m.members.empty()) {
        out << " members:";
        for (auto a : m.members) out << " " << a;
      }
      out << "\n";
    }
  }
  out << "Shared baseline fields: origin=" << bgp::to_string(baseline.origin)
      << " next-hop=" << baseline.next_hop.to_string() << "\n";
  if (!path_descriptors().empty()) {
    out << "Path descriptors:\n";
    for (const auto& d : path_descriptors()) {
      out << "  " << registry.name(d.protocol) << " key=" << d.key << " (" << d.value.size()
          << " bytes)\n";
    }
  }
  if (!island_descriptors().empty()) {
    out << "Island descriptors:\n";
    for (const auto& d : island_descriptors()) {
      out << "  " << d.island.to_string() << " " << registry.name(d.protocol)
          << " key=" << d.key << " (" << d.value.size() << " bytes)\n";
    }
  }
  return out.str();
}

}  // namespace dbgp::ia
