// The Integrated Advertisement (IA) — Figure 4 of the paper.
//
// An IA extends a BGP advertisement into a shared container that carries
// multiple protocols' control information for one destination prefix:
//   * the baseline address (an IPv4 prefix),
//   * the unified path vector (loop avoidance for all protocols),
//   * island membership statements,
//   * shared baseline control info (BGP's own attributes — origin, next hop,
//     MED, ... — which critical fixes share rather than duplicate),
//   * path descriptors (per-protocol, whole-path),
//   * island descriptors (per-island).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bgp/path_attributes.h"
#include "ia/descriptors.h"
#include "ia/ids.h"
#include "ia/path_vector.h"
#include "net/ipv4.h"

namespace dbgp::ia {

struct IntegratedAdvertisement {
  net::Prefix destination;
  IaPathVector path_vector;
  std::vector<IslandMembership> island_ids;
  bgp::PathAttributes baseline;  // shared control information (Section 3.2)
  std::vector<PathDescriptor> path_descriptors;
  std::vector<IslandDescriptor> island_descriptors;

  // -- Descriptor accessors ----------------------------------------------
  const PathDescriptor* find_path_descriptor(ProtocolId protocol,
                                             std::uint16_t key) const noexcept;
  // Replaces an existing (protocol, key) descriptor or appends a new one.
  void set_path_descriptor(ProtocolId protocol, std::uint16_t key,
                           std::vector<std::uint8_t> value);
  void remove_path_descriptors(ProtocolId protocol);

  const IslandDescriptor* find_island_descriptor(IslandId island, ProtocolId protocol,
                                                 std::uint16_t key) const noexcept;
  std::vector<const IslandDescriptor*> island_descriptors_for(ProtocolId protocol) const;
  void add_island_descriptor(IslandId island, ProtocolId protocol, std::uint16_t key,
                             std::vector<std::uint8_t> value);
  void remove_island_descriptors(IslandId island, ProtocolId protocol);

  // -- Membership ----------------------------------------------------------
  const IslandMembership* find_membership(IslandId island) const noexcept;
  void add_membership(IslandMembership membership);

  // All protocols with any control information on this path (G-R4: "inform
  // islands and gulf ASes of what protocols are used on routing paths").
  std::set<ProtocolId> protocols_on_path() const;

  // Human-readable dump resembling Figure 4/7 (used by examples).
  std::string dump(const ProtocolRegistry& registry = default_registry()) const;

  bool operator==(const IntegratedAdvertisement&) const = default;
};

}  // namespace dbgp::ia
