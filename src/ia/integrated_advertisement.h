// The Integrated Advertisement (IA) — Figure 4 of the paper.
//
// An IA extends a BGP advertisement into a shared container that carries
// multiple protocols' control information for one destination prefix:
//   * the baseline address (an IPv4 prefix),
//   * the unified path vector (loop avoidance for all protocols),
//   * island membership statements,
//   * shared baseline control info (BGP's own attributes — origin, next hop,
//     MED, ... — which critical fixes share rather than duplicate),
//   * path descriptors (per-protocol, whole-path),
//   * island descriptors (per-island).
//
// Descriptors are *lazy*: decode_ia keeps the blob-table + descriptor
// section of the wire body as an opaque byte range in a refcounted arena and
// only parses it when a descriptor accessor is first called. A pass-through
// AS (CF-R1: gulf ASes forward control information they do not understand)
// never touches descriptors, so it never parses them, and encode_ia splices
// the original bytes back into the outgoing frame. Copying an IA with an
// unmaterialized tail copies a shared_ptr, not kilobytes of payload.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "bgp/path_attributes.h"
#include "ia/descriptors.h"
#include "ia/ids.h"
#include "ia/path_vector.h"
#include "net/ipv4.h"

namespace dbgp::ia {

// The encoded blob-table + descriptor section of a decoded IA body, kept as
// a view into a refcounted buffer so copies are O(1) and re-encoding a
// pass-through IA is a memcpy of the original wire bytes.
struct OpaqueTail {
  std::shared_ptr<const std::vector<std::uint8_t>> arena;
  std::size_t offset = 0;  // tail = [offset, arena->size())

  bool valid() const noexcept { return arena != nullptr; }
  std::span<const std::uint8_t> bytes() const noexcept {
    if (!arena) return {};
    return std::span<const std::uint8_t>(arena->data() + offset, arena->size() - offset);
  }
};

struct IntegratedAdvertisement {
  net::Prefix destination;
  IaPathVector path_vector;
  std::vector<IslandMembership> island_ids;
  bgp::PathAttributes baseline;  // shared control information (Section 3.2)

  // -- Descriptor access ----------------------------------------------------
  // Read access materializes the lazy tail on first use; write access
  // additionally invalidates it (the in-memory descriptors diverge from the
  // wire bytes, so encode_ia must rebuild the section).
  const std::vector<PathDescriptor>& path_descriptors() const;
  const std::vector<IslandDescriptor>& island_descriptors() const;
  std::vector<PathDescriptor>& mutable_path_descriptors();
  std::vector<IslandDescriptor>& mutable_island_descriptors();

  const PathDescriptor* find_path_descriptor(ProtocolId protocol,
                                             std::uint16_t key) const noexcept;
  // Replaces an existing (protocol, key) descriptor or appends a new one.
  void set_path_descriptor(ProtocolId protocol, std::uint16_t key,
                           std::vector<std::uint8_t> value);
  void remove_path_descriptors(ProtocolId protocol);

  const IslandDescriptor* find_island_descriptor(IslandId island, ProtocolId protocol,
                                                 std::uint16_t key) const noexcept;
  std::vector<const IslandDescriptor*> island_descriptors_for(ProtocolId protocol) const;
  void add_island_descriptor(IslandId island, ProtocolId protocol, std::uint16_t key,
                             std::vector<std::uint8_t> value);
  void remove_island_descriptors(IslandId island, ProtocolId protocol);
  // Removes every island descriptor of `protocol` across all islands.
  void remove_island_descriptors(ProtocolId protocol);

  // -- Lazy-tail plumbing (used by the codec and the frame cache) ----------
  // Attaches the un-parsed descriptor section; called by decode_ia.
  void attach_opaque_tail(OpaqueTail tail);
  // True while the wire bytes of the descriptor section are still exact:
  // encode_ia may splice `opaque_tail()` verbatim instead of re-encoding.
  bool has_opaque_tail() const noexcept { return tail_.valid() && !tail_dirty_; }
  const OpaqueTail& opaque_tail() const noexcept { return tail_; }
  bool descriptors_materialized() const noexcept { return materialized_; }
  // Parses the tail into the descriptor vectors (no-op when materialized).
  void materialize_descriptors() const;

  // -- Membership ----------------------------------------------------------
  const IslandMembership* find_membership(IslandId island) const noexcept;
  void add_membership(IslandMembership membership);

  // All protocols with any control information on this path (G-R4: "inform
  // islands and gulf ASes of what protocols are used on routing paths").
  std::set<ProtocolId> protocols_on_path() const;

  // Human-readable dump resembling Figure 4/7 (used by examples).
  std::string dump(const ProtocolRegistry& registry = default_registry()) const;

  // Equality is content equality: two IAs compare equal regardless of
  // whether their descriptor sections are materialized. Identical tails
  // short-circuit to a byte comparison (O(1) when they share an arena).
  bool operator==(const IntegratedAdvertisement& other) const;

 private:
  // Descriptor storage; empty until materialized when a tail is attached.
  mutable std::vector<PathDescriptor> path_descriptors_;
  mutable std::vector<IslandDescriptor> island_descriptors_;
  mutable OpaqueTail tail_;
  mutable bool materialized_ = true;  // no tail => trivially materialized
  bool tail_dirty_ = false;           // descriptors edited since decode
};

}  // namespace dbgp::ia
