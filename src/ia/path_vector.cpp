#include "ia/path_vector.h"

#include <algorithm>

#include "util/bytes.h"

namespace dbgp::ia {

bool PathElement::mentions_as(bgp::AsNumber a) const noexcept {
  switch (kind) {
    case Kind::kAs:
      return asn == a;
    case Kind::kIsland:
      return island_id.is_singleton_as() && island_id.as_number() == a;
    case Kind::kAsSet:
      return std::find(set.begin(), set.end(), a) != set.end();
  }
  return false;
}

void IaPathVector::prepend_as(bgp::AsNumber asn) {
  elements_.insert(elements_.begin(), PathElement::as(asn));
}

void IaPathVector::prepend_island(IslandId id) {
  elements_.insert(elements_.begin(), PathElement::island(id));
}

void IaPathVector::prepend_as_set(std::vector<bgp::AsNumber> asns) {
  elements_.insert(elements_.begin(), PathElement::as_set(std::move(asns)));
}

bool IaPathVector::contains_as(bgp::AsNumber asn) const noexcept {
  for (const auto& e : elements_) {
    if (e.mentions_as(asn)) return true;
  }
  return false;
}

bool IaPathVector::contains_island(IslandId id) const noexcept {
  if (!id.valid()) return false;
  for (const auto& e : elements_) {
    if (e.kind == PathElement::Kind::kIsland && e.island_id == id) return true;
  }
  return false;
}

bool IaPathVector::would_loop(bgp::AsNumber asn, IslandId island) const noexcept {
  // Island-granularity check first: paths re-entering an island that listed
  // only its ID are rejected even if the AS itself is new (the path-diversity
  // cost Section 3.2 describes).
  if (island.valid() && contains_island(island)) return true;
  return contains_as(asn);
}

std::size_t IaPathVector::hop_count() const noexcept { return elements_.size(); }

std::size_t IaPathVector::abstract_leading_members(IslandId id,
                                                   std::span<const bgp::AsNumber> members) {
  auto is_member = [&members](const PathElement& e) {
    if (e.kind == PathElement::Kind::kAs) {
      return std::find(members.begin(), members.end(), e.asn) != members.end();
    }
    if (e.kind == PathElement::Kind::kAsSet) {
      return std::all_of(e.set.begin(), e.set.end(), [&members](bgp::AsNumber a) {
        return std::find(members.begin(), members.end(), a) != members.end();
      });
    }
    return false;
  };
  std::size_t run = 0;
  while (run < elements_.size() && is_member(elements_[run])) ++run;
  if (run == 0) return 0;
  elements_.erase(elements_.begin(), elements_.begin() + static_cast<std::ptrdiff_t>(run));
  elements_.insert(elements_.begin(), PathElement::island(id));
  return run;
}

bgp::AsPath IaPathVector::to_bgp_as_path() const {
  // Reserved AS used to represent multi-AS islands whose membership is
  // hidden (private-use range so legacy speakers treat it as opaque).
  constexpr bgp::AsNumber kOpaqueIslandAs = 64512;
  bgp::AsPath path;
  // Build back-to-front so prepends land in order.
  for (auto it = elements_.rbegin(); it != elements_.rend(); ++it) {
    switch (it->kind) {
      case PathElement::Kind::kAs:
        path.prepend(it->asn);
        break;
      case PathElement::Kind::kIsland:
        path.prepend(it->island_id.is_singleton_as() ? it->island_id.as_number()
                                                     : kOpaqueIslandAs);
        break;
      case PathElement::Kind::kAsSet:
        path.prepend_set(it->set);
        break;
    }
  }
  return path;
}

std::vector<std::uint8_t> IaPathVector::to_payload() const {
  util::ByteWriter w;
  w.put_varint(elements_.size());
  for (const auto& e : elements_) {
    w.put_u8(static_cast<std::uint8_t>(e.kind));
    switch (e.kind) {
      case PathElement::Kind::kAs:
        w.put_varint(e.asn);
        break;
      case PathElement::Kind::kIsland:
        w.put_varint(e.island_id.raw());
        break;
      case PathElement::Kind::kAsSet:
        w.put_varint(e.set.size());
        for (auto a : e.set) w.put_varint(a);
        break;
    }
  }
  return w.take();
}

IaPathVector IaPathVector::from_payload(std::span<const std::uint8_t> payload) {
  util::ByteReader r(payload);
  const std::uint64_t raw_count = r.get_varint();
  r.expect_items(raw_count, 2);
  const std::size_t count = static_cast<std::size_t>(raw_count);
  std::vector<PathElement> elements;
  elements.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto kind = static_cast<PathElement::Kind>(r.get_u8());
    switch (kind) {
      case PathElement::Kind::kAs:
        elements.push_back(PathElement::as(static_cast<bgp::AsNumber>(r.get_varint())));
        break;
      case PathElement::Kind::kIsland:
        elements.push_back(PathElement::island(IslandId::from_raw(r.get_varint())));
        break;
      case PathElement::Kind::kAsSet: {
        const std::uint64_t raw_n = r.get_varint();
        r.expect_items(raw_n);
        std::vector<bgp::AsNumber> set;
        set.reserve(static_cast<std::size_t>(raw_n));
        for (std::uint64_t j = 0; j < raw_n; ++j) {
          set.push_back(static_cast<bgp::AsNumber>(r.get_varint()));
        }
        elements.push_back(PathElement::as_set(std::move(set)));
        break;
      }
      default:
        throw util::DecodeError("bad path-vector element kind in payload");
    }
  }
  return IaPathVector(std::move(elements));
}

std::string IaPathVector::to_string() const {
  std::string out;
  for (const auto& e : elements_) {
    if (!out.empty()) out.push_back(' ');
    switch (e.kind) {
      case PathElement::Kind::kAs:
        out += std::to_string(e.asn);
        break;
      case PathElement::Kind::kIsland:
        out += e.island_id.to_string();
        break;
      case PathElement::Kind::kAsSet: {
        out.push_back('{');
        for (std::size_t i = 0; i < e.set.size(); ++i) {
          if (i != 0) out.push_back(',');
          out += std::to_string(e.set[i]);
        }
        out.push_back('}');
        break;
      }
    }
  }
  return out;
}

}  // namespace dbgp::ia
