// The IA path vector (Section 3.2): the common denominator all protocols on
// a path must use for loop avoidance (requirement G-R5).
//
// Entries are AS numbers, island IDs (islands that abstract away their
// intra-island paths), or AS_SETs (used by islands that list member ASes
// without inflating the BGP-visible path length). Loop detection works over
// all entry kinds at once, which is what lets multiple diverse protocols
// share one mechanism.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/path_attributes.h"
#include "bgp/types.h"
#include "ia/ids.h"

namespace dbgp::ia {

struct PathElement {
  enum class Kind : std::uint8_t { kAs = 1, kIsland = 2, kAsSet = 3 };

  static PathElement as(bgp::AsNumber asn) {
    PathElement e;
    e.kind = Kind::kAs;
    e.asn = asn;
    return e;
  }
  static PathElement island(IslandId id) {
    PathElement e;
    e.kind = Kind::kIsland;
    e.island_id = id;
    return e;
  }
  static PathElement as_set(std::vector<bgp::AsNumber> asns) {
    PathElement e;
    e.kind = Kind::kAsSet;
    e.set = std::move(asns);
    return e;
  }

  Kind kind = Kind::kAs;
  bgp::AsNumber asn = 0;                // kAs
  IslandId island_id;                   // kIsland
  std::vector<bgp::AsNumber> set;       // kAsSet

  bool mentions_as(bgp::AsNumber a) const noexcept;
  bool operator==(const PathElement&) const = default;
};

class IaPathVector {
 public:
  IaPathVector() = default;
  explicit IaPathVector(std::vector<PathElement> elements)
      : elements_(std::move(elements)) {}

  void prepend_as(bgp::AsNumber asn);
  void prepend_island(IslandId id);
  void prepend_as_set(std::vector<bgp::AsNumber> asns);

  bool contains_as(bgp::AsNumber asn) const noexcept;
  bool contains_island(IslandId id) const noexcept;

  // The unified loop check: true if advertising through (asn, island) would
  // create a loop. An invalid island id checks only the AS.
  bool would_loop(bgp::AsNumber asn, IslandId island = {}) const noexcept;

  // Decision-process length: AS and island entries count 1; AS_SET counts 1
  // (matching RFC 4271's AS_SET rule, Section 3.2's length discussion).
  std::size_t hop_count() const noexcept;

  // Replaces the leading contiguous run of elements whose ASes are all in
  // `members` with a single island-ID entry — the egress "abstract away
  // intra-island details" filter (Section 3.3). Returns how many elements
  // were replaced.
  std::size_t abstract_leading_members(IslandId id, std::span<const bgp::AsNumber> members);

  // Converts to a plain BGP AS_PATH for redistribution to legacy speakers:
  // island entries become the island's representative AS if singleton, or an
  // AS_SET of `members` if known, else a reserved placeholder AS.
  bgp::AsPath to_bgp_as_path() const;

  const std::vector<PathElement>& elements() const noexcept { return elements_; }
  std::vector<PathElement>& elements() noexcept { return elements_; }
  bool empty() const noexcept { return elements_.empty(); }

  // Standalone payload codec (varint TLV), used wherever a path vector is
  // embedded inside another payload (MIRO offers, R-BGP backup paths, ...).
  std::vector<std::uint8_t> to_payload() const;
  static IaPathVector from_payload(std::span<const std::uint8_t> payload);

  std::string to_string() const;
  bool operator==(const IaPathVector&) const = default;

 private:
  std::vector<PathElement> elements_;
};

}  // namespace dbgp::ia
