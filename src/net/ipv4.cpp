#include "net/ipv4.h"

#include "util/strings.h"

namespace dbgp::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) noexcept {
  std::uint32_t value = 0;
  int octets = 0;
  std::uint32_t current = 0;
  bool has_digit = false;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '.') {
      if (!has_digit || current > 255 || octets >= 4) return std::nullopt;
      value = (value << 8) | current;
      ++octets;
      current = 0;
      has_digit = false;
    } else if (text[i] >= '0' && text[i] <= '9') {
      current = current * 10 + static_cast<std::uint32_t>(text[i] - '0');
      if (current > 255) return std::nullopt;
      has_digit = true;
    } else {
      return std::nullopt;
    }
  }
  if (octets != 4) return std::nullopt;
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xff);
  }
  return out;
}

namespace {
constexpr std::uint32_t mask_for(std::uint8_t length) noexcept {
  return length == 0 ? 0u : (~0u << (32 - length));
}
}  // namespace

Prefix::Prefix(Ipv4Address address, std::uint8_t length) noexcept
    : address_(Ipv4Address(address.value() & mask_for(length))), length_(length) {}

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::uint64_t len = 0;
  if (!util::parse_u64(text.substr(slash + 1), len) || len > 32) return std::nullopt;
  return Prefix(*addr, static_cast<std::uint8_t>(len));
}

bool Prefix::contains(Ipv4Address addr) const noexcept {
  return (addr.value() & mask_for(length_)) == address_.value();
}

bool Prefix::covers(const Prefix& other) const noexcept {
  return other.length_ >= length_ && contains(other.address_);
}

std::string Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace dbgp::net
