// IPv4 addresses and prefixes.
//
// The baseline address format in the paper's evolvable Internet is IPv4
// (Section 3); every Integrated Advertisement names its destination with an
// IPv4 prefix. Addresses are stored host-order internally and serialized
// big-endian by the wire codecs.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dbgp::net {

class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept = default;
  constexpr explicit Ipv4Address(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : value_((static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d) {}

  // Parses dotted-quad ("128.6.0.1"); returns nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text) noexcept;

  constexpr std::uint32_t value() const noexcept { return value_; }
  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

// An IPv4 prefix (address + mask length), always stored canonicalized: bits
// below the mask are zero. This is the key type for all RIBs and the trie.
class Prefix {
 public:
  constexpr Prefix() noexcept = default;
  // Canonicalizes: host bits beyond `length` are cleared.
  Prefix(Ipv4Address address, std::uint8_t length) noexcept;

  // Parses "a.b.c.d/len"; returns nullopt on malformed input or len > 32.
  static std::optional<Prefix> parse(std::string_view text) noexcept;

  Ipv4Address address() const noexcept { return address_; }
  std::uint8_t length() const noexcept { return length_; }

  // True if `addr` falls inside this prefix.
  bool contains(Ipv4Address addr) const noexcept;
  // True if `other` is equal to or more specific than this prefix.
  bool covers(const Prefix& other) const noexcept;

  std::string to_string() const;

  friend auto operator<=>(const Prefix&, const Prefix&) noexcept = default;

 private:
  Ipv4Address address_;
  std::uint8_t length_ = 0;
};

// Hash support for unordered containers.
struct PrefixHash {
  std::size_t operator()(const Prefix& p) const noexcept {
    const std::uint64_t x = (static_cast<std::uint64_t>(p.address().value()) << 8) | p.length();
    // SplitMix64 finalizer.
    std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace dbgp::net
