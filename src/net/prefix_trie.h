// Binary radix trie keyed by IPv4 prefix, supporting exact match and
// longest-prefix match. Used for forwarding tables in the data plane and as
// the index for Loc-RIBs.
//
// Header-only template: the value type varies per user (route entries,
// forwarding actions). The trie owns its nodes via unique_ptr; depth is
// bounded at 32 so recursion is safe.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/ipv4.h"

namespace dbgp::net {

template <typename V>
class PrefixTrie {
 public:
  // Inserts or replaces; returns true if a new entry was created.
  bool insert(const Prefix& prefix, V value) {
    Node* node = descend_or_create(prefix);
    const bool created = !node->value.has_value();
    node->value = std::move(value);
    if (created) ++size_;
    return created;
  }

  // Removes an exact prefix; returns true if it existed.
  bool erase(const Prefix& prefix) {
    Node* node = descend(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  // Exact-match lookup.
  const V* find(const Prefix& prefix) const {
    const Node* node = descend(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value : nullptr;
  }
  V* find(const Prefix& prefix) {
    Node* node = descend(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value : nullptr;
  }

  // Longest-prefix match for an address; nullptr if no covering prefix.
  const V* longest_match(Ipv4Address addr, Prefix* matched = nullptr) const {
    const Node* best = nullptr;
    const Node* node = root_.get();
    std::uint8_t depth = 0;
    Prefix best_prefix;
    while (node != nullptr) {
      if (node->value.has_value()) {
        best = node;
        best_prefix = Prefix(addr, depth);
      }
      if (depth == 32) break;
      const int bit = (addr.value() >> (31 - depth)) & 1;
      node = node->child[bit].get();
      ++depth;
    }
    if (best == nullptr) return nullptr;
    if (matched != nullptr) *matched = best_prefix;
    return &*best->value;
  }

  // Visits all (prefix, value) pairs in lexicographic prefix order.
  void for_each(const std::function<void(const Prefix&, const V&)>& fn) const {
    walk(root_.get(), 0, 0, fn);
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<V> value;
    std::unique_ptr<Node> child[2];
  };

  Node* descend_or_create(const Prefix& prefix) {
    Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.address().value() >> (31 - depth)) & 1;
      if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
      node = node->child[bit].get();
    }
    return node;
  }

  const Node* descend(const Prefix& prefix) const {
    const Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length() && node != nullptr; ++depth) {
      const int bit = (prefix.address().value() >> (31 - depth)) & 1;
      node = node->child[bit].get();
    }
    return node;
  }
  Node* descend(const Prefix& prefix) {
    return const_cast<Node*>(static_cast<const PrefixTrie*>(this)->descend(prefix));
  }

  void walk(const Node* node, std::uint32_t bits, std::uint8_t depth,
            const std::function<void(const Prefix&, const V&)>& fn) const {
    if (node == nullptr) return;
    if (node->value.has_value()) {
      fn(Prefix(Ipv4Address(depth == 0 ? 0 : bits << (32 - depth)), depth), *node->value);
    }
    if (depth == 32) return;
    walk(node->child[0].get(), bits << 1, static_cast<std::uint8_t>(depth + 1), fn);
    walk(node->child[1].get(), (bits << 1) | 1, static_cast<std::uint8_t>(depth + 1), fn);
  }

  std::unique_ptr<Node> root_ = std::make_unique<Node>();
  std::size_t size_ = 0;
};

}  // namespace dbgp::net
