#include "overhead/model.h"

#include "util/strings.h"

namespace dbgp::overhead {

namespace {

Range mul(Range a, Range b) { return {a.min * b.min, a.max * b.max}; }
Range add(Range a, Range b) { return {a.min + b.min, a.max + b.max}; }

}  // namespace

std::vector<AnalysisRow> analyze(const Parameters& p) {
  std::vector<AnalysisRow> rows;

  // Basic: every IA carries control info for ALL critical fixes and ALL
  // custom/replacement protocols.
  {
    AnalysisRow row;
    row.name = "Basic";
    row.ia_size_cf_bytes = mul(p.critical_fixes, p.control_info_per_fix);
    row.ia_size_cr_bytes = mul(p.custom_replacements, p.control_info_per_cr);
    row.advertisements = p.dbgp_prefixes;
    row.total_bytes = mul(add(row.ia_size_cf_bytes, row.ia_size_cr_bytes), p.dbgp_prefixes);
    rows.push_back(row);
  }

  // + Avg path lengths: only the protocols on the path contribute (one
  // critical fix / custom protocol per hop).
  {
    AnalysisRow row;
    row.name = "+ Avg path lengths";
    row.ia_size_cf_bytes = mul(p.critical_fixes_per_path, p.control_info_per_fix);
    row.ia_size_cr_bytes = mul(p.custom_replacements_per_path, p.control_info_per_cr);
    row.advertisements = p.dbgp_prefixes;
    row.total_bytes = mul(add(row.ia_size_cf_bytes, row.ia_size_cr_bytes), p.dbgp_prefixes);
    rows.push_back(row);
  }

  // + Sharing: each critical fix contributes only its unique fraction CFu;
  // one full copy of the shared control information remains.
  {
    AnalysisRow row;
    row.name = "+ Sharing";
    const Range unique_part =
        mul(mul(p.critical_fixes_per_path, p.control_info_per_fix), p.unique_fraction);
    const Range shared_part = {p.control_info_per_fix.min * (1.0 - p.unique_fraction.min),
                               p.control_info_per_fix.max * (1.0 - p.unique_fraction.max)};
    row.ia_size_cf_bytes = add(unique_part, shared_part);
    row.ia_size_cr_bytes = mul(p.custom_replacements_per_path, p.control_info_per_cr);
    row.advertisements = p.dbgp_prefixes;
    row.total_bytes = mul(add(row.ia_size_cf_bytes, row.ia_size_cr_bytes), p.dbgp_prefixes);
    rows.push_back(row);
  }

  // Single protocol: today's BGP (or one large critical fix) for comparison.
  {
    AnalysisRow row;
    row.name = "Single protocol";
    row.ia_size_cf_bytes = p.control_info_per_fix;
    row.ia_size_cr_bytes = {0, 0};
    row.advertisements = p.prefixes;
    row.total_bytes = mul(row.ia_size_cf_bytes, p.prefixes);
    rows.push_back(row);
  }

  return rows;
}

ProtocolOverheadRow protocol_overhead(const Parameters& p, std::string name,
                                      Range bytes_per_unit, bool per_hop) {
  ProtocolOverheadRow row;
  row.name = std::move(name);
  row.bytes_per_ad = per_hop ? mul(bytes_per_unit, p.path_length) : bytes_per_unit;
  row.total_bytes = mul(row.bytes_per_ad, p.dbgp_prefixes);
  return row;
}

std::string format_protocol_row(const ProtocolOverheadRow& row) {
  auto bytes_range = [](const Range& r) {
    return util::format_bytes(r.min) + " - " + util::format_bytes(r.max);
  };
  std::string out = row.name;
  out.resize(20, ' ');
  out += " | per-ad: " + bytes_range(row.bytes_per_ad);
  out += " | total: " + bytes_range(row.total_bytes);
  return out;
}

Range overhead_factor(const Parameters& params) {
  const auto rows = analyze(params);
  const AnalysisRow* sharing = nullptr;
  const AnalysisRow* single = nullptr;
  for (const auto& row : rows) {
    if (row.name == "+ Sharing") sharing = &row;
    if (row.name == "Single protocol") single = &row;
  }
  return {sharing->total_bytes.min / single->total_bytes.min,
          sharing->total_bytes.max / single->total_bytes.max};
}

std::string format_row(const AnalysisRow& row) {
  auto bytes_range = [](const Range& r) {
    return util::format_bytes(r.min) + " - " + util::format_bytes(r.max);
  };
  auto count_range = [](const Range& r) {
    return std::to_string(static_cast<long long>(r.min)) + " - " +
           std::to_string(static_cast<long long>(r.max));
  };
  std::string out = row.name;
  out.resize(20, ' ');
  out += " | CF: " + bytes_range(row.ia_size_cf_bytes);
  out += " | CR: " + bytes_range(row.ia_size_cr_bytes);
  out += " | ads: " + count_range(row.advertisements);
  out += " | total: " + bytes_range(row.total_bytes);
  return out;
}

}  // namespace dbgp::overhead
