// The analytical control-plane overhead model of Section 6.2
// (Tables 2 and 3): estimated IA sizes and aggregate state at a tier-1 AS.
//
// Four analyses, each refining the last:
//   Basic            — every IA carries every protocol's control info
//   +Avg path length — only protocols actually on the path contribute
//   +Sharing         — critical fixes share all but a unique fraction CFu
//   Single protocol  — the BGP-today comparator (one protocol's info, P ads)
//
// The headline result: despite 3-5 critical fixes plus 3-5 custom/
// replacement protocols per path, sharing keeps D-BGP's aggregate overhead
// within ~1.3x-2.5x of a single-protocol Internet.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dbgp::overhead {

// One parameter with the range considered (Table 2).
struct Range {
  double min = 0.0;
  double max = 0.0;
};

// Table 2's parameters, preloaded with the paper's ranges.
struct Parameters {
  Range prefixes{600'000, 1'000'000};            // P
  Range dbgp_prefixes{625'000, 1'050'000};       // Pd (room for off-path discovery)
  Range path_length{3, 5};                       // PL
  Range critical_fixes{10, 100};                 // CFs (governing-body-limited)
  Range critical_fixes_per_path{3, 5};           // CFs/path
  Range control_info_per_fix{4.0 * 1024, 256.0 * 1024};  // CI/CF (bytes)
  Range unique_fraction{0.1, 0.3};               // CFu
  Range custom_replacements{10, 1000};           // CRs
  Range custom_replacements_per_path{3, 5};      // CRs/path
  Range control_info_per_cr{100, 10.0 * 1024};   // CI/CR (bytes)
};

// One row of Table 3.
struct AnalysisRow {
  std::string name;
  Range ia_size_cf_bytes;    // contribution to IA size by critical fixes
  Range ia_size_cr_bytes;    // contribution by custom/replacement protocols
  Range advertisements;      // number of IAs at the tier-1
  Range total_bytes;         // aggregate overhead
};

// Computes all four rows (Basic, +Avg path lengths, +Sharing, Single
// protocol) from the parameters.
std::vector<AnalysisRow> analyze(const Parameters& params);

// One concrete protocol archetype's marginal overhead: what ITS control
// information alone adds to every advertisement and in aggregate at the
// tier-1 (Table-3-style rows for individual protocols — e.g. FC-BGP
// forwarding commitments or StackVec gateway entries — instead of the
// generic CI/CF envelope above).
struct ProtocolOverheadRow {
  std::string name;
  Range bytes_per_ad;  // descriptor bytes added per advertisement
  Range total_bytes;   // aggregate across Pd advertisements
};

// `bytes_per_unit` is the protocol's control-info payload per unit; per-hop
// protocols (one commitment/gateway entry per AS on the path) multiply it by
// the path-length range, fixed-payload protocols carry it once per IA.
ProtocolOverheadRow protocol_overhead(const Parameters& params, std::string name,
                                      Range bytes_per_unit, bool per_hop);

// Renders a protocol row (same style as format_row).
std::string format_protocol_row(const ProtocolOverheadRow& row);

// The overhead factor of the "+ Sharing" analysis relative to "Single
// protocol" — the paper's 1.3x (min estimates) to 2.5x (max estimates).
Range overhead_factor(const Parameters& params);

// Renders a row's ranges with binary units (for the benchmark output).
std::string format_row(const AnalysisRow& row);

}  // namespace dbgp::overhead
