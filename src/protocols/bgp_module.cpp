#include "protocols/bgp_module.h"

#include "bgp/decision.h"

namespace dbgp::protocols {

bool BgpModule::better(const core::IaRoute& a, const core::IaRoute& b) const {
  const std::uint32_t lp_a = a.ia.baseline.local_pref.value_or(bgp::kDefaultLocalPref);
  const std::uint32_t lp_b = b.ia.baseline.local_pref.value_or(bgp::kDefaultLocalPref);
  if (lp_a != lp_b) return lp_a > lp_b;

  const std::size_t len_a = a.ia.path_vector.hop_count();
  const std::size_t len_b = b.ia.path_vector.hop_count();
  if (len_a != len_b) return len_a < len_b;

  if (a.ia.baseline.origin != b.ia.baseline.origin) {
    return static_cast<int>(a.ia.baseline.origin) < static_cast<int>(b.ia.baseline.origin);
  }

  if (a.neighbor_as == b.neighbor_as && a.neighbor_as != 0) {
    const std::uint32_t med_a = a.ia.baseline.med.value_or(0);
    const std::uint32_t med_b = b.ia.baseline.med.value_or(0);
    if (med_a != med_b) return med_a < med_b;
  }

  if (a.from_peer != b.from_peer) return a.from_peer < b.from_peer;
  return a.sequence < b.sequence;
}

std::string BgpModule::explain_better(const core::IaRoute& winner,
                                      const core::IaRoute& loser) const {
  // Same ladder as better(); reports the first rung where the two differ.
  if (winner.ia.baseline.local_pref.value_or(bgp::kDefaultLocalPref) !=
      loser.ia.baseline.local_pref.value_or(bgp::kDefaultLocalPref)) {
    return "local-pref";
  }
  if (winner.ia.path_vector.hop_count() != loser.ia.path_vector.hop_count()) {
    return "path-length";
  }
  if (winner.ia.baseline.origin != loser.ia.baseline.origin) return "origin";
  if (winner.neighbor_as == loser.neighbor_as && winner.neighbor_as != 0 &&
      winner.ia.baseline.med.value_or(0) != loser.ia.baseline.med.value_or(0)) {
    return "med";
  }
  if (winner.from_peer != loser.from_peer) return "peer-id";
  return "arrival-order";
}

}  // namespace dbgp::protocols
