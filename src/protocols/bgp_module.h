// The baseline BGP decision module: BGPv4's path-selection algorithm
// expressed against Integrated Advertisements. This is the module every
// gulf AS runs, and the one critical fixes extend.
#pragma once

#include "core/decision_module.h"

namespace dbgp::protocols {

class BgpModule : public core::DecisionModule {
 public:
  ia::ProtocolId protocol() const noexcept override { return ia::kProtoBgp; }
  std::string name() const override { return "bgp"; }

  // RFC 4271 order over IA fields: LOCAL_PREF, path-vector length, origin,
  // MED (same neighbor AS), then arrival order.
  bool better(const core::IaRoute& a, const core::IaRoute& b) const override;

  // Names the ladder rung at which `winner` beat `loser` (for decision
  // audits): "local-pref", "path-length", "origin", "med", "peer-id",
  // "arrival-order".
  std::string explain_better(const core::IaRoute& winner,
                             const core::IaRoute& loser) const override;
};

}  // namespace dbgp::protocols
