#include "protocols/bgpsec.h"

#include "ia/descriptors.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace dbgp::protocols {

using util::ByteReader;
using util::ByteWriter;

std::vector<std::uint8_t> encode_attestations(const std::vector<Attestation>& chain) {
  ByteWriter w;
  w.put_varint(chain.size());
  for (const auto& a : chain) {
    w.put_varint(a.signer);
    w.put_varint(a.target);
    w.put_u64(a.mac);
  }
  return w.take();
}

std::vector<Attestation> decode_attestations(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint64_t raw_n = r.get_varint();
  r.expect_items(raw_n, 10);  // two varints + an 8-byte MAC minimum
  const std::size_t n = static_cast<std::size_t>(raw_n);
  std::vector<Attestation> chain;
  chain.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Attestation a;
    a.signer = static_cast<bgp::AsNumber>(r.get_varint());
    a.target = static_cast<bgp::AsNumber>(r.get_varint());
    a.mac = r.get_u64();
    chain.push_back(a);
  }
  return chain;
}

std::uint64_t AttestationAuthority::key_for(bgp::AsNumber asn) const noexcept {
  std::uint64_t s = seed_ ^ (static_cast<std::uint64_t>(asn) * 0x9e3779b97f4a7c15ULL);
  return util::splitmix64(s);
}

std::uint64_t AttestationAuthority::sign(bgp::AsNumber signer, bgp::AsNumber target,
                                         const net::Prefix& prefix,
                                         std::uint64_t path_digest) const noexcept {
  std::uint64_t s = key_for(signer);
  s ^= util::splitmix64(s) ^ target;
  s ^= (static_cast<std::uint64_t>(prefix.address().value()) << 8) | prefix.length();
  s ^= path_digest * 0xbf58476d1ce4e5b9ULL;
  return util::splitmix64(s);
}

std::uint64_t AttestationAuthority::chain_digest(const std::vector<Attestation>& chain) noexcept {
  std::uint64_t d = 0x1234567887654321ULL;
  for (const auto& a : chain) {
    d ^= a.mac ^ (static_cast<std::uint64_t>(a.signer) << 32) ^ a.target;
    d = util::splitmix64(d);
  }
  return d;
}

bool AttestationAuthority::verify_chain(const std::vector<Attestation>& chain,
                                        const net::Prefix& prefix,
                                        bgp::AsNumber receiver) const noexcept {
  if (chain.empty()) return false;
  std::vector<Attestation> prefix_chain;
  prefix_chain.reserve(chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Attestation& a = chain[i];
    // Continuity: each attestation must target the next signer; the last
    // must target the verifying receiver.
    const bgp::AsNumber expected_target =
        i + 1 < chain.size() ? chain[i + 1].signer : receiver;
    if (a.target != expected_target) return false;
    const std::uint64_t digest = chain_digest(prefix_chain);
    if (sign(a.signer, a.target, prefix, digest) != a.mac) return false;
    prefix_chain.push_back(a);
  }
  return true;
}

bool BgpSecModule::chain_valid(const core::IaRoute& route) const noexcept {
  const auto* d =
      route.ia.find_path_descriptor(ia::kProtoBgpSec, ia::keys::kBgpSecAttestation);
  if (d == nullptr || authority_ == nullptr) return false;
  try {
    return authority_->verify_chain(decode_attestations(d->value), route.ia.destination,
                                    config_.asn);
  } catch (const util::DecodeError&) {
    return false;
  }
}

bool BgpSecModule::import_filter(core::IaRoute& /*route*/) {
  // Invalid/absent chains remain selectable (they lose in `better`): BGPSec
  // in partial deployment must not blackhole unsigned routes.
  return true;
}

bool BgpSecModule::better(const core::IaRoute& a, const core::IaRoute& b) const {
  // Security as the TIE-BREAK, not the primary criterion. "Security 1st"
  // policies in partial deployment are gadget-prone and can oscillate or
  // blackhole -- exactly the instabilities Lychev, Goldberg & Schapira
  // (SIGCOMM'13, the paper's [31]) analyze; they recommend the tie-break
  // placement this module uses.
  const std::size_t len_a = a.ia.path_vector.hop_count();
  const std::size_t len_b = b.ia.path_vector.hop_count();
  if (len_a != len_b) return len_a < len_b;
  const bool valid_a = chain_valid(a);
  const bool valid_b = chain_valid(b);
  if (valid_a != valid_b) return valid_a;
  // Stable tie-break: peer identity, not arrival order. Sequence numbers
  // change on every re-advertisement, and an ordering that depends on them
  // lets two equal candidates ping-pong forever (no convergence).
  if (a.from_peer != b.from_peer) return a.from_peer < b.from_peer;
  return a.sequence < b.sequence;
}

void BgpSecModule::annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                                   const core::ExportContext& ctx) {
  if (authority_ == nullptr) return;
  if (config_.drop_toward_insecure && !ctx.to_peer_in_same_island) {
    out.remove_path_descriptors(ia::kProtoBgpSec);
    return;
  }
  std::vector<Attestation> chain;
  if (const auto* d =
          best.ia.find_path_descriptor(ia::kProtoBgpSec, ia::keys::kBgpSecAttestation)) {
    try {
      chain = decode_attestations(d->value);
    } catch (const util::DecodeError&) {
      chain.clear();
    }
  }
  Attestation mine;
  mine.signer = config_.asn;
  mine.target = ctx.to_peer_as;
  mine.mac = authority_->sign(config_.asn, ctx.to_peer_as, out.destination,
                              AttestationAuthority::chain_digest(chain));
  chain.push_back(mine);
  out.set_path_descriptor(ia::kProtoBgpSec, ia::keys::kBgpSecAttestation,
                          encode_attestations(chain));
}

void BgpSecModule::annotate_origin(ia::IntegratedAdvertisement& out,
                                   const core::ExportContext& ctx) {
  if (authority_ == nullptr) return;
  std::vector<Attestation> chain;
  Attestation mine;
  mine.signer = config_.asn;
  mine.target = ctx.to_peer_as;
  mine.mac = authority_->sign(config_.asn, ctx.to_peer_as, out.destination,
                              AttestationAuthority::chain_digest(chain));
  chain.push_back(mine);
  out.set_path_descriptor(ia::kProtoBgpSec, ia::keys::kBgpSecAttestation,
                          encode_attestations(chain));
}

}  // namespace dbgp::protocols
