// BGPSec-like secure path attestations as a D-BGP critical fix.
//
// Each upgraded AS appends an *attestation* binding (prefix, path so far,
// intended next AS) under its key. Receivers verify the chain: a valid,
// unbroken chain from the origin proves nobody redirected or shortened the
// path (prefix-hijack defense).
//
// Substitution note (DESIGN.md): real BGPSec uses ECDSA over an RPKI key
// hierarchy. We model signatures with a keyed 64-bit MAC (SplitMix-based)
// issued by an in-process AttestationAuthority. This preserves everything
// the evaluation exercises — chain construction, per-hop verification,
// detection of forged/reordered/truncated chains — without a crypto library.
//
// The paper is explicit (Section 3.5) that D-BGP *cannot* accelerate
// incremental benefits for protocols needing an unbroken chain: a single
// gulf AS on the path breaks the chain regardless of pass-through. The
// module and its tests demonstrate exactly that behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/decision_module.h"

namespace dbgp::protocols {

// One hop's attestation.
struct Attestation {
  bgp::AsNumber signer = 0;
  bgp::AsNumber target = 0;  // the AS this advertisement was sent to
  std::uint64_t mac = 0;

  bool operator==(const Attestation&) const = default;
};

std::vector<std::uint8_t> encode_attestations(const std::vector<Attestation>& chain);
std::vector<Attestation> decode_attestations(std::span<const std::uint8_t> payload);

// Issues and verifies per-AS keys. Stands in for the RPKI.
class AttestationAuthority {
 public:
  explicit AttestationAuthority(std::uint64_t seed = 0xb67b6531u) : seed_(seed) {}

  // Deterministic per-AS key (the "private key" in the real system; a
  // shared-key MAC here — see the substitution note above).
  std::uint64_t key_for(bgp::AsNumber asn) const noexcept;

  // MAC over (prefix, path-so-far digest, signer, target).
  std::uint64_t sign(bgp::AsNumber signer, bgp::AsNumber target, const net::Prefix& prefix,
                     std::uint64_t path_digest) const noexcept;

  // Verifies a full chain for `prefix` as received by `receiver`, given the
  // AS-level path extracted from the IA path vector (origin last).
  bool verify_chain(const std::vector<Attestation>& chain, const net::Prefix& prefix,
                    bgp::AsNumber receiver) const noexcept;

  // Digest of a partial chain (used as the "path so far" binding).
  static std::uint64_t chain_digest(const std::vector<Attestation>& chain) noexcept;

 private:
  std::uint64_t seed_;
};

class BgpSecModule : public core::DecisionModule {
 public:
  struct Config {
    bgp::AsNumber asn = 0;
    ia::IslandId island;
    // Drop the attestation before exporting to peers outside the island
    // (Section 3.2: "island K could optionally drop the attestation before
    // sending it to insecure islands").
    bool drop_toward_insecure = false;
  };

  BgpSecModule(Config config, const AttestationAuthority* authority)
      : config_(config), authority_(authority) {}

  ia::ProtocolId protocol() const noexcept override { return ia::kProtoBgpSec; }
  std::string name() const override { return "bgpsec"; }

  // Verifies the attestation chain; records validity in the route.
  bool import_filter(core::IaRoute& route) override;

  // Valid chain beats broken/absent chain; ties fall back to BGP ordering.
  bool better(const core::IaRoute& a, const core::IaRoute& b) const override;

  void annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;
  void annotate_origin(ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;

  // True if the route carries a chain that verified at import.
  bool chain_valid(const core::IaRoute& route) const noexcept;

 private:
  Config config_;
  const AttestationAuthority* authority_;
};

}  // namespace dbgp::protocols
