#include "protocols/eqbgp.h"

#include <algorithm>

#include "ia/descriptors.h"
#include "util/bytes.h"

namespace dbgp::protocols {

std::vector<std::uint8_t> encode_eqbgp_bandwidth(std::uint64_t bandwidth) {
  util::ByteWriter w;
  w.put_varint(bandwidth);
  return w.take();
}

std::uint64_t decode_eqbgp_bandwidth(std::span<const std::uint8_t> payload) {
  util::ByteReader r(payload);
  return r.get_varint();
}

std::uint64_t EqBgpModule::bottleneck(const core::IaRoute& route) noexcept {
  const auto* d = route.ia.find_path_descriptor(ia::kProtoEqBgp, ia::keys::kEqBgpQos);
  if (d == nullptr) return 0;
  try {
    return decode_eqbgp_bandwidth(d->value);
  } catch (const util::DecodeError&) {
    return 0;
  }
}

bool EqBgpModule::better(const core::IaRoute& a, const core::IaRoute& b) const {
  // Widest-SHORTEST selection: hop count first, bandwidth as the tie-break.
  // Pure widest-first is not strictly monotone (min() along a path can stay
  // constant), which is the textbook recipe for persistent path-vector
  // oscillation; widest-shortest is the stable variant from the QoS-routing
  // literature. The pure bottleneck-maximizing archetype of Figure 10 is
  // evaluated on the loop-free DAG model in src/sim.
  const std::size_t len_a = a.ia.path_vector.hop_count();
  const std::size_t len_b = b.ia.path_vector.hop_count();
  if (len_a != len_b) return len_a < len_b;
  const std::uint64_t bw_a = bottleneck(a);
  const std::uint64_t bw_b = bottleneck(b);
  if (bw_a != bw_b) return bw_a > bw_b;
  // Stable tie-break: peer identity, not arrival order. Sequence numbers
  // change on every re-advertisement, and an ordering that depends on them
  // lets two equal candidates ping-pong forever (no convergence).
  if (a.from_peer != b.from_peer) return a.from_peer < b.from_peer;
  return a.sequence < b.sequence;
}

void EqBgpModule::annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                                  const core::ExportContext& /*ctx*/) {
  const std::uint64_t received = bottleneck(best);
  // A path with no QoS info yet starts at our own bandwidth; otherwise the
  // bottleneck is the min of what we saw and our own link.
  const std::uint64_t updated =
      received == 0 ? config_.local_bandwidth : std::min(received, config_.local_bandwidth);
  out.set_path_descriptor(ia::kProtoEqBgp, ia::keys::kEqBgpQos,
                          encode_eqbgp_bandwidth(updated));
}

void EqBgpModule::annotate_origin(ia::IntegratedAdvertisement& out,
                                  const core::ExportContext& /*ctx*/) {
  out.set_path_descriptor(ia::kProtoEqBgp, ia::keys::kEqBgpQos,
                          encode_eqbgp_bandwidth(config_.local_bandwidth));
}

}  // namespace dbgp::protocols
