// EQ-BGP (Beben '06) as a D-BGP critical fix: end-to-end QoS metrics in
// advertisements. We carry the bottleneck bandwidth of the path — the
// paper's hardest global objective function (Section 6.3's
// bottleneck-bandwidth archetype corresponds to this protocol).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/decision_module.h"

namespace dbgp::protocols {

// Path descriptor (keys::kEqBgpQos): varint bottleneck bandwidth so far.
std::vector<std::uint8_t> encode_eqbgp_bandwidth(std::uint64_t bandwidth);
std::uint64_t decode_eqbgp_bandwidth(std::span<const std::uint8_t> payload);

class EqBgpModule : public core::DecisionModule {
 public:
  struct Config {
    ia::IslandId island;
    std::uint64_t local_bandwidth = 0;  // this AS's ingress-link bandwidth
  };

  explicit EqBgpModule(Config config) : config_(config) {}

  ia::ProtocolId protocol() const noexcept override { return ia::kProtoEqBgp; }
  std::string name() const override { return "eq-bgp"; }

  // Highest bottleneck bandwidth wins; routes without QoS info (crossed a
  // gulf without upgraded ASes beyond) count as unknown = 0.
  bool better(const core::IaRoute& a, const core::IaRoute& b) const override;

  // Bottleneck update: min(received bandwidth, our own).
  void annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;
  void annotate_origin(ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;

  static std::uint64_t bottleneck(const core::IaRoute& route) noexcept;

 private:
  Config config_;
};

}  // namespace dbgp::protocols
