#include "protocols/fcbgp.h"

#include "ia/descriptors.h"
#include "util/bytes.h"

namespace dbgp::protocols {

using util::ByteReader;
using util::ByteWriter;

namespace {

// Domain separator folded into the path-digest slot of the authority's MAC:
// FC commitments and BGPSec attestations must never verify against each
// other even when (signer, target, prefix) coincide.
constexpr std::uint64_t kFcDomain = 0xfc0fc0fc0fc0fc01ULL;

// First path-vector hop of `ia` that is a plain AS entry, or 0. The next
// hop a commitment binds must be an AS; island/AS_SET entries (abstracted
// islands) are not attestable at AS granularity.
bgp::AsNumber hop_as(const ia::PathElement& element) noexcept {
  return element.kind == ia::PathElement::Kind::kAs ? element.asn : 0;
}

}  // namespace

std::vector<std::uint8_t> encode_commitments(const std::vector<ForwardingCommitment>& list) {
  ByteWriter w;
  w.put_varint(list.size());
  for (const auto& c : list) {
    w.put_varint(c.signer);
    w.put_varint(c.next_as);
    w.put_u64(c.mac);
  }
  return w.take();
}

std::vector<ForwardingCommitment> decode_commitments(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint64_t raw_n = r.get_varint();
  r.expect_items(raw_n, 10);  // two varints + an 8-byte MAC minimum
  const std::size_t n = static_cast<std::size_t>(raw_n);
  std::vector<ForwardingCommitment> list;
  list.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ForwardingCommitment c;
    c.signer = static_cast<bgp::AsNumber>(r.get_varint());
    c.next_as = static_cast<bgp::AsNumber>(r.get_varint());
    c.mac = r.get_u64();
    list.push_back(c);
  }
  return list;
}

std::uint64_t fc_sign(const AttestationAuthority& authority, bgp::AsNumber signer,
                      bgp::AsNumber next_as, const net::Prefix& prefix) noexcept {
  return authority.sign(signer, next_as, prefix, kFcDomain);
}

bool FcBgpModule::import_filter(core::IaRoute& /*route*/) { return true; }

std::pair<std::size_t, std::size_t> FcBgpModule::verified_coverage(
    const core::IaRoute& route) const {
  const auto& elements = route.ia.path_vector.elements();
  const std::size_t hops = route.ia.path_vector.hop_count();
  if (authority_ == nullptr || elements.empty()) return {0, hops};

  std::vector<ForwardingCommitment> list;
  if (const auto* d =
          route.ia.find_path_descriptor(ia::kProtoFcBgp, ia::keys::kFcCommitments)) {
    try {
      list = decode_commitments(d->value);
    } catch (const util::DecodeError&) {
      return {0, hops};  // malformed commitments = uncovered, still routable
    }
  }
  if (list.empty()) return {0, hops};

  std::size_t verified = 0;
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const bgp::AsNumber as = hop_as(elements[i]);
    if (as == 0) continue;
    // The hop's real next hop toward the origin; the origin itself commits
    // to next hop 0 (local delivery).
    const bgp::AsNumber expected_next =
        i + 1 < elements.size() ? hop_as(elements[i + 1]) : 0;
    if (i + 1 < elements.size() && expected_next == 0) continue;
    for (const auto& c : list) {
      if (c.signer != as) continue;
      if (c.next_as == expected_next &&
          c.mac == fc_sign(*authority_, c.signer, c.next_as, route.ia.destination)) {
        ++verified;
      }
      break;  // one commitment per signer; a mismatch is a tampered hop
    }
  }
  return {verified, hops};
}

bool FcBgpModule::better(const core::IaRoute& a, const core::IaRoute& b) const {
  // Verified coverage fraction first (see the header for why this protocol
  // ranks assurance above everything): compare v_a/t_a vs v_b/t_b without
  // floats. Zero-hop totals only occur for synthetic routes and compare
  // equal (0 >= 0 both ways), falling through to the path-length rung.
  const auto [va, ta] = verified_coverage(a);
  const auto [vb, tb] = verified_coverage(b);
  const std::size_t lhs = va * (tb == 0 ? 1 : tb);
  const std::size_t rhs = vb * (ta == 0 ? 1 : ta);
  if (lhs != rhs) return lhs > rhs;

  const std::size_t len_a = a.ia.path_vector.hop_count();
  const std::size_t len_b = b.ia.path_vector.hop_count();
  if (len_a != len_b) return len_a < len_b;
  // Stable tie-break: peer identity, not arrival order — sequence numbers
  // change on every re-advertisement and would let equal candidates
  // ping-pong forever.
  if (a.from_peer != b.from_peer) return a.from_peer < b.from_peer;
  return a.sequence < b.sequence;
}

std::string FcBgpModule::explain_better(const core::IaRoute& winner,
                                        const core::IaRoute& loser) const {
  const auto [vw, tw] = verified_coverage(winner);
  const auto [vl, tl] = verified_coverage(loser);
  if (vw * (tl == 0 ? 1 : tl) != vl * (tw == 0 ? 1 : tw)) return "fc-coverage";
  if (winner.ia.path_vector.hop_count() != loser.ia.path_vector.hop_count()) {
    return "path-length";
  }
  if (winner.from_peer != loser.from_peer) return "peer-id";
  return "arrival-order";
}

void FcBgpModule::annotate_export(const core::IaRoute& best,
                                  ia::IntegratedAdvertisement& out,
                                  const core::ExportContext& /*ctx*/) {
  if (authority_ == nullptr) return;
  std::vector<ForwardingCommitment> list;
  if (const auto* d =
          best.ia.find_path_descriptor(ia::kProtoFcBgp, ia::keys::kFcCommitments)) {
    try {
      list = decode_commitments(d->value);
    } catch (const util::DecodeError&) {
      list.clear();
    }
  }
  // Our next hop toward the origin is the first hop of the path we selected
  // (the neighbor the route was learned from, as recorded in the path
  // vector). The commitment is next-hop-bound, not receiver-bound, so one
  // descriptor serves every peer — the frame cache can share frames.
  const auto& learned = best.ia.path_vector.elements();
  const bgp::AsNumber next_as = learned.empty() ? 0 : hop_as(learned.front());
  ForwardingCommitment mine;
  mine.signer = config_.asn;
  mine.next_as = next_as;
  mine.mac = fc_sign(*authority_, config_.asn, next_as, out.destination);
  // Re-announcements replace our previous commitment instead of stacking.
  std::erase_if(list, [&](const ForwardingCommitment& c) { return c.signer == config_.asn; });
  list.push_back(mine);
  out.set_path_descriptor(ia::kProtoFcBgp, ia::keys::kFcCommitments,
                          encode_commitments(list));
}

void FcBgpModule::annotate_origin(ia::IntegratedAdvertisement& out,
                                  const core::ExportContext& /*ctx*/) {
  if (authority_ == nullptr) return;
  ForwardingCommitment mine;
  mine.signer = config_.asn;
  mine.next_as = 0;  // origin: local delivery
  mine.mac = fc_sign(*authority_, config_.asn, 0, out.destination);
  out.set_path_descriptor(ia::kProtoFcBgp, ia::keys::kFcCommitments,
                          encode_commitments({mine}));
}

}  // namespace dbgp::protocols
