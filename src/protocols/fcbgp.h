// FC-BGP-like verifiable forwarding commitments as a D-BGP critical fix
// (arXiv 2309.13271).
//
// Each upgraded AS appends a *forwarding commitment* under its key: a signed
// statement "for this prefix I forward traffic to <next hop>", where the
// next hop is the path-vector hop the advertisement was learned from. Unlike
// BGPSec's attestation chain — which a single gulf AS breaks end to end —
// commitments verify *independently per hop*: a receiver checks each one
// against the path position its signer occupies, counts the covered hops,
// and treats partially covered paths as degraded but routable. That per-hop
// independence is exactly what makes FC-BGP deployable as a critical fix:
// partial islands lose assurance, never reachability.
//
// Substitution note (DESIGN.md): like BGPSec, signatures are modeled with
// the keyed 64-bit MAC of the shared in-process AttestationAuthority instead
// of real asymmetric crypto. Everything the evaluation exercises —
// commitment construction, per-hop verification, tamper/mismatch detection,
// coverage-ranked selection — survives the substitution.
//
// Selection ranks *verified coverage first* (fraction of path hops with a
// valid commitment), then path length. This is deliberately the opposite of
// BgpSecModule's security-as-tie-break placement: a chain metric ranked
// first is gadget-prone because one gulf hop zeroes it, but per-hop coverage
// is monotone under partial deployment — and ranking it first is what lets
// an upgraded AS pin its fully attested path and anchor a dispute wheel
// (topology/dispute_wheel.h) that local-pref games would otherwise keep
// oscillating forever.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/decision_module.h"
#include "protocols/bgpsec.h"

namespace dbgp::protocols {

// One hop's commitment: `signer` forwards traffic for the IA's prefix to
// `next_as` (0 = the signer originates the prefix and delivers locally).
struct ForwardingCommitment {
  bgp::AsNumber signer = 0;
  bgp::AsNumber next_as = 0;
  std::uint64_t mac = 0;

  bool operator==(const ForwardingCommitment&) const = default;
};

// Payload codec for keys::kFcCommitments (varint count, then per entry two
// varints + an 8-byte MAC). Throws util::DecodeError on malformed input.
std::vector<std::uint8_t> encode_commitments(const std::vector<ForwardingCommitment>& list);
std::vector<ForwardingCommitment> decode_commitments(std::span<const std::uint8_t> payload);

// MAC over (signer, next hop, prefix) under the signer's authority key; the
// domain constant keeps FC MACs disjoint from BGPSec attestation MACs even
// though both draw keys from the same authority.
std::uint64_t fc_sign(const AttestationAuthority& authority, bgp::AsNumber signer,
                      bgp::AsNumber next_as, const net::Prefix& prefix) noexcept;

class FcBgpModule : public core::DecisionModule {
 public:
  struct Config {
    bgp::AsNumber asn = 0;
    ia::IslandId island;
  };

  FcBgpModule(Config config, const AttestationAuthority* authority)
      : config_(config), authority_(authority) {}

  ia::ProtocolId protocol() const noexcept override { return ia::kProtoFcBgp; }
  std::string name() const override { return "fcbgp"; }

  // Partial-deployment critical fix: unverified routes stay selectable
  // (they lose on coverage in `better`), so FC-BGP never blackholes routes
  // from legacy neighbors.
  bool import_filter(core::IaRoute& route) override;

  // Coverage-first ladder: higher verified fraction, then shorter path,
  // then stable peer/sequence tie-breaks.
  bool better(const core::IaRoute& a, const core::IaRoute& b) const override;
  std::string explain_better(const core::IaRoute& winner,
                             const core::IaRoute& loser) const override;

  void annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;
  void annotate_origin(ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;

  // (verified hops, path hops) for a route: how many path-vector positions
  // carry a commitment whose signer, claimed next hop, and MAC all match
  // the position. Stateless (recomputed per call) so parallel pipelines can
  // compare candidates concurrently.
  std::pair<std::size_t, std::size_t> verified_coverage(const core::IaRoute& route) const;

 private:
  Config config_;
  const AttestationAuthority* authority_;
};

}  // namespace dbgp::protocols
