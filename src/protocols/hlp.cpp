#include "protocols/hlp.h"

#include <algorithm>
#include <queue>

#include "util/bytes.h"

namespace dbgp::protocols {

void LinkStateDb::add_link(std::uint32_t a, std::uint32_t b, std::uint64_t cost) {
  adjacency_[a][b] = cost;
  adjacency_[b][a] = cost;
}

bool LinkStateDb::remove_link(std::uint32_t a, std::uint32_t b) {
  auto it = adjacency_.find(a);
  if (it == adjacency_.end() || it->second.erase(b) == 0) return false;
  adjacency_[b].erase(a);
  return true;
}

std::size_t LinkStateDb::link_count() const noexcept {
  std::size_t total = 0;
  for (const auto& [node, links] : adjacency_) total += links.size();
  return total / 2;
}

std::optional<std::uint64_t> LinkStateDb::shortest_cost(std::uint32_t from,
                                                        std::uint32_t to) const {
  if (from == to) return 0;
  using Item = std::pair<std::uint64_t, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  std::map<std::uint32_t, std::uint64_t> dist;
  dist[from] = 0;
  queue.push({0, from});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (u == to) return d;
    auto known = dist.find(u);
    if (known != dist.end() && d > known->second) continue;
    auto it = adjacency_.find(u);
    if (it == adjacency_.end()) continue;
    for (const auto& [v, cost] : it->second) {
      const std::uint64_t nd = d + cost;
      auto dv = dist.find(v);
      if (dv == dist.end() || nd < dv->second) {
        dist[v] = nd;
        queue.push({nd, v});
      }
    }
  }
  return std::nullopt;
}

std::vector<std::uint32_t> LinkStateDb::shortest_path(std::uint32_t from,
                                                      std::uint32_t to) const {
  if (from == to) return {from};
  using Item = std::pair<std::uint64_t, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  std::map<std::uint32_t, std::uint64_t> dist;
  std::map<std::uint32_t, std::uint32_t> parent;
  dist[from] = 0;
  queue.push({0, from});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (u == to) break;
    auto known = dist.find(u);
    if (known != dist.end() && d > known->second) continue;
    auto it = adjacency_.find(u);
    if (it == adjacency_.end()) continue;
    for (const auto& [v, cost] : it->second) {
      const std::uint64_t nd = d + cost;
      auto dv = dist.find(v);
      if (dv == dist.end() || nd < dv->second) {
        dist[v] = nd;
        parent[v] = u;
        queue.push({nd, v});
      }
    }
  }
  if (dist.find(to) == dist.end()) return {};
  std::vector<std::uint32_t> path{to};
  std::uint32_t at = to;
  while (at != from) {
    at = parent.at(at);
    path.push_back(at);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::uint8_t> encode_hlp_cost(std::uint64_t cost) {
  util::ByteWriter w;
  w.put_varint(cost);
  return w.take();
}

std::uint64_t decode_hlp_cost(std::span<const std::uint8_t> payload) {
  util::ByteReader r(payload);
  return r.get_varint();
}

std::uint64_t HlpModule::path_cost(const core::IaRoute& route) noexcept {
  const auto* d = route.ia.find_path_descriptor(hlp_protocol_id(), hlp_keys::kHlpCost);
  if (d == nullptr) return 0;
  try {
    return decode_hlp_cost(d->value);
  } catch (const util::DecodeError&) {
    return 0;
  }
}

std::uint64_t HlpModule::transit_cost() const {
  if (lsdb_ == nullptr) return 1;
  const auto cost = lsdb_->shortest_cost(config_.ingress_router, config_.egress_router);
  // A partitioned island still forwards (the member's local cost estimate
  // defaults to 1 so reachability is preserved).
  return cost.value_or(1);
}

bool HlpModule::better(const core::IaRoute& a, const core::IaRoute& b) const {
  const std::uint64_t cost_a = path_cost(a);
  const std::uint64_t cost_b = path_cost(b);
  if (cost_a != cost_b) return cost_a < cost_b;
  const std::size_t len_a = a.ia.path_vector.hop_count();
  const std::size_t len_b = b.ia.path_vector.hop_count();
  if (len_a != len_b) return len_a < len_b;
  if (a.from_peer != b.from_peer) return a.from_peer < b.from_peer;
  return a.sequence < b.sequence;
}

void HlpModule::annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                                const core::ExportContext& ctx) {
  if (ctx.to_peer_in_same_island) return;  // intra-island routing is link-state
  const std::uint64_t total = path_cost(best) + transit_cost();
  out.set_path_descriptor(hlp_protocol_id(), hlp_keys::kHlpCost, encode_hlp_cost(total));
}

void HlpModule::annotate_origin(ia::IntegratedAdvertisement& out,
                                const core::ExportContext& ctx) {
  if (ctx.to_peer_in_same_island) return;
  out.set_path_descriptor(hlp_protocol_id(), hlp_keys::kHlpCost,
                          encode_hlp_cost(transit_cost()));
}

}  // namespace dbgp::protocols
