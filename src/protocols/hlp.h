// HLP (Subramanian et al., SIGCOMM'05) as a D-BGP replacement protocol:
// hybrid link-state / path-vector routing with path costs.
//
// Within an island (HLP's "hierarchy region") routing is link-state: every
// member floods link costs into a shared link-state database and computes
// shortest intra-island transit costs. Between islands HLP is path-vector
// with a cumulative cost.
//
// HLP is the paper's canonical example of why the path vector supports
// island-ID entries (Section 3.2): link-state internals *cannot* be
// expressed as a path vector, so HLP islands must abstract — they list only
// their island ID, and D-BGP's loop detection works at island granularity
// for them. The inter-island cost travels as a path descriptor
// (keys::kHlpCost) and crosses gulfs via pass-through, like Wiser's.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/decision_module.h"

namespace dbgp::protocols {

namespace hlp_keys {
inline constexpr std::uint16_t kHlpCost = 1;  // path descriptor
}

// The island-wide link-state database: nodes are router IDs, links carry
// symmetric costs. Every island member floods into the same instance (in a
// real deployment, via intra-island flooding; here, shared state).
class LinkStateDb {
 public:
  // Adds/updates a bidirectional link. Replaces any previous cost.
  void add_link(std::uint32_t a, std::uint32_t b, std::uint64_t cost);
  bool remove_link(std::uint32_t a, std::uint32_t b);

  // Dijkstra shortest cost between two routers; nullopt if disconnected.
  std::optional<std::uint64_t> shortest_cost(std::uint32_t from, std::uint32_t to) const;
  // The routers on that shortest path (inclusive); empty if disconnected.
  std::vector<std::uint32_t> shortest_path(std::uint32_t from, std::uint32_t to) const;

  std::size_t link_count() const noexcept;
  std::size_t node_count() const noexcept { return adjacency_.size(); }

 private:
  std::map<std::uint32_t, std::map<std::uint32_t, std::uint64_t>> adjacency_;
};

// Convenience alias for the well-known ID (kept as a function for source
// compatibility with earlier revisions).
inline ia::ProtocolId hlp_protocol_id() noexcept { return ia::kProtoHlp; }

std::vector<std::uint8_t> encode_hlp_cost(std::uint64_t cost);
std::uint64_t decode_hlp_cost(std::span<const std::uint8_t> payload);

class HlpModule : public core::DecisionModule {
 public:
  struct Config {
    ia::IslandId island;
    // This member's ingress and egress routers within the island; the
    // intra-island transit cost is the LSDB shortest cost between them.
    std::uint32_t ingress_router = 0;
    std::uint32_t egress_router = 0;
  };

  HlpModule(Config config, const LinkStateDb* lsdb) : config_(config), lsdb_(lsdb) {}

  ia::ProtocolId protocol() const noexcept override { return hlp_protocol_id(); }
  std::string name() const override { return "hlp"; }

  // Lowest cumulative cost wins; additive positive costs are strictly
  // monotone, so cost-first is convergence-safe (unlike widest/count-first).
  bool better(const core::IaRoute& a, const core::IaRoute& b) const override;

  // Adds the island's link-state transit cost to the cumulative cost.
  void annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;
  void annotate_origin(ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;

  static std::uint64_t path_cost(const core::IaRoute& route) noexcept;
  // The transit cost this member would add right now (LSDB-dependent).
  std::uint64_t transit_cost() const;

 private:
  Config config_;
  const LinkStateDb* lsdb_;
};

}  // namespace dbgp::protocols
