#include "protocols/lisp.h"

#include "ia/descriptors.h"
#include "util/bytes.h"

namespace dbgp::protocols {

using util::ByteReader;
using util::ByteWriter;

std::vector<std::uint8_t> encode_lisp_mapping(const LispMapping& mapping) {
  ByteWriter w;
  w.put_u32(mapping.eid_prefix.address().value());
  w.put_u8(mapping.eid_prefix.length());
  w.put_varint(mapping.map_version);
  w.put_varint(mapping.rlocs.size());
  for (const auto& rloc : mapping.rlocs) w.put_u32(rloc.value());
  return w.take();
}

LispMapping decode_lisp_mapping(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  LispMapping mapping;
  const std::uint32_t addr = r.get_u32();
  const std::uint8_t len = r.get_u8();
  if (len > 32) throw util::DecodeError("bad EID prefix length");
  mapping.eid_prefix = net::Prefix(net::Ipv4Address(addr), len);
  mapping.map_version = static_cast<std::uint32_t>(r.get_varint());
  const std::uint64_t raw_n = r.get_varint();
  r.expect_items(raw_n, 4);
  mapping.rlocs.reserve(static_cast<std::size_t>(raw_n));
  for (std::uint64_t i = 0; i < raw_n; ++i) {
    mapping.rlocs.push_back(net::Ipv4Address(r.get_u32()));
  }
  return mapping;
}

bool LispModule::better(const core::IaRoute& a, const core::IaRoute& b) const {
  const std::size_t len_a = a.ia.path_vector.hop_count();
  const std::size_t len_b = b.ia.path_vector.hop_count();
  if (len_a != len_b) return len_a < len_b;
  // Stable tie-break: peer identity, not arrival order. Sequence numbers
  // change on every re-advertisement, and an ordering that depends on them
  // lets two equal candidates ping-pong forever (no convergence).
  if (a.from_peer != b.from_peer) return a.from_peer < b.from_peer;
  return a.sequence < b.sequence;
}

void LispModule::annotate_export(const core::IaRoute& /*best*/,
                                 ia::IntegratedAdvertisement& out,
                                 const core::ExportContext& /*ctx*/) {
  if (out.destination == config_.mapping.eid_prefix ||
      config_.mapping.eid_prefix.covers(out.destination)) {
    out.add_island_descriptor(config_.island, ia::kProtoLisp, ia::keys::kLispMapping,
                              encode_lisp_mapping(config_.mapping));
  }
}

void LispModule::annotate_origin(ia::IntegratedAdvertisement& out,
                                 const core::ExportContext& ctx) {
  annotate_export(core::IaRoute{}, out, ctx);
}

void LispModule::update_mapping(std::vector<net::Ipv4Address> rlocs) {
  config_.mapping.rlocs = std::move(rlocs);
  ++config_.mapping.map_version;
}

std::optional<LispMapping> LispModule::mapping_for(const ia::IntegratedAdvertisement& ia,
                                                   ia::IslandId island) {
  std::optional<LispMapping> freshest;
  for (const auto& d : ia.island_descriptors()) {
    if (!(d.island == island) || d.protocol != ia::kProtoLisp ||
        d.key != ia::keys::kLispMapping) {
      continue;
    }
    try {
      auto mapping = decode_lisp_mapping(d.value);
      if (!freshest || mapping.map_version > freshest->map_version) {
        freshest = std::move(mapping);
      }
    } catch (const util::DecodeError&) {
    }
  }
  return freshest;
}

}  // namespace dbgp::protocols
