// LISP-like locator/ID separation (RFC 6830) as a D-BGP critical fix:
// mobility support via *destination ingress IDs*.
//
// An island separates endpoint identifiers (EID prefixes) from routing
// locators (RLOCs, the island's ingress routers). The mapping travels as an
// island descriptor; remote ASes encapsulate traffic for the EID prefix
// toward one of the RLOCs. When the endpoint moves, only the mapping
// changes — the routed prefix stays stable. Under plain BGP the mapping
// cannot cross a gulf; under D-BGP pass-through delivers it anywhere.
#pragma once

#include <span>
#include <vector>

#include "core/decision_module.h"

namespace dbgp::protocols {

struct LispMapping {
  net::Prefix eid_prefix;                  // the identifier space
  std::vector<net::Ipv4Address> rlocs;     // ingress locators, preference order
  std::uint32_t map_version = 0;           // bumped on mobility events

  bool operator==(const LispMapping&) const = default;
};

std::vector<std::uint8_t> encode_lisp_mapping(const LispMapping& mapping);
LispMapping decode_lisp_mapping(std::span<const std::uint8_t> payload);

class LispModule : public core::DecisionModule {
 public:
  struct Config {
    ia::IslandId island;
    LispMapping mapping;
  };

  explicit LispModule(Config config) : config_(std::move(config)) {}

  ia::ProtocolId protocol() const noexcept override { return ia::kProtoLisp; }
  std::string name() const override { return "lisp"; }

  // LISP does not change path preference.
  bool better(const core::IaRoute& a, const core::IaRoute& b) const override;

  void annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;
  void annotate_origin(ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;

  // Mobility event: endpoint moved behind new ingress locators. Bumps the
  // map version; the next advertisement carries the new mapping.
  void update_mapping(std::vector<net::Ipv4Address> rlocs);

  // Reader side: the freshest mapping for `island` carried in an IA.
  static std::optional<LispMapping> mapping_for(const ia::IntegratedAdvertisement& ia,
                                                ia::IslandId island);

  const LispMapping& mapping() const noexcept { return config_.mapping; }

 private:
  Config config_;
};

}  // namespace dbgp::protocols
