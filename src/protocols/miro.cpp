#include "protocols/miro.h"

#include "ia/codec.h"
#include "ia/descriptors.h"
#include "util/bytes.h"

namespace dbgp::protocols {

using util::ByteReader;
using util::ByteWriter;

std::vector<std::uint8_t> encode_miro_portal(net::Ipv4Address portal) {
  ByteWriter w;
  w.put_u32(portal.value());
  return w.take();
}

net::Ipv4Address decode_miro_portal(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  return net::Ipv4Address(r.get_u32());
}

namespace {

std::string offers_key(ia::IslandId island, const net::Prefix& dest) {
  return "miro/" + std::to_string(island.raw()) + "/" + dest.to_string() + "/offers";
}

std::vector<std::uint8_t> encode_offers(const std::vector<MiroOffer>& offers) {
  ByteWriter w;
  w.put_varint(offers.size());
  for (const auto& o : offers) {
    w.put_varint(o.offer_id);
    const auto path_payload = o.path.to_payload();
    w.put_varint(path_payload.size());
    w.put_bytes(path_payload);
    w.put_varint(o.price);
  }
  return w.take();
}

std::vector<MiroOffer> decode_offers(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint64_t raw_n = r.get_varint();
  r.expect_items(raw_n, 3);  // id + path count + price, minimum
  const std::size_t n = static_cast<std::size_t>(raw_n);
  std::vector<MiroOffer> offers;
  offers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MiroOffer o;
    o.offer_id = static_cast<std::uint32_t>(r.get_varint());
    const std::size_t path_bytes = static_cast<std::size_t>(r.get_varint());
    o.path = ia::IaPathVector::from_payload(r.get_bytes(path_bytes));
    o.price = r.get_varint();
    offers.push_back(std::move(o));
  }
  return offers;
}

}  // namespace

MiroService::MiroService(core::LookupService* portal, ia::IslandId island,
                         net::Ipv4Address portal_addr, net::Ipv4Address tunnel_endpoint)
    : portal_(portal),
      island_(island),
      portal_addr_(portal_addr),
      tunnel_endpoint_(tunnel_endpoint) {}

void MiroService::publish_offers(const net::Prefix& dest, std::vector<MiroOffer> offers) {
  portal_->put(offers_key(island_, dest), encode_offers(offers));
}

void MiroService::attach_descriptor(ia::IntegratedAdvertisement& ia) const {
  ia.add_island_descriptor(island_, ia::kProtoMiro, ia::keys::kMiroPortalAddr,
                           encode_miro_portal(portal_addr_));
}

std::optional<MiroGrant> MiroService::handle_purchase(const net::Prefix& dest,
                                                      std::uint32_t offer_id,
                                                      std::uint64_t payment) {
  auto stored = portal_->get(offers_key(island_, dest));
  if (!stored) return std::nullopt;
  for (const auto& offer : decode_offers(*stored)) {
    if (offer.offer_id != offer_id) continue;
    if (payment < offer.price) return std::nullopt;  // insufficient payment
    revenue_ += offer.price;
    return MiroGrant{offer_id, tunnel_endpoint_, offer.price};
  }
  return std::nullopt;
}

std::vector<MiroClient::Discovery> MiroClient::discover(const ia::IntegratedAdvertisement& ia) {
  std::vector<Discovery> found;
  for (const auto& d : ia.island_descriptors()) {
    if (d.protocol != ia::kProtoMiro || d.key != ia::keys::kMiroPortalAddr) continue;
    try {
      found.push_back({d.island, decode_miro_portal(d.value)});
    } catch (const util::DecodeError&) {
    }
  }
  return found;
}

std::vector<MiroOffer> MiroClient::fetch_offers(ia::IslandId island,
                                                const net::Prefix& dest) const {
  auto stored = portal_->get(offers_key(island, dest));
  if (!stored) return {};
  try {
    return decode_offers(*stored);
  } catch (const util::DecodeError&) {
    return {};
  }
}

}  // namespace dbgp::protocols
