// MIRO (Xu & Rexford, SIGCOMM'06) as a D-BGP *custom* protocol (the
// baseline // custom-protocol scenario, Section 2.3).
//
// A MIRO island sells alternate paths alongside BGP's single path. The
// deployment problem BGP cannot solve is *discovery*: a remote island cannot
// learn the service exists, what it offers, or how to negotiate (Figure 2).
// Under D-BGP the island advertises a service-portal address in an island
// descriptor that crosses gulfs via pass-through; customers contact the
// portal out-of-band to browse offers, purchase one, and obtain the tunnel
// endpoint that routes traffic over the purchased path (Section 3.4,
// "Off-path discovery for custom protocols").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/lookup_service.h"
#include "ia/integrated_advertisement.h"
#include "ia/path_vector.h"

namespace dbgp::protocols {

struct MiroOffer {
  std::uint32_t offer_id = 0;
  ia::IaPathVector path;   // the alternate path being sold
  std::uint64_t price = 0;

  bool operator==(const MiroOffer&) const = default;
};

struct MiroGrant {
  std::uint32_t offer_id = 0;
  net::Ipv4Address tunnel_endpoint;  // where the customer tunnels traffic
  std::uint64_t price_paid = 0;

  bool operator==(const MiroGrant&) const = default;
};

// Island descriptor payload (keys::kMiroPortalAddr): u32 portal address.
std::vector<std::uint8_t> encode_miro_portal(net::Ipv4Address portal);
net::Ipv4Address decode_miro_portal(std::span<const std::uint8_t> payload);

// -- Service side ---------------------------------------------------------------

// The portal a MIRO island operates (backed by a LookupService, like every
// out-of-band endpoint in this library).
class MiroService {
 public:
  MiroService(core::LookupService* portal, ia::IslandId island, net::Ipv4Address portal_addr,
              net::Ipv4Address tunnel_endpoint);

  // Publishes purchasable alternate paths toward `dest`.
  void publish_offers(const net::Prefix& dest, std::vector<MiroOffer> offers);

  // Stamps the discovery descriptor into an IA this island is exporting
  // (called from the island's export filter or by the operator).
  void attach_descriptor(ia::IntegratedAdvertisement& ia) const;

  // Server side of negotiation: grants the offer if payment covers the
  // price. (A real deployment would do settlement; the control flow and
  // state transitions are what the scenario exercises.)
  std::optional<MiroGrant> handle_purchase(const net::Prefix& dest, std::uint32_t offer_id,
                                           std::uint64_t payment);

  ia::IslandId island() const noexcept { return island_; }
  net::Ipv4Address portal_addr() const noexcept { return portal_addr_; }
  std::uint64_t revenue() const noexcept { return revenue_; }

 private:
  core::LookupService* portal_;
  ia::IslandId island_;
  net::Ipv4Address portal_addr_;
  net::Ipv4Address tunnel_endpoint_;
  std::uint64_t revenue_ = 0;
};

// -- Customer side ----------------------------------------------------------------

class MiroClient {
 public:
  explicit MiroClient(core::LookupService* portal) : portal_(portal) {}

  // Discovery (on- or off-path): scans an IA for MIRO portal descriptors.
  struct Discovery {
    ia::IslandId island;
    net::Ipv4Address portal_addr;
  };
  static std::vector<Discovery> discover(const ia::IntegratedAdvertisement& ia);

  // Browses the offers a discovered island publishes for `dest`.
  std::vector<MiroOffer> fetch_offers(ia::IslandId island, const net::Prefix& dest) const;

 private:
  core::LookupService* portal_;
};

// The purchase handshake needs both sides; free function so tests/examples
// read naturally: grant = miro_purchase(client_view_of_service, ...).
// (Negotiation is out-of-band of D-BGP per the paper.)

}  // namespace dbgp::protocols
