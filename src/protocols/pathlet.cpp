#include "protocols/pathlet.h"

#include "ia/descriptors.h"
#include "util/bytes.h"

namespace dbgp::protocols {

using util::ByteReader;
using util::ByteWriter;

namespace {

void encode_one(ByteWriter& w, const Pathlet& p) {
  w.put_varint(p.fid);
  w.put_varint(p.vias.size());
  for (std::uint32_t v : p.vias) w.put_varint(v);
  if (p.delivers) {
    w.put_u8(1);
    w.put_u32(p.delivers->address().value());
    w.put_u8(p.delivers->length());
  } else {
    w.put_u8(0);
  }
}

Pathlet decode_one(ByteReader& r) {
  Pathlet p;
  p.fid = static_cast<std::uint32_t>(r.get_varint());
  const std::uint64_t raw_n = r.get_varint();
  r.expect_items(raw_n);
  const std::size_t n = static_cast<std::size_t>(raw_n);
  p.vias.reserve(n);
  for (std::size_t i = 0; i < n; ++i) p.vias.push_back(static_cast<std::uint32_t>(r.get_varint()));
  if (r.get_u8() != 0) {
    const std::uint32_t addr = r.get_u32();
    p.delivers = net::Prefix(net::Ipv4Address(addr), r.get_u8());
  }
  return p;
}

}  // namespace

std::vector<std::uint8_t> encode_pathlets(const std::vector<Pathlet>& pathlets) {
  ByteWriter w;
  w.put_varint(pathlets.size());
  for (const auto& p : pathlets) encode_one(w, p);
  return w.take();
}

std::vector<Pathlet> decode_pathlets(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint64_t raw_n = r.get_varint();
  r.expect_items(raw_n, 4);  // fid + via count + terminator flag, minimum
  const std::size_t n = static_cast<std::size_t>(raw_n);
  std::vector<Pathlet> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(decode_one(r));
  return out;
}

std::vector<std::uint8_t> encode_pathlet_ad(const Pathlet& pathlet) {
  ByteWriter w;
  encode_one(w, pathlet);
  return w.take();
}

Pathlet decode_pathlet_ad(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  return decode_one(r);
}

// -- PathletStore --------------------------------------------------------------

void PathletStore::add_local(Pathlet pathlet) {
  const std::uint32_t fid = pathlet.fid;
  pathlets_[fid] = {std::move(pathlet), true};
}

void PathletStore::add_learned(Pathlet pathlet) {
  const std::uint32_t fid = pathlet.fid;
  auto it = pathlets_.find(fid);
  if (it != pathlets_.end() && it->second.local) return;  // never demote locals
  pathlets_[fid] = {std::move(pathlet), false};
}

const Pathlet* PathletStore::find(std::uint32_t fid) const {
  auto it = pathlets_.find(fid);
  return it == pathlets_.end() ? nullptr : &it->second.pathlet;
}

std::optional<Pathlet> PathletStore::compose(std::uint32_t fid_a, std::uint32_t fid_b,
                                             std::uint32_t new_fid) {
  const Pathlet* a = find(fid_a);
  const Pathlet* b = find(fid_b);
  if (a == nullptr || b == nullptr) return std::nullopt;
  if (a->delivers.has_value()) return std::nullopt;  // a already terminates
  if (a->vias.empty() || b->vias.empty()) return std::nullopt;
  if (a->vias.back() != b->vias.front()) return std::nullopt;  // do not join
  Pathlet joined;
  joined.fid = new_fid;
  joined.vias = a->vias;
  joined.vias.insert(joined.vias.end(), b->vias.begin() + 1, b->vias.end());
  joined.delivers = b->delivers;
  add_local(joined);
  return joined;
}

std::vector<Pathlet> PathletStore::all() const {
  std::vector<Pathlet> out;
  out.reserve(pathlets_.size());
  for (const auto& [fid, e] : pathlets_) out.push_back(e.pathlet);
  return out;
}

std::vector<Pathlet> PathletStore::locals() const {
  std::vector<Pathlet> out;
  for (const auto& [fid, e] : pathlets_) {
    if (e.local) out.push_back(e.pathlet);
  }
  return out;
}

std::vector<Pathlet> PathletStore::delivering_to(const net::Prefix& prefix) const {
  std::vector<Pathlet> out;
  for (const auto& [fid, e] : pathlets_) {
    if (e.pathlet.delivers && e.pathlet.delivers->covers(prefix)) out.push_back(e.pathlet);
  }
  return out;
}

// -- Module ---------------------------------------------------------------------

std::size_t count_pathlets(const ia::IntegratedAdvertisement& ia) {
  std::size_t count = 0;
  for (const auto* d : ia.island_descriptors_for(ia::kProtoPathlets)) {
    if (d->key != ia::keys::kPathletList) continue;
    try {
      count += decode_pathlets(d->value).size();
    } catch (const util::DecodeError&) {
      // Malformed descriptor contributes nothing.
    }
  }
  return count;
}

bool PathletModule::import_filter(core::IaRoute& route) {
  if (store_ != nullptr) {
    for (const auto* d : route.ia.island_descriptors_for(ia::kProtoPathlets)) {
      if (d->key != ia::keys::kPathletList) continue;
      try {
        for (auto& p : decode_pathlets(d->value)) store_->add_learned(std::move(p));
      } catch (const util::DecodeError&) {
        return false;
      }
    }
  }
  return true;
}

bool PathletModule::better(const core::IaRoute& a, const core::IaRoute& b) const {
  // Shortest path vector first, MORE pathlets as the tie-break. Preferring
  // raw pathlet count outright is not monotone (longer routes accumulate
  // more islands' descriptors), which creates dispute-wheel oscillation in
  // a distributed control plane; the count-greedy archetype of Figure 9 is
  // evaluated on the loop-free DAG model in src/sim instead.
  const std::size_t len_a = a.ia.path_vector.hop_count();
  const std::size_t len_b = b.ia.path_vector.hop_count();
  if (len_a != len_b) return len_a < len_b;
  const std::size_t pa = count_pathlets(a.ia);
  const std::size_t pb = count_pathlets(b.ia);
  if (pa != pb) return pa > pb;
  // Stable tie-break (see WiserModule::better): peer identity before
  // arrival order, or equal candidates oscillate.
  if (a.from_peer != b.from_peer) return a.from_peer < b.from_peer;
  return a.sequence < b.sequence;
}

void PathletModule::annotate_export(const core::IaRoute& /*best*/,
                                    ia::IntegratedAdvertisement& out,
                                    const core::ExportContext& /*ctx*/) {
  if (store_ == nullptr) return;
  const auto pathlets = store_->locals();
  if (pathlets.empty()) return;
  out.add_island_descriptor(config_.island, ia::kProtoPathlets, ia::keys::kPathletList,
                            encode_pathlets(pathlets));
}

void PathletModule::annotate_origin(ia::IntegratedAdvertisement& out,
                                    const core::ExportContext& ctx) {
  annotate_export(core::IaRoute{}, out, ctx);
}

// -- Translation / redistribution ------------------------------------------------

std::vector<core::WithinIslandAd> PathletIngressTranslation::from_ia(
    const ia::IntegratedAdvertisement& ia) {
  std::vector<core::WithinIslandAd> ads;
  for (const auto* d : ia.island_descriptors_for(ia::kProtoPathlets)) {
    if (d->key != ia::keys::kPathletList) continue;
    std::vector<Pathlet> pathlets;
    try {
      pathlets = decode_pathlets(d->value);
    } catch (const util::DecodeError&) {
      continue;
    }
    for (const auto& p : pathlets) {
      core::WithinIslandAd ad;
      ad.protocol = ia::kProtoPathlets;
      ad.payload = encode_pathlet_ad(p);
      // Preserve the D-BGP path vector so the island's egress can re-attach
      // it when the route leaves the island again.
      ad.ingress_path_vector = ia.path_vector;
      ads.push_back(std::move(ad));
    }
  }
  return ads;
}

void PathletEgressTranslation::to_ia(const std::vector<core::WithinIslandAd>& ads,
                                     ia::IntegratedAdvertisement& out) {
  std::vector<Pathlet> pathlets;
  pathlets.reserve(ads.size());
  for (const auto& ad : ads) {
    if (ad.protocol != ia::kProtoPathlets) continue;
    try {
      pathlets.push_back(decode_pathlet_ad(ad.payload));
    } catch (const util::DecodeError&) {
      continue;
    }
    // Restore the preserved ingress path vector if the IA lacks one (a
    // purely within-island origination keeps its own).
    if (out.path_vector.empty() && !ad.ingress_path_vector.empty()) {
      out.path_vector = ad.ingress_path_vector;
    }
  }
  if (!pathlets.empty()) {
    out.add_island_descriptor(island_, ia::kProtoPathlets, ia::keys::kPathletList,
                              encode_pathlets(pathlets));
  }
}

std::optional<bgp::PathAttributes> PathletRedistribution::redistribute(
    const net::Prefix& prefix, const ia::IntegratedAdvertisement& ia) {
  // Only redistribute if some pathlet actually delivers to the prefix.
  bool delivers = false;
  for (const auto* d : ia.island_descriptors_for(ia::kProtoPathlets)) {
    if (d->key != ia::keys::kPathletList) continue;
    try {
      for (const auto& p : decode_pathlets(d->value)) {
        if (p.delivers && p.delivers->covers(prefix)) {
          delivers = true;
          break;
        }
      }
    } catch (const util::DecodeError&) {
      continue;
    }
  }
  if (!delivers) return std::nullopt;
  bgp::PathAttributes attrs;
  attrs.origin = bgp::Origin::kIncomplete;  // route came from another protocol
  attrs.as_path = ia.path_vector.to_bgp_as_path();
  attrs.as_path.prepend(asn_);
  attrs.next_hop = next_hop_;
  return attrs;
}

}  // namespace dbgp::protocols
