// Pathlet Routing (Godfrey et al., SIGCOMM'09) as a D-BGP replacement
// protocol.
//
// Islands expose *pathlets* — path fragments named by forwarding IDs (FIDs).
// A pathlet traverses a sequence of routers/vnodes and may terminate by
// delivering to a destination prefix. Other islands compose pathlets into
// longer pathlets or end-to-end paths; sources encode chosen FIDs in packet
// headers.
//
// Under D-BGP (Sections 3.3-3.4, 6.1) the protocol supplies:
//   * a decision module (prefers advertisements exposing more pathlets),
//   * ingress/egress translation modules mapping between within-island
//     pathlet advertisements (which carry ONE pathlet each) and IAs crossing
//     gulfs (which can carry MANY, in an island descriptor),
//   * a redistribution module exposing a plain-BGP route so gulf ASes can
//     still reach destinations behind the island.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/decision_module.h"
#include "core/translation.h"

namespace dbgp::protocols {

struct Pathlet {
  std::uint32_t fid = 0;
  // Router/vnode IDs traversed, in order (e.g., {dr1, dr2}). The paper names
  // them br1/dr1/gr10; we use numeric IDs.
  std::vector<std::uint32_t> vias;
  // Set when the pathlet terminates by delivering to a destination prefix.
  std::optional<net::Prefix> delivers;

  bool operator==(const Pathlet&) const = default;
};

// Island-descriptor payload (keys::kPathletList): a set of pathlets.
std::vector<std::uint8_t> encode_pathlets(const std::vector<Pathlet>& pathlets);
std::vector<Pathlet> decode_pathlets(std::span<const std::uint8_t> payload);

// Within-island advertisement payload: exactly one pathlet ("within-island
// advertisements ... only carry single pathlets", Section 6.1).
std::vector<std::uint8_t> encode_pathlet_ad(const Pathlet& pathlet);
Pathlet decode_pathlet_ad(std::span<const std::uint8_t> payload);

// Per-AS pathlet database and composition engine (doubles as the FIB for
// the data plane: FID -> hop sequence).
class PathletStore {
 public:
  // Local pathlets are this island's own (advertised under its island ID);
  // learned pathlets came from other islands' descriptors (used for path
  // construction and the FIB, never re-exported as ours).
  void add_local(Pathlet pathlet);
  void add_learned(Pathlet pathlet);
  const Pathlet* find(std::uint32_t fid) const;
  // Composes a->b (a's tail must meet b's head vnode); returns the new
  // *local* pathlet registered under `new_fid`, or nullopt if they do not
  // join.
  std::optional<Pathlet> compose(std::uint32_t fid_a, std::uint32_t fid_b,
                                 std::uint32_t new_fid);
  std::vector<Pathlet> all() const;
  std::vector<Pathlet> locals() const;
  // Pathlets that deliver to (a prefix covering) `prefix`.
  std::vector<Pathlet> delivering_to(const net::Prefix& prefix) const;
  std::size_t size() const noexcept { return pathlets_.size(); }

 private:
  struct Entry {
    Pathlet pathlet;
    bool local = false;
  };
  std::map<std::uint32_t, Entry> pathlets_;
};

// Counts pathlets carried in an IA's Pathlet-Routing island descriptors.
std::size_t count_pathlets(const ia::IntegratedAdvertisement& ia);

class PathletModule : public core::DecisionModule {
 public:
  struct Config {
    ia::IslandId island;
  };

  PathletModule(Config config, PathletStore* store) : config_(config), store_(store) {}

  ia::ProtocolId protocol() const noexcept override { return ia::kProtoPathlets; }
  std::string name() const override { return "pathlets"; }

  // Imports remote pathlets into the local store (learning phase).
  bool import_filter(core::IaRoute& route) override;

  // Shortest path vector wins; more pathlets (richer routing choice)
  // breaks ties. See the .cpp for why count-first would not converge.
  bool better(const core::IaRoute& a, const core::IaRoute& b) const override;

  // Exposes this island's pathlet set in an island descriptor.
  void annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;
  void annotate_origin(ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;

 private:
  Config config_;
  PathletStore* store_;
};

// -- Translation / redistribution ---------------------------------------------

// IA -> within-island single-pathlet advertisements.
class PathletIngressTranslation : public core::IngressTranslationModule {
 public:
  std::vector<core::WithinIslandAd> from_ia(const ia::IntegratedAdvertisement& ia) override;
};

// Within-island advertisements -> one IA island descriptor.
class PathletEgressTranslation : public core::EgressTranslationModule {
 public:
  explicit PathletEgressTranslation(ia::IslandId island) : island_(island) {}
  void to_ia(const std::vector<core::WithinIslandAd>& ads,
             ia::IntegratedAdvertisement& out) override;

 private:
  ia::IslandId island_;
};

// Exposes a pathlet-reachable prefix as a plain BGP route ("redistribute a
// set of pathlets that could be used to reach within-island destinations or
// islands' egress points into BGP", Section 6.1).
class PathletRedistribution : public core::RedistributionModule {
 public:
  PathletRedistribution(bgp::AsNumber asn, net::Ipv4Address next_hop)
      : asn_(asn), next_hop_(next_hop) {}
  std::optional<bgp::PathAttributes> redistribute(
      const net::Prefix& prefix, const ia::IntegratedAdvertisement& ia) override;

 private:
  bgp::AsNumber asn_;
  net::Ipv4Address next_hop_;
};

}  // namespace dbgp::protocols
