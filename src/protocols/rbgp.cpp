#include "protocols/rbgp.h"

#include <algorithm>

#include "ia/descriptors.h"
#include "util/bytes.h"

namespace dbgp::protocols {

bool RBgpModule::import_filter(core::IaRoute& route) {
  alternatives_[route.ia.destination][route.from_peer] = route.ia.path_vector;
  return true;
}

bool RBgpModule::better(const core::IaRoute& a, const core::IaRoute& b) const {
  const std::size_t len_a = a.ia.path_vector.hop_count();
  const std::size_t len_b = b.ia.path_vector.hop_count();
  if (len_a != len_b) return len_a < len_b;
  if (a.from_peer != b.from_peer) return a.from_peer < b.from_peer;
  return a.sequence < b.sequence;
}

namespace {

// Shared ASes between two path vectors (fewer = more disjoint = better
// backup: a failure on the primary is less likely to hit it too).
std::size_t overlap(const ia::IaPathVector& a, const ia::IaPathVector& b) {
  std::size_t count = 0;
  for (const auto& e : a.elements()) {
    if (e.kind == ia::PathElement::Kind::kAs && b.contains_as(e.asn)) ++count;
    if (e.kind == ia::PathElement::Kind::kIsland && b.contains_island(e.island_id)) ++count;
  }
  return count;
}

}  // namespace

void RBgpModule::annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                                 const core::ExportContext& ctx) {
  auto it = alternatives_.find(best.ia.destination);
  const ia::IaPathVector* backup = nullptr;
  std::size_t best_overlap = ~std::size_t{0};
  if (it != alternatives_.end()) {
    for (const auto& [peer, path] : it->second) {
      if (peer == best.from_peer) continue;  // that IS the primary
      // A usable backup must not route through the peer we export to.
      if (path.contains_as(ctx.to_peer_as)) continue;
      const std::size_t shared = overlap(path, best.ia.path_vector);
      if (backup == nullptr || shared < best_overlap ||
          (shared == best_overlap && path.hop_count() < backup->hop_count())) {
        backup = &path;
        best_overlap = shared;
      }
    }
  }
  if (backup != nullptr) {
    // The exported backup includes us, like the primary will.
    ia::IaPathVector advertised = *backup;
    advertised.prepend_as(ctx.own_as);
    out.set_path_descriptor(ia::kProtoRBgp, ia::keys::kRBgpBackupPath,
                            advertised.to_payload());
  } else if (const auto* inherited =
                 best.ia.find_path_descriptor(ia::kProtoRBgp, ia::keys::kRBgpBackupPath)) {
    // No local alternative: extend the upstream backup with ourselves so it
    // stays rooted at the destination.
    try {
      ia::IaPathVector upstream = ia::IaPathVector::from_payload(inherited->value);
      if (!upstream.contains_as(ctx.own_as) && !upstream.contains_as(ctx.to_peer_as)) {
        upstream.prepend_as(ctx.own_as);
        out.set_path_descriptor(ia::kProtoRBgp, ia::keys::kRBgpBackupPath,
                                upstream.to_payload());
      } else {
        out.remove_path_descriptors(ia::kProtoRBgp);
      }
    } catch (const util::DecodeError&) {
      out.remove_path_descriptors(ia::kProtoRBgp);
    }
  }
}

void RBgpModule::on_best_changed(const net::Prefix& prefix, const core::IaRoute* best) {
  if (best == nullptr) alternatives_.erase(prefix);
}

ia::IaPathVector RBgpModule::backup_path(const ia::IntegratedAdvertisement& ia) {
  const auto* d = ia.find_path_descriptor(ia::kProtoRBgp, ia::keys::kRBgpBackupPath);
  if (d == nullptr) return {};
  try {
    return ia::IaPathVector::from_payload(d->value);
  } catch (const util::DecodeError&) {
    return {};
  }
}

ia::IaPathVector RBgpModule::backup_path(const core::IaRoute& route) {
  return backup_path(route.ia);
}

}  // namespace dbgp::protocols
