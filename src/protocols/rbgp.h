// R-BGP (Kushman, Kandula, Katabi, Maggs — NSDI'07) as a D-BGP critical
// fix: advertise *backup paths* alongside the primary so ASes stay connected
// during reconvergence ("staying connected in a connected world").
//
// Under D-BGP the backup travels as a path descriptor. A gulf cannot use it
// (it does not understand R-BGP), but it passes it through, so islands of
// R-BGP adopters separated by gulfs still learn each other's failover
// paths — the deployment the paper's CF scenario enables.
//
// Note the Section 3.5 caveat: R-BGP is a two-way protocol in its full form
// (downstream ASes confirm backup activation); that leg must run
// out-of-band of D-BGP, like Wiser's cost exchange. This implementation
// carries the one-way part (backup dissemination) in-band.
#pragma once

#include <map>

#include "core/decision_module.h"

namespace dbgp::protocols {

class RBgpModule : public core::DecisionModule {
 public:
  struct Config {
    ia::IslandId island;
  };

  explicit RBgpModule(Config config) : config_(config) {}

  ia::ProtocolId protocol() const noexcept override { return ia::kProtoRBgp; }
  std::string name() const override { return "r-bgp"; }

  // Caches each candidate's path so annotate_export can pick a backup that
  // is maximally disjoint from the primary.
  bool import_filter(core::IaRoute& route) override;

  // Primary selection is BGP's (R-BGP does not change preference).
  bool better(const core::IaRoute& a, const core::IaRoute& b) const override;

  // Attaches the best disjoint alternative as the backup-path descriptor.
  void annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;

  void on_best_changed(const net::Prefix& prefix, const core::IaRoute* best) override;

  // Reads the backup path carried on a route; empty vector if none.
  static ia::IaPathVector backup_path(const core::IaRoute& route);
  static ia::IaPathVector backup_path(const ia::IntegratedAdvertisement& ia);

 private:
  Config config_;
  // prefix -> (peer -> candidate path vector): the alternatives this AS has
  // heard, from which backups are chosen.
  std::map<net::Prefix, std::map<bgp::PeerId, ia::IaPathVector>> alternatives_;
};

}  // namespace dbgp::protocols
