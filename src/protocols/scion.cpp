#include "protocols/scion.h"

#include "ia/descriptors.h"
#include "util/bytes.h"

namespace dbgp::protocols {

using util::ByteReader;
using util::ByteWriter;

std::vector<std::uint8_t> encode_scion_paths(const std::vector<ScionPath>& paths) {
  ByteWriter w;
  w.put_varint(paths.size());
  for (const auto& p : paths) {
    w.put_varint(p.hops.size());
    for (std::uint32_t h : p.hops) w.put_varint(h);
  }
  return w.take();
}

std::vector<ScionPath> decode_scion_paths(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint64_t raw_n = r.get_varint();
  r.expect_items(raw_n);
  const std::size_t n = static_cast<std::size_t>(raw_n);
  std::vector<ScionPath> paths;
  paths.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ScionPath p;
    const std::uint64_t raw_hops = r.get_varint();
    r.expect_items(raw_hops);
    const std::size_t hops = static_cast<std::size_t>(raw_hops);
    p.hops.reserve(hops);
    for (std::size_t j = 0; j < hops; ++j) {
      p.hops.push_back(static_cast<std::uint32_t>(r.get_varint()));
    }
    paths.push_back(std::move(p));
  }
  return paths;
}

std::size_t count_scion_paths(const ia::IntegratedAdvertisement& ia) {
  std::size_t count = 0;
  for (const auto* d : ia.island_descriptors_for(ia::kProtoScion)) {
    if (d->key != ia::keys::kScionPaths) continue;
    try {
      count += decode_scion_paths(d->value).size();
    } catch (const util::DecodeError&) {
    }
  }
  return count;
}

std::vector<std::uint8_t> ScionHeader::encode() const {
  ByteWriter w;
  w.put_varint(hops.size());
  for (std::uint32_t h : hops) w.put_varint(h);
  return w.take();
}

ScionHeader ScionHeader::decode(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  ScionHeader h;
  const std::uint64_t raw_n = r.get_varint();
  r.expect_items(raw_n);
  const std::size_t n = static_cast<std::size_t>(raw_n);
  h.hops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    h.hops.push_back(static_cast<std::uint32_t>(r.get_varint()));
  }
  return h;
}

bool ScionModule::better(const core::IaRoute& a, const core::IaRoute& b) const {
  // Shortest path vector first, more exposed paths as the tie-break (see
  // PathletModule::better for why count-first is unsafe in a distributed
  // control plane; the greedy archetype lives in src/sim).
  const std::size_t len_a = a.ia.path_vector.hop_count();
  const std::size_t len_b = b.ia.path_vector.hop_count();
  if (len_a != len_b) return len_a < len_b;
  const std::size_t pa = count_scion_paths(a.ia);
  const std::size_t pb = count_scion_paths(b.ia);
  if (pa != pb) return pa > pb;
  // Stable tie-break (see WiserModule::better): peer identity before
  // arrival order, or equal candidates oscillate.
  if (a.from_peer != b.from_peer) return a.from_peer < b.from_peer;
  return a.sequence < b.sequence;
}

void ScionModule::annotate_export(const core::IaRoute& /*best*/,
                                  ia::IntegratedAdvertisement& out,
                                  const core::ExportContext& /*ctx*/) {
  if (config_.local_paths.empty()) return;
  out.add_island_descriptor(config_.island, ia::kProtoScion, ia::keys::kScionPaths,
                            encode_scion_paths(config_.local_paths));
}

void ScionModule::annotate_origin(ia::IntegratedAdvertisement& out,
                                  const core::ExportContext& ctx) {
  annotate_export(core::IaRoute{}, out, ctx);
}

std::vector<ScionPath> ScionModule::paths_offered(const ia::IntegratedAdvertisement& ia,
                                                  ia::IslandId island) {
  std::vector<ScionPath> out;
  for (const auto& d : ia.island_descriptors()) {
    if (!(d.island == island) || d.protocol != ia::kProtoScion ||
        d.key != ia::keys::kScionPaths) {
      continue;
    }
    try {
      auto paths = decode_scion_paths(d.value);
      out.insert(out.end(), paths.begin(), paths.end());
    } catch (const util::DecodeError&) {
    }
  }
  return out;
}

std::optional<bgp::PathAttributes> ScionRedistribution::redistribute(
    const net::Prefix& /*prefix*/, const ia::IntegratedAdvertisement& ia) {
  // BGP can carry only one path per router: redistribute the first exposed
  // path; all others are dropped (this is the Figure-3 baseline behaviour).
  if (count_scion_paths(ia) == 0) return std::nullopt;
  bgp::PathAttributes attrs;
  attrs.origin = bgp::Origin::kIncomplete;
  attrs.as_path = ia.path_vector.to_bgp_as_path();
  attrs.as_path.prepend(asn_);
  attrs.next_hop = next_hop_;
  return attrs;
}

}  // namespace dbgp::protocols
