// SCION-like path-based routing (Zhang et al., IEEE S&P'11) as a D-BGP
// replacement protocol.
//
// Islands expose *multiple within-island paths* to a destination, specified
// at border-router granularity; sources choose a path and encode it in a
// packet header (path-based forwarding). Under plain BGP only one path per
// router can be redistributed (Figure 3); under D-BGP the extra paths travel
// in an island descriptor and survive gulfs via pass-through.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/decision_module.h"
#include "core/translation.h"

namespace dbgp::protocols {

struct ScionPath {
  std::vector<std::uint32_t> hops;  // border-router IDs, source side first

  bool operator==(const ScionPath&) const = default;
};

// Island-descriptor payload (keys::kScionPaths).
std::vector<std::uint8_t> encode_scion_paths(const std::vector<ScionPath>& paths);
std::vector<ScionPath> decode_scion_paths(std::span<const std::uint8_t> payload);

// Counts within-island paths across all SCION island descriptors in an IA.
std::size_t count_scion_paths(const ia::IntegratedAdvertisement& ia);

// The path header a source encodes into packets (Section 3.4: "chooses a
// within-island path, and encodes it in a SCION header").
struct ScionHeader {
  std::vector<std::uint32_t> hops;

  std::vector<std::uint8_t> encode() const;
  static ScionHeader decode(std::span<const std::uint8_t> payload);
  bool operator==(const ScionHeader&) const = default;
};

class ScionModule : public core::DecisionModule {
 public:
  struct Config {
    ia::IslandId island;
    // The within-island paths this island's egress exposes (set by the
    // island operator; in a full deployment these come from SCION beaconing).
    std::vector<ScionPath> local_paths;
  };

  explicit ScionModule(Config config) : config_(std::move(config)) {}

  ia::ProtocolId protocol() const noexcept override { return ia::kProtoScion; }
  std::string name() const override { return "scion"; }

  // Shortest path vector wins; more exposed paths breaks ties (the greedy
  // extra-paths archetype of Figure 9 is evaluated in src/sim — see the
  // .cpp for the convergence rationale).
  bool better(const core::IaRoute& a, const core::IaRoute& b) const override;

  void annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;
  void annotate_origin(ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;

  // Source-side helper: all within-island paths offered by `island` in `ia`
  // (what a SCION source chooses from before building a header).
  static std::vector<ScionPath> paths_offered(const ia::IntegratedAdvertisement& ia,
                                              ia::IslandId island);

 private:
  Config config_;
};

// Redistributes exactly one SCION path into plain BGP (Figure 3: "it
// redistributes one SCION path into BGP ... the second path cannot be
// redistributed and is lost" — the D-BGP island descriptor is what saves it).
class ScionRedistribution : public core::RedistributionModule {
 public:
  ScionRedistribution(bgp::AsNumber asn, net::Ipv4Address next_hop)
      : asn_(asn), next_hop_(next_hop) {}
  std::optional<bgp::PathAttributes> redistribute(
      const net::Prefix& prefix, const ia::IntegratedAdvertisement& ia) override;

 private:
  bgp::AsNumber asn_;
  net::Ipv4Address next_hop_;
};

}  // namespace dbgp::protocols
