#include "protocols/stackvec.h"

#include "ia/descriptors.h"
#include "util/bytes.h"

namespace dbgp::protocols {

using util::ByteReader;
using util::ByteWriter;

std::vector<std::uint8_t> encode_stack_vector(const std::vector<StackVecEntry>& entries) {
  ByteWriter w;
  w.put_varint(entries.size());
  for (const auto& e : entries) {
    w.put_varint(e.gateway_as);
    w.put_u32(e.endpoint.value());
  }
  return w.take();
}

std::vector<StackVecEntry> decode_stack_vector(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint64_t raw_n = r.get_varint();
  r.expect_items(raw_n, 5);  // one varint + a 4-byte address minimum
  const std::size_t n = static_cast<std::size_t>(raw_n);
  std::vector<StackVecEntry> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    StackVecEntry e;
    e.gateway_as = static_cast<bgp::AsNumber>(r.get_varint());
    e.endpoint = net::Ipv4Address(r.get_u32());
    entries.push_back(e);
  }
  return entries;
}

std::vector<StackVecEntry> stack_vector_of(const ia::IntegratedAdvertisement& ia) {
  const auto* d = ia.find_path_descriptor(ia::kProtoStackVec, ia::keys::kStackVector);
  if (d == nullptr) return {};
  try {
    return decode_stack_vector(d->value);
  } catch (const util::DecodeError&) {
    return {};
  }
}

bool StackVecModule::better(const core::IaRoute& a, const core::IaRoute& b) const {
  const std::size_t len_a = a.ia.path_vector.hop_count();
  const std::size_t len_b = b.ia.path_vector.hop_count();
  if (len_a != len_b) return len_a < len_b;
  const std::size_t gw_a = stack_vector_of(a.ia).size();
  const std::size_t gw_b = stack_vector_of(b.ia).size();
  if (gw_a != gw_b) return gw_a > gw_b;
  // Stable tie-break: peer identity, not arrival order (sequence numbers
  // change on re-advertisement; ordering on them alone never converges).
  if (a.from_peer != b.from_peer) return a.from_peer < b.from_peer;
  return a.sequence < b.sequence;
}

std::string StackVecModule::explain_better(const core::IaRoute& winner,
                                           const core::IaRoute& loser) const {
  if (winner.ia.path_vector.hop_count() != loser.ia.path_vector.hop_count()) {
    return "path-length";
  }
  if (stack_vector_of(winner.ia).size() != stack_vector_of(loser.ia).size()) {
    return "tunnel-gateways";
  }
  if (winner.from_peer != loser.from_peer) return "peer-id";
  return "arrival-order";
}

void StackVecModule::annotate_export(const core::IaRoute& best,
                                     ia::IntegratedAdvertisement& out,
                                     const core::ExportContext& ctx) {
  // Only the gateway role pushes an entry: exports that stay inside the
  // island add nothing (traffic reaches this island's gateway via the entry
  // that gateway pushed when the route left the island).
  if (ctx.to_peer_in_same_island) return;
  auto entries = stack_vector_of(best.ia);
  // Re-announcements replace our previous entry instead of stacking.
  std::erase_if(entries,
                [&](const StackVecEntry& e) { return e.gateway_as == config_.asn; });
  StackVecEntry mine{config_.asn, config_.endpoint};
  // Nearest gateway first: we are now the closest tunnel hop to any
  // downstream receiver.
  entries.insert(entries.begin(), mine);
  out.set_path_descriptor(ia::kProtoStackVec, ia::keys::kStackVector,
                          encode_stack_vector(entries));
}

void StackVecModule::annotate_origin(ia::IntegratedAdvertisement& out,
                                     const core::ExportContext& /*ctx*/) {
  const StackVecEntry mine{config_.asn, config_.endpoint};
  out.set_path_descriptor(ia::kProtoStackVec, ia::keys::kStackVector,
                          encode_stack_vector({mine}));
  if (config_.island.valid()) {
    out.add_island_descriptor(config_.island, ia::kProtoStackVec,
                              ia::keys::kStackVecGateway, encode_stack_vector({mine}));
  }
}

}  // namespace dbgp::protocols
