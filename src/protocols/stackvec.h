// Stack-vector automatic tunneling (after the stack-vector routing proposal,
// arXiv 1901.08326) as a D-BGP custom protocol deployed gateway-style.
//
// Upgraded islands advertise a *stack vector* alongside the route: the
// ordered list of tunnel gateways (one per upgraded island crossed, nearest
// island first) that traffic must traverse to reach the origin. Each island
// gateway — the border AS exporting toward a peer outside its island —
// pushes its own entry onto the vector; gulf ASes pass the descriptor
// through untouched (CF-R1). A source that understands the protocol turns
// the vector into a stack of tunnel headers on the multi-network-protocol
// data plane (simnet/dataplane.h): the innermost header is the plain IPv4
// destination, and each gateway entry wraps it in one tunnel header, popped
// at that gateway. Traffic therefore hops gateway-to-gateway across gulfs
// automatically — no manual tunnel configuration, which is the proposal's
// point.
//
// Islands additionally publish their gateway endpoint in an island
// descriptor so sources can tunnel to an island even when its border AS is
// abstracted out of the path vector.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/decision_module.h"
#include "net/ipv4.h"

namespace dbgp::protocols {

// One gateway hop of the stack vector.
struct StackVecEntry {
  bgp::AsNumber gateway_as = 0;
  net::Ipv4Address endpoint;  // tunnel endpoint address at that gateway

  bool operator==(const StackVecEntry&) const = default;
};

// Payload codec for keys::kStackVector (path descriptor) and
// keys::kStackVecGateway (island descriptor, single entry). Throws
// util::DecodeError on malformed input.
std::vector<std::uint8_t> encode_stack_vector(const std::vector<StackVecEntry>& entries);
std::vector<StackVecEntry> decode_stack_vector(std::span<const std::uint8_t> payload);

// The tunnel endpoints a source must traverse, nearest gateway first —
// exactly the order tunnel headers are pushed (innermost = farthest). Empty
// when the route carries no stack vector.
std::vector<StackVecEntry> stack_vector_of(const ia::IntegratedAdvertisement& ia);

class StackVecModule : public core::DecisionModule {
 public:
  struct Config {
    bgp::AsNumber asn = 0;
    ia::IslandId island;
    net::Ipv4Address endpoint;  // this AS's tunnel endpoint
  };

  explicit StackVecModule(Config config) : config_(config) {}

  ia::ProtocolId protocol() const noexcept override { return ia::kProtoStackVec; }
  std::string name() const override { return "stackvec"; }

  // Shortest path wins; a longer stack vector (more tunnel-capable
  // gateways en route, hence more of the path coverable by automatic
  // tunnels) breaks ties — the scion/pathlet "richer info breaks ties"
  // idiom, which is convergence-safe because the metric only grows with
  // information the path actually carries.
  bool better(const core::IaRoute& a, const core::IaRoute& b) const override;
  std::string explain_better(const core::IaRoute& winner,
                             const core::IaRoute& loser) const override;

  // Gateway-style: pushes this AS's entry only when exporting *out of* the
  // island (the gateway role); intra-island exports leave the vector as-is.
  void annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;
  void annotate_origin(ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;

 private:
  Config config_;
};

}  // namespace dbgp::protocols
