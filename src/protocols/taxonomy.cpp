#include "protocols/taxonomy.h"

#include <array>

#include "ia/ids.h"

namespace dbgp::protocols {

std::string_view to_string(Scenario scenario) noexcept {
  switch (scenario) {
    case Scenario::kCriticalFix: return "critical-fix";
    case Scenario::kCustom: return "custom";
    case Scenario::kReplacement: return "replacement";
  }
  return "?";
}

namespace {

// Table 1, verbatim structure. "Fwd w/custom hdrs" and multi-network-proto
// headers apply to the path-based / multi-hop replacements; tunnels are the
// custom protocols' delivery mechanism.
constexpr std::array<ProtocolInfo, 14> kTaxonomy = {{
    // Baseline -> critical fix
    {"BGPSec", Scenario::kCriticalFix, "path attestations", false, false, false,
     ia::kProtoBgpSec},
    {"EQ-BGP", Scenario::kCriticalFix, "QoS metrics", false, false, false, ia::kProtoEqBgp},
    {"Xiao et al.", Scenario::kCriticalFix, "QoS metrics", false, false, false, 0},
    {"LISP", Scenario::kCriticalFix, "destination ingress IDs", false, false, false,
     ia::kProtoLisp},
    {"R-BGP", Scenario::kCriticalFix, "extra backup paths", false, false, false,
     ia::kProtoRBgp},
    {"Wiser", Scenario::kCriticalFix, "path costs", false, false, false, ia::kProtoWiser},
    // Baseline -> custom protocol
    {"MIRO", Scenario::kCustom, "service's existence", true, false, false, ia::kProtoMiro},
    {"Arrow", Scenario::kCustom, "service's existence + intra-island QoS", true, false, false,
     0},
    {"RON", Scenario::kCustom, "service's existence", true, false, false, 0},
    // Baseline -> replacement protocol
    {"NIRA", Scenario::kReplacement, "multiple paths", false, true, true, 0},
    {"SCION", Scenario::kReplacement, "multiple paths", false, true, true, ia::kProtoScion},
    {"Pathlets", Scenario::kReplacement, "pathlets", false, true, true, ia::kProtoPathlets},
    {"YAMR", Scenario::kReplacement, "pathlets", false, true, true, 0},
    {"HLP", Scenario::kReplacement, "path costs", false, false, false, ia::kProtoHlp},
}};

}  // namespace

std::span<const ProtocolInfo> protocol_taxonomy() noexcept { return kTaxonomy; }

const ProtocolInfo* find_protocol_info(std::string_view name) noexcept {
  for (const auto& info : kTaxonomy) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

}  // namespace dbgp::protocols
