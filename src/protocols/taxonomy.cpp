#include "protocols/taxonomy.h"

#include <array>

#include "ia/ids.h"

namespace dbgp::protocols {

std::string_view to_string(Scenario scenario) noexcept {
  switch (scenario) {
    case Scenario::kCriticalFix: return "critical-fix";
    case Scenario::kCustom: return "custom";
    case Scenario::kReplacement: return "replacement";
  }
  return "?";
}

namespace {

// Table 1, verbatim structure. "Fwd w/custom hdrs" and multi-network-proto
// headers apply to the path-based / multi-hop replacements; tunnels are the
// custom protocols' delivery mechanism.
constexpr std::array<ProtocolInfo, 14> kTaxonomy = {{
    // Baseline -> critical fix
    {"BGPSec", Scenario::kCriticalFix, "path attestations", false, false, false,
     ia::kProtoBgpSec},
    {"EQ-BGP", Scenario::kCriticalFix, "QoS metrics", false, false, false, ia::kProtoEqBgp},
    {"Xiao et al.", Scenario::kCriticalFix, "QoS metrics", false, false, false, 0},
    {"LISP", Scenario::kCriticalFix, "destination ingress IDs", false, false, false,
     ia::kProtoLisp},
    {"R-BGP", Scenario::kCriticalFix, "extra backup paths", false, false, false,
     ia::kProtoRBgp},
    {"Wiser", Scenario::kCriticalFix, "path costs", false, false, false, ia::kProtoWiser},
    // Baseline -> custom protocol
    {"MIRO", Scenario::kCustom, "service's existence", true, false, false, ia::kProtoMiro},
    {"Arrow", Scenario::kCustom, "service's existence + intra-island QoS", true, false, false,
     0},
    {"RON", Scenario::kCustom, "service's existence", true, false, false, 0},
    // Baseline -> replacement protocol
    {"NIRA", Scenario::kReplacement, "multiple paths", false, true, true, 0},
    {"SCION", Scenario::kReplacement, "multiple paths", false, true, true, ia::kProtoScion},
    {"Pathlets", Scenario::kReplacement, "pathlets", false, true, true, ia::kProtoPathlets},
    {"YAMR", Scenario::kReplacement, "pathlets", false, true, true, 0},
    {"HLP", Scenario::kReplacement, "path costs", false, false, false, ia::kProtoHlp},
}};

// Post-paper archetypes (see the header): appended after the frozen Table 1
// rows so extended_protocol_taxonomy() is Table 1 plus these.
constexpr std::array<ProtocolInfo, 16> kExtendedTaxonomy = {{
    kTaxonomy[0], kTaxonomy[1], kTaxonomy[2], kTaxonomy[3], kTaxonomy[4], kTaxonomy[5],
    kTaxonomy[6], kTaxonomy[7], kTaxonomy[8], kTaxonomy[9], kTaxonomy[10], kTaxonomy[11],
    kTaxonomy[12], kTaxonomy[13],
    {"FC-BGP", Scenario::kCriticalFix, "forwarding commitments", false, false, false,
     ia::kProtoFcBgp},
    {"StackVec", Scenario::kCustom, "tunnel gateway stack vectors", true, false, false,
     ia::kProtoStackVec},
}};

}  // namespace

std::span<const ProtocolInfo> protocol_taxonomy() noexcept {
  return std::span<const ProtocolInfo>(kExtendedTaxonomy).first(kTaxonomy.size());
}

std::span<const ProtocolInfo> extended_protocol_taxonomy() noexcept {
  return kExtendedTaxonomy;
}

const ProtocolInfo* find_protocol_info(std::string_view name) noexcept {
  for (const auto& info : kExtendedTaxonomy) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

}  // namespace dbgp::protocols
