// Table 1 of the paper, encoded as data: the 14 analyzed protocols, the
// evolvability scenario each maps to, the extra control information each
// must disseminate (⋆), and the data-plane support each needs (◇).
//
// This taxonomy drives the E10 tests and keeps the library's scenario
// handling honest: every bundled protocol implementation must match its row.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace dbgp::protocols {

enum class Scenario : std::uint8_t {
  kCriticalFix,  // baseline -> baseline with critical fix (Section 2.2)
  kCustom,       // baseline -> baseline // custom protocol (Section 2.3)
  kReplacement,  // baseline -> replacement protocol (Section 2.4)
};

std::string_view to_string(Scenario scenario) noexcept;

struct ProtocolInfo {
  std::string_view name;
  Scenario scenario;
  // ⋆ extra control-plane information disseminated.
  std::string_view extra_control_info;
  // ◇ data-plane support needed.
  bool needs_tunnels;                 // forced routing compliance
  bool needs_custom_forwarding;       // forward w/ custom headers
  bool needs_multi_proto_headers;     // multi-network-protocol headers
  // Library protocol ID when this protocol is implemented here; 0 if the
  // row is taxonomy-only.
  std::uint32_t implemented_as;
};

// All 14 rows of Table 1, in paper order.
std::span<const ProtocolInfo> protocol_taxonomy() noexcept;

// Table 1 plus the post-paper adversarial archetypes the library bolted on
// to stress the IA machinery beyond the paper's own cast: FC-BGP verifiable
// forwarding commitments (arXiv 2309.13271, critical fix) and stack-vector
// automatic tunneling (arXiv 1901.08326, custom protocol deployed
// gateway-style). The paper table stays frozen at 14 rows; extensions only
// ever append here.
std::span<const ProtocolInfo> extended_protocol_taxonomy() noexcept;

// Row lookup by name over the extended table (a superset of Table 1);
// nullptr if absent.
const ProtocolInfo* find_protocol_info(std::string_view name) noexcept;

}  // namespace dbgp::protocols
