#include "protocols/wiser.h"

#include <cmath>

#include "util/bytes.h"

namespace dbgp::protocols {

using util::ByteReader;
using util::ByteWriter;

std::vector<std::uint8_t> encode_wiser_cost(std::uint64_t cost) {
  ByteWriter w;
  w.put_varint(cost);
  return w.take();
}

std::uint64_t decode_wiser_cost(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  return r.get_varint();
}

std::vector<std::uint8_t> encode_wiser_portal(net::Ipv4Address portal) {
  ByteWriter w;
  w.put_u32(portal.value());
  return w.take();
}

net::Ipv4Address decode_wiser_portal(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  return net::Ipv4Address(r.get_u32());
}

// -- Cost exchange ------------------------------------------------------------

namespace {

std::string exchange_key(const char* direction, ia::IslandId a, ia::IslandId b) {
  return "wiser/" + std::string(direction) + "/" + std::to_string(a.raw()) + "/" +
         std::to_string(b.raw());
}

struct CostReport {
  std::uint64_t cost_sum = 0;
  std::uint64_t count = 0;
};

std::vector<std::uint8_t> encode_report(const CostReport& report) {
  ByteWriter w;
  w.put_varint(report.cost_sum);
  w.put_varint(report.count);
  return w.take();
}

std::optional<CostReport> decode_report(const std::optional<std::vector<std::uint8_t>>& bytes) {
  if (!bytes) return std::nullopt;
  ByteReader r(*bytes);
  CostReport report;
  report.cost_sum = r.get_varint();
  report.count = r.get_varint();
  return report;
}

}  // namespace

void WiserCostExchange::report_received(ia::IslandId reporter, ia::IslandId advertiser,
                                        std::uint64_t cost_sum, std::uint64_t count) {
  portal_->put(exchange_key("recv", reporter, advertiser), encode_report({cost_sum, count}));
}

void WiserCostExchange::report_advertised(ia::IslandId advertiser, ia::IslandId receiver,
                                          std::uint64_t cost_sum, std::uint64_t count) {
  portal_->put(exchange_key("adv", advertiser, receiver), encode_report({cost_sum, count}));
}

double WiserCostExchange::scaling_factor(ia::IslandId receiver, ia::IslandId advertiser) const {
  // What the advertiser says it sent vs. what we saw: the ratio normalizes
  // its cost units into ours. (The initial value must be guessed; Section
  // 3.4: "the scaling value must be guessed to initially select paths".)
  const auto advertised = decode_report(portal_->get(exchange_key("adv", advertiser, receiver)));
  const auto received = decode_report(portal_->get(exchange_key("recv", receiver, advertiser)));
  if (!advertised || !received || advertised->count == 0 || received->count == 0 ||
      advertised->cost_sum == 0) {
    return 1.0;
  }
  const double adv_mean =
      static_cast<double>(advertised->cost_sum) / static_cast<double>(advertised->count);
  const double recv_mean =
      static_cast<double>(received->cost_sum) / static_cast<double>(received->count);
  if (recv_mean <= 0.0) return 1.0;
  return adv_mean / recv_mean;
}

// -- Decision module -----------------------------------------------------------

std::uint64_t WiserModule::path_cost(const core::IaRoute& route) noexcept {
  const auto* d = route.ia.find_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost);
  if (d == nullptr) return 0;  // gulf-only path: no Wiser island contributed
  try {
    return decode_wiser_cost(d->value);
  } catch (const util::DecodeError&) {
    return 0;
  }
}

bool WiserModule::import_filter(core::IaRoute& route) {
  const auto* d = route.ia.find_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost);
  if (d == nullptr) return true;  // still selectable; cost treated as 0
  std::uint64_t cost = 0;
  try {
    cost = decode_wiser_cost(d->value);
  } catch (const util::DecodeError&) {
    return false;  // malformed Wiser payload: exclude from Wiser selection
  }
  // Scale using the advertising island's cost units. The advertising island
  // is the most recent Wiser island on the path — the first membership whose
  // protocol is Wiser.
  ia::IslandId advertiser;
  for (const auto& m : route.ia.island_ids) {
    if (m.protocol == ia::kProtoWiser && !(m.island == config_.island)) {
      advertiser = m.island;
      break;
    }
  }
  if (advertiser.valid() && exchange_ != nullptr) {
    const double factor = exchange_->scaling_factor(config_.island, advertiser);
    cost = static_cast<std::uint64_t>(std::llround(static_cast<double>(cost) * factor));
    route.ia.set_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost,
                                 encode_wiser_cost(cost));
    exchange_->report_received(config_.island, advertiser, cost, 1);
  }
  return true;
}

bool WiserModule::better(const core::IaRoute& a, const core::IaRoute& b) const {
  const std::uint64_t cost_a = path_cost(a);
  const std::uint64_t cost_b = path_cost(b);
  if (cost_a != cost_b) return cost_a < cost_b;
  const std::size_t len_a = a.ia.path_vector.hop_count();
  const std::size_t len_b = b.ia.path_vector.hop_count();
  if (len_a != len_b) return len_a < len_b;
  // Stable tie-break: peer identity, not arrival order. Sequence numbers
  // change on every re-advertisement, and an ordering that depends on them
  // lets two equal candidates ping-pong forever (no convergence).
  if (a.from_peer != b.from_peer) return a.from_peer < b.from_peer;
  return a.sequence < b.sequence;
}

void WiserModule::annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                                  const core::ExportContext& ctx) {
  const std::uint64_t total = path_cost(best) + config_.internal_cost;
  out.set_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost, encode_wiser_cost(total));
  out.add_island_descriptor(config_.island, ia::kProtoWiser, ia::keys::kWiserPortalAddr,
                            encode_wiser_portal(config_.portal_addr));
  if (!ctx.to_peer_in_same_island) {
    advertised_sum_ += total;
    ++advertised_count_;
  }
}

void WiserModule::exchange_costs(ia::IslandId remote_island) {
  if (exchange_ == nullptr) return;
  exchange_->report_advertised(config_.island, remote_island, advertised_sum_,
                               advertised_count_);
}

void WiserModule::annotate_origin(ia::IntegratedAdvertisement& out,
                                  const core::ExportContext& /*ctx*/) {
  out.set_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost,
                          encode_wiser_cost(config_.internal_cost));
  out.add_island_descriptor(config_.island, ia::kProtoWiser, ia::keys::kWiserPortalAddr,
                            encode_wiser_portal(config_.portal_addr));
}

}  // namespace dbgp::protocols
