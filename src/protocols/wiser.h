// Wiser (Mahajan, Wetherall, Anderson — NSDI'07) as a D-BGP critical fix.
//
// Wiser fixes BGP's inability to let ASes limit ingress traffic: every
// upgraded AS adds its internal cost of carrying traffic to a *path cost*
// disseminated with advertisements, and path selection minimizes total cost.
// To keep cheating ASes from inflating costs, neighbors periodically
// exchange the total costs of paths they receive from each other and use the
// ratio to *scale* incoming costs into their own cost units.
//
// Under D-BGP (Section 3.4):
//   * the path cost travels as a path descriptor and crosses gulfs via
//     pass-through;
//   * each island publishes a cost-exchange portal address in an island
//     descriptor, since islands separated by gulfs can no longer exchange
//     costs hop-by-hop (BGP is one-way); the exchange happens out-of-band
//     through the portal (here: a LookupService).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/decision_module.h"
#include "core/lookup_service.h"

namespace dbgp::protocols {

// -- Payload codecs ----------------------------------------------------------

// Path descriptor (keys::kWiserPathCost): varint cost.
std::vector<std::uint8_t> encode_wiser_cost(std::uint64_t cost);
std::uint64_t decode_wiser_cost(std::span<const std::uint8_t> payload);

// Island descriptor (keys::kWiserPortalAddr): u32 portal IPv4 address.
std::vector<std::uint8_t> encode_wiser_portal(net::Ipv4Address portal);
net::Ipv4Address decode_wiser_portal(std::span<const std::uint8_t> payload);

// -- Cost exchange ------------------------------------------------------------

// The out-of-band cost-exchange protocol between two Wiser islands. Each
// island periodically publishes the sum of path costs it has *received* from
// the other island; the ratio advertised/received yields the scaling factor
// (paper: "scale the path costs an AS receives from a neighbor to be
// comparable to the path costs it advertises to that neighbor").
class WiserCostExchange {
 public:
  explicit WiserCostExchange(core::LookupService* portal) : portal_(portal) {}

  // Publishes that `reporter` has received a total of `cost_sum` across
  // `count` advertisements originated by `advertiser`.
  void report_received(ia::IslandId reporter, ia::IslandId advertiser, std::uint64_t cost_sum,
                       std::uint64_t count);
  // Publishes what `advertiser` believes it advertised toward `receiver`.
  void report_advertised(ia::IslandId advertiser, ia::IslandId receiver,
                         std::uint64_t cost_sum, std::uint64_t count);

  // Scaling factor `receiver` should apply to costs coming from
  // `advertiser`; 1.0 when either side has not reported yet.
  double scaling_factor(ia::IslandId receiver, ia::IslandId advertiser) const;

 private:
  core::LookupService* portal_;
};

// -- Decision module -----------------------------------------------------------

class WiserModule : public core::DecisionModule {
 public:
  struct Config {
    ia::IslandId island;
    std::uint64_t internal_cost = 1;  // this AS's cost contribution
    net::Ipv4Address portal_addr;     // advertised in island descriptors
  };

  WiserModule(Config config, WiserCostExchange* exchange)
      : config_(config), exchange_(exchange) {}

  ia::ProtocolId protocol() const noexcept override { return ia::kProtoWiser; }
  std::string name() const override { return "wiser"; }

  // Scales the incoming path cost into local units using the cost-exchange
  // portal (guessing 1.0 before any exchange, as the paper notes) and stores
  // the scaled value back into the descriptor.
  bool import_filter(core::IaRoute& route) override;

  // Lowest scaled path cost wins; ties fall back to BGP's ordering.
  bool better(const core::IaRoute& a, const core::IaRoute& b) const override;

  // Adds our internal cost and (re)publishes the cost + portal descriptors.
  void annotate_export(const core::IaRoute& best, ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;
  void annotate_origin(ia::IntegratedAdvertisement& out,
                       const core::ExportContext& ctx) override;

  // Publishes the costs this island has advertised toward `remote_island`
  // via the cost-exchange portal (the periodic two-way exchange D-BGP must
  // carry out-of-band because BGP advertisements are one-way).
  void exchange_costs(ia::IslandId remote_island);

  // Reads the cost observed on a route (scaled), defaulting to 0 when the
  // advertisement carries no Wiser information (gulf-only path).
  static std::uint64_t path_cost(const core::IaRoute& route) noexcept;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  WiserCostExchange* exchange_;
  std::uint64_t advertised_sum_ = 0;
  std::uint64_t advertised_count_ = 0;
};

}  // namespace dbgp::protocols
