#include "scenario/parser.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace dbgp::scenario {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("scenario line " + std::to_string(line) + ": " + message);
}

std::uint64_t parse_number(int line, std::string_view token) {
  std::uint64_t value = 0;
  if (!util::parse_u64(token, value)) fail(line, "expected a number, got '" + std::string(token) + "'");
  return value;
}

net::Prefix parse_prefix(int line, std::string_view token) {
  auto prefix = net::Prefix::parse(token);
  if (!prefix) fail(line, "bad prefix '" + std::string(token) + "'");
  return *prefix;
}

// Splits "a-b-c" into numbers.
std::vector<std::uint32_t> parse_dash_list(int line, std::string_view token) {
  std::vector<std::uint32_t> out;
  for (const auto& part : util::split(token, '-')) {
    out.push_back(static_cast<std::uint32_t>(parse_number(line, part)));
  }
  return out;
}

std::vector<bgp::AsNumber> parse_comma_list(int line, std::string_view token) {
  std::vector<bgp::AsNumber> out;
  for (const auto& part : util::split(token, ',')) {
    out.push_back(static_cast<bgp::AsNumber>(parse_number(line, part)));
  }
  return out;
}

// Splits "key=value" -> {key, value}; bare words -> {word, ""}.
std::pair<std::string, std::string> split_kv(std::string_view token) {
  const auto eq = token.find('=');
  if (eq == std::string_view::npos) return {std::string(token), ""};
  return {std::string(token.substr(0, eq)), std::string(token.substr(eq + 1))};
}

}  // namespace

Scenario parse_scenario(const std::string& text) {
  Scenario scenario;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    std::string_view line = util::trim(
        hash == std::string::npos ? std::string_view(raw)
                                  : std::string_view(raw).substr(0, hash));
    if (line.empty()) continue;
    std::vector<std::string> tokens;
    for (const auto& token : util::split(line, ' ')) {
      if (!util::trim(token).empty()) tokens.emplace_back(util::trim(token));
    }
    const std::string& directive = tokens[0];

    if (directive == "as") {
      if (tokens.size() < 2) fail(line_no, "as: missing AS number");
      AsDecl decl;
      decl.asn = static_cast<bgp::AsNumber>(parse_number(line_no, tokens[1]));
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        auto [key, value] = split_kv(tokens[i]);
        if (key == "island") decl.island = value;
        else if (key == "protocol") decl.protocol = value;
        else if (key == "abstract") decl.abstract_island = true;
        else if (key == "members") decl.members = parse_comma_list(line_no, value);
        else if (key == "cost") decl.cost = parse_number(line_no, value);
        else if (key == "bw") decl.bandwidth = parse_number(line_no, value);
        else fail(line_no, "as: unknown option '" + key + "'");
      }
      scenario.ases.push_back(std::move(decl));
    } else if (directive == "pathlet") {
      if (tokens.size() < 4) fail(line_no, "pathlet: need <asn> <fid> vias=...");
      PathletDecl decl;
      decl.asn = static_cast<bgp::AsNumber>(parse_number(line_no, tokens[1]));
      decl.fid = static_cast<std::uint32_t>(parse_number(line_no, tokens[2]));
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        auto [key, value] = split_kv(tokens[i]);
        if (key == "vias") decl.vias = parse_dash_list(line_no, value);
        else if (key == "delivers") decl.delivers = parse_prefix(line_no, value);
        else fail(line_no, "pathlet: unknown option '" + key + "'");
      }
      if (decl.vias.empty()) fail(line_no, "pathlet: vias= is required");
      scenario.pathlets.push_back(std::move(decl));
    } else if (directive == "scion-path") {
      if (tokens.size() < 3) fail(line_no, "scion-path: need <asn> hops=...");
      ScionPathDecl decl;
      decl.asn = static_cast<bgp::AsNumber>(parse_number(line_no, tokens[1]));
      auto [key, value] = split_kv(tokens[2]);
      if (key != "hops") fail(line_no, "scion-path: expected hops=");
      decl.hops = parse_dash_list(line_no, value);
      scenario.scion_paths.push_back(std::move(decl));
    } else if (directive == "link") {
      if (tokens.size() < 3) fail(line_no, "link: need two AS numbers");
      LinkDecl decl;
      decl.a = static_cast<bgp::AsNumber>(parse_number(line_no, tokens[1]));
      decl.b = static_cast<bgp::AsNumber>(parse_number(line_no, tokens[2]));
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        auto [key, value] = split_kv(tokens[i]);
        if (key == "same-island") decl.same_island = true;
        else if (key == "latency") decl.latency = std::stod(value);
        else fail(line_no, "link: unknown option '" + key + "'");
      }
      scenario.links.push_back(decl);
    } else if (directive == "originate") {
      if (tokens.size() != 3) fail(line_no, "originate: need <asn> <prefix>");
      scenario.originations.push_back(
          {static_cast<bgp::AsNumber>(parse_number(line_no, tokens[1])),
           parse_prefix(line_no, tokens[2])});
    } else if (directive == "strip") {
      if (tokens.size() != 3) fail(line_no, "strip: need <asn> <protocol>");
      scenario.strips.push_back(
          {static_cast<bgp::AsNumber>(parse_number(line_no, tokens[1])), tokens[2]});
    } else if (directive == "server") {
      if (tokens.size() < 3) fail(line_no, "server: need <time> <command...>");
      ServerCmdDecl decl;
      decl.line = line_no;
      try {
        decl.at = std::stod(tokens[1]);
      } catch (const std::exception&) {
        fail(line_no, "server: bad time '" + tokens[1] + "'");
      }
      if (decl.at < 0.0) fail(line_no, "server: time must be >= 0");
      if (!scenario.server_commands.empty() &&
          decl.at < scenario.server_commands.back().at) {
        fail(line_no, "server: command times must be non-decreasing");
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (i > 2) decl.command += ' ';
        decl.command += tokens[i];
      }
      scenario.server_commands.push_back(std::move(decl));
    } else if (directive == "speaker-threads") {
      if (scenario.speaker_threads_line != 0) {
        fail(line_no, "speaker-threads: only one directive allowed");
      }
      if (tokens.size() != 2) fail(line_no, "speaker-threads: need <n>");
      const std::uint64_t n = parse_number(line_no, tokens[1]);
      if (n == 0) fail(line_no, "speaker-threads: must be >= 1");
      scenario.speaker_threads = static_cast<std::size_t>(n);
      scenario.speaker_threads_line = line_no;
    } else if (directive == "observe") {
      if (scenario.observe_line != 0) {
        fail(line_no, "observe: only one directive allowed");
      }
      if (tokens.size() != 2) fail(line_no, "observe: need <interval-seconds>");
      double interval = 0.0;
      try {
        interval = std::stod(tokens[1]);
      } catch (const std::exception&) {
        fail(line_no, "observe: bad interval '" + tokens[1] + "'");
      }
      if (interval <= 0.0) fail(line_no, "observe: interval must be > 0");
      scenario.observe_interval = interval;
      scenario.observe_line = line_no;
    } else if (directive == "chaos") {
      if (scenario.chaos) fail(line_no, "chaos: only one chaos stanza allowed");
      ChaosDecl decl;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        auto [key, value] = split_kv(tokens[i]);
        if (key == "seed") decl.seed = parse_number(line_no, value);
        else if (key == "start") decl.start = std::stod(value);
        else if (key == "horizon") decl.horizon = std::stod(value);
        else if (key == "flap-fraction") decl.flap_fraction = std::stod(value);
        else if (key == "mean-up") decl.mean_up = std::stod(value);
        else if (key == "mean-down") decl.mean_down = std::stod(value);
        else if (key == "loss") decl.loss = std::stod(value);
        else if (key == "duplicate") decl.duplicate = std::stod(value);
        else if (key == "reorder") decl.reorder = std::stod(value);
        else if (key == "reorder-delay") decl.reorder_delay = std::stod(value);
        else if (key == "corrupt") decl.corrupt = std::stod(value);
        else if (key == "crash-fraction") decl.crash_fraction = std::stod(value);
        else if (key == "mean-downtime") decl.mean_downtime = std::stod(value);
        else fail(line_no, "chaos: unknown option '" + key + "'");
      }
      scenario.chaos = decl;
    } else if (directive == "sweep") {
      if (scenario.sweep) fail(line_no, "sweep: only one sweep stanza allowed");
      if (tokens.size() < 2) fail(line_no, "sweep: need <extra-paths|bottleneck>");
      SweepDecl decl;
      decl.line = line_no;
      if (tokens[1] == "extra-paths") {
        decl.archetype = SweepDecl::Archetype::kExtraPaths;
      } else if (tokens[1] == "bottleneck") {
        decl.archetype = SweepDecl::Archetype::kBottleneck;
      } else {
        fail(line_no, "sweep: unknown archetype '" + tokens[1] + "'");
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        auto [key, value] = split_kv(tokens[i]);
        if (key == "nodes") decl.nodes = parse_number(line_no, value);
        else if (key == "trials") decl.trials = parse_number(line_no, value);
        else if (key == "seed") decl.seed = parse_number(line_no, value);
        else if (key == "threads") decl.threads = parse_number(line_no, value);
        else if (key == "cap") decl.path_cap = static_cast<std::uint32_t>(parse_number(line_no, value));
        else if (key == "bw-min") decl.bw_min = parse_number(line_no, value);
        else if (key == "bw-max") decl.bw_max = parse_number(line_no, value);
        else if (key == "levels") {
          for (const auto& part : util::split(value, ',')) {
            const double level = std::stod(std::string(part));
            if (level < 0.0 || level > 1.0) {
              fail(line_no, "sweep: levels must lie in [0, 1]");
            }
            decl.levels.push_back(level);
          }
        } else {
          fail(line_no, "sweep: unknown option '" + key + "'");
        }
      }
      if (decl.nodes == 0) fail(line_no, "sweep: nodes must be > 0");
      scenario.sweep = std::move(decl);
    } else if (directive == "dispute-wheel") {
      if (scenario.dispute_wheel) {
        fail(line_no, "dispute-wheel: only one stanza allowed");
      }
      DisputeWheelDecl decl;
      decl.line = line_no;
      decl.prefix = parse_prefix(line_no, "10.99.0.0/16");
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        auto [key, value] = split_kv(tokens[i]);
        if (key == "spokes") decl.spokes = static_cast<std::size_t>(parse_number(line_no, value));
        else if (key == "fc-adoption") {
          try {
            decl.fc_adoption = std::stod(value);
          } catch (const std::exception&) {
            fail(line_no, "dispute-wheel: bad fc-adoption '" + value + "'");
          }
        }
        else if (key == "seed") decl.seed = parse_number(line_no, value);
        else if (key == "hub") decl.hub = static_cast<bgp::AsNumber>(parse_number(line_no, value));
        else if (key == "first-spoke") decl.first_spoke = static_cast<bgp::AsNumber>(parse_number(line_no, value));
        else if (key == "prefix") decl.prefix = parse_prefix(line_no, value);
        else fail(line_no, "dispute-wheel: unknown option '" + key + "'");
      }
      if (decl.spokes < 3 || decl.spokes % 2 == 0) {
        fail(line_no,
             "dispute-wheel: spokes must be odd and >= 3 (even rings have "
             "stable assignments and do not oscillate)");
      }
      if (decl.fc_adoption < 0.0 || decl.fc_adoption > 1.0) {
        fail(line_no, "dispute-wheel: fc-adoption must lie in [0, 1]");
      }
      scenario.dispute_wheel = decl;
    } else if (directive == "expect") {
      if (tokens.size() < 4) fail(line_no, "expect: too few arguments");
      Expectation e;
      e.line = line_no;
      const std::string& what = tokens[1];
      e.asn = static_cast<bgp::AsNumber>(parse_number(line_no, tokens[2]));
      e.prefix = parse_prefix(line_no, tokens[3]);
      if (what == "reachable") {
        e.kind = Expectation::Kind::kReachable;
      } else if (what == "unreachable") {
        e.kind = Expectation::Kind::kUnreachable;
      } else if (what == "via" || what == "not-via" || what == "cost" ||
                 what == "pathlets") {
        if (tokens.size() != 5) fail(line_no, "expect " + what + ": missing value");
        e.value = parse_number(line_no, tokens[4]);
        e.kind = what == "via"       ? Expectation::Kind::kVia
                 : what == "not-via" ? Expectation::Kind::kNotVia
                 : what == "cost"    ? Expectation::Kind::kCost
                                     : Expectation::Kind::kPathlets;
      } else if (what == "descriptor") {
        if (tokens.size() != 5) fail(line_no, "expect descriptor: missing protocol");
        e.kind = Expectation::Kind::kDescriptor;
        e.protocol = tokens[4];
      } else {
        fail(line_no, "expect: unknown kind '" + what + "'");
      }
      scenario.expectations.push_back(std::move(e));
    } else {
      fail(line_no, "unknown directive '" + directive + "'");
    }
  }
  if (scenario.sweep && !scenario.ases.empty()) {
    fail(scenario.sweep->line,
         "sweep: a sweep scenario describes an experiment, not a network — "
         "remove the as/link directives or the sweep stanza");
  }
  if (scenario.sweep && scenario.speaker_threads_line != 0) {
    fail(scenario.speaker_threads_line,
         "speaker-threads: drives live speakers and has no effect on a sweep "
         "— use the sweep stanza's threads= option instead");
  }
  if (scenario.sweep && !scenario.server_commands.empty()) {
    fail(scenario.server_commands.front().line,
         "server: a command timeline drives a live network and cannot be "
         "combined with a sweep stanza");
  }
  if (scenario.sweep && scenario.observe_line != 0) {
    fail(scenario.observe_line,
         "observe: samples live speakers and has no effect on a sweep — "
         "remove one of the stanzas");
  }
  if (scenario.dispute_wheel) {
    const int line = scenario.dispute_wheel->line;
    if (scenario.sweep) {
      fail(line,
           "dispute-wheel: generates a live network and cannot be combined "
           "with a sweep stanza");
    }
    if (!scenario.ases.empty() || !scenario.links.empty() ||
        !scenario.originations.empty() || !scenario.pathlets.empty() ||
        !scenario.scion_paths.empty() || !scenario.strips.empty() ||
        !scenario.server_commands.empty()) {
      fail(line,
           "dispute-wheel: generates its own ASes, links, and origination — "
           "remove the explicit network directives");
    }
  }
  return scenario;
}

Scenario load_scenario(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open scenario file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_scenario(buffer.str());
}

}  // namespace dbgp::scenario
