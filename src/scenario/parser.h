// A small text format for describing evolvable-Internet scenarios, so
// experiments like the paper's Figures 1-3 and 8 can be written as data and
// run with the `dbgp_run` tool instead of C++.
//
// Line-based; '#' starts a comment. Directives:
//
//   as <asn> [island=<name>] [protocol=<proto>] [abstract] [members=a,b,..]
//            [cost=<n>] [bw=<n>]
//       Declares an AS. `protocol` activates a decision module (bgp, wiser,
//       eq-bgp, bgpsec, r-bgp, lisp, scion, pathlets); `cost` feeds Wiser,
//       `bw` feeds EQ-BGP. Island names map to stable island IDs.
//
//   pathlet <asn> <fid> vias=<v1>-<v2>-... [delivers=<prefix>]
//       Seeds a local pathlet at an AS running pathlets.
//
//   scion-path <asn> hops=<h1>-<h2>-...
//       Adds a within-island SCION path exposed by that AS's island.
//
//   link <a> <b> [same-island] [latency=<seconds>]
//   originate <asn> <prefix>
//   strip <asn> <proto>        # gulf operator drops a protocol's info
//
//   sweep <extra-paths|bottleneck> [nodes=<n>] [trials=<n>] [seed=<n>]
//         [threads=<n>] [cap=<n>] [bw-min=<n>] [bw-max=<n>]
//         [levels=<f1>,<f2>,...]
//       Declares an incremental-benefit sweep (the Section 6.3 harness behind
//       Figures 9 & 10) instead of a network: `dbgp_run` executes it on the
//       deterministic parallel sweep engine and prints the benefit table.
//       threads=0 uses every hardware thread; threads=1 runs sequentially
//       (identical results either way). At most one sweep stanza, and it
//       cannot be combined with `as`/`link` network directives.
//
//   server <time> <command ...>
//       Schedules a control command on the route-server daemon's timeline:
//       `dbgp_server` runs the network up to <time> sim seconds, then hands
//       the rest of the line to its control API (see server/control.h for
//       the grammar — add-peer, reload-policy, upgrade-protocol, snapshot,
//       ...). Commands execute in file order with ties kept stable. One-shot
//       tools (`dbgp_run`) ignore server lines with a warning, so a scenario
//       carrying a command timeline still replays bit-identically as a plain
//       converge-once experiment. Cannot be combined with `sweep`.
//
//   observe <interval-seconds>
//       Turns on the observability plane for the run: the metrics registry is
//       sampled into time-series histories every <interval> sim seconds, and
//       session/chaos/reconvergence events are journaled (telemetry/sampler.h,
//       telemetry/event_log.h). `dbgp_run` writes both next to --metrics
//       output; `dbgp_server` serves them via the series/events verbs. At
//       most one directive; cannot be combined with `sweep`.
//
//   speaker-threads <n>
//       Worker threads for each speaker's sharded batch pipeline (n >= 1;
//       1 = sequential). Only takes effect with batched delivery
//       (dbgp_run --batched / dbgp_server): the immediate path has no batch
//       to shard. Results are bit-identical at any value — this is a
//       throughput knob, not a semantic one. At most one directive, and it
//       cannot be combined with `sweep` (use the sweep's own threads= for
//       that engine).
//
//   dispute-wheel spokes=<n> [fc-adoption=<f>] [seed=<n>] [hub=<asn>]
//                 [first-spoke=<asn>] [prefix=<p>]
//       Generates a Gao–Rexford-violating policy ring (topology/
//       dispute_wheel.h) instead of explicit as/link directives: a hub AS
//       originating <p> (default 10.99.0.0/16), an odd ring of <n> spokes
//       whose permitted-path import filters prefer the path through their
//       clockwise neighbor, and — at fc-adoption > 0 — a seeded fraction of
//       spokes upgraded to FC-BGP, whose verified-commitment ranking pins
//       the direct path and provably breaks the wheel. With fc-adoption=0
//       the ring has NO stable state: runs oscillate forever and only make
//       sense under a bounded drain (dbgp_run --max-events, or run_until in
//       tests) with the convergence oracle classifying the trajectory.
//       Cannot be combined with `sweep` or with explicit network directives
//       (as/link/originate/pathlet/scion-path/strip/server).
//
//   chaos [seed=<n>] [start=<s>] [horizon=<s>] [flap-fraction=<f>]
//         [mean-up=<s>] [mean-down=<s>] [loss=<f>] [duplicate=<f>]
//         [reorder=<f>] [reorder-delay=<s>] [corrupt=<f>]
//         [crash-fraction=<f>] [mean-downtime=<s>]
//       Seeded fault injection (simnet::ChaosPolicy): link flaps, frame
//       loss/duplication/reordering/corruption, and node crash/restart over
//       the [start, start+horizon) window, followed by session-refresh
//       repair. Expectations are evaluated after the network re-converges.
//       At most one chaos stanza per scenario.
//
//   expect reachable <asn> <prefix>
//   expect unreachable <asn> <prefix>
//   expect via <asn> <prefix> <via_asn>       # path vector mentions via_asn
//   expect not-via <asn> <prefix> <via_asn>
//   expect cost <asn> <prefix> <cost>         # Wiser path cost
//   expect pathlets <asn> <prefix> <count>
//   expect descriptor <asn> <prefix> <proto>  # any descriptor of proto
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bgp/types.h"
#include "net/ipv4.h"

namespace dbgp::scenario {

struct AsDecl {
  bgp::AsNumber asn = 0;
  std::string island;        // empty => gulf AS
  std::string protocol = "bgp";
  bool abstract_island = false;
  std::vector<bgp::AsNumber> members;
  std::uint64_t cost = 1;    // Wiser internal cost
  std::uint64_t bandwidth = 100;  // EQ-BGP local bandwidth
};

struct PathletDecl {
  bgp::AsNumber asn = 0;
  std::uint32_t fid = 0;
  std::vector<std::uint32_t> vias;
  std::optional<net::Prefix> delivers;
};

struct ScionPathDecl {
  bgp::AsNumber asn = 0;
  std::vector<std::uint32_t> hops;
};

struct LinkDecl {
  bgp::AsNumber a = 0;
  bgp::AsNumber b = 0;
  bool same_island = false;
  double latency = -1.0;
};

struct OriginateDecl {
  bgp::AsNumber asn = 0;
  net::Prefix prefix;
};

struct StripDecl {
  bgp::AsNumber asn = 0;
  std::string protocol;
};

// One scheduled route-server control command (see server/control.h).
struct ServerCmdDecl {
  double at = 0.0;      // sim time the command fires at
  std::string command;  // the rest of the line, verbatim
  int line = 0;         // for error messages
};

// Plain data mirror of simnet::ChaosOptions (the parser does not link
// against simnet); the runner converts. Field semantics match 1:1.
struct ChaosDecl {
  std::uint64_t seed = 1;
  double start = 0.0;
  double horizon = 5.0;
  double flap_fraction = 0.0;
  double mean_up = 1.0;
  double mean_down = 0.1;
  double loss = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double reorder_delay = 0.05;
  double corrupt = 0.0;
  double crash_fraction = 0.0;
  double mean_downtime = 0.5;
};

// Plain data mirror of topology::DisputeWheelSpec (the parser does not link
// against dbgp_topology); the runner expands it into ASes, links, an
// origination, and permitted-path import filters. Field semantics match 1:1.
struct DisputeWheelDecl {
  std::size_t spokes = 3;
  double fc_adoption = 0.0;
  std::uint64_t seed = 1;
  bgp::AsNumber hub = 100;
  bgp::AsNumber first_spoke = 1;
  net::Prefix prefix;  // the parser defaults this to 10.99.0.0/16
  int line = 0;
};

// Plain data mirror of sim::SweepConfig (the parser does not link against
// dbgp_sim); the runner converts. Field semantics match 1:1.
struct SweepDecl {
  enum class Archetype { kExtraPaths, kBottleneck };
  Archetype archetype = Archetype::kExtraPaths;
  std::size_t nodes = 1000;
  std::size_t trials = 9;
  std::uint64_t seed = 42;
  std::size_t threads = 1;        // 0 = hardware_concurrency
  std::uint32_t path_cap = 10;    // extra-paths only
  std::uint64_t bw_min = 10;      // bottleneck only
  std::uint64_t bw_max = 1024;
  std::vector<double> levels;     // empty = the paper's deciles
  int line = 0;
};

struct Expectation {
  enum class Kind {
    kReachable,
    kUnreachable,
    kVia,
    kNotVia,
    kCost,
    kPathlets,
    kDescriptor,
  };
  Kind kind = Kind::kReachable;
  bgp::AsNumber asn = 0;
  net::Prefix prefix;
  std::uint64_t value = 0;   // via_asn / cost / count
  std::string protocol;      // kDescriptor
  int line = 0;              // for error messages
};

struct Scenario {
  std::vector<AsDecl> ases;
  std::vector<PathletDecl> pathlets;
  std::vector<ScionPathDecl> scion_paths;
  std::vector<LinkDecl> links;
  std::vector<OriginateDecl> originations;
  std::vector<StripDecl> strips;
  std::vector<ServerCmdDecl> server_commands;
  std::optional<ChaosDecl> chaos;
  std::optional<SweepDecl> sweep;
  std::optional<DisputeWheelDecl> dispute_wheel;
  std::vector<Expectation> expectations;
  // `speaker-threads` directive; 1 = sequential speakers (the default).
  std::size_t speaker_threads = 1;
  int speaker_threads_line = 0;  // 0 = directive absent
  // `observe` directive: > 0 turns on time-series sampling at this sim-time
  // interval plus the structured event log for the run.
  double observe_interval = 0.0;
  int observe_line = 0;  // 0 = directive absent
};

// Parses scenario text; throws std::runtime_error with a line-numbered
// message on any malformed directive.
Scenario parse_scenario(const std::string& text);

// Convenience: read a file and parse it.
Scenario load_scenario(const std::string& path);

}  // namespace dbgp::scenario
