#include "scenario/runner.h"

#include <sstream>
#include <stdexcept>

#include "protocols/bgp_module.h"
#include "protocols/eqbgp.h"
#include "protocols/fcbgp.h"
#include "protocols/lisp.h"
#include "protocols/rbgp.h"
#include "protocols/scion.h"
#include "protocols/stackvec.h"
#include "protocols/wiser.h"
#include "topology/dispute_wheel.h"

namespace dbgp::scenario {

ia::IslandId island_id_for(const std::string& name) {
  if (name.empty()) return {};
  // Stable ID from the name so scenarios are deterministic.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return ia::IslandId::assigned(static_cast<std::uint32_t>(h ^ (h >> 32)) | 1u);
}

ia::ProtocolId protocol_id_for(const std::string& name) {
  const ia::ProtocolId id = ia::default_registry().find(name);
  if (id == 0) throw std::runtime_error("unknown protocol '" + name + "'");
  return id;
}

core::DbgpConfig config_for_decl(const AsDecl& decl) {
  const ia::ProtocolId active = protocol_id_for(decl.protocol);
  core::DbgpConfig config;
  config.asn = decl.asn;
  config.next_hop = net::Ipv4Address(decl.asn);
  config.island = island_id_for(decl.island);
  config.island_protocol = active;
  config.abstract_island = decl.abstract_island;
  config.island_members = decl.members;
  config.active_protocol = active;
  return config;
}

std::unique_ptr<core::DecisionModule> make_protocol_module(
    const AsDecl& decl, ia::ProtocolId protocol,
    protocols::AttestationAuthority& authority,
    std::map<bgp::AsNumber, std::unique_ptr<protocols::PathletStore>>& pathlet_stores,
    const std::vector<PathletDecl>& pathlets,
    const std::vector<ScionPathDecl>& scion_paths) {
  const ia::IslandId island = island_id_for(decl.island);
  switch (protocol) {
    case ia::kProtoWiser:
      return std::make_unique<protocols::WiserModule>(
          protocols::WiserModule::Config{island, decl.cost, net::Ipv4Address(decl.asn)},
          nullptr);
    case ia::kProtoEqBgp:
      return std::make_unique<protocols::EqBgpModule>(
          protocols::EqBgpModule::Config{island, decl.bandwidth});
    case ia::kProtoBgpSec:
      return std::make_unique<protocols::BgpSecModule>(
          protocols::BgpSecModule::Config{decl.asn, island, false}, &authority);
    case ia::kProtoRBgp:
      return std::make_unique<protocols::RBgpModule>(
          protocols::RBgpModule::Config{island});
    case ia::kProtoLisp: {
      protocols::LispMapping mapping;
      mapping.eid_prefix = *net::Prefix::parse("0.0.0.0/0");
      mapping.rlocs = {net::Ipv4Address(decl.asn)};
      return std::make_unique<protocols::LispModule>(
          protocols::LispModule::Config{island, mapping});
    }
    case ia::kProtoScion: {
      std::vector<protocols::ScionPath> paths;
      for (const auto& p : scion_paths) {
        if (p.asn == decl.asn) paths.push_back({p.hops});
      }
      return std::make_unique<protocols::ScionModule>(
          protocols::ScionModule::Config{island, std::move(paths)});
    }
    case ia::kProtoFcBgp:
      return std::make_unique<protocols::FcBgpModule>(
          protocols::FcBgpModule::Config{decl.asn, island}, &authority);
    case ia::kProtoStackVec:
      return std::make_unique<protocols::StackVecModule>(
          protocols::StackVecModule::Config{decl.asn, island,
                                            net::Ipv4Address(decl.asn)});
    case ia::kProtoPathlets: {
      auto store = std::make_unique<protocols::PathletStore>();
      for (const auto& p : pathlets) {
        if (p.asn == decl.asn) store->add_local({p.fid, p.vias, p.delivers});
      }
      auto module = std::make_unique<protocols::PathletModule>(
          protocols::PathletModule::Config{island}, store.get());
      pathlet_stores[decl.asn] = std::move(store);
      return module;
    }
    default:
      return nullptr;  // plain BGP: the baseline module covers it
  }
}

sim::SweepConfig to_sweep_config(const SweepDecl& decl,
                                 std::optional<std::size_t> threads_override) {
  sim::SweepConfig config;
  config.topology.nodes = decl.nodes;
  config.trials = decl.trials;
  config.seed = decl.seed;
  config.threads = threads_override.value_or(decl.threads);
  config.extra_paths.path_cap = decl.path_cap;
  config.bandwidth_min = decl.bw_min;
  config.bandwidth_max = decl.bw_max;
  if (!decl.levels.empty()) config.adoption_levels = decl.levels;
  return config;
}

sim::SweepResult run_scenario_sweep(const Scenario& scenario,
                                    std::optional<std::size_t> threads_override) {
  if (!scenario.sweep) {
    throw std::runtime_error("scenario has no sweep stanza");
  }
  const sim::SweepConfig config = to_sweep_config(*scenario.sweep, threads_override);
  return scenario.sweep->archetype == SweepDecl::Archetype::kExtraPaths
             ? sim::run_extra_paths_sweep(config)
             : sim::run_bottleneck_sweep(config);
}

simnet::ChaosOptions to_chaos_options(const ChaosDecl& decl) {
  simnet::ChaosOptions opts;
  opts.seed = decl.seed;
  opts.start = decl.start;
  opts.horizon = decl.horizon;
  opts.flap_fraction = decl.flap_fraction;
  opts.mean_up = decl.mean_up;
  opts.mean_down = decl.mean_down;
  opts.faults.loss = decl.loss;
  opts.faults.duplicate = decl.duplicate;
  opts.faults.reorder = decl.reorder;
  opts.faults.reorder_delay = decl.reorder_delay;
  opts.faults.corrupt = decl.corrupt;
  opts.crash_fraction = decl.crash_fraction;
  opts.mean_downtime = decl.mean_downtime;
  return opts;
}

bool RunResult::all_passed() const noexcept { return failures() == 0; }

std::size_t RunResult::failures() const noexcept {
  std::size_t count = 0;
  for (const auto& r : expectations) count += r.passed ? 0 : 1;
  return count;
}

void Runner::enable_tracing() {
  tracing_ = true;
  if (net_ != nullptr) net_->options().tracer = &tracer_;
}

void Runner::enable_causal_tracing() { causal_tracing_ = true; }

void Runner::build(const Scenario& scenario) {
  scenario_ = scenario;
  // A dispute-wheel stanza expands into plain network declarations up front,
  // so everything downstream (speaker construction, snapshots, dump_tables)
  // sees an ordinary scenario. The permitted-path import filters that make
  // the ring oscillate are installed after the speakers exist, below.
  std::optional<topology::DisputeWheel> wheel;
  if (scenario_.dispute_wheel) {
    const DisputeWheelDecl& decl = *scenario_.dispute_wheel;
    topology::DisputeWheelSpec spec;
    spec.spokes = decl.spokes;
    spec.hub_as = decl.hub;
    spec.first_spoke_as = decl.first_spoke;
    spec.fc_adoption = decl.fc_adoption;
    spec.seed = decl.seed;
    wheel = topology::make_dispute_wheel(spec);
    AsDecl hub;
    hub.asn = wheel->spec.hub_as;
    hub.protocol = wheel->any_upgraded() ? "fcbgp" : "bgp";
    scenario_.ases.push_back(hub);
    for (std::size_t i = 0; i < wheel->spoke_as.size(); ++i) {
      AsDecl spoke;
      spoke.asn = wheel->spoke_as[i];
      spoke.protocol = wheel->upgraded[i] ? "fcbgp" : "bgp";
      scenario_.ases.push_back(spoke);
    }
    for (const auto& [a, b] : wheel->links) {
      LinkDecl link;
      link.a = a;
      link.b = b;
      scenario_.links.push_back(link);
    }
    OriginateDecl origin;
    origin.asn = wheel->spec.hub_as;
    origin.prefix = decl.prefix;
    scenario_.originations.push_back(origin);
  }
  simnet::DbgpNetwork::Options options;
  options.delivery = delivery_;
  options.speaker_threads =
      speaker_threads_override_.value_or(scenario_.speaker_threads);
  if (tracing_) options.tracer = &tracer_;
  if (causal_tracing_) options.causal = &causal_;
  if (const double observe = observe_override_.value_or(scenario_.observe_interval);
      observe > 0.0) {
    telemetry::TimeSeriesSampler::Options sampler_options;
    sampler_options.interval = observe;
    sampler_ = std::make_unique<telemetry::TimeSeriesSampler>(sampler_options);
    event_log_ = std::make_unique<telemetry::EventLog>();
    options.sampler = sampler_.get();
    options.event_log = event_log_.get();
  }
  net_ = std::make_unique<simnet::DbgpNetwork>(&lookup_, options);

  for (const auto& decl : scenario_.ases) {
    auto& speaker = net_->add_as(config_for_decl(decl));
    auto module = make_protocol_module(decl, protocol_id_for(decl.protocol),
                                       authority_, pathlet_stores_,
                                       scenario_.pathlets, scenario_.scion_paths);
    if (module != nullptr) speaker.add_module(std::move(module));
    speaker.add_module(std::make_unique<protocols::BgpModule>());
  }

  // Pathlets declared at ASes not running the protocol are a scenario bug.
  for (const auto& decl : scenario_.pathlets) {
    if (pathlet_stores_.count(decl.asn) == 0) {
      throw std::runtime_error("pathlet declared at AS " + std::to_string(decl.asn) +
                               " which does not run protocol=pathlets");
    }
  }

  for (const auto& decl : scenario_.strips) {
    net_->speaker(decl.asn).import_filters().add(
        "strip-" + decl.protocol,
        core::strip_protocol_filter(protocol_id_for(decl.protocol)));
  }

  if (wheel) {
    // Spoke i permits exactly its direct path [hub] and the indirect path
    // [i+1, hub] through its clockwise neighbor, preferring the latter — the
    // Gao–Rexford violation that makes an odd ring oscillate. Everything
    // else is dropped at import (an implicit withdraw), which is what keeps
    // stale indirect routes from falsely stabilizing the wheel.
    const net::Prefix prefix = scenario_.dispute_wheel->prefix;
    for (const auto& policy : wheel->policies) {
      std::vector<core::RankedPath> ranked;
      ranked.push_back({{wheel->spec.hub_as}, policy.direct_pref});
      ranked.push_back({{policy.indirect_via, wheel->spec.hub_as}, policy.indirect_pref});
      net_->speaker(policy.spoke_as)
          .import_filters()
          .add("dispute-wheel", core::permitted_paths_filter(prefix, std::move(ranked)));
    }
  }

  for (const auto& link : scenario_.links) {
    net_->add_link(link.a, link.b, link.same_island, link.latency);
  }
}

RunResult Runner::run() {
  RunResult result;
  for (const auto& decl : scenario_.originations) {
    net_->originate(decl.asn, decl.prefix);
  }
  // Chaos is scheduled after originations so the fault window overlaps the
  // propagation it is meant to disturb; expectations below then describe the
  // re-converged, repaired network.
  std::optional<simnet::ChaosOptions> chaos = chaos_override_;
  if (!chaos && scenario_.chaos) chaos = to_chaos_options(*scenario_.chaos);
  if (chaos) {
    if (chaos_seed_) chaos->seed = *chaos_seed_;
    simnet::ChaosPolicy policy(*chaos);
    policy.inject(*net_);
  }
  const simnet::RunStats drained = net_->run_to_convergence(max_events_);
  result.events = drained.processed;
  result.converged = !drained.capped;
  result.stats = drained;

  for (const auto& e : scenario_.expectations) {
    ExpectationResult er;
    er.expectation = e;
    const auto* best = net_->speaker(e.asn).best(e.prefix);
    switch (e.kind) {
      case Expectation::Kind::kReachable:
        er.passed = best != nullptr;
        if (!er.passed) er.detail = "no route";
        break;
      case Expectation::Kind::kUnreachable:
        er.passed = best == nullptr;
        if (!er.passed) er.detail = "route exists via " + best->ia.path_vector.to_string();
        break;
      case Expectation::Kind::kVia:
      case Expectation::Kind::kNotVia: {
        if (best == nullptr) {
          er.detail = "no route";
          break;
        }
        const bool via = best->ia.path_vector.contains_as(
            static_cast<bgp::AsNumber>(e.value));
        er.passed = e.kind == Expectation::Kind::kVia ? via : !via;
        if (!er.passed) er.detail = "path is " + best->ia.path_vector.to_string();
        break;
      }
      case Expectation::Kind::kCost: {
        if (best == nullptr) {
          er.detail = "no route";
          break;
        }
        core::IaRoute route = *best;
        const std::uint64_t cost = protocols::WiserModule::path_cost(route);
        er.passed = cost == e.value;
        if (!er.passed) er.detail = "cost is " + std::to_string(cost);
        break;
      }
      case Expectation::Kind::kPathlets: {
        if (best == nullptr) {
          er.detail = "no route";
          break;
        }
        const std::size_t count = protocols::count_pathlets(best->ia);
        er.passed = count == e.value;
        if (!er.passed) er.detail = "sees " + std::to_string(count) + " pathlets";
        break;
      }
      case Expectation::Kind::kDescriptor: {
        if (best == nullptr) {
          er.detail = "no route";
          break;
        }
        const ia::ProtocolId proto = protocol_id_for(e.protocol);
        bool found = false;
        for (const auto& d : best->ia.path_descriptors()) found |= d.protocol == proto;
        for (const auto& d : best->ia.island_descriptors()) found |= d.protocol == proto;
        er.passed = found;
        if (!er.passed) er.detail = "no descriptor of protocol " + e.protocol;
        break;
      }
    }
    result.expectations.push_back(std::move(er));
  }
  return result;
}

std::string Runner::dump_tables() const {
  std::ostringstream out;
  for (const auto asn : net_->as_numbers()) {
    const auto& speaker = net_->speaker(asn);
    out << "AS" << asn << " (" << speaker.selected_prefixes().size() << " routes)\n";
    for (const auto& prefix : speaker.selected_prefixes()) {
      const auto* best = speaker.best(prefix);
      out << "  " << prefix.to_string() << " via ["
          << best->ia.path_vector.to_string() << "]";
      const auto protocols_on_path = best->ia.protocols_on_path();
      out << " protocols:";
      for (const auto p : protocols_on_path) {
        out << " " << ia::default_registry().name(p);
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace dbgp::scenario
