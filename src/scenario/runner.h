// Builds a DbgpNetwork from a parsed Scenario, runs it to convergence, and
// evaluates the scenario's expectations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include <cstdint>
#include <optional>

#include "core/lookup_service.h"
#include "protocols/pathlet.h"
#include "protocols/bgpsec.h"
#include "scenario/parser.h"
#include "sim/experiment.h"
#include "simnet/chaos.h"
#include "simnet/network.h"
#include "telemetry/trace.h"

namespace dbgp::scenario {

struct ExpectationResult {
  Expectation expectation;
  bool passed = false;
  std::string detail;  // human-readable explanation on failure
};

struct RunResult {
  std::size_t events = 0;
  // False when the event-queue safety cap fired before the network drained:
  // the run was truncated and expectation results describe a network that
  // has NOT converged. Callers must surface this, not treat it as success.
  bool converged = true;
  // Full drain stats, including the churn counters a chaos run accumulates
  // (replay checks compare these field by field).
  simnet::RunStats stats;
  std::vector<ExpectationResult> expectations;
  bool all_passed() const noexcept;
  std::size_t failures() const noexcept;
};

// -- Shared build helpers -----------------------------------------------------
// Used by Runner::build and by the route server (server/daemon.h), which
// constructs the same speakers at runtime from `add-peer` / ­`upgrade-protocol`
// commands and from snapshot node records. Keeping one factory means a
// network built command-by-command is indistinguishable from one built from
// the equivalent scenario file.

// Stable island ID from a scenario island name (FNV-1a over the name;
// deterministic across runs and processes). Empty name => invalid id (gulf).
ia::IslandId island_id_for(const std::string& name);
// Protocol name -> registry id; throws std::runtime_error on unknown names.
ia::ProtocolId protocol_id_for(const std::string& name);
// The speaker configuration an `as` declaration describes.
core::DbgpConfig config_for_decl(const AsDecl& decl);
// Creates the decision module for `protocol` at `decl`'s AS: Wiser costs and
// EQ-BGP bandwidth come from the declaration, BGPSEC binds to `authority`,
// pathlets get a store seeded from `pathlets` (owned via `pathlet_stores`),
// SCION paths come from `scion_paths`. Returns nullptr for plain BGP (every
// speaker runs the baseline module regardless).
std::unique_ptr<core::DecisionModule> make_protocol_module(
    const AsDecl& decl, ia::ProtocolId protocol,
    protocols::AttestationAuthority& authority,
    std::map<bgp::AsNumber, std::unique_ptr<protocols::PathletStore>>& pathlet_stores,
    const std::vector<PathletDecl>& pathlets,
    const std::vector<ScionPathDecl>& scion_paths);

// Converts a parsed `chaos` stanza into the chaos engine's options (field
// semantics match 1:1).
simnet::ChaosOptions to_chaos_options(const ChaosDecl& decl);

// Converts a parsed `sweep` stanza into the sweep engine's configuration.
// `threads_override`, when set, wins over the stanza's threads= option (the
// CLI's --threads flag; 0 still means hardware_concurrency).
sim::SweepConfig to_sweep_config(const SweepDecl& decl,
                                 std::optional<std::size_t> threads_override = {});

// Runs the scenario's sweep stanza on the deterministic parallel sweep
// engine. Throws std::runtime_error if the scenario has no sweep.
sim::SweepResult run_scenario_sweep(const Scenario& scenario,
                                    std::optional<std::size_t> threads_override = {});

class Runner {
 public:
  Runner() = default;

  // Records per-hop IA propagation trace events during run(). Call before
  // build() (tracing starts with the initial table sync); safe to call
  // after, in which case tracing covers the remaining events.
  void enable_tracing();
  const telemetry::PropagationTracer& tracer() const noexcept { return tracer_; }

  // Records causal spans + decision audits during run() (telemetry/causal.h;
  // drives the Perfetto export and dbgp_explain). Call before build():
  // speakers bind to the tracer at creation.
  void enable_causal_tracing();
  const telemetry::CausalTracer& causal() const noexcept { return causal_; }

  // How delivered frames are processed (call before build()); default
  // immediate. Batched coalesces decisions per touched prefix at flush.
  void set_delivery(simnet::DeliveryMode mode) noexcept { delivery_ = mode; }
  // Worker threads for each speaker's sharded pipeline (call before
  // build()); wins over the scenario's `speaker-threads` directive. Only
  // effective with batched delivery; bit-identical results at any value.
  void set_speaker_threads(std::size_t threads) noexcept {
    speaker_threads_override_ = threads;
  }
  // Observability plane (call before build()): > 0 samples the metrics
  // registry at this sim-time interval and journals session/chaos/
  // reconvergence events; wins over the scenario's `observe` stanza (0
  // forces it off) — the CLI's --observe-interval.
  void set_observe(double interval) noexcept { observe_override_ = interval; }
  // nullptr while observation is off.
  telemetry::TimeSeriesSampler* sampler() noexcept { return sampler_.get(); }
  telemetry::EventLog* event_log() noexcept { return event_log_.get(); }
  // Replaces the seed of the scenario's chaos stanza (no effect without
  // one) — the CLI's --chaos-seed.
  void set_chaos_seed(std::uint64_t seed) noexcept { chaos_seed_ = seed; }
  // Injects this chaos schedule regardless of any stanza in the scenario
  // (the stanza, if present, is ignored) — the CLI's --chaos-profile.
  void set_chaos(const simnet::ChaosOptions& options) { chaos_override_ = options; }
  // Event cap for run()'s drain (default 10M) — the CLI's --max-events.
  // Dispute-wheel scenarios at fc-adoption=0 have NO stable state, so a full
  // drain never terminates on its own: cap the run low and read
  // RunResult::converged == false as the expected oscillation.
  void set_max_events(std::size_t cap) noexcept { max_events_ = cap; }

  // Builds the network (throws std::runtime_error on inconsistent
  // scenarios: unknown ASes in links, pathlets at non-pathlet ASes, ...).
  void build(const Scenario& scenario);
  // Originates, converges, evaluates expectations.
  RunResult run();

  simnet::DbgpNetwork& network() noexcept { return *net_; }
  // The scenario as built — with a dispute-wheel stanza already expanded
  // into its ASes, links, and origination (reports should prefer this over
  // the parsed scenario they handed to build()).
  const Scenario& scenario() const noexcept { return scenario_; }
  // Per-AS route-table dump for the report.
  std::string dump_tables() const;

 private:
  Scenario scenario_;
  core::LookupService lookup_;
  protocols::AttestationAuthority authority_;
  std::unique_ptr<simnet::DbgpNetwork> net_;
  telemetry::PropagationTracer tracer_;
  bool tracing_ = false;
  telemetry::CausalTracer causal_;
  bool causal_tracing_ = false;
  simnet::DeliveryMode delivery_ = simnet::DeliveryMode::kImmediate;
  std::optional<std::size_t> speaker_threads_override_;
  std::optional<std::uint64_t> chaos_seed_;
  std::optional<simnet::ChaosOptions> chaos_override_;
  std::size_t max_events_ = 10'000'000;
  // Observability plane (see set_observe); created by build() when enabled.
  std::unique_ptr<telemetry::TimeSeriesSampler> sampler_;
  std::unique_ptr<telemetry::EventLog> event_log_;
  std::optional<double> observe_override_;
  // Pathlet stores must outlive the speakers that reference them.
  std::map<bgp::AsNumber, std::unique_ptr<protocols::PathletStore>> pathlet_stores_;
};

}  // namespace dbgp::scenario
