#include "server/control.h"

#include <exception>
#include <sstream>

#include <algorithm>
#include <map>
#include <tuple>

#include "ia/ids.h"
#include "telemetry/metrics.h"
#include "telemetry/prom_export.h"
#include "telemetry/provenance.h"
#include "util/strings.h"

namespace dbgp::server {

namespace {

[[noreturn]] void fail(const std::string& message) { throw std::runtime_error(message); }

std::uint64_t parse_number(std::string_view token) {
  std::uint64_t value = 0;
  if (!util::parse_u64(token, value)) fail("expected a number, got '" + std::string(token) + "'");
  return value;
}

double parse_seconds(const std::string& token) {
  try {
    return std::stod(token);
  } catch (const std::exception&) {
    fail("expected seconds, got '" + token + "'");
  }
}

bgp::AsNumber parse_as(std::string_view token) {
  return static_cast<bgp::AsNumber>(parse_number(token));
}

net::Prefix parse_prefix(const std::string& token) {
  const auto prefix = net::Prefix::parse(token);
  if (!prefix) fail("bad prefix '" + token + "'");
  return *prefix;
}

std::pair<std::string, std::string> split_kv(std::string_view token) {
  const auto eq = token.find('=');
  if (eq == std::string_view::npos) return {std::string(token), ""};
  return {std::string(token.substr(0, eq)), std::string(token.substr(eq + 1))};
}

std::vector<std::string> split_names(std::string_view value) {
  std::vector<std::string> out;
  for (const auto& part : util::split(value, ',')) {
    const auto name = util::trim(part);
    if (!name.empty()) out.emplace_back(name);
  }
  return out;
}

scenario::AsDecl parse_as_decl(const std::vector<std::string>& tokens, std::size_t from) {
  scenario::AsDecl decl;
  decl.asn = parse_as(tokens[from]);
  for (std::size_t i = from + 1; i < tokens.size(); ++i) {
    auto [key, value] = split_kv(tokens[i]);
    if (key == "island") decl.island = value;
    else if (key == "protocol") decl.protocol = value;
    else if (key == "abstract") decl.abstract_island = true;
    else if (key == "members") {
      for (const auto& m : util::split(value, ',')) decl.members.push_back(parse_as(m));
    } else if (key == "cost") decl.cost = parse_number(value);
    else if (key == "bw") decl.bandwidth = parse_number(value);
    else fail("unknown AS option '" + key + "'");
  }
  return decl;
}

std::string format_rib_route(const core::IaRoute& best) {
  std::ostringstream out;
  out << "via [" << best.ia.path_vector.to_string() << "] protocols:";
  for (const auto p : best.ia.protocols_on_path()) {
    out << ' ' << ia::default_registry().name(p);
  }
  return out.str();
}

std::string format_stats(const simnet::RunStats& stats, double now) {
  std::ostringstream out;
  out << "events=" << stats.processed << " time=" << now
      << (stats.capped ? " capped" : "");
  return out.str();
}

// Splits a labeled registry name ("dbgp.peer.rejects|as=1,peer=2") into its
// base and the as/peer label values; returns false for unlabeled names.
bool parse_peer_label(std::string_view name, std::string& base, std::uint32_t& as,
                      std::uint32_t& peer) {
  const auto bar = name.find('|');
  if (bar == std::string_view::npos) return false;
  base = std::string(name.substr(0, bar));
  as = 0;
  peer = 0;
  for (const auto& part : util::split(name.substr(bar + 1), ',')) {
    const auto [key, value] = split_kv(util::trim(part));
    std::uint64_t n = 0;
    if (!util::parse_u64(value, n)) continue;
    if (key == "as") as = static_cast<std::uint32_t>(n);
    else if (key == "peer") peer = static_cast<std::uint32_t>(n);
  }
  return true;
}

}  // namespace

ControlApi::ControlApi(RouteServer& server) : server_(server) {}

CommandResult ControlApi::execute(std::string_view line) {
  const auto hash = line.find('#');
  const std::string_view effective =
      util::trim(hash == std::string_view::npos ? line : line.substr(0, hash));
  if (effective.empty()) return {};
  std::vector<std::string> tokens;
  for (const auto& token : util::split(effective, ' ')) {
    if (!util::trim(token).empty()) tokens.emplace_back(util::trim(token));
  }
  ++executed_;
  telemetry::MetricsRegistry::global().counter("server.commands").inc();
  try {
    return dispatch(tokens);
  } catch (const std::exception& e) {
    return {false, false, e.what()};
  }
}

CommandResult ControlApi::dispatch(const std::vector<std::string>& tokens) {
  const std::string& verb = tokens[0];
  const std::size_t argc = tokens.size() - 1;
  const auto need = [&](std::size_t n, const char* usage) {
    if (argc < n) fail(std::string("usage: ") + usage);
  };

  if (verb == "help") return {true, false, help()};
  if (verb == "quit" || verb == "exit") return {true, true, "bye"};

  if (verb == "add-as") {
    need(1, "add-as <asn> [island=..] [protocol=..] [abstract] [members=..] [cost=..] [bw=..]");
    const scenario::AsDecl decl = parse_as_decl(tokens, 1);
    server_.add_as(decl);
    return {true, false, "AS " + tokens[1] + " added"};
  }
  if (verb == "add-peer") {
    need(2, "add-peer <a> <b> [same-island] [latency=<s>]");
    const bgp::AsNumber a = parse_as(tokens[1]);
    const bgp::AsNumber b = parse_as(tokens[2]);
    bool same_island = false;
    double latency = -1.0;
    for (std::size_t i = 3; i < tokens.size(); ++i) {
      auto [key, value] = split_kv(tokens[i]);
      if (key == "same-island") same_island = true;
      else if (key == "latency") latency = parse_seconds(value);
      else fail("unknown add-peer option '" + key + "'");
    }
    server_.add_peer(a, b, same_island, latency);
    return {true, false, "peering " + tokens[1] + " <-> " + tokens[2] + " up"};
  }
  if (verb == "remove-peer") {
    need(1, "remove-peer <asn>");
    server_.remove_peer(parse_as(tokens[1]));
    return {true, false, "AS " + tokens[1] + " retired"};
  }
  if (verb == "originate" || verb == "withdraw") {
    need(2, "originate|withdraw <asn> <prefix>");
    const bgp::AsNumber asn = parse_as(tokens[1]);
    const net::Prefix prefix = parse_prefix(tokens[2]);
    if (verb == "originate") server_.originate(asn, prefix);
    else server_.withdraw(asn, prefix);
    return {true, false, verb + "d " + tokens[2] + " at AS " + tokens[1]};
  }
  if (verb == "reload-policy") {
    need(1, "reload-policy <asn> [strip=<p1,p2,...>]");
    const bgp::AsNumber asn = parse_as(tokens[1]);
    std::vector<std::string> strips;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      auto [key, value] = split_kv(tokens[i]);
      if (key == "strip") strips = split_names(value);
      else fail("unknown reload-policy option '" + key + "'");
    }
    server_.reload_policy(asn, strips);
    return {true, false,
            "policy reloaded at AS " + tokens[1] + " (" +
                std::to_string(strips.size()) + " strip filters)"};
  }
  if (verb == "upgrade-protocol") {
    need(2, "upgrade-protocol <asn> <protocol>");
    server_.upgrade_protocol(parse_as(tokens[1]), tokens[2]);
    return {true, false, "AS " + tokens[1] + " now speaks " + tokens[2]};
  }
  if (verb == "set-chaos") {
    need(1, "set-chaos <flaky|lossy|corrupt|outage|full> [seed=<n>]");
    if (tokens[1] == "off") {
      fail("chaos schedules cannot be cancelled; injected schedules expire at "
           "their horizon");
    }
    simnet::ChaosOptions options = simnet::chaos_profile(tokens[1]);
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      auto [key, value] = split_kv(tokens[i]);
      if (key == "seed") options.seed = parse_number(value);
      else if (key == "start") options.start = parse_seconds(value);
      else if (key == "horizon") options.horizon = parse_seconds(value);
      else fail("unknown set-chaos option '" + key + "'");
    }
    // Chaos schedules anchor at `start` relative to time zero; shift into
    // the daemon's present so the window is ahead of, not behind, the clock.
    options.start += server_.now();
    server_.set_chaos(options);
    return {true, false, "chaos '" + tokens[1] + "' scheduled from t=" +
                             std::to_string(options.start)};
  }
  if (verb == "set") {
    need(2, "set speaker-threads <n>");
    if (tokens[1] != "speaker-threads") fail("unknown setting '" + tokens[1] + "'");
    const std::uint64_t n = parse_number(tokens[2]);
    if (n == 0) fail("speaker-threads must be >= 1");
    server_.set_speaker_threads(static_cast<std::size_t>(n));
    return {true, false, "speaker-threads set to " + tokens[2]};
  }
  if (verb == "crash" || verb == "restart" || verb == "restart-warm" ||
      verb == "graceful-restart") {
    need(1, "crash|restart|restart-warm|graceful-restart <asn>");
    const bgp::AsNumber asn = parse_as(tokens[1]);
    if (verb == "crash") server_.crash(asn);
    else if (verb == "restart") server_.restart(asn);
    else if (verb == "restart-warm") server_.restart_warm(asn);
    else server_.graceful_restart(asn);
    return {true, false, verb + " AS " + tokens[1] + " done"};
  }
  if (verb == "run") {
    const simnet::RunStats stats = server_.run();
    return {true, false, format_stats(stats, server_.now())};
  }
  if (verb == "step") {
    need(1, "step <seconds>");
    const simnet::RunStats stats = server_.step(parse_seconds(tokens[1]));
    return {true, false, format_stats(stats, server_.now())};
  }
  if (verb == "snapshot") {
    need(1, "snapshot <file>");
    const Snapshot snap = server_.snapshot();
    save_snapshot(snap, tokens[1]);
    return {true, false,
            "snapshot of " + std::to_string(snap.nodes.size()) + " ASes at t=" +
                std::to_string(snap.sim_time) + " -> " + tokens[1]};
  }
  if (verb == "restore") {
    need(1, "restore <file>");
    const Snapshot snap = load_snapshot(tokens[1]);
    server_.restore(snap);
    return {true, false,
            "restored " + std::to_string(snap.nodes.size()) + " ASes at t=" +
                std::to_string(snap.sim_time)};
  }
  if (verb == "rib") {
    need(1, "rib <asn> [prefix]");
    const bgp::AsNumber asn = parse_as(tokens[1]);
    if (!server_.has_as(asn)) fail("unknown AS " + tokens[1]);
    const auto& speaker = server_.network().speaker(asn);
    std::ostringstream out;
    if (argc >= 2) {
      const net::Prefix prefix = parse_prefix(tokens[2]);
      const auto* best = speaker.best(prefix);
      if (best == nullptr) out << tokens[2] << " unreachable";
      else out << prefix.to_string() << ' ' << format_rib_route(*best);
    } else {
      const auto prefixes = speaker.selected_prefixes();
      out << "AS" << asn << " " << prefixes.size() << " routes";
      for (const auto& prefix : prefixes) {
        out << '\n' << prefix.to_string() << ' ' << format_rib_route(*speaker.best(prefix));
      }
    }
    return {true, false, out.str()};
  }
  if (verb == "why") {
    need(2, "why <asn> <prefix>");
    const bgp::AsNumber asn = parse_as(tokens[1]);
    const std::string prefix = parse_prefix(tokens[2]).to_string();
    const telemetry::ProvenanceIndex index(server_.causal());
    const auto chain = index.why(asn, prefix);
    if (chain.empty()) {
      fail("no causal chain for AS " + tokens[1] + " " + prefix +
           " (is causal tracing on?)");
    }
    return {true, false, telemetry::ProvenanceIndex::format_why(chain)};
  }
  if (verb == "blame") {
    const telemetry::ProvenanceIndex index(server_.causal());
    return {true, false,
            telemetry::ProvenanceIndex::format_blame(index.reconvergence_windows())};
  }
  if (verb == "metrics") {
    const bool deltas = argc >= 1 && tokens[1] == "deltas";
    if (argc >= 1 && !deltas) fail("usage: metrics [deltas]");
    return {true, false, format_metrics(deltas)};
  }
  if (verb == "metrics-prom") {
    return {true, false,
            telemetry::to_prometheus(telemetry::MetricsRegistry::global().snapshot())};
  }
  if (verb == "series") {
    const telemetry::TimeSeriesSampler* sampler = server_.sampler();
    if (sampler == nullptr) fail("observation is off (use: observe <interval>)");
    if (argc == 0) {
      // No metric: list what the sampler has.
      std::ostringstream out;
      out << "samples=" << sampler->sample_count() << " interval="
          << sampler->options().interval;
      for (const auto& name : sampler->series_names()) out << '\n' << name;
      return {true, false, out.str()};
    }
    std::size_t last = 0;
    bool rates = false;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      auto [key, value] = split_kv(tokens[i]);
      if (key == "last") last = static_cast<std::size_t>(parse_number(value));
      else if (key == "rates") rates = true;
      else fail("unknown series option '" + key + "'");
    }
    auto points = rates ? sampler->rates(tokens[1]) : sampler->series(tokens[1]);
    if (points.empty()) fail("no series '" + tokens[1] + "' (try: series)");
    if (last > 0 && points.size() > last) {
      points.erase(points.begin(), points.end() - static_cast<std::ptrdiff_t>(last));
    }
    std::ostringstream out;
    out << tokens[1] << (rates ? " rates " : " points ") << points.size();
    for (const auto& p : points) out << '\n' << p.time << ' ' << p.value;
    return {true, false, out.str()};
  }
  if (verb == "peers") {
    return {true, false, format_peers()};
  }
  if (verb == "events") {
    const telemetry::EventLog* log = server_.event_log();
    if (log == nullptr) fail("observation is off (use: observe <interval>)");
    std::size_t last = 0;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      auto [key, value] = split_kv(tokens[i]);
      if (key == "last") last = static_cast<std::size_t>(parse_number(value));
      else fail("unknown events option '" + key + "'");
    }
    auto events = log->events();
    if (last > 0 && events.size() > last) {
      events.erase(events.begin(), events.end() - static_cast<std::ptrdiff_t>(last));
    }
    std::ostringstream out;
    out << "events " << events.size() << " (dropped " << log->dropped() << ")";
    for (const auto& e : events) {
      out << '\n' << telemetry::EventLog::to_json(e).dump(-1);
    }
    return {true, false, out.str()};
  }
  if (verb == "observe") {
    need(1, "observe <interval-seconds>|off");
    if (tokens[1] == "off") {
      server_.set_observe(0.0);
      return {true, false, "observation off"};
    }
    const double interval = parse_seconds(tokens[1]);
    if (interval <= 0.0) fail("observe interval must be > 0 (or 'off')");
    server_.set_observe(interval);
    return {true, false, "observing every " + tokens[1] + "s (history reset)"};
  }
  if (verb == "health") {
    server_.poll_divergence();
    std::size_t up = 0;
    const auto ases = server_.as_numbers();
    for (const auto asn : ases) up += server_.network().node_up(asn) ? 1 : 0;
    std::ostringstream out;
    out << "time=" << server_.now() << " ases=" << ases.size() << " up=" << up
        << " links=" << server_.link_count()
        << " oscillating=" << server_.divergence().oscillating()
        << " commands=" << executed_ << " spans=" << server_.causal().span_count()
        << " audits=" << server_.causal().audit_count();
    // The oracle's classification replaces the watchdog's guess as the
    // headline verdict; the watchdog's per-prefix flip counts stay as the
    // live early-warning lines below. Without causal tracing there is no
    // history to classify, so the verdict line is simply absent.
    if (server_.causal_enabled()) {
      const telemetry::ConvergenceOracle::RunReport report = server_.classify_convergence();
      out << " verdict=" << telemetry::to_string(report.verdict)
          << " converged=" << report.converged << " diverged=" << report.diverged
          << " oscillating-prefixes=" << report.oscillating;
      for (const auto& p : report.prefixes) {
        if (p.verdict == telemetry::Verdict::kConverged) continue;
        out << "\n" << telemetry::to_string(p.verdict) << " AS" << p.as << ' '
            << p.prefix << " flips=" << p.flips << " post-chaos=" << p.post_chaos_flips
            << " — " << p.reason;
      }
    }
    for (const auto& [key, flips] : server_.divergence().report()) {
      out << "\noscillating " << key << " flips=" << flips;
    }
    return {true, false, out.str()};
  }
  fail("unknown command '" + verb + "' (try: help)");
}

std::string ControlApi::format_metrics(bool deltas) {
  const auto snapshot = telemetry::MetricsRegistry::global().snapshot();
  std::ostringstream out;
  for (const auto& c : snapshot.counters) {
    if (deltas) {
      const std::uint64_t last = last_counters_[c.name];
      out << "counter " << c.name << ' ' << (c.value - last) << " (total " << c.value
          << ")\n";
      last_counters_[c.name] = c.value;
    } else {
      out << "counter " << c.name << ' ' << c.value << '\n';
    }
  }
  for (const auto& g : snapshot.gauges) {
    out << "gauge " << g.name << ' ' << g.value << " high-water " << g.high_water
        << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    out << "histogram " << h.name << " count " << h.count << " mean " << h.mean
        << " p50 " << h.p50 << " p99 " << h.p99 << '\n';
  }
  std::string text = out.str();
  if (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

std::string ControlApi::format_peers() {
  // Per-session counters live in the registry as labeled names
  // ("dbgp.peer.updates_in|as=1,peer=2"); regroup them into one row per
  // (as, peer) session so an operator sees each session's traffic at a
  // glance. BgpSpeaker sessions ("bgp.peer.*") tabulate the same way.
  struct Row {
    std::map<std::string, double> fields;
  };
  std::map<std::tuple<std::string, std::uint32_t, std::uint32_t>, Row> rows;
  const auto snapshot = telemetry::MetricsRegistry::global().snapshot();
  std::string base;
  std::uint32_t as = 0;
  std::uint32_t peer = 0;
  const auto field_of = [](const std::string& full) {
    const auto dot = full.rfind('.');
    return dot == std::string::npos ? full : full.substr(dot + 1);
  };
  const auto scope_of = [](const std::string& full) {
    const auto dot = full.rfind('.');
    return dot == std::string::npos ? std::string() : full.substr(0, dot);
  };
  for (const auto& c : snapshot.counters) {
    if (!parse_peer_label(c.name, base, as, peer)) continue;
    const std::string scope = scope_of(base);
    if (scope != "dbgp.peer" && scope != "bgp.peer") continue;
    rows[{scope, as, peer}].fields[field_of(base)] = static_cast<double>(c.value);
  }
  for (const auto& g : snapshot.gauges) {
    if (!parse_peer_label(g.name, base, as, peer)) continue;
    const std::string scope = scope_of(base);
    if (scope != "dbgp.peer" && scope != "bgp.peer") continue;
    rows[{scope, as, peer}].fields[field_of(base)] = static_cast<double>(g.value);
  }
  std::ostringstream out;
  out << "sessions " << rows.size();
  for (const auto& [key, row] : rows) {
    const auto& [scope, row_as, row_peer] = key;
    const auto field = [&](const char* name) {
      const auto it = row.fields.find(name);
      return it == row.fields.end() ? 0.0 : it->second;
    };
    out << '\n' << scope << " AS" << row_as << " -> AS" << row_peer
        << " in=" << field("updates_in") << " out=" << field("updates_out")
        << " wdr-in=" << field("withdraws_in") << " wdr-out=" << field("withdraws_out")
        << " rejects=" << field("rejects") << " flaps=" << field("flaps")
        << " adj-out=" << field("adj_out_depth");
  }
  return out.str();
}

std::string ControlApi::help() {
  return
      "commands:\n"
      "  add-as <asn> [island=..] [protocol=..] [abstract] [members=..] [cost=..] [bw=..]\n"
      "  add-peer <a> <b> [same-island] [latency=<s>]   (creates unknown ASes)\n"
      "  remove-peer <asn>                              (retires the AS)\n"
      "  originate <asn> <prefix> | withdraw <asn> <prefix>\n"
      "  reload-policy <asn> [strip=<p1,p2,...>]        (hot policy reload + route refresh)\n"
      "  upgrade-protocol <asn> <protocol>              (rolling adoption step)\n"
      "  set-chaos <profile> [seed=<n>] [start=<s>] [horizon=<s>]\n"
      "  set speaker-threads <n>                        (rejected while frames are staged)\n"
      "  crash <asn> | restart <asn> | restart-warm <asn> | graceful-restart <asn>\n"
      "  run | step <seconds>\n"
      "  snapshot <file> | restore <file>\n"
      "  rib <asn> [prefix] | why <asn> <prefix> | blame\n"
      "  metrics [deltas] | metrics-prom | peers | health | help | quit\n"
      "  observe <interval>|off                         (time-series + event journal)\n"
      "  series [<metric>] [last=<n>] [rates] | events [last=<n>]";
}

}  // namespace dbgp::server
