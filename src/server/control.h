// Line-oriented control/query protocol for the route-server daemon.
//
// One request per line, whitespace-separated tokens, key=value options —
// deliberately the same surface as the scenario DSL, so a `server` stanza
// line, a script file line, and an interactively typed command are the same
// string. Every request yields exactly one response: "ok[ <text>]" or
// "err <message>"; multi-line payloads (rib dumps, why chains, metrics) are
// framed by the transport (tools/dbgp_server terminates them with a '.'
// line, netstring-style, so socket clients can parse without guessing).
//
// ControlApi is transport-free: it maps command lines onto RouteServer
// methods and formats text. The same object serves stdin, the Unix socket,
// scripted scenario timelines, tests, and the bench driver.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "server/daemon.h"

namespace dbgp::server {

struct CommandResult {
  bool ok = true;
  bool quit = false;  // the client asked to end the session
  std::string text;   // payload (no trailing newline) or error message
};

class ControlApi {
 public:
  explicit ControlApi(RouteServer& server);

  // Executes one command line. Never throws: daemon errors come back as
  // ok=false results. Blank lines and '#' comments yield an empty ok.
  CommandResult execute(std::string_view line);

  std::uint64_t commands_executed() const noexcept { return executed_; }
  static std::string help();

 private:
  CommandResult dispatch(const std::vector<std::string>& tokens);
  std::string format_metrics(bool deltas);
  // One row per (as, peer) session, regrouped from the labeled registry names.
  static std::string format_peers();

  RouteServer& server_;
  std::uint64_t executed_ = 0;
  // Last-seen counter values for `metrics deltas` (per-interval reporting).
  std::map<std::string, std::uint64_t> last_counters_;
};

}  // namespace dbgp::server
