#include "server/daemon.h"

#include <algorithm>
#include <stdexcept>

#include "core/filters.h"
#include "protocols/bgp_module.h"
#include "scenario/runner.h"

namespace dbgp::server {

namespace {

std::uint64_t fnv1a64_step(std::uint64_t h, std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

RouteServer::RouteServer(Options options)
    : options_(options),
      divergence_(telemetry::OscillationDetector::Options{
          options.divergence_window, options.divergence_threshold}) {
  simnet::DbgpNetwork::Options net_options;
  net_options.delivery = options_.delivery;
  net_options.speaker_threads = options_.speaker_threads;
  if (options_.causal) net_options.causal = &causal_;
  net_ = std::make_unique<simnet::DbgpNetwork>(&lookup_, net_options);

  auto& registry = telemetry::MetricsRegistry::global();
  reconfigs_ = &registry.counter("server.reconfigs");
  snapshots_ = &registry.counter("server.snapshots");
  restores_ = &registry.counter("server.restores");
  uptime_ = &registry.gauge("server.uptime_sim_s");
  oscillating_ = &registry.gauge("server.divergence.oscillating_prefixes");
  if (options_.observe_interval > 0.0) set_observe(options_.observe_interval);
}

void RouteServer::set_observe(double interval) {
  // Detach before destroying: the network holds raw pointers.
  net_->options().sampler = nullptr;
  net_->options().event_log = nullptr;
  sampler_.reset();
  event_log_.reset();
  observe_interval_ = 0.0;
  if (interval <= 0.0) return;
  telemetry::TimeSeriesSampler::Options opts;
  opts.interval = interval;
  sampler_ = std::make_unique<telemetry::TimeSeriesSampler>(opts);
  event_log_ = std::make_unique<telemetry::EventLog>();
  net_->options().sampler = sampler_.get();
  net_->options().event_log = event_log_.get();
  observe_interval_ = interval;
}

telemetry::ConvergenceOracle::RunReport RouteServer::classify_convergence() {
  if (!options_.causal) {
    throw std::runtime_error("convergence oracle needs causal tracing (Options::causal)");
  }
  auto report = oracle_.classify(causal_);
  if (event_log_ != nullptr) {
    std::string detail = std::string("verdict=") + telemetry::to_string(report.verdict);
    detail += " converged=" + std::to_string(report.converged);
    detail += " diverged=" + std::to_string(report.diverged);
    detail += " oscillating=" + std::to_string(report.oscillating);
    event_log_->record(now(), "oracle", 0, 0, std::move(detail));
  }
  return report;
}

core::DbgpSpeaker& RouteServer::build_speaker(const scenario::AsDecl& decl) {
  auto& speaker = net_->add_as(scenario::config_for_decl(decl));
  auto module = scenario::make_protocol_module(
      decl, scenario::protocol_id_for(decl.protocol), authority_, pathlet_stores_,
      pathlets_, scion_paths_);
  if (module != nullptr) speaker.add_module(std::move(module));
  speaker.add_module(std::make_unique<protocols::BgpModule>());
  return speaker;
}

void RouteServer::apply_strip(bgp::AsNumber asn, const std::string& protocol) {
  net_->speaker(asn).import_filters().add(
      "strip-" + protocol, core::strip_protocol_filter(scenario::protocol_id_for(protocol)));
}

RouteServer::NodeMeta& RouteServer::meta_or_throw(bgp::AsNumber asn) {
  const auto it = meta_.find(asn);
  if (it == meta_.end()) {
    throw std::runtime_error("unknown AS " + std::to_string(asn));
  }
  if (it->second.retired) {
    throw std::runtime_error("AS " + std::to_string(asn) + " was retired by remove-peer");
  }
  return it->second;
}

const RouteServer::NodeMeta& RouteServer::meta_or_throw(bgp::AsNumber asn) const {
  return const_cast<RouteServer*>(this)->meta_or_throw(asn);
}

void RouteServer::load(const scenario::Scenario& scenario) {
  if (!empty()) throw std::runtime_error("load requires an empty server");
  if (scenario.sweep) {
    throw std::runtime_error("a sweep scenario describes an experiment, not a servable network");
  }
  pathlets_ = scenario.pathlets;
  scion_paths_ = scenario.scion_paths;
  for (const auto& decl : scenario.ases) add_as(decl);
  for (const auto& decl : scenario.pathlets) {
    if (pathlet_stores_.count(decl.asn) == 0) {
      throw std::runtime_error("pathlet declared at AS " + std::to_string(decl.asn) +
                               " which does not run protocol=pathlets");
    }
  }
  for (const auto& decl : scenario.strips) {
    meta_or_throw(decl.asn).strips.push_back(decl.protocol);
    apply_strip(decl.asn, decl.protocol);
  }
  for (const auto& link : scenario.links) {
    meta_or_throw(link.a);
    meta_or_throw(link.b);
    net_->add_link(link.a, link.b, link.same_island, link.latency);
    links_.push_back({link.a, link.b, link.same_island, link.latency, true});
  }
  for (const auto& decl : scenario.originations) {
    net_->originate(decl.asn, decl.prefix);
  }
  if (scenario.chaos) set_chaos(scenario::to_chaos_options(*scenario.chaos));
  // The scenario's `observe` stanza shapes the plane unless the host already
  // configured it (an explicit Options/--observe-interval wins).
  if (scenario.observe_interval > 0.0 && observe_interval_ <= 0.0) {
    set_observe(scenario.observe_interval);
  }
}

void RouteServer::add_as(const scenario::AsDecl& decl) {
  const auto it = meta_.find(decl.asn);
  if (it != meta_.end()) {
    throw std::runtime_error(
        it->second.retired
            ? "AS number " + std::to_string(decl.asn) + " was retired and cannot be reused"
            : "AS " + std::to_string(decl.asn) + " already exists");
  }
  build_speaker(decl);
  meta_[decl.asn] = NodeMeta{decl, {}, {}, false};
}

void RouteServer::add_peer(bgp::AsNumber a, bgp::AsNumber b, bool same_island,
                           double latency) {
  if (a == b) throw std::runtime_error("cannot peer an AS with itself");
  for (const bgp::AsNumber asn : {a, b}) {
    if (meta_.count(asn) == 0) {
      scenario::AsDecl decl;
      decl.asn = asn;
      add_as(decl);
    }
  }
  reconfigs_->inc();
  if (simnet::Link* existing = net_->find_link(a, b)) {
    if (existing->up()) {
      throw std::runtime_error("AS " + std::to_string(a) + " and AS " +
                               std::to_string(b) + " are already peered");
    }
    existing->set_state(simnet::LinkState::kUp);
    for (auto& record : links_) {
      if ((record.a == a && record.b == b) || (record.a == b && record.b == a)) {
        record.up = true;
      }
    }
    return;
  }
  net_->add_link(a, b, same_island, latency);
  links_.push_back({a, b, same_island, latency, true});
}

void RouteServer::remove_peer(bgp::AsNumber asn) {
  NodeMeta& meta = meta_or_throw(asn);
  reconfigs_->inc();
  // Crash first (sessions drop, neighbors purge), then pin every adjacent
  // link down so nothing can resurrect the sessions later. The node stays as
  // a tombstone — see NodeMeta::retired.
  if (net_->node_up(asn)) net_->crash(asn);
  for (auto& record : links_) {
    if (record.a != asn && record.b != asn) continue;
    if (simnet::Link* link = net_->find_link(record.a, record.b)) {
      if (link->up()) link->set_state(simnet::LinkState::kDown);
    }
    record.up = false;
  }
  meta.retired = true;
  checkpoints_.erase(asn);
}

void RouteServer::originate(bgp::AsNumber asn, const net::Prefix& prefix) {
  meta_or_throw(asn);
  net_->originate(asn, prefix);
}

void RouteServer::withdraw(bgp::AsNumber asn, const net::Prefix& prefix) {
  meta_or_throw(asn);
  net_->withdraw(asn, prefix);
}

void RouteServer::reload_policy(bgp::AsNumber asn,
                                const std::vector<std::string>& strips) {
  NodeMeta& meta = meta_or_throw(asn);
  reconfigs_->inc();
  auto& speaker = net_->speaker(asn);
  for (const auto& old : meta.strips) {
    if (std::find(strips.begin(), strips.end(), old) == strips.end()) {
      speaker.import_filters().remove("strip-" + old);
    }
  }
  for (const auto& now : strips) {
    scenario::protocol_id_for(now);  // validate before mutating
    if (std::find(meta.strips.begin(), meta.strips.end(), now) == meta.strips.end()) {
      apply_strip(asn, now);
    }
  }
  meta.strips = strips;
  // Route-refresh every adjacent session: stored adj-in on both sides was
  // imported through the old filters, so bounce each live link (down + up at
  // one instant) to re-learn through the new ones.
  for (const bgp::AsNumber neighbor : as_numbers()) {
    if (neighbor == asn) continue;
    simnet::Link* link = net_->find_link(asn, neighbor);
    if (link != nullptr && link->up() && net_->node_up(neighbor) && net_->node_up(asn)) {
      link->refresh();
    }
  }
}

void RouteServer::upgrade_protocol(bgp::AsNumber asn, const std::string& protocol) {
  NodeMeta& meta = meta_or_throw(asn);
  const ia::ProtocolId pid = scenario::protocol_id_for(protocol);
  reconfigs_->inc();
  auto& speaker = net_->speaker(asn);
  if (pid != ia::kProtoBgp && speaker.module(pid) == nullptr) {
    auto module = scenario::make_protocol_module(meta.decl, pid, authority_,
                                                 pathlet_stores_, pathlets_,
                                                 scion_paths_);
    if (module != nullptr) speaker.add_module(std::move(module));
  }
  speaker.set_active_protocol(*net::Prefix::parse("0.0.0.0/0"), pid);
  meta.upgraded_protocol = protocol;
  // Re-run every decision under the new active protocol and advertise the
  // deltas — the live half of a rolling adoption step.
  net_->inject(asn, speaker.reevaluate_all());
}

void RouteServer::set_chaos(const simnet::ChaosOptions& options) {
  reconfigs_->inc();
  simnet::ChaosPolicy policy(options);
  policy.inject(*net_);
}

void RouteServer::set_speaker_threads(std::size_t threads) {
  // The network refuses while any speaker holds staged frames; the counter
  // only moves on an accepted reconfiguration.
  net_->set_speaker_threads(threads);
  options_.speaker_threads = net_->speaker_threads();
  reconfigs_->inc();
}

void RouteServer::crash(bgp::AsNumber asn) {
  meta_or_throw(asn);
  checkpoints_[asn] = net_->speaker(asn).export_state();
  net_->crash(asn);
}

void RouteServer::restart(bgp::AsNumber asn) {
  meta_or_throw(asn);
  net_->restart(asn);
}

void RouteServer::restart_warm(bgp::AsNumber asn) {
  meta_or_throw(asn);
  const auto it = checkpoints_.find(asn);
  if (it == checkpoints_.end()) {
    throw std::runtime_error("no checkpoint for AS " + std::to_string(asn) +
                             " (crash it via the server first)");
  }
  net_->restart_warm(asn, it->second);
}

void RouteServer::graceful_restart(bgp::AsNumber asn) {
  crash(asn);
  restart_warm(asn);
}

simnet::RunStats RouteServer::run() {
  const simnet::RunStats stats = net_->run_to_convergence();
  uptime_->set(static_cast<std::int64_t>(now()));
  poll_divergence();
  return stats;
}

simnet::RunStats RouteServer::step(double seconds) {
  return run_until(now() + seconds);
}

simnet::RunStats RouteServer::run_until(double until) {
  const simnet::RunStats stats = net_->run_until(until);
  uptime_->set(static_cast<std::int64_t>(now()));
  poll_divergence();
  return stats;
}

double RouteServer::now() const noexcept { return net_->events().now(); }

Snapshot RouteServer::snapshot() {
  run();  // a snapshot is a consistent cut of a quiescent network
  Snapshot snap;
  snap.sim_time = now();
  snap.pathlets = pathlets_;
  snap.scion_paths = scion_paths_;
  for (const auto& [asn, meta] : meta_) {
    Snapshot::Node node;
    node.decl = meta.decl;
    node.strips = meta.strips;
    node.upgraded_protocol = meta.upgraded_protocol;
    node.up = net_->node_up(asn);
    node.retired = meta.retired;
    node.state = net_->speaker(asn).export_state();
    snap.nodes.push_back(std::move(node));
  }
  for (const auto& record : links_) {
    Snapshot::Link link = record;
    if (const simnet::Link* live = net_->find_link(record.a, record.b)) {
      link.up = live->up();
    }
    snap.links.push_back(link);
  }
  snapshots_->inc();
  return snap;
}

void RouteServer::restore(const Snapshot& snapshot) {
  if (!empty()) throw std::runtime_error("restore requires a fresh, empty server");
  pathlets_ = snapshot.pathlets;
  scion_paths_ = snapshot.scion_paths;
  // Phase 1: rebuild the declarative topology. Links dispatch full-table
  // syncs exactly as the original daemon's did; peer ids come out identical
  // because links are replayed in creation order.
  for (const auto& node : snapshot.nodes) {
    add_as(node.decl);
    NodeMeta& meta = meta_.at(node.decl.asn);
    meta.strips = node.strips;
    for (const auto& strip : node.strips) apply_strip(node.decl.asn, strip);
    if (!node.upgraded_protocol.empty()) {
      meta.upgraded_protocol = node.upgraded_protocol;
      auto& speaker = net_->speaker(node.decl.asn);
      const ia::ProtocolId pid = scenario::protocol_id_for(node.upgraded_protocol);
      if (pid != ia::kProtoBgp && speaker.module(pid) == nullptr) {
        auto module = scenario::make_protocol_module(
            meta.decl, pid, authority_, pathlet_stores_, pathlets_, scion_paths_);
        if (module != nullptr) speaker.add_module(std::move(module));
      }
      speaker.set_active_protocol(*net::Prefix::parse("0.0.0.0/0"), pid);
    }
  }
  for (const auto& link : snapshot.links) {
    net_->add_link(link.a, link.b, link.same_island, link.latency);
    links_.push_back(link);
  }
  net_->run_to_convergence();
  // Phase 2: apply the down states the snapshot recorded, and drain the
  // resulting withdrawals.
  for (const auto& link : snapshot.links) {
    if (!link.up) net_->link(link.a, link.b).set_state(simnet::LinkState::kDown);
  }
  for (const auto& node : snapshot.nodes) {
    if (!node.up) net_->crash(node.decl.asn);
    if (node.retired) meta_.at(node.decl.asn).retired = true;
  }
  net_->run_to_convergence();
  // Phase 3: install every speaker's recorded state verbatim — adj-in,
  // Loc-RIB, adj-out, and the arrival-sequence counter. No decisions run and
  // no frames are emitted, so the Loc-RIB is the snapshot's, bit for bit,
  // and future tie-breaks continue exactly where the original left off.
  for (const auto& node : snapshot.nodes) {
    net_->speaker(node.decl.asn).restore_state(node.state, /*keep_adj_out=*/true);
  }
  net_->events().advance_to(snapshot.sim_time);
  divergence_.clear();
  // The gauge mirrors the detector; clearing one without the other left a
  // stale pre-restore oscillating-prefix count visible to `metrics` until
  // the next poll_divergence with fresh audits.
  oscillating_->set(0);
  audit_cursor_ = causal_.audit_count();
  uptime_->set(static_cast<std::int64_t>(now()));
  restores_->inc();
}

std::vector<bgp::AsNumber> RouteServer::as_numbers() const {
  std::vector<bgp::AsNumber> out;
  out.reserve(meta_.size());
  for (const auto& [asn, meta] : meta_) {
    if (!meta.retired) out.push_back(asn);
  }
  return out;
}

std::size_t RouteServer::link_count() const noexcept {
  std::size_t count = 0;
  for (const auto& record : links_) count += record.up ? 1 : 0;
  return count;
}

std::uint64_t RouteServer::loc_rib_hash(bgp::AsNumber asn) const {
  meta_or_throw(asn);
  const auto state = net_->speaker(asn).export_state();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& record : state.selected) {
    const std::uint32_t addr = record.prefix.address().value();
    const std::uint8_t head[5] = {
        static_cast<std::uint8_t>(addr >> 24), static_cast<std::uint8_t>(addr >> 16),
        static_cast<std::uint8_t>(addr >> 8), static_cast<std::uint8_t>(addr),
        record.prefix.length()};
    h = fnv1a64_step(h, head);
    h = fnv1a64_step(h, record.bytes);
  }
  return h;
}

void RouteServer::poll_divergence() {
  if (!options_.causal) return;
  const auto fresh = causal_.audits_since(audit_cursor_);
  audit_cursor_ += fresh.size();
  divergence_.observe(fresh);
  oscillating_->set(static_cast<std::int64_t>(divergence_.oscillating()));
}

}  // namespace dbgp::server
