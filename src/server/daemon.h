// RouteServer: a DbgpNetwork hosted as a long-lived daemon.
//
// Everything else in the repo runs a network as a one-shot experiment: build,
// originate, drain, evaluate, exit. The paper's premise, though, is an
// infrastructure that *evolves in place* — islands grow, gulf operators
// change policy, protocols roll out AS by AS — and none of that maps onto a
// process that rebuilds the world per run. RouteServer is the missing piece:
// it owns one network for the lifetime of the process and exposes runtime
// mutation (add/remove peerings, hot policy reload, rolling protocol
// upgrade), RIB snapshot/restore as a consistent cut, graceful restart that
// re-learns from a checkpoint instead of a cold wipe, and query verbs
// (rib/why/blame/metrics/health) over the causal trace and the telemetry
// registry. tools/dbgp_server wraps it in a line-oriented control channel
// (stdin or a Unix socket); server/control.h maps command lines onto these
// methods.
//
// Time is simulated, exactly as in the one-shot tools: the daemon interleaves
// event-queue work with injected commands via run_until, so a scripted
// session replays bit-identically — the whole reason the snapshot tests can
// demand equality between a restored daemon and one that lived through the
// same timeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/lookup_service.h"
#include "protocols/bgpsec.h"
#include "protocols/pathlet.h"
#include "scenario/parser.h"
#include "server/snapshot.h"
#include "simnet/chaos.h"
#include "simnet/network.h"
#include "telemetry/causal.h"
#include "telemetry/divergence.h"
#include "telemetry/event_log.h"
#include "telemetry/metrics.h"
#include "telemetry/oracle.h"
#include "telemetry/sampler.h"

namespace dbgp::server {

class RouteServer {
 public:
  struct Options {
    simnet::DeliveryMode delivery = simnet::DeliveryMode::kImmediate;
    // Causal tracing on by default: the daemon's why/blame verbs and the
    // divergence watchdog read the audit log. Benches turn it off.
    bool causal = true;
    // Divergence watchdog tuning (telemetry/divergence.h).
    double divergence_window = 5.0;
    std::size_t divergence_threshold = 8;
    // Worker threads for each speaker's sharded batch pipeline (1 =
    // sequential). Effective only with batched delivery AND causal=false:
    // causal tracing pins speakers to the sequential path so audit/span
    // streams stay ordered. Changeable at runtime via set_speaker_threads.
    std::size_t speaker_threads = 1;
    // Observability plane: > 0 attaches a time-series sampler (at this
    // sim-time interval) and the structured event log to the network from
    // construction. 0 leaves both off until set_observe() — the benches'
    // default.
    double observe_interval = 0.0;
  };

  RouteServer() : RouteServer(Options{}) {}
  explicit RouteServer(Options options);

  // Builds the scenario's network — ases, pathlet/scion seeds, strips,
  // links, originations, chaos stanza — leaving the resulting advertisements
  // queued. The scenario's `server` command timeline is NOT executed here:
  // the host drives it (run_until to each command's time, then
  // ControlApi::execute), so commands interleave with simulated time.
  void load(const scenario::Scenario& scenario);

  // -- Runtime reconfiguration ----------------------------------------------
  // Each mutation queues whatever control-plane traffic it provokes; the next
  // run()/step() drains it. All throw std::runtime_error on bad input
  // (unknown AS, duplicate AS, unknown protocol, ...).
  void add_as(const scenario::AsDecl& decl);
  // Creates missing endpoints as plain-BGP gulf ASes, then the link (or
  // revives it if it exists but is down).
  void add_peer(bgp::AsNumber a, bgp::AsNumber b, bool same_island = false,
                double latency = -1.0);
  // Retires an AS: sessions drop, its links go down for good, neighbors
  // purge and re-converge. The AS number cannot be reused.
  void remove_peer(bgp::AsNumber asn);
  void originate(bgp::AsNumber asn, const net::Prefix& prefix);
  void withdraw(bgp::AsNumber asn, const net::Prefix& prefix);
  // Replaces the AS's strip policy with `strips` (protocol names), then
  // route-refreshes every adjacent session so stored state re-learns through
  // the new filters — the hot-reload path; no process restart, no RIB wipe.
  void reload_policy(bgp::AsNumber asn, const std::vector<std::string>& strips);
  // Activates `protocol` at the AS for all prefixes (attaching its decision
  // module on first use) and re-evaluates every stored route — one step of a
  // rolling D-BGP adoption across a live island.
  void upgrade_protocol(bgp::AsNumber asn, const std::string& protocol);
  // Injects a seeded chaos schedule over the live network.
  void set_chaos(const simnet::ChaosOptions& options);
  // Live speaker-thread reconfiguration (the control API's
  // `set speaker-threads` verb). Throws while any speaker holds staged
  // frames — the daemon must drain (run/step) before the pipeline is
  // re-shaped; see DbgpNetwork::set_speaker_threads.
  void set_speaker_threads(std::size_t threads);

  // -- Node lifecycle -------------------------------------------------------
  // crash() checkpoints the speaker's state first, so a later
  // restart_warm()/graceful restart can re-learn from it.
  void crash(bgp::AsNumber asn);
  void restart(bgp::AsNumber asn);       // cold: RIB wiped, full re-learn
  void restart_warm(bgp::AsNumber asn);  // from the crash checkpoint
  // crash + immediate warm restart: the node holds its routes throughout.
  void graceful_restart(bgp::AsNumber asn);

  // -- Time -----------------------------------------------------------------
  simnet::RunStats run();                 // drain to quiescence
  simnet::RunStats step(double seconds);  // bounded slice of simulated time
  simnet::RunStats run_until(double until);
  double now() const noexcept;

  // -- Snapshot / restore ---------------------------------------------------
  // Drains first (a snapshot is a consistent cut of a quiescent network),
  // then captures decls + links + full per-speaker state.
  Snapshot snapshot();
  // Rebuilds the snapshot's network into this (required: fresh, empty)
  // daemon and installs every speaker's recorded state verbatim — the
  // restored Loc-RIB is bit-identical to the snapshotted one.
  void restore(const Snapshot& snapshot);

  // -- Introspection --------------------------------------------------------
  bool empty() const noexcept { return meta_.empty(); }
  // Retired tombstones don't count as live ASes.
  bool has_as(bgp::AsNumber asn) const {
    const auto it = meta_.find(asn);
    return it != meta_.end() && !it->second.retired;
  }
  std::vector<bgp::AsNumber> as_numbers() const;
  std::size_t link_count() const noexcept;
  simnet::DbgpNetwork& network() noexcept { return *net_; }
  bool causal_enabled() const noexcept { return options_.causal; }
  const telemetry::CausalTracer& causal() const noexcept { return causal_; }
  const telemetry::OscillationDetector& divergence() const noexcept { return divergence_; }

  // -- Observability plane ----------------------------------------------------
  // (Re)creates the sampler + event log at `interval` and attaches them to
  // the network; interval <= 0 detaches and destroys both. Existing history
  // is dropped on reconfiguration (the interval defines the series shape).
  void set_observe(double interval);
  double observe_interval() const noexcept { return observe_interval_; }
  // nullptr while observation is off.
  telemetry::TimeSeriesSampler* sampler() noexcept { return sampler_.get(); }
  const telemetry::TimeSeriesSampler* sampler() const noexcept { return sampler_.get(); }
  telemetry::EventLog* event_log() noexcept { return event_log_.get(); }
  const telemetry::EventLog* event_log() const noexcept { return event_log_.get(); }
  // Classifies the causal trace (telemetry/oracle.h) — the `health` verb's
  // convergence verdict. Requires Options::causal; throws otherwise. When the
  // event log is attached, the run verdict is journaled as an "oracle" event.
  telemetry::ConvergenceOracle::RunReport classify_convergence();
  // FNV-1a-64 over the AS's encoded Loc-RIB (prefix + selected IA bytes) —
  // the equality probe the snapshot and reconfiguration tests compare.
  std::uint64_t loc_rib_hash(bgp::AsNumber asn) const;
  // Ingests new decision audits into the oscillation detector and mirrors
  // the flagged-prefix count into server.divergence.oscillating_prefixes.
  // run()/step() call this; health does too, so it is always fresh.
  void poll_divergence();

 private:
  struct NodeMeta {
    scenario::AsDecl decl;
    std::vector<std::string> strips;
    std::string upgraded_protocol;
    // remove-peer leaves a tombstone instead of erasing: peer ids are
    // adjacency indices, so the node (and its links) must stay part of the
    // replayable creation history for snapshots to restore with identical
    // peer numbering.
    bool retired = false;
  };

  core::DbgpSpeaker& build_speaker(const scenario::AsDecl& decl);
  void apply_strip(bgp::AsNumber asn, const std::string& protocol);
  NodeMeta& meta_or_throw(bgp::AsNumber asn);
  const NodeMeta& meta_or_throw(bgp::AsNumber asn) const;

  Options options_;
  core::LookupService lookup_;
  protocols::AttestationAuthority authority_;
  telemetry::CausalTracer causal_;
  std::unique_ptr<simnet::DbgpNetwork> net_;
  std::map<bgp::AsNumber, NodeMeta> meta_;
  std::vector<Snapshot::Link> links_;  // creation order (peer ids depend on it)
  std::vector<scenario::PathletDecl> pathlets_;
  std::vector<scenario::ScionPathDecl> scion_paths_;
  // Stores must outlive the speakers referencing them.
  std::map<bgp::AsNumber, std::unique_ptr<protocols::PathletStore>> pathlet_stores_;
  std::map<bgp::AsNumber, core::DbgpSpeaker::SpeakerState> checkpoints_;
  telemetry::OscillationDetector divergence_;
  std::size_t audit_cursor_ = 0;

  // Observability plane (set_observe); heap-held so the network can keep raw
  // pointers and reconfiguration swaps cleanly.
  std::unique_ptr<telemetry::TimeSeriesSampler> sampler_;
  std::unique_ptr<telemetry::EventLog> event_log_;
  telemetry::ConvergenceOracle oracle_;
  double observe_interval_ = 0.0;

  // Uptime / reconfiguration telemetry (registered in the global registry so
  // the `metrics` verb and bench gating see them).
  telemetry::Counter* reconfigs_ = nullptr;
  telemetry::Counter* snapshots_ = nullptr;
  telemetry::Counter* restores_ = nullptr;
  telemetry::Gauge* uptime_ = nullptr;       // simulated seconds served
  telemetry::Gauge* oscillating_ = nullptr;  // divergence watchdog output
};

}  // namespace dbgp::server
