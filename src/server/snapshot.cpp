#include "server/snapshot.h"

#include <bit>
#include <fstream>

#include "util/bytes.h"

namespace dbgp::server {

namespace {

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_f64(util::ByteWriter& w, double v) { w.put_u64(std::bit_cast<std::uint64_t>(v)); }
double get_f64(util::ByteReader& r) { return std::bit_cast<double>(r.get_u64()); }

void put_prefix(util::ByteWriter& w, const net::Prefix& prefix) {
  w.put_u32(prefix.address().value());
  w.put_u8(prefix.length());
}

net::Prefix get_prefix(util::ByteReader& r) {
  const std::uint32_t addr = r.get_u32();
  const std::uint8_t len = r.get_u8();
  if (len > 32) throw util::DecodeError("prefix length > 32");
  return net::Prefix(net::Ipv4Address(addr), len);
}

void put_record(util::ByteWriter& w, const core::DbgpSpeaker::RouteRecord& r) {
  put_prefix(w, r.prefix);
  w.put_varint(r.from_peer);
  w.put_varint(r.neighbor_as);
  w.put_u64(r.sequence);
  w.put_u8(r.eligible ? 1 : 0);
  w.put_varint(r.bytes.size());
  w.put_bytes(r.bytes);
}

core::DbgpSpeaker::RouteRecord get_record(util::ByteReader& r) {
  core::DbgpSpeaker::RouteRecord record;
  record.prefix = get_prefix(r);
  record.from_peer = static_cast<bgp::PeerId>(r.get_varint());
  record.neighbor_as = static_cast<bgp::AsNumber>(r.get_varint());
  record.sequence = r.get_u64();
  record.eligible = r.get_u8() != 0;
  const std::uint64_t size = r.get_varint();
  r.expect_items(size);
  const auto bytes = r.get_bytes(size);
  record.bytes.assign(bytes.begin(), bytes.end());
  return record;
}

void put_records(util::ByteWriter& w,
                 const std::vector<core::DbgpSpeaker::RouteRecord>& records) {
  w.put_varint(records.size());
  for (const auto& r : records) put_record(w, r);
}

std::vector<core::DbgpSpeaker::RouteRecord> get_records(util::ByteReader& r) {
  const std::uint64_t count = r.get_varint();
  r.expect_items(count, 6);
  std::vector<core::DbgpSpeaker::RouteRecord> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(get_record(r));
  return out;
}

void put_node(util::ByteWriter& w, const Snapshot::Node& node) {
  w.put_varint(node.decl.asn);
  w.put_string(node.decl.island);
  w.put_string(node.decl.protocol);
  w.put_u8(node.decl.abstract_island ? 1 : 0);
  w.put_varint(node.decl.members.size());
  for (const auto m : node.decl.members) w.put_varint(m);
  w.put_varint(node.decl.cost);
  w.put_varint(node.decl.bandwidth);
  w.put_varint(node.strips.size());
  for (const auto& s : node.strips) w.put_string(s);
  w.put_string(node.upgraded_protocol);
  w.put_u8(node.up ? 1 : 0);
  w.put_u8(node.retired ? 1 : 0);
  w.put_varint(node.state.originated.size());
  for (const auto& p : node.state.originated) put_prefix(w, p);
  w.put_u64(node.state.sequence);
  put_records(w, node.state.adj_in);
  put_records(w, node.state.selected);
  put_records(w, node.state.adj_out);
}

Snapshot::Node get_node(util::ByteReader& r) {
  Snapshot::Node node;
  node.decl.asn = static_cast<bgp::AsNumber>(r.get_varint());
  node.decl.island = r.get_string();
  node.decl.protocol = r.get_string();
  node.decl.abstract_island = r.get_u8() != 0;
  const std::uint64_t members = r.get_varint();
  r.expect_items(members);
  node.decl.members.reserve(members);
  for (std::uint64_t i = 0; i < members; ++i) {
    node.decl.members.push_back(static_cast<bgp::AsNumber>(r.get_varint()));
  }
  node.decl.cost = r.get_varint();
  node.decl.bandwidth = r.get_varint();
  const std::uint64_t strips = r.get_varint();
  r.expect_items(strips);
  node.strips.reserve(strips);
  for (std::uint64_t i = 0; i < strips; ++i) node.strips.push_back(r.get_string());
  node.upgraded_protocol = r.get_string();
  node.up = r.get_u8() != 0;
  node.retired = r.get_u8() != 0;
  const std::uint64_t originated = r.get_varint();
  r.expect_items(originated, 5);
  node.state.originated.reserve(originated);
  for (std::uint64_t i = 0; i < originated; ++i) {
    node.state.originated.push_back(get_prefix(r));
  }
  node.state.sequence = r.get_u64();
  node.state.adj_in = get_records(r);
  node.state.selected = get_records(r);
  node.state.adj_out = get_records(r);
  return node;
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const Snapshot& snapshot) {
  util::ByteWriter w;
  w.put_u32(kSnapshotMagic);
  w.put_u16(kSnapshotVersion);
  put_f64(w, snapshot.sim_time);
  w.put_varint(snapshot.nodes.size());
  for (const auto& node : snapshot.nodes) put_node(w, node);
  w.put_varint(snapshot.links.size());
  for (const auto& link : snapshot.links) {
    w.put_varint(link.a);
    w.put_varint(link.b);
    w.put_u8(link.same_island ? 1 : 0);
    put_f64(w, link.latency);
    w.put_u8(link.up ? 1 : 0);
  }
  w.put_varint(snapshot.pathlets.size());
  for (const auto& p : snapshot.pathlets) {
    w.put_varint(p.asn);
    w.put_varint(p.fid);
    w.put_varint(p.vias.size());
    for (const auto v : p.vias) w.put_varint(v);
    w.put_u8(p.delivers ? 1 : 0);
    if (p.delivers) put_prefix(w, *p.delivers);
  }
  w.put_varint(snapshot.scion_paths.size());
  for (const auto& s : snapshot.scion_paths) {
    w.put_varint(s.asn);
    w.put_varint(s.hops.size());
    for (const auto h : s.hops) w.put_varint(h);
  }
  const std::uint64_t checksum = fnv1a64(w.bytes());
  w.put_u64(checksum);
  return w.take();
}

Snapshot decode_snapshot(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 8 + 6) {
    throw SnapshotError("snapshot truncated: " + std::to_string(bytes.size()) +
                        " bytes is smaller than the fixed header");
  }
  // Verify the trailing checksum before trusting any field: a flipped bit
  // anywhere (including inside varint continuation bits) fails here rather
  // than decoding into plausible-looking garbage.
  const auto body = bytes.first(bytes.size() - 8);
  util::ByteReader tail(bytes.subspan(bytes.size() - 8));
  const std::uint64_t stored = tail.get_u64();
  const std::uint64_t computed = fnv1a64(body);
  if (stored != computed) {
    throw SnapshotError("snapshot checksum mismatch (corrupted or truncated file)");
  }
  try {
    util::ByteReader r(body);
    if (r.get_u32() != kSnapshotMagic) throw SnapshotError("not a D-BGP snapshot (bad magic)");
    const std::uint16_t version = r.get_u16();
    if (version != kSnapshotVersion) {
      throw SnapshotError("unsupported snapshot version " + std::to_string(version));
    }
    Snapshot snapshot;
    snapshot.sim_time = get_f64(r);
    const std::uint64_t nodes = r.get_varint();
    r.expect_items(nodes, 8);
    snapshot.nodes.reserve(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i) snapshot.nodes.push_back(get_node(r));
    const std::uint64_t links = r.get_varint();
    r.expect_items(links, 12);
    snapshot.links.reserve(links);
    for (std::uint64_t i = 0; i < links; ++i) {
      Snapshot::Link link;
      link.a = static_cast<bgp::AsNumber>(r.get_varint());
      link.b = static_cast<bgp::AsNumber>(r.get_varint());
      link.same_island = r.get_u8() != 0;
      link.latency = get_f64(r);
      link.up = r.get_u8() != 0;
      snapshot.links.push_back(link);
    }
    const std::uint64_t pathlets = r.get_varint();
    r.expect_items(pathlets, 4);
    snapshot.pathlets.reserve(pathlets);
    for (std::uint64_t i = 0; i < pathlets; ++i) {
      scenario::PathletDecl decl;
      decl.asn = static_cast<bgp::AsNumber>(r.get_varint());
      decl.fid = static_cast<std::uint32_t>(r.get_varint());
      const std::uint64_t vias = r.get_varint();
      r.expect_items(vias);
      decl.vias.reserve(vias);
      for (std::uint64_t v = 0; v < vias; ++v) {
        decl.vias.push_back(static_cast<std::uint32_t>(r.get_varint()));
      }
      if (r.get_u8() != 0) decl.delivers = get_prefix(r);
      snapshot.pathlets.push_back(std::move(decl));
    }
    const std::uint64_t scions = r.get_varint();
    r.expect_items(scions, 2);
    snapshot.scion_paths.reserve(scions);
    for (std::uint64_t i = 0; i < scions; ++i) {
      scenario::ScionPathDecl decl;
      decl.asn = static_cast<bgp::AsNumber>(r.get_varint());
      const std::uint64_t hops = r.get_varint();
      r.expect_items(hops);
      decl.hops.reserve(hops);
      for (std::uint64_t h = 0; h < hops; ++h) {
        decl.hops.push_back(static_cast<std::uint32_t>(r.get_varint()));
      }
      snapshot.scion_paths.push_back(std::move(decl));
    }
    if (!r.at_end()) throw SnapshotError("snapshot has trailing bytes after the link table");
    return snapshot;
  } catch (const util::DecodeError& e) {
    throw SnapshotError(std::string("snapshot decode failed: ") + e.what());
  }
}

void save_snapshot(const Snapshot& snapshot, const std::string& path) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(snapshot);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw SnapshotError("cannot open snapshot file for writing: " + path);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file) throw SnapshotError("short write to snapshot file: " + path);
}

Snapshot load_snapshot(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw SnapshotError("cannot open snapshot file: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                                  std::istreambuf_iterator<char>());
  return decode_snapshot(bytes);
}

}  // namespace dbgp::server
