// Versioned binary RIB snapshots for the route-server daemon.
//
// A snapshot is a consistent cut of a quiescent daemon: the declarative
// network description (every AS with its protocol/island/policy knobs, every
// link in creation order) plus the full per-speaker routing state
// (originations, adj-in, Loc-RIB, adj-out, and the arrival-sequence counter
// that drives deterministic tie-breaks). Restoring one into a fresh daemon
// rebuilds the topology, then installs each speaker's recorded state without
// running decisions or emitting frames — so the restored Loc-RIB is
// bit-identical to the one that was serving when the snapshot was taken, and
// future updates tie-break exactly as they would have in the original
// process (see tests/server_test.cpp).
//
// Wire layout (all integers via util::ByteWriter, big-endian / LEB128
// varints): magic "DBGP" (u32), version (u16), sim-time (f64 bits as u64),
// node count + nodes, link count + links (creation order — peer ids are
// adjacency indices, so link order is semantic), then an FNV-1a-64 checksum
// of every preceding byte. Truncation, bit flips, bad magic, and unknown
// versions all throw SnapshotError before any state is touched.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/speaker.h"
#include "scenario/parser.h"

namespace dbgp::server {

class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kSnapshotMagic = 0x44424750;  // "DBGP"
inline constexpr std::uint16_t kSnapshotVersion = 1;

struct Snapshot {
  struct Node {
    scenario::AsDecl decl;
    // Import policy: protocols stripped at this AS (strip directives plus
    // runtime reload-policy state).
    std::vector<std::string> strips;
    // Protocol activated by a runtime upgrade-protocol command; empty when
    // the AS still runs its declared protocol.
    std::string upgraded_protocol;
    bool up = true;
    // Retired by remove-peer: kept as a tombstone so link creation order
    // (and with it every neighbor's peer-id numbering) replays exactly.
    bool retired = false;
    core::DbgpSpeaker::SpeakerState state;
  };
  struct Link {
    bgp::AsNumber a = 0;
    bgp::AsNumber b = 0;
    bool same_island = false;
    double latency = -1.0;  // -1 = network default
    bool up = true;
  };

  double sim_time = 0.0;
  std::vector<Node> nodes;  // ascending AS number
  std::vector<Link> links;  // creation order
  // Local pathlet / SCION path seeds: they live in module-side stores, not
  // the RIB, so the RIB records alone cannot reconstruct them.
  std::vector<scenario::PathletDecl> pathlets;
  std::vector<scenario::ScionPathDecl> scion_paths;
};

std::vector<std::uint8_t> encode_snapshot(const Snapshot& snapshot);
// Throws SnapshotError on truncated, corrupted, or incompatible input.
Snapshot decode_snapshot(std::span<const std::uint8_t> bytes);

// File convenience wrappers; save throws SnapshotError on I/O failure, load
// additionally on any decode failure.
void save_snapshot(const Snapshot& snapshot, const std::string& path);
Snapshot load_snapshot(const std::string& path);

}  // namespace dbgp::server
