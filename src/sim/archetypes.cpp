#include "sim/archetypes.h"

#include <algorithm>

namespace dbgp::sim {

using topology::NodeId;

std::vector<std::uint32_t> extra_paths_counts(const PerDestinationRoutes& routes,
                                              const std::vector<bool>& upgraded,
                                              BaselineProtocol baseline,
                                              const ExtraPathsParams& params) {
  std::vector<std::uint32_t> counts;
  extra_paths_counts_into(routes, upgraded, baseline, params, counts);
  return counts;
}

void extra_paths_counts_into(const PerDestinationRoutes& routes,
                             const std::vector<bool>& upgraded, BaselineProtocol baseline,
                             const ExtraPathsParams& params,
                             std::vector<std::uint32_t>& counts) {
  const std::size_t n = routes.route_class.size();
  counts.assign(n, 0);

  // What neighbor y advertises to anyone: its own usable count, clipped to
  // the per-advertisement cap; under the BGP baseline a non-upgraded y has
  // already dropped the protocol's information, so only the single baseline
  // path remains.
  auto advertised_by = [&](NodeId y) -> std::uint32_t {
    if (y == routes.destination) return 1;
    std::uint32_t c = counts[y];
    if (!upgraded[y] && baseline == BaselineProtocol::kBgp) c = std::min<std::uint32_t>(c, 1);
    return std::min(c, params.path_cap);
  };

  for (NodeId x : routes.order) {
    if (x == routes.destination) {
      counts[x] = 1;
      continue;
    }
    if (!routes.reachable(x)) continue;
    if (upgraded[x]) {
      // The archetype uses every candidate's advertised paths.
      std::uint64_t total = 0;
      for (NodeId y : routes.candidates[x]) total += advertised_by(y);
      counts[x] = static_cast<std::uint32_t>(std::min<std::uint64_t>(total, 1u << 20));
      if (counts[x] == 0) counts[x] = 1;  // the baseline path always exists
    } else {
      // Plain BGP: one selected path; the count it carries passes through
      // (D-BGP) or was already clipped (BGP) in advertised_by.
      counts[x] = std::max<std::uint32_t>(1, advertised_by(routes.best_next[x]));
    }
  }
}

BottleneckResult bottleneck_paths(const PerDestinationRoutes& routes,
                                  const std::vector<bool>& upgraded,
                                  const std::vector<std::uint64_t>& bandwidth,
                                  BaselineProtocol baseline) {
  BottleneckResult result;
  bottleneck_paths_into(routes, upgraded, bandwidth, baseline, result);
  return result;
}

void bottleneck_paths_into(const PerDestinationRoutes& routes,
                           const std::vector<bool>& upgraded,
                           const std::vector<std::uint64_t>& bandwidth,
                           BaselineProtocol baseline, BottleneckResult& result) {
  const std::size_t n = routes.route_class.size();
  result.known.assign(n, BottleneckParams::kNoInfo);
  result.actual.assign(n, BottleneckParams::kNoInfo);

  // What y advertises: its known bottleneck, tightened by its own ingress
  // bandwidth if it is upgraded (only upgraded ASes expose bandwidth).
  // Under the BGP baseline, a non-upgraded y drops the information.
  auto advertised_by = [&](NodeId y) -> std::uint64_t {
    std::uint64_t k =
        y == routes.destination ? BottleneckParams::kInfinity : result.known[y];
    if (upgraded[y]) {
      const std::uint64_t own = bandwidth[y];
      k = k == BottleneckParams::kNoInfo ? own : std::min(k, own);
    } else if (y == routes.destination) {
      // A non-upgraded destination exposes nothing.
      k = BottleneckParams::kNoInfo;
    } else if (baseline == BaselineProtocol::kBgp) {
      // Legacy speaker: the QoS control information is dropped.
      k = BottleneckParams::kNoInfo;
    }
    return k;
  };

  for (NodeId x : routes.order) {
    if (x == routes.destination) {
      result.actual[x] = BottleneckParams::kInfinity;
      result.known[x] = BottleneckParams::kNoInfo;
      continue;
    }
    if (!routes.reachable(x)) continue;

    NodeId chosen = routes.best_next[x];
    if (upgraded[x] && !routes.candidates[x].empty()) {
      // Pick the candidate with the highest known bottleneck; candidates
      // with no information rank lowest. Ties keep the BGP default if it is
      // among the best, then prefer the smaller preference key.
      std::uint64_t best_known = advertised_by(chosen);
      for (NodeId y : routes.candidates[x]) {
        const std::uint64_t k = advertised_by(y);
        if (k > best_known ||
            (k == best_known && y != chosen && chosen != routes.best_next[x] &&
             routes.key(y) < routes.key(chosen))) {
          best_known = k;
          chosen = y;
        }
      }
    }

    result.known[x] = advertised_by(chosen);
    const std::uint64_t downstream =
        chosen == routes.destination ? BottleneckParams::kInfinity : result.actual[chosen];
    result.actual[x] = std::min(downstream, bandwidth[chosen]);
  }
}

}  // namespace dbgp::sim
