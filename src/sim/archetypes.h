// The two protocol archetypes of Section 6.3.
//
// * Extra-paths: protocols (SCION, NIRA, Pathlet Routing) whose benefit is
//   exposing additional paths. An upgraded AS can use the paths all its
//   candidate neighbors expose; each inter-island advertisement carries at
//   most `path_cap` paths (the paper caps at ten). Under the BGP baseline a
//   non-upgraded AS *drops* the path-count control information (resetting
//   the count to the single baseline path); under the D-BGP baseline it
//   passes the count through unchanged.
//
// * Bottleneck-bandwidth: protocols (EQ-BGP-like) optimizing a global
//   objective. Upgraded ASes expose their ingress-link bandwidth and select
//   the candidate with the highest *known* bottleneck; benefit is measured
//   on the *actual* bottleneck of the chosen paths (which gulf ASes'
//   bandwidths constrain even though they are invisible — the routing-
//   compliance limitation of Section 3.5).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/routing.h"

namespace dbgp::sim {

enum class BaselineProtocol : std::uint8_t { kBgp, kDbgp };

struct ExtraPathsParams {
  std::uint32_t path_cap = 10;  // max paths per inter-island advertisement
};

// Per-source path counts toward one destination. counts[x] is the number of
// paths AS x can use to reach routes.destination.
std::vector<std::uint32_t> extra_paths_counts(const PerDestinationRoutes& routes,
                                              const std::vector<bool>& upgraded,
                                              BaselineProtocol baseline,
                                              const ExtraPathsParams& params);
// Workspace-reuse variant: writes into `counts` (resized/overwritten) instead
// of allocating. The sweep engine calls this once per destination per
// adoption level, so the allocation saved is O(trials x levels x n).
void extra_paths_counts_into(const PerDestinationRoutes& routes,
                             const std::vector<bool>& upgraded, BaselineProtocol baseline,
                             const ExtraPathsParams& params,
                             std::vector<std::uint32_t>& counts);

struct BottleneckParams {
  // Sentinel meaning "no bandwidth information on this path".
  static constexpr std::uint64_t kNoInfo = 0;
  static constexpr std::uint64_t kInfinity = ~0ULL;
};

struct BottleneckResult {
  // known[x]: bottleneck bandwidth advertised to x (kNoInfo if none).
  std::vector<std::uint64_t> known;
  // actual[x]: true bottleneck of the path x's traffic takes (kInfinity at
  // the destination itself).
  std::vector<std::uint64_t> actual;
};

BottleneckResult bottleneck_paths(const PerDestinationRoutes& routes,
                                  const std::vector<bool>& upgraded,
                                  const std::vector<std::uint64_t>& bandwidth,
                                  BaselineProtocol baseline);
// Workspace-reuse variant of bottleneck_paths; see extra_paths_counts_into.
void bottleneck_paths_into(const PerDestinationRoutes& routes,
                           const std::vector<bool>& upgraded,
                           const std::vector<std::uint64_t>& bandwidth,
                           BaselineProtocol baseline, BottleneckResult& result);

}  // namespace dbgp::sim
