#include "sim/experiment.h"

#include <algorithm>
#include <chrono>

#include "telemetry/metrics.h"
#include "topology/adoption.h"
#include "util/thread_pool.h"

namespace dbgp::sim {

using topology::AsGraph;
using topology::NodeId;

namespace {

struct TrialContext {
  AsGraph graph;
  std::vector<PerDestinationRoutes> routes;  // per destination
  std::vector<std::uint64_t> bandwidth;
  std::vector<bool> stubs;
};

std::uint64_t trial_seed_of(const SweepConfig& config, std::size_t trial) {
  return config.seed + 1000003ULL * trial;
}

// Everything except the route precompute, which parallelizes across
// destinations separately (see run_sweep phase 2). Draw order matters: the
// graph consumes the head of the trial stream and the bandwidths the tail,
// matching the original sequential harness draw for draw.
TrialContext make_trial_base(const SweepConfig& config, std::uint64_t trial_seed) {
  util::Rng rng(trial_seed);
  TrialContext ctx;
  ctx.graph = topology::generate_waxman(config.topology, rng);
  const std::size_t n = ctx.graph.size();
  ctx.bandwidth.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    ctx.bandwidth[u] = static_cast<std::uint64_t>(rng.next_range(
        static_cast<std::int64_t>(config.bandwidth_min),
        static_cast<std::int64_t>(config.bandwidth_max)));
  }
  ctx.stubs.assign(n, false);
  for (NodeId u : ctx.graph.stubs()) ctx.stubs[u] = true;
  return ctx;
}

// Mean over `sources` of the per-source total across destinations.
double mean_over_sources(const std::vector<double>& per_source_total,
                         const std::vector<bool>& include) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t s = 0; s < per_source_total.size(); ++s) {
    if (!include[s]) continue;
    sum += per_source_total[s];
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

// Scratch buffers a benefit evaluation reuses across destinations (and the
// sweep engine reuses across adoption levels within one trial): the benefit
// kernels used to allocate one counts/result vector per destination per
// call, which profiled as the dominant per-trial cost after the PR 5 engine
// parallelized the loops.
struct BenefitWorkspace {
  std::vector<double> per_source;
  std::vector<std::uint32_t> counts;
  BottleneckResult bottleneck;
};

double extra_paths_benefit(const TrialContext& ctx, const std::vector<bool>& upgraded,
                           BaselineProtocol baseline, const ExtraPathsParams& params,
                           const std::vector<bool>& sources, BenefitWorkspace& ws) {
  const std::size_t n = ctx.graph.size();
  ws.per_source.assign(n, 0.0);
  for (const auto& routes : ctx.routes) {
    extra_paths_counts_into(routes, upgraded, baseline, params, ws.counts);
    for (NodeId s = 0; s < n; ++s) {
      if (s == routes.destination || !sources[s]) continue;
      ws.per_source[s] += ws.counts[s];
    }
  }
  return mean_over_sources(ws.per_source, sources);
}

double bottleneck_benefit(const TrialContext& ctx, const std::vector<bool>& upgraded,
                          BaselineProtocol baseline, const std::vector<bool>& sources,
                          BenefitWorkspace& ws) {
  const std::size_t n = ctx.graph.size();
  ws.per_source.assign(n, 0.0);
  for (const auto& routes : ctx.routes) {
    bottleneck_paths_into(routes, upgraded, ctx.bandwidth, baseline, ws.bottleneck);
    for (NodeId s = 0; s < n; ++s) {
      if (s == routes.destination || !sources[s]) continue;
      if (!routes.reachable(s)) continue;
      ws.per_source[s] += static_cast<double>(ws.bottleneck.actual[s]);
    }
  }
  return mean_over_sources(ws.per_source, sources);
}

// The sweep engine. Three parallel phases over pre-sized slots, aggregated
// sequentially in index order, so the result is independent of thread count
// and chunking:
//
//   1. per trial:            topology + bandwidth + stub flags
//   2. per (trial, dest):    valley-free route precompute (shared const graph)
//   3. per (trial, level):   adoption draw + both baselines; slot 0 of each
//                            trial evaluates status quo / best case instead
//
// Each (trial, level) adoption draw seeds its own Rng via
// util::split_seed(trial_seed ^ 0xad, level-index): a pure function of the
// logical task, so no RNG stream is shared between tasks and no draw order
// depends on scheduling.
template <typename BenefitFn>
SweepResult run_sweep(const SweepConfig& config, BenefitFn&& benefit,
                      bool stub_sources_only) {
  auto& registry = telemetry::MetricsRegistry::global();
  auto& pool_tasks = registry.counter("util.pool.tasks");
  auto& wait_hist = registry.histogram(
      "util.pool.steal_or_wait_ns",
      telemetry::Histogram::exponential_bounds(100.0, 1e10, 4.0));
  auto& wall_hist = registry.histogram(
      "sim.sweep.wall_seconds",
      telemetry::Histogram::exponential_bounds(1e-3, 1e4, 2.0));
  const auto wall_start = std::chrono::steady_clock::now();

  util::ThreadPool pool(config.threads);
  pool.set_wait_observer(
      [&wait_hist](std::uint64_t ns) { wait_hist.record(static_cast<double>(ns)); });
  registry.gauge("util.pool.threads").set(static_cast<std::int64_t>(pool.size()));

  SweepResult result;
  const std::size_t levels = config.adoption_levels.size();
  const std::size_t trials = config.trials;

  // Phase 1 — trial contexts.
  std::vector<TrialContext> ctxs(trials);
  pool.parallel_for(0, trials, 1, [&](std::size_t trial) {
    ctxs[trial] = make_trial_base(config, trial_seed_of(config, trial));
  });

  // Phase 2 — route precompute, flattened over (trial, destination) so small
  // trial counts still fill every thread.
  std::vector<std::size_t> offset(trials + 1, 0);
  for (std::size_t t = 0; t < trials; ++t) {
    offset[t + 1] = offset[t] + ctxs[t].graph.size();
    ctxs[t].routes.resize(ctxs[t].graph.size());
  }
  pool.parallel_for(0, offset.back(), 0, [&](std::size_t flat) {
    const std::size_t t =
        static_cast<std::size_t>(std::upper_bound(offset.begin(), offset.end(), flat) -
                                 offset.begin()) -
        1;
    const NodeId d = static_cast<NodeId>(flat - offset[t]);
    ctxs[t].routes[d] = RoutingOracle(ctxs[t].graph).compute(d);
  });

  // Phase 3 — benefit evaluation into per-(level, trial) slots. One task
  // per trial (not per (trial, level)): the per-trial buffers — all/none
  // source masks, the adoption draw, and the benefit workspace — are built
  // once and reused across every adoption level, and each pool claim
  // amortizes over levels + 1 evaluations instead of one. The adoption RNG
  // stays seeded per (trial, level), so the samples are bit-identical to
  // the flattened layout at any thread count.
  std::vector<std::vector<double>> dbgp_samples(levels, std::vector<double>(trials, 0.0));
  std::vector<std::vector<double>> bgp_samples(levels, std::vector<double>(trials, 0.0));
  std::vector<double> status_quo_samples(trials, 0.0), best_case_samples(trials, 0.0);

  pool.parallel_for(0, trials, 1, [&](std::size_t trial) {
    const TrialContext& ctx = ctxs[trial];
    const std::size_t n = ctx.graph.size();
    const std::vector<bool> all(n, true);
    const std::vector<bool> none(n, false);
    std::vector<bool> sources(n, false);
    BenefitWorkspace ws;

    // Status quo: nothing upgraded; measure at every potential source.
    const std::vector<bool>& sq_sources = stub_sources_only ? ctx.stubs : all;
    status_quo_samples[trial] = benefit(ctx, none, BaselineProtocol::kBgp, sq_sources, ws);
    best_case_samples[trial] = benefit(ctx, all, BaselineProtocol::kDbgp, sq_sources, ws);

    for (std::size_t li = 0; li < levels; ++li) {
      util::Rng adoption_rng(
          util::split_seed(trial_seed_of(config, trial) ^ 0xadULL, li));
      const auto upgraded =
          topology::random_adoption(n, config.adoption_levels[li], adoption_rng);
      bool any = false;
      for (NodeId u = 0; u < n; ++u) {
        sources[u] = upgraded[u] && (!stub_sources_only || ctx.stubs[u]);
        any = any || sources[u];
      }
      if (!any) {
        // No eligible sources at this level (can happen at tiny fractions);
        // fall back to all upgraded ASes.
        for (NodeId u = 0; u < n; ++u) sources[u] = upgraded[u];
      }
      dbgp_samples[li][trial] = benefit(ctx, upgraded, BaselineProtocol::kDbgp, sources, ws);
      bgp_samples[li][trial] = benefit(ctx, upgraded, BaselineProtocol::kBgp, sources, ws);
    }
  });

  // Aggregation: sequential, fixed index order.
  for (std::size_t li = 0; li < levels; ++li) {
    result.dbgp_baseline.push_back(
        {config.adoption_levels[li], util::summarize(dbgp_samples[li])});
    result.bgp_baseline.push_back(
        {config.adoption_levels[li], util::summarize(bgp_samples[li])});
  }
  result.status_quo = util::summarize(status_quo_samples).mean;
  result.best_case = util::summarize(best_case_samples).mean;

  pool_tasks.inc(pool.stats().tasks);
  wall_hist.record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count());
  return result;
}

}  // namespace

SweepResult run_extra_paths_sweep(const SweepConfig& config) {
  return run_sweep(
      config,
      [&config](const TrialContext& ctx, const std::vector<bool>& upgraded,
                BaselineProtocol baseline, const std::vector<bool>& sources,
                BenefitWorkspace& ws) {
        return extra_paths_benefit(ctx, upgraded, baseline, config.extra_paths, sources, ws);
      },
      /*stub_sources_only=*/true);
}

SweepResult run_bottleneck_sweep(const SweepConfig& config) {
  return run_sweep(
      config,
      [](const TrialContext& ctx, const std::vector<bool>& upgraded,
         BaselineProtocol baseline, const std::vector<bool>& sources,
         BenefitWorkspace& ws) {
        return bottleneck_benefit(ctx, upgraded, baseline, sources, ws);
      },
      /*stub_sources_only=*/false);
}

bool identical(const SweepResult& a, const SweepResult& b) noexcept {
  const auto same_summary = [](const util::Summary& x, const util::Summary& y) {
    return x.count == y.count && x.mean == y.mean && x.stddev == y.stddev &&
           x.ci95 == y.ci95 && x.min == y.min && x.max == y.max;
  };
  const auto same_series = [&](const std::vector<SeriesPoint>& x,
                               const std::vector<SeriesPoint>& y) {
    if (x.size() != y.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i].adoption != y[i].adoption || !same_summary(x[i].benefit, y[i].benefit)) {
        return false;
      }
    }
    return true;
  };
  return same_series(a.dbgp_baseline, b.dbgp_baseline) &&
         same_series(a.bgp_baseline, b.bgp_baseline) &&
         a.status_quo == b.status_quo && a.best_case == b.best_case;
}

}  // namespace dbgp::sim
