#include "sim/experiment.h"

#include <algorithm>

#include "topology/adoption.h"

namespace dbgp::sim {

using topology::AsGraph;
using topology::NodeId;

namespace {

struct TrialContext {
  AsGraph graph;
  std::vector<PerDestinationRoutes> routes;  // per destination
  std::vector<std::uint64_t> bandwidth;
  std::vector<bool> stubs;
};

TrialContext make_trial(const SweepConfig& config, std::uint64_t trial_seed) {
  util::Rng rng(trial_seed);
  TrialContext ctx;
  ctx.graph = topology::generate_waxman(config.topology, rng);
  RoutingOracle oracle(ctx.graph);
  const std::size_t n = ctx.graph.size();
  ctx.routes.reserve(n);
  for (NodeId d = 0; d < n; ++d) ctx.routes.push_back(oracle.compute(d));
  ctx.bandwidth.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    ctx.bandwidth[u] = static_cast<std::uint64_t>(rng.next_range(
        static_cast<std::int64_t>(config.bandwidth_min),
        static_cast<std::int64_t>(config.bandwidth_max)));
  }
  ctx.stubs.assign(n, false);
  for (NodeId u : ctx.graph.stubs()) ctx.stubs[u] = true;
  return ctx;
}

// Mean over `sources` of the per-source total across destinations.
double mean_over_sources(const std::vector<double>& per_source_total,
                         const std::vector<bool>& include) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t s = 0; s < per_source_total.size(); ++s) {
    if (!include[s]) continue;
    sum += per_source_total[s];
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double extra_paths_benefit(const TrialContext& ctx, const std::vector<bool>& upgraded,
                           BaselineProtocol baseline, const ExtraPathsParams& params,
                           const std::vector<bool>& sources) {
  const std::size_t n = ctx.graph.size();
  std::vector<double> per_source(n, 0.0);
  for (const auto& routes : ctx.routes) {
    const auto counts = extra_paths_counts(routes, upgraded, baseline, params);
    for (NodeId s = 0; s < n; ++s) {
      if (s == routes.destination || !sources[s]) continue;
      per_source[s] += counts[s];
    }
  }
  return mean_over_sources(per_source, sources);
}

double bottleneck_benefit(const TrialContext& ctx, const std::vector<bool>& upgraded,
                          BaselineProtocol baseline, const std::vector<bool>& sources) {
  const std::size_t n = ctx.graph.size();
  std::vector<double> per_source(n, 0.0);
  for (const auto& routes : ctx.routes) {
    const auto result = bottleneck_paths(routes, upgraded, ctx.bandwidth, baseline);
    for (NodeId s = 0; s < n; ++s) {
      if (s == routes.destination || !sources[s]) continue;
      if (!routes.reachable(s)) continue;
      per_source[s] += static_cast<double>(result.actual[s]);
    }
  }
  return mean_over_sources(per_source, sources);
}

template <typename BenefitFn>
SweepResult run_sweep(const SweepConfig& config, BenefitFn&& benefit,
                      bool stub_sources_only) {
  SweepResult result;
  const std::size_t levels = config.adoption_levels.size();
  std::vector<std::vector<double>> dbgp_samples(levels), bgp_samples(levels);
  std::vector<double> status_quo_samples, best_case_samples;

  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    const std::uint64_t trial_seed = config.seed + 1000003ULL * trial;
    TrialContext ctx = make_trial(config, trial_seed);
    const std::size_t n = ctx.graph.size();
    util::Rng adoption_rng(trial_seed ^ 0xadULL);

    const std::vector<bool> all(n, true);
    const std::vector<bool> none(n, false);

    // Status quo: nothing upgraded; measure at every potential source.
    {
      const std::vector<bool>& sources = stub_sources_only ? ctx.stubs : all;
      status_quo_samples.push_back(
          benefit(ctx, none, BaselineProtocol::kBgp, sources));
      best_case_samples.push_back(
          benefit(ctx, all, BaselineProtocol::kDbgp, sources));
    }

    for (std::size_t li = 0; li < levels; ++li) {
      const double level = config.adoption_levels[li];
      const auto upgraded = topology::random_adoption(n, level, adoption_rng);
      std::vector<bool> sources(n, false);
      bool any = false;
      for (NodeId u = 0; u < n; ++u) {
        sources[u] = upgraded[u] && (!stub_sources_only || ctx.stubs[u]);
        any = any || sources[u];
      }
      if (!any) {
        // No eligible sources at this level (can happen at tiny fractions);
        // fall back to all upgraded ASes.
        for (NodeId u = 0; u < n; ++u) sources[u] = upgraded[u];
      }
      dbgp_samples[li].push_back(benefit(ctx, upgraded, BaselineProtocol::kDbgp, sources));
      bgp_samples[li].push_back(benefit(ctx, upgraded, BaselineProtocol::kBgp, sources));
    }
  }

  for (std::size_t li = 0; li < levels; ++li) {
    result.dbgp_baseline.push_back(
        {config.adoption_levels[li], util::summarize(dbgp_samples[li])});
    result.bgp_baseline.push_back(
        {config.adoption_levels[li], util::summarize(bgp_samples[li])});
  }
  result.status_quo = util::summarize(status_quo_samples).mean;
  result.best_case = util::summarize(best_case_samples).mean;
  return result;
}

}  // namespace

SweepResult run_extra_paths_sweep(const SweepConfig& config) {
  return run_sweep(
      config,
      [&config](const TrialContext& ctx, const std::vector<bool>& upgraded,
                BaselineProtocol baseline, const std::vector<bool>& sources) {
        return extra_paths_benefit(ctx, upgraded, baseline, config.extra_paths, sources);
      },
      /*stub_sources_only=*/true);
}

SweepResult run_bottleneck_sweep(const SweepConfig& config) {
  return run_sweep(
      config,
      [](const TrialContext& ctx, const std::vector<bool>& upgraded,
         BaselineProtocol baseline, const std::vector<bool>& sources) {
        return bottleneck_benefit(ctx, upgraded, baseline, sources);
      },
      /*stub_sources_only=*/false);
}

}  // namespace dbgp::sim
