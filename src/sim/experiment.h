// The incremental-benefit sweep harness (Section 6.3, Figures 9 & 10).
//
// For each trial: generate a fresh Waxman topology and bandwidth assignment
// from the trial seed, precompute valley-free routes for every destination,
// then for each adoption level draw a random upgraded set and evaluate both
// baselines (BGP: new-protocol control information is dropped at gulfs;
// D-BGP: it is passed through). Results aggregate mean and 95% CI across
// trials, exactly as the paper plots them (9 trials, error bars).
//
// The harness runs on the deterministic parallel sweep engine
// (util/thread_pool.h): trials, per-destination route precompute, and
// adoption levels fan out as index-addressed tasks whose RNG streams are
// derived with util::split_seed, so SweepResult is bit-identical for any
// SweepConfig::threads value.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/archetypes.h"
#include "topology/waxman.h"
#include "util/stats.h"

namespace dbgp::sim {

struct SweepConfig {
  topology::WaxmanConfig topology;                 // paper: 1000 ASes, Waxman
  std::vector<double> adoption_levels = {0.1, 0.2, 0.3, 0.4, 0.5,
                                         0.6, 0.7, 0.8, 0.9, 1.0};
  std::size_t trials = 9;
  std::uint64_t seed = 42;
  ExtraPathsParams extra_paths;                    // cap = 10 paths/advert
  std::uint64_t bandwidth_min = 10;                // paper: U[10, 1024]
  std::uint64_t bandwidth_max = 1024;
  // Worker threads for the sweep engine: 0 = hardware_concurrency, 1 (the
  // default) = fully sequential, exactly the single-core cost profile the
  // harness always had. Any value yields a bit-identical SweepResult — the
  // determinism contract is documented in DESIGN.md §11.
  std::size_t threads = 1;
};

struct SeriesPoint {
  double adoption = 0.0;
  util::Summary benefit;  // across trials
};

struct SweepResult {
  std::vector<SeriesPoint> dbgp_baseline;
  std::vector<SeriesPoint> bgp_baseline;
  double status_quo = 0.0;  // benefit at 0% adoption
  double best_case = 0.0;   // benefit at 100% adoption with full information
};

// Figure 9: benefit = average over upgraded stub ASes of the total number of
// paths available to all destinations.
SweepResult run_extra_paths_sweep(const SweepConfig& config);

// Figure 10: benefit = average over upgraded ASes of the total actual
// bottleneck bandwidth of chosen paths to all destinations.
SweepResult run_bottleneck_sweep(const SweepConfig& config);

// Exact (bitwise) equality over every field of both results — the check the
// determinism regression tests and the benches' sequential-vs-parallel
// comparison rely on. Doubles are compared with ==, not a tolerance: the
// parallel engine promises identical arithmetic, not merely close results.
bool identical(const SweepResult& a, const SweepResult& b) noexcept;

}  // namespace dbgp::sim
