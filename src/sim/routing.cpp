#include "sim/routing.h"

#include <algorithm>
#include <queue>

namespace dbgp::sim {

using topology::AsGraph;
using topology::Edge;
using topology::NodeId;
using topology::Relationship;

PerDestinationRoutes RoutingOracle::compute(NodeId destination) const {
  const AsGraph& g = *graph_;
  const std::size_t n = g.size();
  PerDestinationRoutes r;
  r.destination = destination;
  r.route_class.assign(n, RouteClass::kNone);
  r.hops.assign(n, kUnreachable);
  r.best_next.assign(n, destination);
  r.candidates.assign(n, {});

  // Per-class hop counts.
  std::vector<std::uint16_t> cust(n, kUnreachable), peer(n, kUnreachable),
      prov(n, kUnreachable);

  // Phase 1 — customer routes: BFS from d along customer->provider edges
  // (x has a customer route when one of its customers has one, or is d).
  {
    std::queue<NodeId> q;
    cust[destination] = 0;
    q.push(destination);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (const Edge& e : g.neighbors(u)) {
        // e.rel is u's relationship to the neighbor; the neighbor gets a
        // customer route via u when u is the neighbor's customer, i.e. u's
        // relationship to the neighbor is kCustomerOf.
        if (e.rel != Relationship::kCustomerOf) continue;
        if (cust[e.neighbor] != kUnreachable) continue;
        cust[e.neighbor] = static_cast<std::uint16_t>(cust[u] + 1);
        q.push(e.neighbor);
      }
    }
  }

  // Phase 2 — peer routes: one peer edge, then a customer-route path down.
  for (NodeId u = 0; u < n; ++u) {
    if (cust[u] == kUnreachable && u != destination) continue;
    const std::uint16_t base = u == destination ? 0 : cust[u];
    for (const Edge& e : g.neighbors(u)) {
      if (e.rel != Relationship::kPeerOf) continue;
      peer[e.neighbor] =
          std::min<std::uint16_t>(peer[e.neighbor], static_cast<std::uint16_t>(base + 1));
    }
  }
  peer[destination] = kUnreachable;  // d itself never uses a peer route

  // Phase 3 — provider routes: Dijkstra over "provider exports anything to
  // its customers", chaining upward through further providers.
  {
    using Item = std::pair<std::uint32_t, NodeId>;  // (dist, node)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> q;
    auto seed = [&](NodeId u) -> std::uint32_t {
      std::uint32_t best = kUnreachable;
      if (u == destination) best = 0;
      best = std::min<std::uint32_t>(best, cust[u]);
      best = std::min<std::uint32_t>(best, peer[u]);
      return best;
    };
    for (NodeId u = 0; u < n; ++u) {
      const std::uint32_t s = seed(u);
      if (s != kUnreachable) q.push({s, u});
    }
    std::vector<std::uint32_t> dist(n, kUnreachable);
    while (!q.empty()) {
      const auto [du, u] = q.top();
      q.pop();
      const std::uint32_t have = std::min<std::uint32_t>(seed(u), dist[u]);
      if (du > have) continue;
      for (const Edge& e : g.neighbors(u)) {
        // u exports any route to its customers: e.rel == kProviderOf.
        if (e.rel != Relationship::kProviderOf) continue;
        const std::uint32_t nd = du + 1;
        if (nd < dist[e.neighbor] && nd < seed(e.neighbor)) {
          dist[e.neighbor] = nd;
          q.push({nd, e.neighbor});
        }
      }
    }
    for (NodeId u = 0; u < n; ++u) {
      prov[u] = static_cast<std::uint16_t>(std::min<std::uint32_t>(dist[u], kUnreachable));
    }
  }
  prov[destination] = kUnreachable;

  // Best class / hops per node.
  for (NodeId u = 0; u < n; ++u) {
    if (u == destination) {
      r.route_class[u] = RouteClass::kSelf;
      r.hops[u] = 0;
    } else if (cust[u] != kUnreachable) {
      r.route_class[u] = RouteClass::kCustomerRoute;
      r.hops[u] = cust[u];
    } else if (peer[u] != kUnreachable) {
      r.route_class[u] = RouteClass::kPeerRoute;
      r.hops[u] = peer[u];
    } else if (prov[u] != kUnreachable) {
      r.route_class[u] = RouteClass::kProviderRoute;
      r.hops[u] = prov[u];
    }
  }

  // Candidates + default next hop. A neighbor y may export its best route to
  // x when y == d, y's best route is a customer route, or x is y's customer.
  // The DAG constraint keeps accounting loop-free: key(y) < key(x).
  for (NodeId x = 0; x < n; ++x) {
    if (x == destination || !r.reachable(x)) continue;
    NodeId best = x;
    std::uint64_t best_key = ~0ULL;
    for (const Edge& e : g.neighbors(x)) {
      const NodeId y = e.neighbor;
      if (!r.reachable(y)) continue;
      const bool exports = y == destination ||
                           r.route_class[y] == RouteClass::kCustomerRoute ||
                           e.rel == Relationship::kCustomerOf;  // x is y's customer
      if (!exports) continue;
      if (r.key(y) >= r.key(x)) continue;
      r.candidates[x].push_back(y);
      // Default next hop: the neighbor whose advertisement yields x's best
      // route — prefer the class x would get via y, then y's hops, then id.
      const int via_class = y == destination ? 1
                            : e.rel == Relationship::kProviderOf
                                ? 1  // y is x's customer -> customer route
                                : e.rel == Relationship::kPeerOf ? 2 : 3;
      const std::uint64_t k = (static_cast<std::uint64_t>(via_class) << 40) |
                              (static_cast<std::uint64_t>(r.hops[y]) << 24) | y;
      if (k < best_key) {
        best_key = k;
        best = y;
      }
    }
    r.best_next[x] = best;
  }

  // Processing order: increasing key (destination first).
  r.order.resize(n);
  for (NodeId u = 0; u < n; ++u) r.order[u] = u;
  std::sort(r.order.begin(), r.order.end(),
            [&r](NodeId a, NodeId b) { return r.key(a) < r.key(b); });
  return r;
}

bool is_valley_free(const AsGraph& graph, const std::vector<NodeId>& path) {
  // Walk source -> destination. Once the path traverses a peer edge or goes
  // provider->customer ("downhill"), it may never go uphill or peer again.
  bool descending = false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId u = path[i];
    const NodeId v = path[i + 1];
    Relationship rel = Relationship::kPeerOf;
    bool found = false;
    for (const Edge& e : graph.neighbors(u)) {
      if (e.neighbor == v) {
        rel = e.rel;
        found = true;
        break;
      }
    }
    if (!found) return false;  // not even a link
    const bool uphill = rel == Relationship::kCustomerOf;  // u pays v: going up
    const bool flat = rel == Relationship::kPeerOf;
    if (descending && (uphill || flat)) return false;
    if (!uphill) descending = true;  // peer or downhill step starts descent
  }
  return true;
}

}  // namespace dbgp::sim
