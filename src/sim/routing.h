// Valley-free (Gao-Rexford) route computation over an annotated AS graph —
// the routing substrate of the paper's incremental-benefit simulations
// (Section 6.3: "Protocols' path choices are always valley-free. ASes that
// have not been upgraded choose paths with the shortest path length").
//
// For each destination d we compute, per AS:
//   * the best route class (customer < peer < provider) and hop count —
//     BGP's default choice,
//   * the default next hop,
//   * the *candidate set*: neighbors whose best route may legitimately be
//     exported to this AS. Candidates are restricted to neighbors with a
//     strictly smaller preference key, which makes multi-path accounting a
//     DAG (loop-free) — a deterministic approximation of the alternate
//     paths a multipath protocol could use.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.h"

namespace dbgp::sim {

inline constexpr std::uint16_t kUnreachable = 0xffff;

enum class RouteClass : std::uint8_t {
  kSelf = 0,
  kCustomerRoute = 1,  // next hop is a customer
  kPeerRoute = 2,
  kProviderRoute = 3,
  kNone = 4,
};

struct PerDestinationRoutes {
  topology::NodeId destination = 0;
  std::vector<RouteClass> route_class;           // best class per node
  std::vector<std::uint16_t> hops;               // hop count of the best route
  std::vector<topology::NodeId> best_next;       // BGP default next hop
  std::vector<std::vector<topology::NodeId>> candidates;  // DAG-safe exporters
  // Nodes sorted by increasing preference key (destination first); the
  // processing order for information propagation.
  std::vector<topology::NodeId> order;

  // Strict-weak preference key used for the DAG (class, hops, id).
  std::uint64_t key(topology::NodeId x) const noexcept {
    return (static_cast<std::uint64_t>(route_class[x]) << 40) |
           (static_cast<std::uint64_t>(hops[x]) << 24) | x;
  }
  bool reachable(topology::NodeId x) const noexcept {
    return route_class[x] != RouteClass::kNone;
  }
};

class RoutingOracle {
 public:
  explicit RoutingOracle(const topology::AsGraph& graph) : graph_(&graph) {}

  // Computes routes toward one destination. O(E log V).
  PerDestinationRoutes compute(topology::NodeId destination) const;

  const topology::AsGraph& graph() const noexcept { return *graph_; }

 private:
  const topology::AsGraph* graph_;
};

// True if the AS-level path (source first, destination last) is valley-free
// under Gao-Rexford export rules. Exposed for property tests.
bool is_valley_free(const topology::AsGraph& graph,
                    const std::vector<topology::NodeId>& path);

}  // namespace dbgp::sim
