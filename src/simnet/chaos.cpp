#include "simnet/chaos.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dbgp::simnet {

namespace {

// Exponential dwell with the given mean; next_double() < 1 keeps log finite.
double exp_draw(util::Rng& rng, double mean) {
  return -mean * std::log(1.0 - rng.next_double());
}

std::size_t sample_count(double fraction, std::size_t n) {
  if (fraction <= 0.0 || n == 0) return 0;
  const auto k = static_cast<std::size_t>(fraction * static_cast<double>(n) + 0.5);
  return std::min(std::max<std::size_t>(k, 1), n);
}

}  // namespace

void ChaosPolicy::inject(DbgpNetwork& net) {
  end_time_ = 0.0;
  if (!options_.any()) return;  // zero chaos schedules nothing: runs stay byte-identical

  util::Rng rng(options_.seed);
  auto links = net.links();  // canonical (min, max) order fixes the draw order
  auto& events = net.events();
  const double window_end = options_.start + options_.horizon;

  // Phase 1a: per-frame fault profiles for the window's duration. Each link
  // gets its own RNG stream derived from the master seed, so frame-level
  // faults replay exactly regardless of how many links exist.
  if (options_.faults.any()) {
    for (Link* link : links) {
      events.schedule_at(options_.start, [link, opts = options_] {
        link->set_faults(opts.faults, opts.seed);
      });
    }
  }

  // Phase 1b: link flap schedules — alternating exponential up/down dwells,
  // drawn fully now so the timeline is fixed before anything runs.
  const std::size_t n_flappers = sample_count(options_.flap_fraction, links.size());
  if (n_flappers > 0) {
    for (const std::size_t idx : rng.sample_indices(links.size(), n_flappers)) {
      Link* link = links[idx];
      double t = options_.start + exp_draw(rng, options_.mean_up);
      while (t < window_end) {
        events.schedule_at(t, [link] { link->set_state(LinkState::kDown); });
        const double up_at = std::min(t + exp_draw(rng, options_.mean_down), window_end);
        events.schedule_at(up_at, [link] { link->set_state(LinkState::kUp); });
        t = up_at + exp_draw(rng, options_.mean_up);
      }
    }
  }

  // Phase 1c: node crash/restart cycles. Restarts are clamped into the
  // window so every node is back before repair.
  const auto as_numbers = net.as_numbers();
  const std::size_t n_crashers = sample_count(options_.crash_fraction, as_numbers.size());
  if (n_crashers > 0) {
    for (const std::size_t idx : rng.sample_indices(as_numbers.size(), n_crashers)) {
      const bgp::AsNumber asn = as_numbers[idx];
      const double crash_at = options_.start + options_.horizon * rng.next_double();
      const double restart_at =
          std::min(crash_at + exp_draw(rng, options_.mean_downtime), window_end);
      events.schedule_at(crash_at, [&net, asn] { net.crash(asn); });
      events.schedule_at(restart_at, [&net, asn] { net.restart(asn); });
    }
  }

  // Phase 2: stop harming frames at the window's end.
  if (options_.faults.any()) {
    events.schedule_at(window_end, [&net] {
      for (Link* link : net.links()) link->clear_faults();
    });
  }

  // Phase 3: repair. Wait out the longest possible in-flight residue from
  // the window (a reordered frame dispatched just before window_end lands at
  // most max_latency + reorder_delay later; doubled for the response it may
  // trigger), then force every link up and — if frames were being mangled —
  // bounce each session so damaged adj-in state is purged and resynced. The
  // network must then re-converge to its fail-free best paths.
  double max_latency = 0.0;
  for (const Link* link : links) max_latency = std::max(max_latency, link->latency());
  const double slack = 2.0 * (max_latency + options_.faults.reorder_delay);
  const double repair_at = window_end + slack + 1e-6;
  const bool refresh = options_.faults.any();
  events.schedule_at(repair_at, [&net, refresh] {
    for (Link* link : net.links()) {
      if (!link->up()) {
        link->set_state(LinkState::kUp);
      } else if (refresh) {
        link->refresh();
      }
    }
  });
  end_time_ = repair_at;
}

ChaosOptions chaos_profile(const std::string& name) {
  ChaosOptions opts;
  if (name == "flaky") {
    opts.flap_fraction = 0.3;
    opts.mean_up = 0.5;
    opts.mean_down = 0.05;
  } else if (name == "lossy") {
    opts.faults.loss = 0.05;
    opts.faults.reorder = 0.05;
    opts.faults.duplicate = 0.02;
  } else if (name == "corrupt") {
    opts.faults.corrupt = 0.05;
  } else if (name == "outage") {
    opts.crash_fraction = 0.25;
    opts.mean_downtime = 0.5;
  } else if (name == "full") {
    opts.flap_fraction = 0.2;
    opts.mean_up = 0.5;
    opts.mean_down = 0.05;
    opts.faults.loss = 0.02;
    opts.faults.reorder = 0.02;
    opts.faults.duplicate = 0.01;
    opts.faults.corrupt = 0.02;
    opts.crash_fraction = 0.1;
    opts.mean_downtime = 0.3;
  } else {
    throw std::invalid_argument("unknown chaos profile '" + name +
                                "' (expected flaky|lossy|corrupt|outage|full)");
  }
  return opts;
}

}  // namespace dbgp::simnet
