// ChaosPolicy: seeded fault-injection schedules for DbgpNetwork.
//
// The paper's deployability argument rests on D-BGP surviving the real
// Internet's churn — sessions flap, routers reboot, and frames are lost or
// mangled in flight — while islands of a new protocol keep converging to the
// same routes BGP would repair to. The chaos layer drives exactly that: a
// policy drawn from one seed schedules link flaps (exponential up/down
// dwells), node crash/restart cycles, and per-link frame faults over a
// bounded horizon, then repairs the damage with session refreshes so the
// network must re-converge to its fail-free best paths.
//
// Determinism: the whole timeline is drawn up-front from Rng(seed) over the
// network's links in their canonical (min, max) map order, and per-link
// frame faults draw from private per-link streams seeded from the same
// master seed. Same seed + same topology + same workload => identical event
// interleaving, RunStats, and traces, replayable in both delivery modes.
#pragma once

#include <cstdint>
#include <string>

#include "simnet/link.h"
#include "simnet/network.h"

namespace dbgp::simnet {

struct ChaosOptions {
  std::uint64_t seed = 1;
  // Fault window [start, start + horizon) in simulated seconds. Flaps and
  // crashes are scheduled inside the window; at its end faults are cleared
  // and damaged sessions are refreshed (see ChaosPolicy::inject).
  double start = 0.0;
  double horizon = 5.0;

  // Fraction of links that flap (exponential up/down dwell cycles).
  double flap_fraction = 0.0;
  double mean_up = 1.0;    // mean dwell in the up state, seconds
  double mean_down = 0.1;  // mean dwell in the down state, seconds

  // Per-frame fault rates applied to every link for the window's duration.
  FaultProfile faults;

  // Fraction of nodes that crash once during the window and restart after an
  // exponential downtime (clamped to finish inside the window).
  double crash_fraction = 0.0;
  double mean_downtime = 0.5;

  bool any() const noexcept {
    return flap_fraction > 0.0 || crash_fraction > 0.0 || faults.any();
  }
};

class ChaosPolicy {
 public:
  explicit ChaosPolicy(ChaosOptions options) : options_(options) {}

  const ChaosOptions& options() const noexcept { return options_; }

  // Draws the full fault timeline from Rng(options.seed) and schedules it on
  // the network's event queue. Call after topology + originations are set
  // up, before run_to_convergence. Three phases:
  //   1. window: flap schedules per sampled link, one crash/restart per
  //      sampled node, fault profiles installed on every link;
  //   2. window end: fault profiles cleared (frames stop being harmed);
  //   3. repair: after the longest possible in-flight residue has drained
  //      (2 * (max latency + reorder delay)), every link is forced up and
  //      every link that took damage is refreshed — the session bounce
  //      purges stale adj-in state and resyncs, so the network re-converges
  //      to its fail-free routes.
  void inject(DbgpNetwork& net);

  // When the scheduled timeline finishes (repair included).
  double end_time() const noexcept { return end_time_; }

 private:
  ChaosOptions options_;
  double end_time_ = 0.0;
};

// Named presets for dbgp_run --chaos-profile: "flaky" (session churn),
// "lossy" (frame loss/reorder/duplication), "corrupt" (mangled frames),
// "outage" (node crash/restart cycles), "full" (all of the above).
// Throws std::invalid_argument for unknown names.
ChaosOptions chaos_profile(const std::string& name);

}  // namespace dbgp::simnet
