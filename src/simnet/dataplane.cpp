#include "simnet/dataplane.h"

#include <algorithm>

namespace dbgp::simnet {

void DataPlane::set_address_owner(net::Ipv4Address addr, bgp::AsNumber asn) {
  address_owner_[addr.value()] = asn;
}

void DataPlane::set_next_hop(bgp::AsNumber asn, const net::Prefix& prefix,
                             bgp::AsNumber next_hop_as) {
  fibs_[asn].next_hops.insert(prefix, next_hop_as);
}

void DataPlane::set_local_delivery(bgp::AsNumber asn, const net::Prefix& prefix) {
  fibs_[asn].local.insert(prefix, true);
}

void DataPlane::add_link(bgp::AsNumber a, bgp::AsNumber b) {
  links_[a].push_back(b);
  links_[b].push_back(a);
}

bool DataPlane::linked(bgp::AsNumber a, bgp::AsNumber b) const {
  auto it = links_.find(a);
  if (it == links_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), b) != it->second.end();
}

PacketTrace DataPlane::forward(bgp::AsNumber src, Packet packet, std::size_t max_ttl) const {
  PacketTrace trace;
  bgp::AsNumber at = src;
  trace.hops.push_back(at);

  for (std::size_t ttl = 0; ttl < max_ttl; ++ttl) {
    if (packet.stack.empty()) {
      trace.delivered = true;
      return trace;
    }
    Header& top = packet.stack.back();
    switch (top.kind) {
      case Header::Kind::kIpv4:
      case Header::Kind::kTunnel: {
        // Tunnel endpoints and locally owned addresses terminate the layer.
        auto owner = address_owner_.find(top.dst.value());
        const bool owned_here = owner != address_owner_.end() && owner->second == at;
        auto fib = fibs_.find(at);
        const bool local =
            fib != fibs_.end() && fib->second.local.longest_match(top.dst) != nullptr;
        if (owned_here || (top.kind == Header::Kind::kIpv4 && local)) {
          packet.stack.pop_back();
          continue;  // next layer takes over at this AS
        }
        if (fib == fibs_.end()) {
          trace.drop_reason = "no FIB at AS" + std::to_string(at);
          return trace;
        }
        const bgp::AsNumber* next = fib->second.next_hops.longest_match(top.dst);
        if (next == nullptr) {
          trace.drop_reason = "no route for " + top.dst.to_string() + " at AS" +
                              std::to_string(at);
          return trace;
        }
        at = *next;
        trace.hops.push_back(at);
        break;
      }
      case Header::Kind::kSourceRoute: {
        if (top.route_pos >= top.route.size()) {
          packet.stack.pop_back();
          continue;  // source route consumed; inner header takes over
        }
        const bgp::AsNumber next = top.route[top.route_pos];
        if (next != at && !linked(at, next)) {
          trace.drop_reason = "source route names non-adjacent AS" + std::to_string(next) +
                              " at AS" + std::to_string(at);
          return trace;
        }
        ++top.route_pos;
        if (next != at) {
          at = next;
          trace.hops.push_back(at);
        }
        break;
      }
    }
  }
  trace.drop_reason = "TTL exceeded";
  return trace;
}

}  // namespace dbgp::simnet
