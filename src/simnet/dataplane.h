// AS-granularity data plane with multi-network-protocol header stacks
// (Section 2: traffic crossing gulfs "may need to be encapsulated with
// multiple network protocols' headers").
//
// Packets carry a stack of headers; forwarding always acts on the top one:
//   * kIpv4        — longest-prefix-match hop-by-hop forwarding,
//   * kSourceRoute — explicit AS-level hop list (SCION paths / pathlet FID
//                    expansions, at the AS granularity this plane models),
//   * kTunnel      — an IPv4 header toward a tunnel endpoint; popped there.
// When the top header terminates at an AS it is popped and the next header
// takes over — exactly the layering Figure 4's island IDs field exists to
// make possible.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bgp/types.h"
#include "net/ipv4.h"
#include "net/prefix_trie.h"

namespace dbgp::simnet {

struct Header {
  enum class Kind : std::uint8_t { kIpv4, kSourceRoute, kTunnel };
  Kind kind = Kind::kIpv4;
  net::Ipv4Address dst;                  // kIpv4 / kTunnel endpoint
  std::vector<bgp::AsNumber> route;      // kSourceRoute hops (next hop first)
  std::size_t route_pos = 0;

  static Header ipv4(net::Ipv4Address dst) { return {Kind::kIpv4, dst, {}, 0}; }
  static Header source_route(std::vector<bgp::AsNumber> hops) {
    return {Kind::kSourceRoute, net::Ipv4Address(), std::move(hops), 0};
  }
  static Header tunnel(net::Ipv4Address endpoint) { return {Kind::kTunnel, endpoint, {}, 0}; }
};

struct Packet {
  // Bottom first; the active header is stack.back().
  std::vector<Header> stack;
};

struct PacketTrace {
  std::vector<bgp::AsNumber> hops;  // every AS visited, source first
  bool delivered = false;
  std::string drop_reason;          // empty when delivered
};

class DataPlane {
 public:
  // Registers which AS owns an address (for tunnel endpoints + delivery).
  void set_address_owner(net::Ipv4Address addr, bgp::AsNumber asn);
  // Installs a forwarding entry: at `asn`, traffic for `prefix` goes to
  // `next_hop_as`.
  void set_next_hop(bgp::AsNumber asn, const net::Prefix& prefix, bgp::AsNumber next_hop_as);
  // Marks `prefix` as locally delivered at `asn`.
  void set_local_delivery(bgp::AsNumber asn, const net::Prefix& prefix);
  // Declares adjacency (source routes may only follow real links).
  void add_link(bgp::AsNumber a, bgp::AsNumber b);

  // Forwards a packet injected at `src`; follows headers until delivery,
  // a forwarding failure, or `max_ttl` hops.
  PacketTrace forward(bgp::AsNumber src, Packet packet, std::size_t max_ttl = 64) const;

 private:
  struct NodeFib {
    net::PrefixTrie<bgp::AsNumber> next_hops;
    net::PrefixTrie<bool> local;
  };

  bool linked(bgp::AsNumber a, bgp::AsNumber b) const;

  std::map<bgp::AsNumber, NodeFib> fibs_;
  std::map<std::uint32_t, bgp::AsNumber> address_owner_;
  std::map<bgp::AsNumber, std::vector<bgp::AsNumber>> links_;
};

}  // namespace dbgp::simnet
