#include "simnet/event_queue.h"

#include <cassert>

namespace dbgp::simnet {

void EventQueue::schedule_at(double at, Handler handler) {
  assert(at >= now_);
  queue_.push({at, next_seq_++, std::move(handler)});
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (!queue_.empty() && processed < max_events) {
    // Move out the event before popping so the handler may schedule more.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    event.handler();
    ++processed;
  }
  return processed;
}

std::size_t EventQueue::run_until(double until, std::size_t max_events) {
  std::size_t processed = 0;
  while (!queue_.empty() && processed < max_events && queue_.top().at <= until) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    event.handler();
    ++processed;
  }
  if (now_ < until) now_ = until;
  return processed;
}

}  // namespace dbgp::simnet
