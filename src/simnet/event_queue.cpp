#include "simnet/event_queue.h"

#include <cassert>

namespace dbgp::simnet {

EventQueue::EventQueue()
    : events_processed_(
          &telemetry::MetricsRegistry::global().counter("simnet.events_processed")),
      events_coalesced_(
          &telemetry::MetricsRegistry::global().counter("simnet.events_coalesced")),
      queue_depth_(&telemetry::MetricsRegistry::global().gauge("simnet.queue_depth")) {}

void EventQueue::schedule_coalesced(std::uint64_t key, double delay, Handler handler) {
  if (!pending_keys_.insert(key).second) {
    events_coalesced_->inc();
    return;
  }
  schedule_at(now_ + delay, [this, key, handler = std::move(handler)]() {
    pending_keys_.erase(key);  // before running: the handler may re-arm
    handler();
  });
}

void EventQueue::schedule_at(double at, Handler handler) {
  assert(at >= now_);
  queue_.push({at, next_seq_++, std::move(handler)});
  queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
}

RunStats EventQueue::run(std::size_t max_events) {
  RunStats stats;
  while (!queue_.empty() && stats.processed < max_events) {
    // Move out the event before popping so the handler may schedule more.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    event.handler();
    ++stats.processed;
  }
  events_processed_->inc(stats.processed);
  queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  stats.capped = !queue_.empty();
  return stats;
}

RunStats EventQueue::run_until(double until, std::size_t max_events) {
  RunStats stats;
  while (!queue_.empty() && stats.processed < max_events && queue_.top().at <= until) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    event.handler();
    ++stats.processed;
  }
  events_processed_->inc(stats.processed);
  queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  stats.capped = !queue_.empty() && queue_.top().at <= until;
  if (now_ < until) now_ = until;
  return stats;
}

}  // namespace dbgp::simnet
