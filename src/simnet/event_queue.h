// Deterministic discrete-event scheduler.
//
// Events at equal timestamps fire in insertion order (a strictly increasing
// sequence number breaks ties), so simulations are bit-reproducible — the
// property that lets the MiniNeXT-style experiments (E2, E6-E9) assert exact
// control-plane outcomes.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "telemetry/metrics.h"

namespace dbgp::simnet {

// Outcome of a run()/run_until() drain. `capped` distinguishes "the queue
// drained" (the control plane converged) from "the max_events safety cap
// fired with work still pending" — callers that treat a truncated run as
// convergence silently report wrong results, so the flag is explicit. The
// size_t conversion preserves the historical "number of events processed"
// return for arithmetic and comparisons.
struct RunStats {
  std::size_t processed = 0;
  bool capped = false;

  // Churn accounting, filled by DbgpNetwork::run_to_convergence from the
  // network's cumulative counters (zero for a plain EventQueue::run). Two
  // runs of the same seeded chaos scenario must agree on every field — the
  // replay check in bench_churn and the chaos tests compares them directly.
  std::uint64_t link_flaps = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_reordered = 0;
  std::uint64_t frames_corrupted = 0;
  // Frames that arrived but failed decode validation (corruption detected
  // and discarded without touching the receiver's adj-in).
  std::uint64_t frames_rejected = 0;

  operator std::size_t() const noexcept { return processed; }
};

class EventQueue {
 public:
  using Handler = std::function<void()>;

  EventQueue();

  double now() const noexcept { return now_; }
  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

  // Schedules `handler` at absolute time `at` (>= now).
  void schedule_at(double at, Handler handler);
  // Schedules after a delay from now.
  void schedule_in(double delay, Handler handler) { schedule_at(now_ + delay, std::move(handler)); }

  // Coalescing schedule: a no-op (counted in simnet.events_coalesced) while
  // an event with the same key is still pending. The key is released just
  // before the handler runs, so the handler may re-arm itself. Used for
  // per-node batch-flush events: N frame deliveries at one timestamp fund
  // one flush, keeping the event order — and thus the simulation —
  // deterministic.
  void schedule_coalesced(std::uint64_t key, double delay, Handler handler);

  // Runs events until the queue drains or `max_events` fire; the result
  // carries the event count and whether the cap cut the run short.
  RunStats run(std::size_t max_events = 10'000'000);
  // Runs events with timestamps <= `until`.
  RunStats run_until(double until, std::size_t max_events = 10'000'000);
  // Moves the clock forward to `to` without running anything (no-op if `to`
  // is in the past). A long-lived server uses this after run_until so that
  // commands injected at a scripted time are stamped at that time even when
  // the queue drained earlier.
  void advance_to(double to) noexcept {
    if (to > now_) now_ = to;
  }

 private:
  struct Event {
    double at;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::unordered_set<std::uint64_t> pending_keys_;  // live schedule_coalesced keys
  // Shared registry metrics (aggregated across all queues in the process).
  telemetry::Counter* events_processed_;
  telemetry::Counter* events_coalesced_;
  telemetry::Gauge* queue_depth_;
};

}  // namespace dbgp::simnet
