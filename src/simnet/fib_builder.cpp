#include "simnet/fib_builder.h"

namespace dbgp::simnet {

DataPlane build_data_plane(const DbgpNetwork& net) {
  DataPlane dp;
  for (const bgp::AsNumber asn : net.as_numbers()) {
    const auto& speaker = net.speaker(asn);
    for (const auto& prefix : speaker.selected_prefixes()) {
      const auto* best = speaker.best(prefix);
      if (best == nullptr) continue;
      if (best->from_peer == bgp::kInvalidPeer) {
        dp.set_local_delivery(asn, prefix);
      } else {
        dp.set_next_hop(asn, prefix, net.peer_as_of(asn, best->from_peer));
      }
    }
  }
  return dp;
}

}  // namespace dbgp::simnet
