// Builds a DataPlane from a converged DbgpNetwork's control-plane state:
// each AS forwards every selected prefix to the neighbor its best route came
// from; originators deliver locally. This is step (4) of Figure 5 ("forwards
// the new best path to the data plane") applied network-wide, and the
// consistency property tests verify packets follow exactly the advertised
// path vectors.
#pragma once

#include "simnet/dataplane.h"
#include "simnet/network.h"

namespace dbgp::simnet {

DataPlane build_data_plane(const DbgpNetwork& net);

}  // namespace dbgp::simnet
