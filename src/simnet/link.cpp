#include "simnet/link.h"

#include <algorithm>

#include "simnet/network.h"

namespace dbgp::simnet {

void Link::set_state(LinkState state) { net_->on_link_state(*this, state); }

void Link::refresh() {
  net_->on_link_state(*this, LinkState::kDown);
  net_->on_link_state(*this, LinkState::kUp);
}

void Link::set_faults(const FaultProfile& faults, std::uint64_t seed) {
  faults_ = faults;
  // Mix the endpoints into the seed so every link draws from its own stream
  // even when one master seed fans out across the topology.
  std::uint64_t sm = seed ^ (static_cast<std::uint64_t>(a_) << 32) ^ b_;
  fault_rng_ = util::Rng(util::splitmix64(sm));
  // Fault windows bound which hops *could* have misbehaved; a causal trace
  // marks both edges so per-frame annotations can be read in context.
  net_->chaos_instant(a_, b_, "faults_set");
}

void Link::clear_faults() {
  faults_ = FaultProfile{};
  net_->chaos_instant(a_, b_, "faults_cleared");
}

std::vector<std::uint8_t> corrupt_frame(const std::vector<std::uint8_t>& bytes,
                                        util::Rng& rng) {
  std::vector<std::uint8_t> mangled(bytes);
  std::uint32_t mode = rng.next_below(3);
  // The version-byte flip only guarantees rejection for announce frames
  // (byte 1 is the IA version there; in withdraw/notice frames it is prefix
  // payload, which would decode). Fall back to truncation for those.
  if (mode == 2 && (mangled.size() < 2 || mangled[0] != 1 /* kAnnounce */)) mode = 0;
  switch (mode) {
    case 0: {  // truncate below the smallest valid frame (withdraw = 6 bytes)
      const std::size_t keep = rng.next_below(5) + 1;
      mangled.resize(std::min(keep, mangled.empty() ? std::size_t{0} : mangled.size() - 1));
      break;
    }
    case 1:  // out-of-range frame type
      mangled[0] = static_cast<std::uint8_t>(0xF0 | rng.next_below(16));
      break;
    default:  // announce: flip the IA version byte
      mangled[1] ^= 0x80;
      break;
  }
  return mangled;
}

}  // namespace dbgp::simnet
