// First-class links for the simulated network.
//
// A Link owns everything the old DbgpNetwork kept scattered across the
// per-node adjacency vectors: the session state (up/down), the latency, and
// — new with the chaos layer — a FaultProfile describing how the link
// misbehaves. Faults are drawn from a per-link deterministic RNG in delivery
// order, so a seeded chaos run is bit-reproducible: the event queue fixes
// the order frames cross the link, and the link's RNG stream fixes what
// happens to each of them.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/types.h"
#include "util/rng.h"

namespace dbgp::simnet {

class DbgpNetwork;

enum class LinkState { kUp, kDown };

// How frames are handed to the receiving speaker: processed immediately
// (one decision per frame) or staged and decided once per touched prefix at
// a coalesced per-node flush. Chaos events apply at dispatch time, before
// this choice, so a fault schedule interleaves identically in both modes.
enum class DeliveryMode { kImmediate, kBatched };

// Per-frame fault rates, all in [0, 1]. A default-constructed profile is
// fault-free and costs nothing on the delivery path (no RNG draws).
struct FaultProfile {
  double loss = 0.0;       // P(frame silently dropped)
  double duplicate = 0.0;  // P(frame delivered twice)
  double reorder = 0.0;    // P(frame delayed by reorder_delay past later frames)
  double corrupt = 0.0;    // P(frame mangled; see corrupt_frame)
  double reorder_delay = 0.05;  // extra latency a reordered frame picks up

  bool any() const noexcept {
    return loss > 0.0 || duplicate > 0.0 || reorder > 0.0 || corrupt > 0.0;
  }
};

// What the link actually did to traffic (cumulative for the link lifetime).
struct LinkStats {
  std::uint64_t flaps = 0;  // up -> down transitions
  std::uint64_t frames_lost = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_reordered = 0;
  std::uint64_t frames_corrupted = 0;
};

// Mangles a frame so the receiver's decode is guaranteed to reject it — the
// model is a link-layer CRC that *detects* residual bit errors: the frame
// arrives, fails validation, and must not touch the adj-in. Three mangle
// modes, all structurally invalid: truncation below the fixed header,
// an out-of-range frame-type byte, and (announce frames) a flipped IA
// version byte. Undetected corruption that decodes into a different valid
// frame is out of scope for the failure model (see DESIGN.md §9).
std::vector<std::uint8_t> corrupt_frame(const std::vector<std::uint8_t>& bytes,
                                        util::Rng& rng);

class Link {
 public:
  bgp::AsNumber a() const noexcept { return a_; }
  bgp::AsNumber b() const noexcept { return b_; }
  double latency() const noexcept { return latency_; }
  bool same_island() const noexcept { return same_island_; }
  LinkState state() const noexcept { return state_; }
  bool up() const noexcept { return state_ == LinkState::kUp; }
  bgp::AsNumber other(bgp::AsNumber asn) const noexcept { return asn == a_ ? b_ : a_; }

  // Session control. Down tears both peering sessions (adj-in purged on both
  // sides, withdraws ripple out); up re-establishes them and re-syncs full
  // tables. A no-op if the link is already in the requested state.
  void set_state(LinkState state);
  // Session bounce (down + up at the same instant): the route-refresh used
  // to repair state after a fault window — both ends purge what they learned
  // over the link and resend their current tables.
  void refresh();

  // Installs a fault profile. `seed` starts the link's private RNG stream;
  // the same (profile, seed) over the same frame sequence reproduces the
  // same faults. Clearing restores fault-free delivery.
  void set_faults(const FaultProfile& faults, std::uint64_t seed);
  void clear_faults();
  const FaultProfile& faults() const noexcept { return faults_; }

  const LinkStats& stats() const noexcept { return stats_; }

 private:
  friend class DbgpNetwork;
  Link(DbgpNetwork* net, bgp::AsNumber a, bgp::AsNumber b, double latency,
       bool same_island)
      : net_(net), a_(a), b_(b), latency_(latency), same_island_(same_island) {}

  DbgpNetwork* net_;
  bgp::AsNumber a_;
  bgp::AsNumber b_;
  double latency_;
  bool same_island_;
  LinkState state_ = LinkState::kUp;
  FaultProfile faults_;
  util::Rng fault_rng_;
  LinkStats stats_;
};

}  // namespace dbgp::simnet
