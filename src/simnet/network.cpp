#include "simnet/network.h"

#include <stdexcept>

#include "ia/codec.h"
#include "ia/ids.h"
#include "util/bytes.h"
#include "util/logging.h"

namespace dbgp::simnet {

namespace {
constexpr auto kLog = "simnet.network";

struct NetworkMetrics {
  telemetry::Counter* frames_delivered;
  telemetry::Counter* bytes_delivered;
  telemetry::Gauge* messages_in_flight;

  static NetworkMetrics& get() {
    static NetworkMetrics m = [] {
      auto& reg = telemetry::MetricsRegistry::global();
      return NetworkMetrics{&reg.counter("simnet.frames_delivered"),
                            &reg.counter("simnet.bytes_delivered"),
                            &reg.gauge("simnet.messages_in_flight")};
    }();
    return m;
  }
};
}  // namespace

core::DbgpSpeaker& DbgpNetwork::add_as(core::DbgpConfig config) {
  const bgp::AsNumber asn = config.asn;
  if (nodes_.count(asn) > 0) {
    throw std::invalid_argument("AS " + std::to_string(asn) + " already exists");
  }
  Node node;
  node.speaker = std::make_unique<core::DbgpSpeaker>(std::move(config), lookup_);
  auto [it, inserted] = nodes_.emplace(asn, std::move(node));
  return *it->second.speaker;
}

core::DbgpSpeaker& DbgpNetwork::speaker(bgp::AsNumber asn) {
  auto it = nodes_.find(asn);
  if (it == nodes_.end()) throw std::out_of_range("no AS " + std::to_string(asn));
  return *it->second.speaker;
}

const core::DbgpSpeaker& DbgpNetwork::speaker(bgp::AsNumber asn) const {
  auto it = nodes_.find(asn);
  if (it == nodes_.end()) throw std::out_of_range("no AS " + std::to_string(asn));
  return *it->second.speaker;
}

bool DbgpNetwork::has_as(bgp::AsNumber asn) const noexcept { return nodes_.count(asn) > 0; }

void DbgpNetwork::connect(bgp::AsNumber a, bgp::AsNumber b, bool same_island, double latency) {
  if (latency < 0) latency = default_latency_;
  Node& node_a = nodes_.at(a);
  Node& node_b = nodes_.at(b);
  const bgp::PeerId id_ab = node_a.speaker->add_peer(b, same_island);
  const bgp::PeerId id_ba = node_b.speaker->add_peer(a, same_island);
  node_a.adjacencies.push_back({b, latency, true});
  node_b.adjacencies.push_back({a, latency, true});
  // Exchange current tables (the initial-sync a real session performs).
  dispatch(a, node_a.speaker->sync_peer(id_ab));
  dispatch(b, node_b.speaker->sync_peer(id_ba));
}

void DbgpNetwork::disconnect(bgp::AsNumber a, bgp::AsNumber b) {
  Node& node_a = nodes_.at(a);
  Node& node_b = nodes_.at(b);
  const bgp::PeerId id_ab = peer_id(a, b);
  const bgp::PeerId id_ba = peer_id(b, a);
  if (id_ab == bgp::kInvalidPeer || id_ba == bgp::kInvalidPeer) return;
  node_a.adjacencies[id_ab].up = false;
  node_b.adjacencies[id_ba].up = false;
  dispatch(a, node_a.speaker->peer_down(id_ab));
  dispatch(b, node_b.speaker->peer_down(id_ba));
}

void DbgpNetwork::originate(bgp::AsNumber asn, const net::Prefix& prefix) {
  dispatch(asn, nodes_.at(asn).speaker->originate(prefix));
}

void DbgpNetwork::withdraw(bgp::AsNumber asn, const net::Prefix& prefix) {
  dispatch(asn, nodes_.at(asn).speaker->withdraw_origin(prefix));
}

bgp::AsNumber DbgpNetwork::peer_as_of(bgp::AsNumber asn, bgp::PeerId peer) const {
  return nodes_.at(asn).adjacencies.at(peer).neighbor;
}

bgp::PeerId DbgpNetwork::peer_id(bgp::AsNumber a, bgp::AsNumber b) const {
  const auto& adjacencies = nodes_.at(a).adjacencies;
  for (bgp::PeerId id = 0; id < adjacencies.size(); ++id) {
    if (adjacencies[id].neighbor == b) return id;
  }
  return bgp::kInvalidPeer;
}

void DbgpNetwork::dispatch(bgp::AsNumber origin_asn, std::vector<core::DbgpOutgoing> outgoing) {
  Node& node = nodes_.at(origin_asn);
  for (auto& msg : outgoing) {
    const auto& adj = node.adjacencies.at(msg.peer);
    if (!adj.up) continue;
    const bgp::AsNumber to = adj.neighbor;
    NetworkMetrics::get().messages_in_flight->add(1);
    // The refcounted frame rides along in flight: a fan-out to N neighbors
    // schedules N events over the same bytes, no copies.
    events_.schedule_in(adj.latency, [this, origin_asn, to, frame = std::move(msg.frame)]() {
      deliver(origin_asn, to, *frame);
    });
  }
}

// Reconstructs the per-hop trace record from the wire frame. Announce frames
// are decoded a second time here (only when a tracer is attached) so the
// trace can report the carried protocols and the IA payload size.
void DbgpNetwork::trace_delivery(bgp::AsNumber from, bgp::AsNumber to,
                                 const std::vector<std::uint8_t>& bytes) {
  telemetry::TraceEvent event;
  event.time = events_.now();
  event.from_as = from;
  event.to_as = to;
  event.frame_bytes = bytes.size();
  event.frame_type = "unknown";
  try {
    util::ByteReader r(bytes);
    const auto type = static_cast<core::FrameType>(r.get_u8());
    switch (type) {
      case core::FrameType::kAnnounce: {
        event.frame_type = "announce";
        event.ia_bytes = r.remaining();
        const auto ia = ia::decode_ia(r.get_bytes(r.remaining()));
        const net::Prefix prefix = ia.destination;
        event.prefix = prefix.to_string();
        for (const auto p : ia.protocols_on_path()) {
          event.protocols.push_back(std::string(ia::default_registry().name(p)));
        }
        // "Understood" means the receiver can consume the advertisement's
        // custom control information: it runs a module for its active
        // protocol on this prefix AND the IA carries a descriptor for that
        // protocol. Everything else is D-BGP pass-through.
        const auto& receiver = *nodes_.at(to).speaker;
        const ia::ProtocolId active = receiver.active_protocol_for(prefix);
        bool carries_active = false;
        for (const auto& d : ia.path_descriptors()) carries_active |= d.protocol == active;
        for (const auto& d : ia.island_descriptors()) {
          carries_active |= d.protocol == active;
        }
        event.understood = receiver.module(active) != nullptr && carries_active;
        break;
      }
      case core::FrameType::kWithdraw:
      case core::FrameType::kNotice: {
        event.frame_type = type == core::FrameType::kWithdraw ? "withdraw" : "notice";
        const std::uint32_t addr = r.get_u32();
        const std::uint8_t len = r.get_u8();
        event.prefix = net::Prefix(net::Ipv4Address(addr), len).to_string();
        break;
      }
    }
  } catch (const util::DecodeError&) {
    // Malformed frames still appear in the trace, as "unknown".
  }
  tracer_->record(std::move(event));
}

void DbgpNetwork::deliver(bgp::AsNumber from, bgp::AsNumber to,
                          const std::vector<std::uint8_t>& bytes) {
  NetworkMetrics::get().messages_in_flight->add(-1);
  auto it = nodes_.find(to);
  if (it == nodes_.end()) return;
  const bgp::PeerId peer = peer_id(to, from);
  if (peer == bgp::kInvalidPeer || !it->second.adjacencies[peer].up) return;
  NetworkMetrics::get().frames_delivered->inc();
  NetworkMetrics::get().bytes_delivered->inc(bytes.size());
  if (tracer_ != nullptr) trace_delivery(from, to, bytes);
  try {
    if (!batch_delivery_) {
      dispatch(to, it->second.speaker->handle_frame(peer, bytes));
      return;
    }
    // Stage now; decide once per touched prefix when this node's coalesced
    // flush fires (same timestamp, after every same-time delivery).
    dispatch(to, it->second.speaker->enqueue_frame(peer, bytes));
    events_.schedule_coalesced(to, 0.0, [this, to] { flush_node(to); });
  } catch (const util::DecodeError& e) {
    DBGP_LOG(util::LogLevel::kError, kLog)
        << "AS" << to << " failed to decode frame from AS" << from << ": " << e.what();
  }
}

void DbgpNetwork::flush_node(bgp::AsNumber asn) {
  auto it = nodes_.find(asn);
  if (it == nodes_.end()) return;
  dispatch(asn, it->second.speaker->flush());
}

RunStats DbgpNetwork::run_to_convergence(std::size_t max_events) {
  return events_.run(max_events);
}

std::vector<bgp::AsNumber> DbgpNetwork::as_numbers() const {
  std::vector<bgp::AsNumber> out;
  out.reserve(nodes_.size());
  for (const auto& [asn, node] : nodes_) out.push_back(asn);
  return out;
}

}  // namespace dbgp::simnet
