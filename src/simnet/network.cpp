#include "simnet/network.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "ia/codec.h"
#include "ia/ids.h"
#include "util/bytes.h"
#include "util/logging.h"

namespace dbgp::simnet {

namespace {
constexpr auto kLog = "simnet.network";

struct NetworkMetrics {
  telemetry::Counter* frames_delivered;
  telemetry::Counter* bytes_delivered;
  telemetry::Gauge* messages_in_flight;
  // Chaos layer.
  telemetry::Counter* link_down;
  telemetry::Counter* link_up;
  telemetry::Counter* crashes;
  telemetry::Counter* restarts;
  telemetry::Counter* frames_lost;
  telemetry::Counter* frames_duplicated;
  telemetry::Counter* frames_reordered;
  telemetry::Counter* frames_corrupted;
  telemetry::Counter* frames_rejected;
  telemetry::Histogram* reconvergence;

  static NetworkMetrics& get() {
    static NetworkMetrics m = [] {
      auto& reg = telemetry::MetricsRegistry::global();
      return NetworkMetrics{
          &reg.counter("simnet.frames_delivered"),
          &reg.counter("simnet.bytes_delivered"),
          &reg.gauge("simnet.messages_in_flight"),
          &reg.counter("simnet.chaos.link_down"),
          &reg.counter("simnet.chaos.link_up"),
          &reg.counter("simnet.chaos.crashes"),
          &reg.counter("simnet.chaos.restarts"),
          &reg.counter("simnet.chaos.frames_lost"),
          &reg.counter("simnet.chaos.frames_duplicated"),
          &reg.counter("simnet.chaos.frames_reordered"),
          &reg.counter("simnet.chaos.frames_corrupted"),
          &reg.counter("simnet.chaos.frames_rejected"),
          &reg.histogram("simnet.chaos.reconvergence_seconds",
                         telemetry::Histogram::exponential_bounds(1e-3, 60.0, 2.0))};
    }();
    return m;
  }
};
}  // namespace

core::DbgpSpeaker& DbgpNetwork::add_as(core::DbgpConfig config) {
  const bgp::AsNumber asn = config.asn;
  if (nodes_.count(asn) > 0) {
    throw std::invalid_argument("AS " + std::to_string(asn) + " already exists");
  }
  Node node;
  node.speaker = std::make_unique<core::DbgpSpeaker>(std::move(config), lookup_);
  if (options_.speaker_threads > 1) {
    // One pool for the whole network, created on first use. The event loop
    // stays single-threaded; the pool only accelerates each speaker's
    // decode/decision stages inside a flush, so delivery order is untouched.
    if (speaker_pool_ == nullptr) {
      speaker_pool_ = std::make_unique<util::ThreadPool>(options_.speaker_threads);
    }
    node.speaker->set_parallel(speaker_pool_.get());
  }
  if (options_.causal != nullptr) {
    node.speaker->set_causal(options_.causal);
    // Speakers stamp spans in sim time. The lambda pins `this` — like the
    // Link back-pointers, the network must not move once ASes exist.
    node.speaker->set_clock([this] { return events_.now(); });
  }
  auto [it, inserted] = nodes_.emplace(asn, std::move(node));
  return *it->second.speaker;
}

core::DbgpSpeaker& DbgpNetwork::speaker(bgp::AsNumber asn) {
  auto it = nodes_.find(asn);
  if (it == nodes_.end()) throw std::out_of_range("no AS " + std::to_string(asn));
  return *it->second.speaker;
}

const core::DbgpSpeaker& DbgpNetwork::speaker(bgp::AsNumber asn) const {
  auto it = nodes_.find(asn);
  if (it == nodes_.end()) throw std::out_of_range("no AS " + std::to_string(asn));
  return *it->second.speaker;
}

bool DbgpNetwork::has_as(bgp::AsNumber asn) const noexcept { return nodes_.count(asn) > 0; }

// -- Links --------------------------------------------------------------------

Link& DbgpNetwork::add_link(bgp::AsNumber a, bgp::AsNumber b, bool same_island,
                            double latency) {
  if (latency < 0) latency = options_.default_latency;
  const auto key = link_key(a, b);
  if (links_.count(key) > 0) {
    throw std::invalid_argument("link AS" + std::to_string(a) + "-AS" + std::to_string(b) +
                                " already exists; use Link::set_state to re-establish it");
  }
  Node& node_a = nodes_.at(a);
  Node& node_b = nodes_.at(b);
  auto owned = std::unique_ptr<Link>(new Link(this, key.first, key.second, latency, same_island));
  Link* link = owned.get();
  links_.emplace(key, std::move(owned));
  // Peer ids are adjacency indices: add_peer and the adjacency push stay in
  // lockstep, and the entries persist across flaps, so a re-established
  // session reuses its original peer id on both sides.
  const bgp::PeerId id_ab = node_a.speaker->add_peer(b, same_island);
  const bgp::PeerId id_ba = node_b.speaker->add_peer(a, same_island);
  node_a.adjacencies.push_back({b, link});
  node_b.adjacencies.push_back({a, link});
  // Exchange current tables (the initial-sync a real session performs).
  dispatch(a, node_a.speaker->sync_peer(id_ab));
  dispatch(b, node_b.speaker->sync_peer(id_ba));
  return *link;
}

Link& DbgpNetwork::link(bgp::AsNumber a, bgp::AsNumber b) {
  auto it = links_.find(link_key(a, b));
  if (it == links_.end()) {
    throw std::out_of_range("no link AS" + std::to_string(a) + "-AS" + std::to_string(b));
  }
  return *it->second;
}

Link* DbgpNetwork::find_link(bgp::AsNumber a, bgp::AsNumber b) noexcept {
  auto it = links_.find(link_key(a, b));
  return it == links_.end() ? nullptr : it->second.get();
}

std::vector<Link*> DbgpNetwork::links() {
  std::vector<Link*> out;
  out.reserve(links_.size());
  for (auto& [key, link] : links_) out.push_back(link.get());
  return out;
}

void DbgpNetwork::on_link_state(Link& link, LinkState state) {
  if (link.state_ == state) return;
  link.state_ = state;
  const telemetry::SpanId cause =
      chaos_instant(link.a_, link.b_, state == LinkState::kDown ? "link_down" : "link_up");
  note_disruption(cause);
  // Both session endpoints see the transition; one event per end keeps the
  // journal greppable by AS.
  log_event(state == LinkState::kDown ? "session_down" : "session_up", link.a_, link.b_,
            state == LinkState::kDown ? "link_down" : "link_up", cause);
  log_event(state == LinkState::kDown ? "session_down" : "session_up", link.b_, link.a_,
            state == LinkState::kDown ? "link_down" : "link_up", cause);
  const bgp::AsNumber ends[2] = {link.a_, link.b_};
  if (state == LinkState::kDown) {
    ++link.stats_.flaps;
    ++churn_.link_flaps;
    NetworkMetrics::get().link_down->inc();
    for (const bgp::AsNumber asn : ends) {
      Node& node = nodes_.at(asn);
      if (!node.up) continue;
      const bgp::PeerId peer = peer_id(asn, link.other(asn));
      // Frames staged under batching may have come over this link; run the
      // pending decisions now, so the later flush cannot re-decide from
      // adj-in state that peer_down is about to purge. (The old disconnect()
      // skipped this and left stale routes selected until the next flush.)
      if (node.speaker->pending_batch() > 0) dispatch(asn, node.speaker->flush());
      dispatch(asn, node.speaker->peer_down(peer, cause));
    }
  } else {
    NetworkMetrics::get().link_up->inc();
    for (const bgp::AsNumber asn : ends) {
      Node& node = nodes_.at(asn);
      // Sessions only come up between live nodes; restart() completes the
      // handshake for links that rose while an endpoint was down.
      if (!node.up || !nodes_.at(link.other(asn)).up) continue;
      dispatch(asn, node.speaker->peer_up(peer_id(asn, link.other(asn)), cause));
    }
  }
}

// -- Node churn ---------------------------------------------------------------

void DbgpNetwork::crash(bgp::AsNumber asn) {
  Node& node = nodes_.at(asn);
  if (!node.up) return;
  const telemetry::SpanId cause = chaos_instant(asn, 0, "crash");
  note_disruption(cause);
  log_event("chaos", asn, 0, "crash", cause);
  node.up = false;
  ++churn_.crashes;
  NetworkMetrics::get().crashes->inc();
  // Every live neighbor sees its session drop; frames already in flight
  // toward the crashed node are discarded on arrival (deliver checks node
  // liveness).
  for (const auto& adj : node.adjacencies) {
    if (adj.link == nullptr || !adj.link->up()) continue;
    Node& neighbor = nodes_.at(adj.neighbor);
    if (!neighbor.up) continue;
    const bgp::PeerId peer = peer_id(adj.neighbor, asn);
    if (neighbor.speaker->pending_batch() > 0) dispatch(adj.neighbor, neighbor.speaker->flush());
    dispatch(adj.neighbor, neighbor.speaker->peer_down(peer, cause));
  }
}

void DbgpNetwork::restart(bgp::AsNumber asn) {
  Node& node = nodes_.at(asn);
  if (node.up) return;
  const telemetry::SpanId cause = chaos_instant(asn, 0, "restart");
  note_disruption(cause);
  log_event("chaos", asn, 0, "restart", cause);
  node.up = true;
  ++churn_.restarts;
  NetworkMetrics::get().restarts->inc();
  // Cold boot from config: all learned state is gone; only originated
  // prefixes, modules, filters, and the peer roster survive.
  node.speaker->reset_routes();
  // Align session state with current link/neighbor liveness before anything
  // is emitted. peer_up on an empty table syncs nothing, so the calls below
  // only set state.
  for (bgp::PeerId peer = 0; peer < node.adjacencies.size(); ++peer) {
    const auto& adj = node.adjacencies[peer];
    const bool viable =
        adj.link != nullptr && adj.link->up() && nodes_.at(adj.neighbor).up;
    if (viable) {
      node.speaker->peer_up(peer, cause);
    } else {
      node.speaker->peer_down(peer, cause);
    }
  }
  // Re-announce our own prefixes, then have every live neighbor re-send its
  // table over the re-established session (the refresh that re-fills the
  // wiped RIB).
  dispatch(asn, node.speaker->reevaluate_all(cause));
  for (const auto& adj : node.adjacencies) {
    if (adj.link == nullptr || !adj.link->up()) continue;
    Node& neighbor = nodes_.at(adj.neighbor);
    if (!neighbor.up) continue;
    dispatch(adj.neighbor, neighbor.speaker->peer_up(peer_id(adj.neighbor, asn), cause));
  }
}

void DbgpNetwork::restart_warm(bgp::AsNumber asn,
                               const core::DbgpSpeaker::SpeakerState& state) {
  Node& node = nodes_.at(asn);
  if (node.up) return;
  const telemetry::SpanId cause = chaos_instant(asn, 0, "restart", "warm");
  note_disruption(cause);
  log_event("chaos", asn, 0, "restart-warm", cause);
  node.up = true;
  ++churn_.restarts;
  NetworkMetrics::get().restarts->inc();
  // Warm boot: the checkpointed RIB comes back instead of a wipe. adj-out is
  // dropped — peers purged their adj-in from us at session loss, so the
  // table syncs below must not be delta-suppressed against pre-crash frames.
  node.speaker->restore_state(state, /*keep_adj_out=*/false);
  // Align session state with current link/neighbor liveness. Unlike the cold
  // path these calls emit: peer_up on the restored table is the full-table
  // re-announcement, and peer_down prunes checkpoint entries whose sessions
  // died while we were down.
  for (bgp::PeerId peer = 0; peer < node.adjacencies.size(); ++peer) {
    const auto& adj = node.adjacencies[peer];
    const bool viable =
        adj.link != nullptr && adj.link->up() && nodes_.at(adj.neighbor).up;
    if (viable) {
      dispatch(asn, node.speaker->peer_up(peer, cause));
    } else {
      dispatch(asn, node.speaker->peer_down(peer, cause));
    }
  }
  // Neighbors refresh their tables over the restored sessions; their
  // announcements replace any checkpoint entries that went stale during the
  // outage.
  for (const auto& adj : node.adjacencies) {
    if (adj.link == nullptr || !adj.link->up()) continue;
    Node& neighbor = nodes_.at(adj.neighbor);
    if (!neighbor.up) continue;
    dispatch(adj.neighbor, neighbor.speaker->peer_up(peer_id(adj.neighbor, asn), cause));
  }
}

// -- Control plane ------------------------------------------------------------

void DbgpNetwork::originate(bgp::AsNumber asn, const net::Prefix& prefix) {
  dispatch(asn, nodes_.at(asn).speaker->originate(prefix));
}

void DbgpNetwork::withdraw(bgp::AsNumber asn, const net::Prefix& prefix) {
  dispatch(asn, nodes_.at(asn).speaker->withdraw_origin(prefix));
}

void DbgpNetwork::set_speaker_threads(std::size_t threads) {
  if (threads == 0) threads = 1;
  for (const auto& [asn, node] : nodes_) {
    if (node.speaker->pending_batch() > 0) {
      throw std::runtime_error("AS " + std::to_string(asn) +
                               " has staged frames; drain (run/step) before "
                               "changing speaker-threads");
    }
  }
  options_.speaker_threads = threads;
  // Detach every speaker before the old pool dies; reattach below.
  for (auto& [asn, node] : nodes_) node.speaker->set_parallel(nullptr);
  if (threads <= 1) {
    speaker_pool_.reset();
    return;
  }
  if (speaker_pool_ == nullptr || speaker_pool_->size() != threads) {
    speaker_pool_.reset();
    speaker_pool_ = std::make_unique<util::ThreadPool>(threads);
  }
  for (auto& [asn, node] : nodes_) node.speaker->set_parallel(speaker_pool_.get());
}

bgp::AsNumber DbgpNetwork::peer_as_of(bgp::AsNumber asn, bgp::PeerId peer) const {
  return nodes_.at(asn).adjacencies.at(peer).neighbor;
}

bgp::PeerId DbgpNetwork::peer_id(bgp::AsNumber a, bgp::AsNumber b) const {
  const auto& adjacencies = nodes_.at(a).adjacencies;
  for (bgp::PeerId id = 0; id < adjacencies.size(); ++id) {
    if (adjacencies[id].neighbor == b) return id;
  }
  return bgp::kInvalidPeer;
}

void DbgpNetwork::dispatch(bgp::AsNumber origin_asn, std::vector<core::DbgpOutgoing> outgoing) {
  telemetry::CausalTracer* causal = options_.causal;
  Node& node = nodes_.at(origin_asn);
  // Deferred-decode speakers reject undecodable frames at drain time instead
  // of throwing from enqueue_frame; fold those into the same churn counters
  // the eager path's catch in deliver() feeds, so run stats match at any
  // thread count. Every speaker call that can drain is followed by a
  // dispatch of its output, which makes this the one collection point.
  if (const std::uint64_t rejected = node.speaker->take_deferred_rejects(); rejected > 0) {
    churn_.frames_rejected += rejected;
    NetworkMetrics::get().frames_rejected->inc(rejected);
    DBGP_LOG(util::LogLevel::kDebug, kLog)
        << "AS" << origin_asn << " rejected " << rejected << " staged frame(s) at drain";
  }
  for (auto& msg : outgoing) {
    auto& adj = node.adjacencies.at(msg.peer);
    Link* link = adj.link;
    if (link == nullptr || !link->up()) {
      // The frame never makes the wire; close its span where it died.
      if (causal != nullptr && msg.span != 0) {
        causal->annotate(msg.span, "dropped:link-down");
        causal->end_span(msg.span, events_.now());
      }
      continue;
    }
    const bgp::AsNumber to = adj.neighbor;
    const FaultProfile& faults = link->faults_;
    if (!faults.any()) {
      // Fault-free fast path: no RNG draws, so runs without chaos remain
      // bit-identical to the pre-chaos simulator.
      schedule_frame(origin_asn, to, std::move(msg.frame), link->latency_, msg.span);
      continue;
    }
    // Faults are decided at dispatch (send) time from the link's private
    // stream, before the delivery-mode choice, so a schedule replays
    // identically in immediate and batched modes. Fault draws annotate the
    // frame's span, so a trace shows *why* a hop misbehaved.
    util::Rng& rng = link->fault_rng_;
    if (faults.loss > 0.0 && rng.next_double() < faults.loss) {
      ++link->stats_.frames_lost;
      ++churn_.frames_lost;
      NetworkMetrics::get().frames_lost->inc();
      if (causal != nullptr && msg.span != 0) {
        causal->annotate(msg.span, "lost");
        causal->end_span(msg.span, events_.now());
      }
      continue;
    }
    ia::SharedFrame frame = std::move(msg.frame);
    if (faults.corrupt > 0.0 && rng.next_double() < faults.corrupt) {
      frame = ia::make_shared_frame(corrupt_frame(*frame, rng));
      ++link->stats_.frames_corrupted;
      ++churn_.frames_corrupted;
      NetworkMetrics::get().frames_corrupted->inc();
      if (causal != nullptr) causal->annotate(msg.span, "corrupted");
    }
    double delay = link->latency_;
    if (faults.reorder > 0.0 && rng.next_double() < faults.reorder) {
      // Extra delay pushes this frame past later ones on the same link.
      delay += faults.reorder_delay;
      ++link->stats_.frames_reordered;
      ++churn_.frames_reordered;
      NetworkMetrics::get().frames_reordered->inc();
      if (causal != nullptr) causal->annotate(msg.span, "reordered");
    }
    const bool duplicate = faults.duplicate > 0.0 && rng.next_double() < faults.duplicate;
    if (duplicate) {
      ++link->stats_.frames_duplicated;
      ++churn_.frames_duplicated;
      NetworkMetrics::get().frames_duplicated->inc();
      if (causal != nullptr) causal->annotate(msg.span, "duplicated");
      // Both copies share the span; end_span is last-delivery-wins.
      schedule_frame(origin_asn, to, frame, delay, msg.span);
    }
    schedule_frame(origin_asn, to, std::move(frame), delay, msg.span);
  }
}

void DbgpNetwork::schedule_frame(bgp::AsNumber from, bgp::AsNumber to, ia::SharedFrame frame,
                                 double delay, telemetry::SpanId span) {
  NetworkMetrics::get().messages_in_flight->add(1);
  ++in_flight_;
  // The refcounted frame rides along in flight: a fan-out to N neighbors
  // schedules N events over the same bytes, no copies.
  events_.schedule_in(delay, [this, from, to, span, frame = std::move(frame)]() {
    deliver(from, to, frame, options_.delivery, span);
  });
}

// Reconstructs the per-hop trace record from the wire frame. Announce frames
// are decoded a second time here (only when a tracer is attached) so the
// trace can report the carried protocols and the IA payload size.
void DbgpNetwork::trace_delivery(bgp::AsNumber from, bgp::AsNumber to,
                                 const std::vector<std::uint8_t>& bytes) {
  telemetry::TraceEvent event;
  event.time = events_.now();
  event.from_as = from;
  event.to_as = to;
  event.frame_bytes = bytes.size();
  event.frame_type = "unknown";
  try {
    util::ByteReader r(bytes);
    const auto type = static_cast<core::FrameType>(r.get_u8());
    switch (type) {
      case core::FrameType::kAnnounce: {
        event.frame_type = "announce";
        event.ia_bytes = r.remaining();
        const auto ia = ia::decode_ia(r.get_bytes(r.remaining()));
        const net::Prefix prefix = ia.destination;
        event.prefix = prefix.to_string();
        for (const auto p : ia.protocols_on_path()) {
          event.protocols.push_back(std::string(ia::default_registry().name(p)));
        }
        // "Understood" means the receiver can consume the advertisement's
        // custom control information: it runs a module for its active
        // protocol on this prefix AND the IA carries a descriptor for that
        // protocol. Everything else is D-BGP pass-through.
        const auto& receiver = *nodes_.at(to).speaker;
        const ia::ProtocolId active = receiver.active_protocol_for(prefix);
        bool carries_active = false;
        for (const auto& d : ia.path_descriptors()) carries_active |= d.protocol == active;
        for (const auto& d : ia.island_descriptors()) {
          carries_active |= d.protocol == active;
        }
        event.understood = receiver.module(active) != nullptr && carries_active;
        break;
      }
      case core::FrameType::kWithdraw:
      case core::FrameType::kNotice: {
        event.frame_type = type == core::FrameType::kWithdraw ? "withdraw" : "notice";
        const std::uint32_t addr = r.get_u32();
        const std::uint8_t len = r.get_u8();
        event.prefix = net::Prefix(net::Ipv4Address(addr), len).to_string();
        break;
      }
    }
  } catch (const util::DecodeError&) {
    // Malformed frames still appear in the trace, as "unknown".
  }
  options_.tracer->record(std::move(event));
}

void DbgpNetwork::deliver(bgp::AsNumber from, bgp::AsNumber to, const ia::SharedFrame& frame,
                          DeliveryMode mode, telemetry::SpanId span) {
  NetworkMetrics::get().messages_in_flight->add(-1);
  if (--in_flight_ == 0) last_zero_ = events_.now();
  // Sim-time sampling rides the delivery loop; the sampler's own interval
  // check keeps this to one comparison per frame between samples.
  if (options_.sampler != nullptr) options_.sampler->sample(events_.now());
  telemetry::CausalTracer* causal = options_.causal;
  // The wire transit ends here whether or not the receiver accepts the
  // frame; rejection reasons are annotated below.
  if (causal != nullptr && span != 0) causal->end_span(span, events_.now());
  auto it = nodes_.find(to);
  if (it == nodes_.end() || !it->second.up) {
    if (causal != nullptr) causal->annotate(span, "dropped:node-down");
    return;
  }
  const bgp::PeerId peer = peer_id(to, from);
  if (peer == bgp::kInvalidPeer) return;
  const Link* link = it->second.adjacencies[peer].link;
  if (link == nullptr || !link->up()) {
    if (causal != nullptr) causal->annotate(span, "dropped:link-down");
    return;
  }
  const std::vector<std::uint8_t>& bytes = *frame;
  NetworkMetrics::get().frames_delivered->inc();
  NetworkMetrics::get().bytes_delivered->inc(bytes.size());
  if (options_.tracer != nullptr) trace_delivery(from, to, bytes);
  try {
    if (mode == DeliveryMode::kImmediate) {
      dispatch(to, it->second.speaker->handle_frame(peer, bytes, span));
      return;
    }
    // Stage now; decide once per touched prefix when this node's coalesced
    // flush fires (same timestamp, after every same-time delivery). Handing
    // over the refcounted frame lets deferred-decode speakers stage the
    // wire bytes without a copy.
    dispatch(to, it->second.speaker->enqueue_frame(peer, frame, span));
    events_.schedule_coalesced(to, 0.0, [this, to] { flush_node(to); });
  } catch (const util::DecodeError& e) {
    // The decode throw fires before any adj-in mutation, so a mangled frame
    // is rejected without poisoning the receiver's state. Expected under an
    // active corruption profile; an error otherwise.
    ++churn_.frames_rejected;
    NetworkMetrics::get().frames_rejected->inc();
    if (causal != nullptr) causal->annotate(span, "rejected:decode-error");
    const auto level = link->faults_.corrupt > 0.0 ? util::LogLevel::kDebug
                                                   : util::LogLevel::kError;
    DBGP_LOG(level, kLog) << "AS" << to << " failed to decode frame from AS" << from << ": "
                          << e.what();
  }
}

void DbgpNetwork::flush_node(bgp::AsNumber asn) {
  auto it = nodes_.find(asn);
  if (it == nodes_.end() || !it->second.up) return;
  if (options_.causal != nullptr && it->second.speaker->pending_batch() > 0) {
    options_.causal->instant(telemetry::SpanKind::kFlush, 0, events_.now(),
                             asn, 0, "flush");
  }
  dispatch(asn, it->second.speaker->flush());
}

void DbgpNetwork::log_event(std::string kind, std::uint32_t as, std::uint32_t peer_as,
                            std::string detail, telemetry::SpanId span) {
  if (options_.event_log == nullptr) return;
  options_.event_log->record(events_.now(), std::move(kind), as, peer_as, std::move(detail),
                             span);
}

telemetry::SpanId DbgpNetwork::chaos_instant(std::uint32_t as, std::uint32_t peer_as,
                                             std::string_view name, std::string detail) {
  if (options_.causal == nullptr) return 0;
  return options_.causal->instant(telemetry::SpanKind::kChaos, 0, events_.now(), as,
                                  peer_as, name, /*prefix=*/{}, std::move(detail));
}

// -- Re-convergence clock -----------------------------------------------------

void DbgpNetwork::note_disruption(telemetry::SpanId cause) {
  // A window that already settled (in-flight back to zero) is committed
  // before the new one opens; overlapping disruptions merge into one window.
  if (disruption_open_ && in_flight_ == 0 && last_zero_ > disruption_start_) {
    close_disruption_window();
  }
  if (!disruption_open_) {
    disruption_open_ = true;
    disruption_start_ = events_.now();
    window_cause_ = cause;
  }
}

void DbgpNetwork::close_disruption_window() {
  if (!disruption_open_) return;
  disruption_open_ = false;
  const double end = std::max(last_zero_, disruption_start_);
  NetworkMetrics::get().reconvergence->record(end - disruption_start_);
  if (options_.event_log != nullptr) {
    // Stamped at the window's end (when the last in-flight frame settled),
    // not at the drain that detected it.
    char detail[64];
    std::snprintf(detail, sizeof(detail), "start=%.6f duration=%.6f", disruption_start_,
                  end - disruption_start_);
    options_.event_log->record(end, "reconvergence", 0, 0, detail, window_cause_);
  }
  if (options_.causal != nullptr) {
    const telemetry::SpanId w =
        options_.causal->begin_span(telemetry::SpanKind::kWindow, window_cause_,
                                    disruption_start_, 0, 0, "reconvergence");
    options_.causal->end_span(w, end);
  }
  window_cause_ = 0;
}

void DbgpNetwork::inject(bgp::AsNumber from, std::vector<core::DbgpOutgoing> outgoing) {
  dispatch(from, std::move(outgoing));
}

RunStats DbgpNetwork::run_until(double until, std::size_t max_events) {
  RunStats stats = events_.run_until(until, max_events);
  events_.advance_to(until);
  // Close the sampling gap a sparse event schedule leaves: the history ends
  // at `until`, not at the last delivered frame.
  if (options_.sampler != nullptr) options_.sampler->sample(until);
  stats.link_flaps = churn_.link_flaps;
  stats.crashes = churn_.crashes;
  stats.restarts = churn_.restarts;
  stats.frames_lost = churn_.frames_lost;
  stats.frames_duplicated = churn_.frames_duplicated;
  stats.frames_reordered = churn_.frames_reordered;
  stats.frames_corrupted = churn_.frames_corrupted;
  stats.frames_rejected = churn_.frames_rejected;
  return stats;
}

RunStats DbgpNetwork::run_to_convergence(std::size_t max_events) {
  RunStats stats = events_.run(max_events);
  if (!stats.capped) close_disruption_window();
  if (options_.sampler != nullptr) options_.sampler->sample(events_.now());
  stats.link_flaps = churn_.link_flaps;
  stats.crashes = churn_.crashes;
  stats.restarts = churn_.restarts;
  stats.frames_lost = churn_.frames_lost;
  stats.frames_duplicated = churn_.frames_duplicated;
  stats.frames_reordered = churn_.frames_reordered;
  stats.frames_corrupted = churn_.frames_corrupted;
  stats.frames_rejected = churn_.frames_rejected;
  return stats;
}

std::vector<bgp::AsNumber> DbgpNetwork::as_numbers() const {
  std::vector<bgp::AsNumber> out;
  out.reserve(nodes_.size());
  for (const auto& [asn, node] : nodes_) out.push_back(asn);
  return out;
}

}  // namespace dbgp::simnet
