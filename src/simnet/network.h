// DbgpNetwork: hosts one DbgpSpeaker per AS on the event queue and moves
// frames between them over latency links — the MiniNeXT stand-in for the
// paper's deployment experiments (Section 6.1, Figure 8).
//
// Every byte crossing a link is a real serialized frame: speakers encode and
// decode IAs exactly as they would on the wire, so the experiments exercise
// the full codec and pipeline, not shortcuts.
//
// Links are first-class objects (simnet/link.h): `add_link` returns a Link&
// whose state and FaultProfile drive session churn and per-frame faults;
// nodes can crash() and restart() (restart clears the speaker's RIB/IA-DB
// and re-learns from peers via full-table sync). One Options struct carries
// the knobs that used to be scattered setters, and both delivery modes go
// through the single deliver(frame, DeliveryMode) entry point so a chaos
// schedule interleaves identically whether processing is immediate or
// batched.
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/lookup_service.h"
#include "core/speaker.h"
#include "simnet/event_queue.h"
#include "simnet/link.h"
#include "telemetry/event_log.h"
#include "telemetry/sampler.h"
#include "telemetry/trace.h"
#include "util/thread_pool.h"

namespace dbgp::simnet {

class DbgpNetwork {
 public:
  struct Options {
    double default_latency = 0.010;
    // Frame processing at the receiver; see DeliveryMode. Immediate keeps
    // the deployment scenarios' traces bit-identical to the pre-batching
    // pipeline.
    DeliveryMode delivery = DeliveryMode::kImmediate;
    // IA propagation tracer: every delivered frame is recorded as a per-hop
    // TraceEvent (announce frames are additionally decoded for the carried
    // protocols, at a cost — leave unset on hot benchmark paths).
    telemetry::PropagationTracer* tracer = nullptr;
    // Causal tracer: originations mint traces, frames carry parent spans,
    // decisions emit audit records, and chaos events land on the same
    // timeline (telemetry/causal.h). Unset = zero overhead: speakers mint no
    // ids and the delivery path takes no extra branches beyond one null
    // check.
    telemetry::CausalTracer* causal = nullptr;
    // Time-series sampler: the delivery loop ticks it at event granularity
    // (the sampler enforces its own minimum interval), so metric histories
    // advance in sim time without a separate timer event. Unset = one null
    // check per delivery.
    telemetry::TimeSeriesSampler* sampler = nullptr;
    // Structured event journal: session up/down transitions, chaos events,
    // and reconvergence windows are recorded as JSONL-ready events carrying
    // the causal span of their trigger (telemetry/event_log.h).
    telemetry::EventLog* event_log = nullptr;
    // Worker threads for each speaker's sharded batch pipeline
    // (DbgpSpeaker::set_parallel). 0/1 = fully sequential (no pool is
    // created). >1 takes effect only under DeliveryMode::kBatched — the
    // immediate path processes one frame at a time and has no batch to
    // shard. The speakers' plan/commit split keeps emitted frames, RIBs,
    // and audits bit-identical at any value, so this is a pure throughput
    // knob. All speakers share one network-owned pool; shard count defaults
    // to the pool size.
    std::size_t speaker_threads = 1;
  };

  // Two overloads instead of one defaulted Options argument: a nested
  // class's member initializers are unusable as a default argument before
  // the enclosing class is complete.
  explicit DbgpNetwork(core::LookupService* lookup = nullptr) : lookup_(lookup) {}
  DbgpNetwork(core::LookupService* lookup, Options options)
      : lookup_(lookup), options_(options) {}

  // Adds an AS running a D-BGP speaker with the given config. The AS number
  // in `config` must be unique within the network.
  core::DbgpSpeaker& add_as(core::DbgpConfig config);
  core::DbgpSpeaker& speaker(bgp::AsNumber asn);
  const core::DbgpSpeaker& speaker(bgp::AsNumber asn) const;
  bool has_as(bgp::AsNumber asn) const noexcept;

  // -- Links ----------------------------------------------------------------
  // Creates the link and establishes the peering sessions (each side
  // registers the other as a peer and syncs its table). `same_island` marks
  // an intra-island adjacency (egress filters are skipped over it). One link
  // per AS pair: reconnects go through Link::set_state, not a second
  // add_link.
  Link& add_link(bgp::AsNumber a, bgp::AsNumber b, bool same_island = false,
                 double latency = -1.0);
  // The link between two ASes; throws std::out_of_range if absent.
  Link& link(bgp::AsNumber a, bgp::AsNumber b);
  // nullptr instead of throwing.
  Link* find_link(bgp::AsNumber a, bgp::AsNumber b) noexcept;
  // Every link, ordered by normalized (min, max) endpoint pair.
  std::vector<Link*> links();

  // -- Node churn -----------------------------------------------------------
  // Crashes an AS: its sessions drop (every live neighbor purges what it
  // learned from it), and frames in flight toward it are lost. The speaker
  // object survives but is unreachable until restart().
  void crash(bgp::AsNumber asn);
  // Restarts a crashed AS: the speaker's learned state is wiped
  // (DbgpSpeaker::reset_routes), it re-announces its originated prefixes,
  // and every live neighbor re-syncs its full table over the restored
  // sessions.
  void restart(bgp::AsNumber asn);
  // Graceful restart: like restart(), but the speaker re-learns from `state`
  // (a SpeakerState checkpointed before the crash) instead of a cold RIB
  // wipe. The warm speaker re-announces its whole table over the restored
  // sessions (its adj-out is dropped, since peers purged everything at
  // session loss), and neighbors still refresh theirs, which replaces any
  // checkpoint entries that went stale while the node was down. Unlike a
  // cold restart the node holds its routes throughout — no transient
  // unreachability between restart and re-sync.
  void restart_warm(bgp::AsNumber asn, const core::DbgpSpeaker::SpeakerState& state);
  bool node_up(bgp::AsNumber asn) const { return nodes_.at(asn).up; }

  // Originates a prefix at an AS and queues the resulting advertisements.
  void originate(bgp::AsNumber asn, const net::Prefix& prefix);
  void withdraw(bgp::AsNumber asn, const net::Prefix& prefix);

  // Drains the event queue. The control plane has converged when the result
  // is not capped; a capped result means the max_events safety valve fired
  // with frames still in flight. The returned RunStats additionally carries
  // the network's cumulative churn counters (flaps, crashes, per-frame
  // faults) so chaos runs can be compared and replay-checked field by field.
  RunStats run_to_convergence(std::size_t max_events = 10'000'000);
  // Partial drain for a long-lived serving process: runs events with
  // timestamps <= `until`, then moves the clock to `until` even if the queue
  // drained early, so commands injected afterwards are stamped at the
  // scripted time. Does not close the reconvergence window (the disruption
  // may still be settling); a later full drain does.
  RunStats run_until(double until, std::size_t max_events = 10'000'000);
  // Hands speaker-produced frames to the wire. Runtime reconfiguration (the
  // route server's reload-policy / upgrade-protocol paths) calls speaker
  // methods directly and injects the resulting advertisements here.
  void inject(bgp::AsNumber from, std::vector<core::DbgpOutgoing> outgoing);

  Options& options() noexcept { return options_; }
  const Options& options() const noexcept { return options_; }

  // Live reconfiguration of Options::speaker_threads: resizes (or drops) the
  // shared pool and rewires every speaker. Refuses with std::runtime_error
  // while any speaker holds staged frames — a resize mid-flush would split
  // one logical batch across two pipeline configurations; flush first.
  // Determinism is unaffected either way (outputs are bit-identical at any
  // thread count); the refusal keeps the batch boundaries a replay sees
  // aligned with the reconfiguration timeline.
  void set_speaker_threads(std::size_t threads);
  std::size_t speaker_threads() const noexcept { return options_.speaker_threads; }

  EventQueue& events() noexcept { return events_; }
  core::LookupService* lookup() noexcept { return lookup_; }
  std::vector<bgp::AsNumber> as_numbers() const;

  // Resolves which AS a speaker's peer id refers to.
  bgp::AsNumber peer_as_of(bgp::AsNumber asn, bgp::PeerId peer) const;
  // Peer id of `b` as seen from `a`; kInvalidPeer if not adjacent.
  bgp::PeerId peer_id(bgp::AsNumber a, bgp::AsNumber b) const;

 private:
  friend class Link;

  struct Node {
    std::unique_ptr<core::DbgpSpeaker> speaker;
    bool up = true;
    // peer id -> the neighbor and the link carrying the session. One entry
    // per neighbor for the node's lifetime; flaps reuse it.
    struct Adjacency {
      bgp::AsNumber neighbor = 0;
      Link* link = nullptr;
    };
    std::vector<Adjacency> adjacencies;
  };

  // Session-state transition for a link (called via Link::set_state).
  void on_link_state(Link& link, LinkState state);
  // The single delivery entry point shared by both modes: link/node checks,
  // telemetry, tracing, and decode-failure rejection happen identically;
  // only the final hand-off differs (handle_frame vs enqueue + coalesced
  // flush).
  void deliver(bgp::AsNumber from, bgp::AsNumber to, const ia::SharedFrame& frame,
               DeliveryMode mode, telemetry::SpanId span);
  void flush_node(bgp::AsNumber asn);
  // Applies the out-link's fault profile and schedules delivery events.
  void dispatch(bgp::AsNumber origin_asn, std::vector<core::DbgpOutgoing> outgoing);
  void schedule_frame(bgp::AsNumber from, bgp::AsNumber to, ia::SharedFrame frame,
                      double delay, telemetry::SpanId span);
  void trace_delivery(bgp::AsNumber from, bgp::AsNumber to,
                      const std::vector<std::uint8_t>& bytes);
  // Records a chaos event on the causal timeline; returns its span (0 when
  // causal tracing is off) so session churn it provokes can chain to it.
  telemetry::SpanId chaos_instant(std::uint32_t as, std::uint32_t peer_as,
                                  std::string_view name, std::string detail = {});
  // Appends to Options::event_log (no-op when unset), stamped at sim now.
  void log_event(std::string kind, std::uint32_t as, std::uint32_t peer_as,
                 std::string detail, telemetry::SpanId span = 0);
  // Re-convergence clock: a disruption (flap/crash/restart) opens a window
  // that closes at the last time the in-flight frame count touched zero.
  // `cause` is the chaos span of the disruption; the first one to open a
  // window becomes the window span's parent.
  void note_disruption(telemetry::SpanId cause = 0);
  void close_disruption_window();
  static std::pair<bgp::AsNumber, bgp::AsNumber> link_key(bgp::AsNumber a,
                                                          bgp::AsNumber b) noexcept {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  EventQueue events_;
  core::LookupService* lookup_;
  Options options_;
  // Shared worker pool for the speakers' sharded pipelines; created lazily
  // by the first add_as when options_.speaker_threads > 1. Lives above
  // nodes_ in declaration order so it outlives every speaker holding a
  // pointer to it.
  std::unique_ptr<util::ThreadPool> speaker_pool_;
  std::map<bgp::AsNumber, Node> nodes_;
  std::map<std::pair<bgp::AsNumber, bgp::AsNumber>, std::unique_ptr<Link>> links_;

  // Cumulative churn accounting, mirrored into RunStats on every
  // run_to_convergence (and into the telemetry registry as it happens).
  struct Churn {
    std::uint64_t link_flaps = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t frames_lost = 0;
    std::uint64_t frames_duplicated = 0;
    std::uint64_t frames_reordered = 0;
    std::uint64_t frames_corrupted = 0;
    std::uint64_t frames_rejected = 0;
  } churn_;

  // Re-convergence window state (see note_disruption).
  std::int64_t in_flight_ = 0;
  double last_zero_ = 0.0;
  bool disruption_open_ = false;
  double disruption_start_ = 0.0;
  // Chaos span of the disruption that opened the current window.
  telemetry::SpanId window_cause_ = 0;
};

}  // namespace dbgp::simnet
