// DbgpNetwork: hosts one DbgpSpeaker per AS on the event queue and moves
// frames between them over latency links — the MiniNeXT stand-in for the
// paper's deployment experiments (Section 6.1, Figure 8).
//
// Every byte crossing a link is a real serialized frame: speakers encode and
// decode IAs exactly as they would on the wire, so the experiments exercise
// the full codec and pipeline, not shortcuts.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/lookup_service.h"
#include "core/speaker.h"
#include "simnet/event_queue.h"
#include "telemetry/trace.h"

namespace dbgp::simnet {

class DbgpNetwork {
 public:
  explicit DbgpNetwork(core::LookupService* lookup = nullptr,
                       double default_latency = 0.010)
      : lookup_(lookup), default_latency_(default_latency) {}

  // Adds an AS running a D-BGP speaker with the given config. The AS number
  // in `config` must be unique within the network.
  core::DbgpSpeaker& add_as(core::DbgpConfig config);
  core::DbgpSpeaker& speaker(bgp::AsNumber asn);
  const core::DbgpSpeaker& speaker(bgp::AsNumber asn) const;
  bool has_as(bgp::AsNumber asn) const noexcept;

  // Connects two ASes (registers each as the other's peer). `same_island`
  // marks an intra-island adjacency (egress filters are skipped over it).
  void connect(bgp::AsNumber a, bgp::AsNumber b, bool same_island = false,
               double latency = -1.0);

  // Originates a prefix at an AS and queues the resulting advertisements.
  void originate(bgp::AsNumber asn, const net::Prefix& prefix);
  void withdraw(bgp::AsNumber asn, const net::Prefix& prefix);
  // Tears down the adjacency between two ASes (session failure).
  void disconnect(bgp::AsNumber a, bgp::AsNumber b);

  // Drains the event queue. The control plane has converged when the result
  // is not capped; a capped result means the max_events safety valve fired
  // with frames still in flight.
  RunStats run_to_convergence(std::size_t max_events = 10'000'000);

  // Attaches an IA propagation tracer: every delivered frame is recorded as
  // a per-hop TraceEvent (announce frames are additionally decoded for the
  // carried protocols, at a cost — leave unset on hot benchmark paths).
  void set_tracer(telemetry::PropagationTracer* tracer) noexcept { tracer_ = tracer; }

  // Opt-in batched delivery: frames arriving at a node are staged into its
  // speaker (DbgpSpeaker::enqueue_frame) and one coalesced flush event per
  // (node, timestamp) runs the decision process per touched prefix. Off by
  // default: immediate per-frame processing, which keeps the deployment
  // scenarios' traces bit-identical to the pre-batching pipeline.
  void set_batch_delivery(bool on) noexcept { batch_delivery_ = on; }
  bool batch_delivery() const noexcept { return batch_delivery_; }

  EventQueue& events() noexcept { return events_; }
  core::LookupService* lookup() noexcept { return lookup_; }
  std::vector<bgp::AsNumber> as_numbers() const;

  // Resolves which AS a speaker's peer id refers to.
  bgp::AsNumber peer_as_of(bgp::AsNumber asn, bgp::PeerId peer) const;
  // Peer id of `b` as seen from `a`; kInvalidPeer if not adjacent.
  bgp::PeerId peer_id(bgp::AsNumber a, bgp::AsNumber b) const;

 private:
  struct Node {
    std::unique_ptr<core::DbgpSpeaker> speaker;
    // peer id -> (neighbor asn, latency, up?)
    struct Adjacency {
      bgp::AsNumber neighbor = 0;
      double latency = 0.0;
      bool up = true;
    };
    std::vector<Adjacency> adjacencies;
  };

  void deliver(bgp::AsNumber from, bgp::AsNumber to,
               const std::vector<std::uint8_t>& bytes);
  void flush_node(bgp::AsNumber asn);
  void dispatch(bgp::AsNumber origin_asn, std::vector<core::DbgpOutgoing> outgoing);
  void trace_delivery(bgp::AsNumber from, bgp::AsNumber to,
                      const std::vector<std::uint8_t>& bytes);

  EventQueue events_;
  core::LookupService* lookup_;
  double default_latency_;
  std::map<bgp::AsNumber, Node> nodes_;
  telemetry::PropagationTracer* tracer_ = nullptr;
  bool batch_delivery_ = false;
};

}  // namespace dbgp::simnet
