#include "telemetry/causal.h"

#include "telemetry/metrics.h"

namespace dbgp::telemetry {

namespace {
// Registry mirror of the drop counter so a capped trace is visible in any
// metrics snapshot, not only to callers holding the tracer.
Counter& dropped_counter() {
  static Counter& c = MetricsRegistry::global().counter("telemetry.causal.dropped");
  return c;
}
}  // namespace

const char* to_string(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kOrigination: return "origination";
    case SpanKind::kFrame: return "frame";
    case SpanKind::kDecision: return "decision";
    case SpanKind::kFilter: return "filter";
    case SpanKind::kChaos: return "chaos";
    case SpanKind::kFlush: return "flush";
    case SpanKind::kWindow: return "window";
  }
  return "?";
}

void CausalTracer::note_dropped() {
  ++dropped_;
  dropped_counter().inc();
}

SpanId CausalTracer::begin_span(SpanKind kind, SpanId parent, double start,
                                std::uint32_t as, std::uint32_t peer_as,
                                std::string_view name, std::string prefix,
                                std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  const SpanId id = next_id_++;
  if (spans_.size() >= limit_) {
    note_dropped();
    return id;
  }
  Span span;
  span.id = id;
  span.parent = parent;
  // Roots start their own trace; children inherit. A parent that was itself
  // dropped yields trace 0 — the child chain survives with parent links
  // intact but no trace grouping.
  span.trace = parent == 0 ? id
               : parent <= spans_.size() ? spans_[parent - 1].trace
                                         : 0;
  span.kind = kind;
  span.start = start;
  span.end = -1.0;
  span.as = as;
  span.peer_as = peer_as;
  span.name.assign(name);
  span.prefix = std::move(prefix);
  span.detail = std::move(detail);
  spans_.push_back(std::move(span));
  return id;
}

void CausalTracer::end_span(SpanId id, double end) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].end = end;
}

void CausalTracer::annotate(SpanId id, std::string_view detail) {
  if (detail.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  std::string& d = spans_[id - 1].detail;
  if (!d.empty()) d += ',';
  d += detail;
}

SpanId CausalTracer::instant(SpanKind kind, SpanId parent, double at, std::uint32_t as,
                             std::uint32_t peer_as, std::string_view name,
                             std::string prefix, std::string detail) {
  const SpanId id =
      begin_span(kind, parent, at, as, peer_as, name, std::move(prefix), std::move(detail));
  end_span(id, at);
  return id;
}

void CausalTracer::record_audit(DecisionAudit audit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (audits_.size() >= limit_) {
    note_dropped();
    return;
  }
  audits_.push_back(std::move(audit));
}

TraceId CausalTracer::trace_of(SpanId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return 0;
  return spans_[id - 1].trace;
}

std::vector<Span> CausalTracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<DecisionAudit> CausalTracer::audits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return audits_;
}

std::vector<DecisionAudit> CausalTracer::audits_since(std::size_t start) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (start >= audits_.size()) return {};
  return {audits_.begin() + static_cast<std::ptrdiff_t>(start), audits_.end()};
}

std::size_t CausalTracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::size_t CausalTracer::audit_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return audits_.size();
}

std::size_t CausalTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void CausalTracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  audits_.clear();
  next_id_ = 1;
  dropped_ = 0;
}

}  // namespace dbgp::telemetry
