// Causal update tracing and route provenance.
//
// The paper's deployment results (Section 6.1, Figure 8) are causal claims:
// *this* origination crossed *that* gulf and triggered *those* route
// changes. The flat per-hop PropagationTracer cannot answer "why does AS X
// use path P for prefix Q at time T" — this tracer can, because it records
// the causal structure itself:
//
//   * every origination mints a root span whose id doubles as the trace id;
//   * every emitted frame carries a span whose parent is the decision (or
//     origination) that produced it; the span's [start, end] is the frame's
//     wire transit in sim time;
//   * every decision-process run emits a DecisionAudit — the candidate set,
//     the exact step that selected or rejected each candidate, and the
//     resulting RIB delta — linked to the span of the inbound update that
//     triggered it;
//   * chaos events (flaps, crashes, restarts, fault windows), per-node batch
//     flushes, and reconvergence windows appear as instants/durations on the
//     same timeline.
//
// Provenance queries (tools/dbgp_explain, telemetry/provenance.h) walk the
// parent links backward from any RIB state to its origination; the Perfetto
// exporter (telemetry/perfetto_export.h) renders the same data as a
// per-AS-track timeline for chrome://tracing / ui.perfetto.dev.
//
// Ids are minted from a per-tracer counter, so a deterministic simulation
// yields a byte-identical trace. Storage is bounded like PropagationTracer:
// past the limit, spans/audits are counted (and surfaced via the
// `telemetry.causal.dropped` registry counter) but not stored; dropped span
// ids are still minted so causality stays consistent for the stored prefix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dbgp::telemetry {

// 0 means "no span" / "no parent" everywhere.
using SpanId = std::uint64_t;
// A trace groups everything caused by one origination; the trace id is the
// root span's id.
using TraceId = std::uint64_t;

enum class SpanKind : std::uint8_t {
  kOrigination,  // root: originate / withdraw-origin at the owning AS
  kFrame,        // wire transit of one emitted frame (announce/withdraw/notice)
  kDecision,     // one decision-process run at a receiver
  kFilter,       // a global import filter dropped the inbound IA
  kChaos,        // link_down/link_up/crash/restart/faults_set/faults_cleared
  kFlush,        // coalesced per-node batch flush
  kWindow,       // reconvergence window (disruption -> in-flight drain)
};

const char* to_string(SpanKind kind) noexcept;

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 for roots
  TraceId trace = 0;  // inherited from the parent chain; own id for roots
  SpanKind kind = SpanKind::kFrame;
  double start = 0.0;  // sim seconds
  double end = -1.0;   // < start while open; == start for instants
  std::uint32_t as = 0;       // acting AS (the sender, for frames)
  std::uint32_t peer_as = 0;  // the receiver, for frames and link events
  std::string name;           // "originate", "announce", "decision", "link_down", ...
  std::string prefix;         // destination prefix where applicable
  std::string detail;         // comma-separated annotations ("lost", "corrupted", ...)
};

// One candidate considered by a decision-process run.
struct AuditCandidate {
  std::uint32_t neighbor_as = 0;
  std::string path;      // the candidate's path vector
  SpanId via_span = 0;   // frame span that delivered this candidate
  bool eligible = true;  // module import filter verdict
  // The exact step that decided this candidate's fate: "selected",
  // "origin-overrides", "ineligible:<module>", "lost:<step>" (local-pref,
  // as-path-length, origin, med, peer-id, arrival-order, preference, ...),
  // "tie-break:peer-order", "lost:path-length", "lost:arrival-order".
  std::string outcome;
};

// One decision-process run: candidates, per-candidate verdicts, RIB delta.
struct DecisionAudit {
  SpanId span = 0;  // the decision's own span
  double time = 0.0;
  std::uint32_t as = 0;
  std::string prefix;
  std::vector<AuditCandidate> candidates;
  bool origin = false;  // locally originated prefix won
  int selected = -1;    // index into candidates; -1 = origin route or unreachable
  bool changed = false; // RIB delta: the selection changed
  std::string best_path;  // resulting path vector; empty = unreachable
  std::string prev_path;  // previous selection; empty = none
  // Provenance backlink: the span that installed the selected route — a
  // frame span for learned routes, the origination span for local ones,
  // 0 when the prefix became unreachable.
  SpanId best_via = 0;
};

class CausalTracer {
 public:
  explicit CausalTracer(std::size_t limit = kDefaultLimit) : limit_(limit) {}

  // Opens a span. `parent` 0 makes a root (trace = own id); otherwise the
  // trace id is inherited from the parent. Returns the minted id; ids keep
  // incrementing past the storage limit (the span is counted as dropped).
  SpanId begin_span(SpanKind kind, SpanId parent, double start, std::uint32_t as,
                    std::uint32_t peer_as, std::string_view name,
                    std::string prefix = {}, std::string detail = {});
  // Closes a span; safe (a no-op) for dropped or unknown ids. May be called
  // again (a duplicated frame delivers twice; the last delivery wins).
  void end_span(SpanId id, double end);
  // Appends a comma-separated annotation to a span's detail.
  void annotate(SpanId id, std::string_view detail);
  // begin + end at one timestamp.
  SpanId instant(SpanKind kind, SpanId parent, double at, std::uint32_t as,
                 std::uint32_t peer_as, std::string_view name,
                 std::string prefix = {}, std::string detail = {});

  void record_audit(DecisionAudit audit);

  // Trace id of a stored span (0 for dropped/unknown ids).
  TraceId trace_of(SpanId id) const;

  std::vector<Span> spans() const;
  std::vector<DecisionAudit> audits() const;
  // Copies the audits stored at index >= `start`, for incremental consumers
  // (the route server's divergence watchdog polls with audit_count() as its
  // cursor instead of re-copying the whole log every interval).
  std::vector<DecisionAudit> audits_since(std::size_t start) const;
  std::size_t span_count() const;
  std::size_t audit_count() const;
  // Spans + audits that hit the cap and were not stored.
  std::size_t dropped() const;
  void clear();

  static constexpr std::size_t kDefaultLimit = 1'000'000;

 private:
  void note_dropped();  // mu_ held

  mutable std::mutex mu_;
  std::vector<Span> spans_;  // spans_[id - 1]; ids are dense from 1
  std::vector<DecisionAudit> audits_;
  SpanId next_id_ = 1;
  std::size_t limit_;
  std::size_t dropped_ = 0;
};

}  // namespace dbgp::telemetry
