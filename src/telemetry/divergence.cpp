#include "telemetry/divergence.h"

#include <algorithm>

namespace dbgp::telemetry {

void OscillationDetector::observe(const DecisionAudit& audit) {
  if (audit.time > now_) now_ = audit.time;
  if (!audit.changed) return;
  auto& flips = flips_[{audit.as, audit.prefix}];
  flips.push_back(audit.time);
  prune(flips);
}

void OscillationDetector::prune(std::deque<double>& flips) const {
  const double cutoff = now_ - options_.window;
  while (!flips.empty() && flips.front() < cutoff) flips.pop_front();
}

std::size_t OscillationDetector::oscillating() const {
  std::size_t count = 0;
  const double cutoff = now_ - options_.window;
  for (const auto& [key, flips] : flips_) {
    std::size_t live = 0;
    for (const double t : flips) live += t >= cutoff ? 1 : 0;
    count += live >= options_.threshold ? 1 : 0;
  }
  return count;
}

std::vector<std::pair<std::string, std::size_t>> OscillationDetector::report() const {
  std::vector<std::pair<std::string, std::size_t>> out;
  const double cutoff = now_ - options_.window;
  for (const auto& [key, flips] : flips_) {
    std::size_t live = 0;
    for (const double t : flips) live += t >= cutoff ? 1 : 0;
    if (live >= options_.threshold) {
      out.emplace_back("AS" + std::to_string(key.first) + " " + key.second, live);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

void OscillationDetector::clear() {
  now_ = 0.0;
  flips_.clear();
}

}  // namespace dbgp::telemetry
