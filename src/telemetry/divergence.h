// Sliding-window oscillation detector over the causal audit log — the route
// server's divergence watchdog.
//
// A long-lived daemon cannot rely on "the queue drained, so we converged":
// a policy clash (e.g. a dispute wheel built out of runtime reload-policy
// commands) can keep the network flipping between selections forever while
// every individual drain looks healthy. The detector watches DecisionAudits
// incrementally: every audit with `changed` set counts as one selection flip
// for its (as, prefix) key; a key whose flip count inside the trailing
// `window` seconds reaches `threshold` is flagged as oscillating. The daemon
// mirrors the flagged-key count into the
// `server.divergence.oscillating_prefixes` gauge and surfaces it in `health`.
//
// Feed it slices from CausalTracer::audits_since using audit_count() as the
// cursor — audits are dense and never rotated, so an index cursor is stable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/causal.h"

namespace dbgp::telemetry {

class OscillationDetector {
 public:
  struct Options {
    double window = 5.0;       // trailing window, sim seconds
    std::size_t threshold = 8; // flips inside the window that flag a key
  };

  OscillationDetector() = default;
  explicit OscillationDetector(Options options) : options_(options) {}

  // Ingests one audit (only `changed` audits advance any counter; the rest
  // still advance the clock so stale entries age out).
  void observe(const DecisionAudit& audit);
  void observe(const std::vector<DecisionAudit>& audits) {
    for (const auto& a : audits) observe(a);
  }

  // Keys whose flip count within [now - window, now] is >= threshold.
  std::size_t oscillating() const;
  // The flagged (as, prefix) keys with their current flip counts, worst
  // first — `health`'s detail lines.
  std::vector<std::pair<std::string, std::size_t>> report() const;

  double now() const noexcept { return now_; }
  const Options& options() const noexcept { return options_; }
  void clear();

 private:
  void prune(std::deque<double>& flips) const;

  Options options_;
  double now_ = 0.0;
  // (as, prefix) -> timestamps of selection changes inside the window.
  std::map<std::pair<std::uint32_t, std::string>, std::deque<double>> flips_;
};

}  // namespace dbgp::telemetry
