#include "telemetry/event_log.h"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace dbgp::telemetry {

void EventLog::record(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= limit_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<Event> EventLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<Event> EventLog::events_since(std::size_t start) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (start >= events_.size()) return {};
  return {events_.begin() + static_cast<std::ptrdiff_t>(start), events_.end()};
}

void EventLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

util::json::Value EventLog::to_json(const Event& event) {
  util::json::Value v{util::json::Object{}};
  v.set("time", event.time);
  v.set("kind", event.kind);
  v.set("as", static_cast<std::uint64_t>(event.as));
  v.set("peer_as", static_cast<std::uint64_t>(event.peer_as));
  v.set("detail", event.detail);
  v.set("span", event.span);
  return v;
}

std::string EventLog::to_jsonl() const {
  std::vector<Event> copy = events();
  std::string out;
  for (const Event& e : copy) {
    out += to_json(e).dump(-1);
    out.push_back('\n');
  }
  return out;
}

void EventLog::write_jsonl(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("cannot open " + path + " for writing");
  file << to_jsonl();
  if (!file.good()) throw std::runtime_error("write failed: " + path);
}

}  // namespace dbgp::telemetry
