// Structured JSONL event log: the control-plane happenings a time-series
// sampler is too coarse for.
//
// Where the sampler (sampler.h) answers "how fast", this log answers "what
// happened when": session up/down transitions, chaos events, reconvergence
// windows, and convergence-oracle verdicts, each as one self-contained JSON
// object per line (JSONL) so a `tail -f | jq` pipeline works against a live
// daemon and trace_check can validate the shape offline. Events carry the
// causal span id when the producer has one, linking each line back into the
// PR 4 trace DAG.
//
// Storage is bounded like the tracers: past `limit`, events are counted as
// dropped but not stored (the newest events are the ones lost — the log is
// an append-only journal, not a ring, so line order matches write order and
// an external tailer never sees rewritten history).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/causal.h"
#include "util/json.h"

namespace dbgp::telemetry {

struct Event {
  double time = 0.0;
  std::string kind;  // "session_up","session_down","chaos","reconvergence","oracle"
  std::uint32_t as = 0;       // acting AS (0 = network-wide)
  std::uint32_t peer_as = 0;  // counterpart, for session events
  std::string detail;         // free-form ("link_down", "verdict=oscillating", ...)
  SpanId span = 0;            // causal backlink (0 = tracing off / not applicable)
};

class EventLog {
 public:
  explicit EventLog(std::size_t limit = kDefaultLimit) : limit_(limit) {}

  void record(Event event);
  void record(double time, std::string kind, std::uint32_t as, std::uint32_t peer_as,
              std::string detail, SpanId span = 0) {
    record(Event{time, std::move(kind), as, peer_as, std::move(detail), span});
  }

  std::size_t size() const;
  std::size_t dropped() const;
  std::vector<Event> events() const;
  // Events at index >= start, for incremental consumers (cursor = size()).
  std::vector<Event> events_since(std::size_t start) const;
  void clear();

  // One compact JSON object per line:
  //   {"time":t,"kind":"...","as":n,"peer_as":n,"detail":"...","span":n}
  static util::json::Value to_json(const Event& event);
  std::string to_jsonl() const;
  // Writes to_jsonl() to `path`; throws std::runtime_error on IO failure.
  void write_jsonl(const std::string& path) const;

  static constexpr std::size_t kDefaultLimit = 262'144;

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::size_t dropped_ = 0;
  std::size_t limit_;
};

}  // namespace dbgp::telemetry
