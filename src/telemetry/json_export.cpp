#include "telemetry/json_export.h"

#include <stdexcept>

namespace dbgp::telemetry {

using util::json::Array;
using util::json::Object;
using util::json::Value;

Value to_json(const MetricsSnapshot& snapshot) {
  Object counters;
  for (const auto& c : snapshot.counters) {
    counters.emplace_back(c.name, Value(c.value));
  }

  Object gauges;
  for (const auto& g : snapshot.gauges) {
    Object entry;
    entry.emplace_back("value", Value(g.value));
    entry.emplace_back("high_water", Value(g.high_water));
    gauges.emplace_back(g.name, Value(std::move(entry)));
  }

  Object histograms;
  for (const auto& h : snapshot.histograms) {
    Object entry;
    entry.emplace_back("count", Value(h.count));
    entry.emplace_back("sum", Value(h.sum));
    entry.emplace_back("min", Value(h.min));
    entry.emplace_back("max", Value(h.max));
    entry.emplace_back("mean", Value(h.mean));
    entry.emplace_back("p50", Value(h.p50));
    entry.emplace_back("p95", Value(h.p95));
    entry.emplace_back("p99", Value(h.p99));
    Array buckets;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      Object bucket;
      if (i < h.bounds.size()) {
        bucket.emplace_back("le", Value(h.bounds[i]));
      } else {
        bucket.emplace_back("le", Value("inf"));
      }
      bucket.emplace_back("count", Value(h.buckets[i]));
      buckets.push_back(Value(std::move(bucket)));
    }
    entry.emplace_back("buckets", Value(std::move(buckets)));
    histograms.emplace_back(h.name, Value(std::move(entry)));
  }

  Object root;
  root.emplace_back("counters", Value(std::move(counters)));
  root.emplace_back("gauges", Value(std::move(gauges)));
  root.emplace_back("histograms", Value(std::move(histograms)));
  return Value(std::move(root));
}

Value to_json(const PropagationTracer& tracer) {
  Array events;
  for (const auto& e : tracer.events()) {
    Object entry;
    entry.emplace_back("time", Value(e.time));
    entry.emplace_back("from_as", Value(static_cast<std::uint64_t>(e.from_as)));
    entry.emplace_back("to_as", Value(static_cast<std::uint64_t>(e.to_as)));
    entry.emplace_back("frame", Value(e.frame_type));
    entry.emplace_back("prefix", Value(e.prefix));
    entry.emplace_back("frame_bytes", Value(e.frame_bytes));
    entry.emplace_back("ia_bytes", Value(e.ia_bytes));
    Array protocols;
    for (const auto& p : e.protocols) protocols.push_back(Value(p));
    entry.emplace_back("protocols", Value(std::move(protocols)));
    entry.emplace_back("understood", Value(e.understood));
    events.push_back(Value(std::move(entry)));
  }
  Object root;
  root.emplace_back("events", Value(std::move(events)));
  root.emplace_back("dropped", Value(tracer.dropped()));
  return Value(std::move(root));
}

namespace {

const Value& member(const Value& v, const char* key) {
  const Value* m = v.find(key);
  if (m == nullptr) {
    throw std::runtime_error(std::string("metrics json: missing member '") + key + "'");
  }
  return *m;
}

}  // namespace

MetricsSnapshot snapshot_from_json(const Value& value) {
  MetricsSnapshot snap;
  for (const auto& [name, v] : member(value, "counters").as_object()) {
    snap.counters.push_back({name, static_cast<std::uint64_t>(v.as_double())});
  }
  for (const auto& [name, v] : member(value, "gauges").as_object()) {
    GaugeSnapshot g;
    g.name = name;
    g.value = static_cast<std::int64_t>(member(v, "value").as_double());
    g.high_water = static_cast<std::int64_t>(member(v, "high_water").as_double());
    snap.gauges.push_back(std::move(g));
  }
  for (const auto& [name, v] : member(value, "histograms").as_object()) {
    HistogramSnapshot h;
    h.name = name;
    h.count = static_cast<std::uint64_t>(member(v, "count").as_double());
    h.sum = member(v, "sum").as_double();
    h.min = member(v, "min").as_double();
    h.max = member(v, "max").as_double();
    h.mean = member(v, "mean").as_double();
    h.p50 = member(v, "p50").as_double();
    h.p95 = member(v, "p95").as_double();
    h.p99 = member(v, "p99").as_double();
    for (const auto& bucket : member(v, "buckets").as_array()) {
      const Value& le = member(bucket, "le");
      if (le.is_number()) h.bounds.push_back(le.as_double());
      h.buckets.push_back(
          static_cast<std::uint64_t>(member(bucket, "count").as_double()));
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void write_metrics_json(const std::string& path, const MetricsSnapshot& snapshot) {
  util::json::write_file(path, to_json(snapshot));
}

void write_trace_json(const std::string& path, const PropagationTracer& tracer) {
  util::json::write_file(path, to_json(tracer));
}

}  // namespace dbgp::telemetry
