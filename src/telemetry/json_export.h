// JSON views of telemetry state: metrics snapshots and propagation traces.
//
// Export shapes (consumed by tools/bench_report and by the BENCH_*.json
// trajectory; keep stable):
//
//   metrics:  { "counters":   { "<name>": <value>, ... },
//               "gauges":     { "<name>": {"value":v,"high_water":h}, ... },
//               "histograms": { "<name>": {"count","sum","min","max","mean",
//                                          "p50","p95","p99",
//                                          "buckets":[{"le":b,"count":n},...,
//                                                     {"le":"inf","count":n}]}}}
//
//   trace:    { "events": [ {"time","from_as","to_as","frame","prefix",
//                            "frame_bytes","ia_bytes","protocols":[...],
//                            "understood"}, ... ],
//               "dropped": n }
#pragma once

#include <string>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/json.h"

namespace dbgp::telemetry {

util::json::Value to_json(const MetricsSnapshot& snapshot);
util::json::Value to_json(const PropagationTracer& tracer);

// Reconstructs the numeric content of a snapshot from its JSON form (the
// inverse of to_json up to double precision); throws std::runtime_error on
// shape mismatch. Used by round-trip tests and external analysis tools.
MetricsSnapshot snapshot_from_json(const util::json::Value& value);

// Serializes and writes to `path` (pretty-printed); throws on IO failure.
void write_metrics_json(const std::string& path, const MetricsSnapshot& snapshot);
void write_trace_json(const std::string& path, const PropagationTracer& tracer);

}  // namespace dbgp::telemetry
