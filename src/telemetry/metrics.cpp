#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace dbgp::telemetry {

namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal

void set_enabled(bool on) noexcept {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {

void atomic_add_double(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Honors DBGP_TELEMETRY=0/off once, at first global-registry access.
void apply_env_override() {
  const char* env = std::getenv("DBGP_TELEMETRY");
  if (env == nullptr) return;
  const std::string v(env);
  if (v == "0" || v == "off" || v == "false") set_enabled(false);
}

}  // namespace

// -- Histogram ----------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_bounds();
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::record(double v) noexcept {
  if (!enabled()) return;
  const std::uint64_t prior = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
  if (prior == 0) {
    // First sample seeds min/max; racing recorders correct it below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  atomic_min_double(min_, v);
  atomic_max_double(max_, v);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = std::max(1.0, (p / 100.0) * static_cast<double>(n));
  const double lo_clamp = min();
  const double hi_clamp = max();
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double lower = std::max(i == 0 ? lo_clamp : bounds_[i - 1], lo_clamp);
      const double upper = std::min(i == bounds_.size() ? hi_clamp : bounds_[i], hi_clamp);
      const double frac =
          (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return std::clamp(lower + frac * (upper - lower), lo_clamp, hi_clamp);
    }
    cumulative += in_bucket;
  }
  return hi_clamp;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi, double factor) {
  std::vector<double> bounds;
  for (double b = lo; b < hi * factor; b *= factor) bounds.push_back(b);
  return bounds;
}

std::vector<double> Histogram::default_latency_bounds() {
  // 100 ns .. ~13 s doubling: 28 buckets, covering sub-microsecond codec
  // operations through multi-second convergence runs.
  return exponential_bounds(1e-7, 10.0, 2.0);
}

// -- Snapshot lookups ---------------------------------------------------------

namespace {
template <typename T>
const T* find_by_name(const std::vector<T>& items, std::string_view name) noexcept {
  for (const auto& item : items) {
    if (item.name == name) return &item;
  }
  return nullptr;
}
}  // namespace

const CounterSnapshot* MetricsSnapshot::find_counter(std::string_view name) const noexcept {
  return find_by_name(counters, name);
}
const GaugeSnapshot* MetricsSnapshot::find_gauge(std::string_view name) const noexcept {
  return find_by_name(gauges, name);
}
const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name) const noexcept {
  return find_by_name(histograms, name);
}

// -- Registry -----------------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = [] {
    apply_env_override();
    return new MetricsRegistry();  // leaked: metrics outlive static teardown
  }();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name),
                         std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<Histogram>(new Histogram(
                                             std::string(name), std::move(bounds))))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value(), g->high_water()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    hs.mean = h->mean();
    hs.p50 = h->percentile(50.0);
    hs.p95 = h->percentile(95.0);
    hs.p99 = h->percentile(99.0);
    hs.bounds = h->bounds();
    hs.buckets = h->bucket_counts();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace dbgp::telemetry
