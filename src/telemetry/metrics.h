// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms.
//
// The paper's evaluation is built on measurement (the Section 5 stress test,
// Tables 2-3 overhead accounting, Figures 9-10 benefit curves); this registry
// is the substrate every layer records into. Design goals, in order:
//
//   1. Hot-path cheapness: metric objects are looked up once (by name, under
//      a mutex) and then updated through plain relaxed atomics — an `inc()`
//      is one atomic add plus one relaxed flag load. Codec and decision hot
//      paths pay nanoseconds, and a registry-wide kill switch
//      (`set_enabled(false)`) reduces every update to a load + branch.
//   2. Stable references: metrics are never destroyed or moved once created,
//      so callers may cache `Counter*` across the process lifetime.
//   3. Determinism-friendliness: snapshots are sorted by name so exported
//      JSON is byte-stable for identical runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dbgp::telemetry {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

// Global kill switch. Disabled metrics cost one relaxed load + branch per
// update; timers additionally skip their clock reads. Defaults to on, unless
// the environment variable DBGP_TELEMETRY is "0" or "off" at first registry
// access (used by the bench overhead comparison).
inline bool enabled() noexcept {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

// Monotonic event count (messages processed, bytes moved, drops, ...).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

// Instantaneous level (queue depth, messages in flight) with a high-water
// mark, the statistic the convergence analysis actually wants.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
    raise_high_water(v);
  }
  void add(std::int64_t delta) noexcept {
    if (!enabled()) return;
    const std::int64_t v = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    raise_high_water(v);
  }
  std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  std::int64_t high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    high_water_.store(0, std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void raise_high_water(std::int64_t v) noexcept {
    std::int64_t hw = high_water_.load(std::memory_order_relaxed);
    while (v > hw &&
           !high_water_.compare_exchange_weak(hw, v, std::memory_order_relaxed)) {
    }
  }
  std::string name_;
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> high_water_{0};
};

// Fixed-bucket histogram. Bucket i counts samples <= bounds[i] (and greater
// than bounds[i-1]); one implicit overflow bucket catches the rest. Bounds
// are fixed at creation so recording is a binary search plus a relaxed add —
// no allocation, no locks.
class Histogram {
 public:
  void record(double v) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  // Smallest / largest recorded sample; 0.0 when empty.
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;
  // Percentile estimate (p in [0,100]) by linear interpolation inside the
  // owning bucket, clamped to the observed [min, max]. Returns 0.0 when
  // empty — histograms, like util::percentile, never invoke UB on no data.
  double percentile(double p) const noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  // Per-bucket counts; size is bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;
  const std::string& name() const noexcept { return name_; }

  // Exponentially spaced bounds from `lo` to >= `hi` (factor > 1), the
  // layout used for latency (seconds) and size (bytes) histograms.
  static std::vector<double> exponential_bounds(double lo, double hi, double factor);
  // Default layout for latency histograms: 100 ns .. ~13 s, factor 2.
  static std::vector<double> default_latency_bounds();

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);

  std::string name_;
  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// -- Snapshots ---------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
  std::int64_t high_water = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1, last = overflow
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;      // sorted by name
  std::vector<GaugeSnapshot> gauges;          // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name

  const CounterSnapshot* find_counter(std::string_view name) const noexcept;
  const GaugeSnapshot* find_gauge(std::string_view name) const noexcept;
  const HistogramSnapshot* find_histogram(std::string_view name) const noexcept;
};

// -- Registry ----------------------------------------------------------------

class MetricsRegistry {
 public:
  // The process-wide registry every subsystem records into.
  static MetricsRegistry& global();

  // Returns the metric with `name`, creating it on first use. References
  // remain valid for the registry's lifetime. A histogram's bounds are fixed
  // by the first call; later calls ignore `bounds`.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;
  // Zeroes every metric (metrics themselves persist; cached pointers stay
  // valid). Tests and benches call this to isolate runs.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace dbgp::telemetry
