#include "telemetry/oracle.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace dbgp::telemetry {

const char* to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kConverged: return "converged";
    case Verdict::kDiverged: return "diverged";
    case Verdict::kOscillating: return "oscillating";
  }
  return "?";
}

namespace {

// One selection change: the signature is the resulting best path ("" for
// unreachable) — the per-prefix RIB state the trajectory moved to.
struct Flip {
  std::string signature;
  SpanId span = 0;
  double time = 0.0;
};

struct KeyHistory {
  std::vector<Flip> flips;      // every `changed` audit, in trace order
  bool ever_reachable = false;  // some audit selected a non-empty path
  std::string final_path;       // best_path of the last audit seen
};

}  // namespace

ConvergenceOracle::RunReport ConvergenceOracle::classify(const CausalTracer& tracer) const {
  return classify(tracer.spans(), tracer.audits());
}

ConvergenceOracle::RunReport ConvergenceOracle::classify(
    const std::vector<Span>& spans, const std::vector<DecisionAudit>& audits) const {
  RunReport report;

  // Chaos settles at the last chaos event (fault injection and its repairs
  // are both kChaos); selection changes before that are disturbance-driven.
  for (const Span& s : spans) {
    if (s.kind != SpanKind::kChaos) continue;
    report.settled_after = std::max(report.settled_after, std::max(s.start, s.end));
  }

  // Prefixes whose origin deliberately withdrew: ending unreachable is then
  // the *correct* fixed point.
  std::set<std::string> withdrawn;
  for (const Span& s : spans) {
    if (s.kind == SpanKind::kOrigination && s.name == "withdraw-origin") {
      withdrawn.insert(s.prefix);
    }
  }

  std::map<std::pair<std::uint32_t, std::string>, KeyHistory> history;
  for (const DecisionAudit& a : audits) {
    KeyHistory& h = history[{a.as, a.prefix}];
    if (!a.best_path.empty()) h.ever_reachable = true;
    h.final_path = a.best_path;
    if (a.changed) h.flips.push_back({a.best_path, a.span, a.time});
  }

  for (auto& [key, h] : history) {
    PrefixReport pr;
    pr.as = key.first;
    pr.prefix = key.second;
    pr.flips = h.flips.size();
    pr.final_path = h.final_path;

    // Post-chaos trajectory: the part of the selection sequence that must
    // settle for the run to count as converged.
    std::vector<const Flip*> settled;
    for (const Flip& f : h.flips) {
      if (!options_.ignore_chaos_window || f.time > report.settled_after) {
        settled.push_back(&f);
      }
    }
    pr.post_chaos_flips = settled.size();

    // Cycle detection: a signature revisited cycle_threshold+ times means
    // the trajectory keeps returning to the same per-prefix RIB state.
    std::map<std::string, std::vector<std::size_t>> occurrences;
    for (std::size_t i = 0; i < settled.size(); ++i) {
      occurrences[settled[i]->signature].push_back(i);
    }
    const std::vector<std::size_t>* cycle = nullptr;
    for (const auto& [sig, idx] : occurrences) {
      if (idx.size() < options_.cycle_threshold) continue;
      if (cycle == nullptr || idx.size() > cycle->size()) {
        cycle = &idx;
        pr.cycle_signature = sig;
      }
    }

    if (settled.size() >= options_.min_flips && cycle != nullptr) {
      pr.verdict = Verdict::kOscillating;
      // Evidence: one full period — every decision from one visit of the
      // recurring signature to its next visit, inclusive.
      const std::size_t from = (*cycle)[cycle->size() - 2];
      const std::size_t to = cycle->back();
      for (std::size_t i = from; i <= to; ++i) pr.evidence.push_back(settled[i]->span);
      pr.reason = "selection revisited \"" + pr.cycle_signature + "\" " +
                  std::to_string(cycle->size()) + "x across " +
                  std::to_string(pr.post_chaos_flips) + " post-chaos changes";
    } else if (h.final_path.empty() && h.ever_reachable &&
               withdrawn.count(pr.prefix) == 0) {
      pr.verdict = Verdict::kDiverged;
      pr.reason = "route lost and never restored (no withdraw-origin in trace)";
    } else {
      pr.verdict = Verdict::kConverged;
      pr.reason = h.final_path.empty() ? "settled unreachable (origin withdrew)"
                                       : "settled on \"" + h.final_path + "\"";
    }

    switch (pr.verdict) {
      case Verdict::kConverged: ++report.converged; break;
      case Verdict::kDiverged: ++report.diverged; break;
      case Verdict::kOscillating: ++report.oscillating; break;
    }
    if (static_cast<std::uint8_t>(pr.verdict) > static_cast<std::uint8_t>(report.verdict)) {
      report.verdict = pr.verdict;
    }
    report.prefixes.push_back(std::move(pr));
  }

  // Worst verdict first; within a class, most flips first, then stable key
  // order so the report is deterministic.
  std::sort(report.prefixes.begin(), report.prefixes.end(),
            [](const PrefixReport& a, const PrefixReport& b) {
              if (a.verdict != b.verdict) {
                return static_cast<std::uint8_t>(a.verdict) >
                       static_cast<std::uint8_t>(b.verdict);
              }
              if (a.flips != b.flips) return a.flips > b.flips;
              if (a.as != b.as) return a.as < b.as;
              return a.prefix < b.prefix;
            });
  return report;
}

util::json::Value to_json(const ConvergenceOracle::RunReport& report) {
  using util::json::Array;
  using util::json::Object;
  using util::json::Value;
  Value root{Object{}};
  root.set("verdict", to_string(report.verdict));
  root.set("converged", static_cast<std::uint64_t>(report.converged));
  root.set("diverged", static_cast<std::uint64_t>(report.diverged));
  root.set("oscillating", static_cast<std::uint64_t>(report.oscillating));
  root.set("settled_after", report.settled_after);
  Array prefixes;
  for (const auto& pr : report.prefixes) {
    Value p{Object{}};
    p.set("as", static_cast<std::uint64_t>(pr.as));
    p.set("prefix", pr.prefix);
    p.set("verdict", to_string(pr.verdict));
    p.set("flips", static_cast<std::uint64_t>(pr.flips));
    p.set("post_chaos_flips", static_cast<std::uint64_t>(pr.post_chaos_flips));
    p.set("final_path", pr.final_path);
    if (pr.verdict == Verdict::kOscillating) {
      p.set("cycle_signature", pr.cycle_signature);
      Array ev;
      for (SpanId id : pr.evidence) ev.push_back(id);
      p.set("evidence_spans", std::move(ev));
    }
    p.set("reason", pr.reason);
    prefixes.push_back(std::move(p));
  }
  root.set("prefixes", std::move(prefixes));
  return root;
}

}  // namespace dbgp::telemetry
