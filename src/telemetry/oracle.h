// Convergence oracle: per-prefix convergence classification over the causal
// trace DAG.
//
// "The queue drained" is not a convergence proof, and PR 6's sliding-window
// watchdog (divergence.h) is a heuristic: it flags fast flipping but cannot
// tell a chaos-induced reconvergence burst from a genuine dispute wheel, and
// it never notices routes that silently stayed lost. This oracle classifies
// each (as, prefix) pair — and the run — from the recorded history itself
// (PR 4 spans + DecisionAudits), following the shape of the Daggitt–Griffin
// convergence criteria (arXiv 2106.01184): a run converges iff every node's
// selection sequence reaches a fixed point consistent with the surviving
// originations.
//
//   * oscillating — the post-chaos selection sequence revisits the same RIB
//     state signature (the selected path vector) `cycle_threshold`+ times:
//     the trajectory is cycling, not settling. Evidence is one full period
//     of the cycle as decision span ids, so `dbgp_explain`/Perfetto can
//     replay the offending loop. Flips that happen while chaos is still
//     injecting faults are excluded by default — "BGP Stability is
//     Precarious" (arXiv 1108.0192) oscillation is a property of the
//     *undisturbed* system, and counting fault-window churn would flag every
//     chaos scenario.
//   * diverged — the prefix was reachable at this AS and the run ended with
//     it unreachable, with no withdraw-origin in the trace to justify the
//     loss (e.g. the origin crashed and never came back). A deliberate
//     withdrawal is a converged final state, not divergence.
//   * converged — everything else: the selection sequence reached a fixed
//     point consistent with the originations that survived the run.
//
// The run verdict is the worst prefix verdict (oscillating > diverged >
// converged). Validated against the known half-wiser-ring diverger from
// PR 6 (tests/oracle_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/causal.h"
#include "util/json.h"

namespace dbgp::telemetry {

enum class Verdict : std::uint8_t { kConverged = 0, kDiverged = 1, kOscillating = 2 };

const char* to_string(Verdict verdict) noexcept;

class ConvergenceOracle {
 public:
  struct Options {
    // A selection signature recurring this many times flags a cycle.
    std::size_t cycle_threshold = 3;
    // Minimum post-chaos selection changes before oscillation is considered
    // (keeps plain reconvergence ripples below the bar).
    std::size_t min_flips = 4;
    // Ignore selection changes made while chaos was still active (before
    // the last kChaos span); false classifies the raw trajectory.
    bool ignore_chaos_window = true;
  };

  struct PrefixReport {
    std::uint32_t as = 0;
    std::string prefix;
    Verdict verdict = Verdict::kConverged;
    std::size_t flips = 0;             // total selection changes
    std::size_t post_chaos_flips = 0;  // changes after the last chaos event
    std::string final_path;            // selection at end of trace ("" = unreachable)
    std::string cycle_signature;       // the recurring path, for oscillating
    std::vector<SpanId> evidence;      // decision spans of one full cycle period
    std::string reason;                // one-line human explanation
  };

  struct RunReport {
    Verdict verdict = Verdict::kConverged;
    std::size_t converged = 0;    // (as, prefix) pairs per class
    std::size_t diverged = 0;
    std::size_t oscillating = 0;
    double settled_after = 0.0;   // time of the last chaos event (0 = none)
    std::vector<PrefixReport> prefixes;  // every pair, worst verdict first

    bool ok() const noexcept { return verdict == Verdict::kConverged; }
  };

  ConvergenceOracle() = default;
  explicit ConvergenceOracle(Options options) : options_(options) {}

  RunReport classify(const CausalTracer& tracer) const;
  RunReport classify(const std::vector<Span>& spans,
                     const std::vector<DecisionAudit>& audits) const;

  const Options& options() const noexcept { return options_; }

 private:
  Options options_;
};

// Full report as JSON (dbgp_run --observe writes this next to the metrics).
util::json::Value to_json(const ConvergenceOracle::RunReport& report);

}  // namespace dbgp::telemetry
