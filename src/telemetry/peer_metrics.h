// Per-peer session metrics: first-class labeled counters both speakers
// (core::DbgpSpeaker and bgp::BgpSpeaker) thread through their hot paths.
//
// The registry (metrics.h) is flat-name keyed; labels ride inside the name
// behind a '|' in "k=v,k=v" form — "bgp.peer.updates_in|as=1,peer=2" — the
// convention prom_export.h splits back into a Prometheus label block and the
// ControlApi's `peers` verb tabulates. Pointers are resolved once per
// (speaker, peer) at add_peer time, so the per-update cost stays a relaxed
// atomic add, same as every other speaker metric.
//
// Aggregated dbgp.speaker.* / bgp.speaker.* counters are unchanged; these
// labeled series answer the question those cannot: *which* session is
// flapping, rejecting, or backing up.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "telemetry/metrics.h"

namespace dbgp::telemetry {

struct PeerMetrics {
  Counter* updates_in = nullptr;    // announcements received from the peer
  Counter* updates_out = nullptr;   // advertisements emitted toward the peer
  Counter* withdraws_in = nullptr;
  Counter* withdraws_out = nullptr;
  Counter* rejects = nullptr;       // filter/module/decode rejections of its input
  Counter* flaps = nullptr;         // session-down transitions
  Gauge* adj_out_depth = nullptr;   // routes currently advertised to the peer
                                    // (BgpSpeaker: MRAI queue depth instead)

  // `scope` is "dbgp.peer" or "bgp.peer"; `as` the owning speaker, `peer_as`
  // the session counterpart.
  static PeerMetrics create(std::string_view scope, std::uint32_t as,
                            std::uint32_t peer_as) {
    auto& reg = MetricsRegistry::global();
    const std::string labels =
        "|as=" + std::to_string(as) + ",peer=" + std::to_string(peer_as);
    auto name = [&](const char* field) {
      return std::string(scope) + "." + field + labels;
    };
    PeerMetrics m;
    m.updates_in = &reg.counter(name("updates_in"));
    m.updates_out = &reg.counter(name("updates_out"));
    m.withdraws_in = &reg.counter(name("withdraws_in"));
    m.withdraws_out = &reg.counter(name("withdraws_out"));
    m.rejects = &reg.counter(name("rejects"));
    m.flaps = &reg.counter(name("flaps"));
    m.adj_out_depth = &reg.gauge(name("adj_out_depth"));
    return m;
  }
};

}  // namespace dbgp::telemetry
