#include "telemetry/perfetto_export.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "util/json.h"

namespace dbgp::telemetry {

using util::json::Array;
using util::json::Object;
using util::json::Value;

namespace {

constexpr double kMicros = 1e6;  // sim seconds -> trace-event microseconds

Object base_event(const char* ph, const Span& s, double ts,
                  std::uint64_t tid) {
  Object e;
  e.emplace_back("name", Value(s.name.empty() ? to_string(s.kind) : s.name));
  e.emplace_back("cat", Value(to_string(s.kind)));
  e.emplace_back("ph", Value(ph));
  e.emplace_back("ts", Value(ts));
  e.emplace_back("pid", Value(std::uint64_t{1}));
  e.emplace_back("tid", Value(tid));
  return e;
}

Value span_args(const Span& s) {
  Object args;
  args.emplace_back("span", Value(s.id));
  if (s.parent != 0) args.emplace_back("parent", Value(s.parent));
  if (s.trace != 0) args.emplace_back("trace", Value(s.trace));
  if (!s.prefix.empty()) args.emplace_back("prefix", Value(s.prefix));
  if (s.peer_as != 0)
    args.emplace_back("peer_as", Value(static_cast<std::uint64_t>(s.peer_as)));
  if (!s.detail.empty()) args.emplace_back("detail", Value(s.detail));
  return Value(std::move(args));
}

void add_flow(Array& events, const Span& child, const Span& parent) {
  // Flow arrow parent -> child, drawn only when the link crosses tracks
  // (same-track links are visible as nesting already).
  Object s;
  s.emplace_back("name", Value("cause"));
  s.emplace_back("cat", Value("flow"));
  s.emplace_back("ph", Value("s"));
  s.emplace_back("id", Value(child.id));
  s.emplace_back("ts", Value(parent.start * kMicros));
  s.emplace_back("pid", Value(std::uint64_t{1}));
  s.emplace_back("tid", Value(static_cast<std::uint64_t>(parent.as)));
  events.push_back(Value(std::move(s)));

  Object f;
  f.emplace_back("name", Value("cause"));
  f.emplace_back("cat", Value("flow"));
  f.emplace_back("ph", Value("f"));
  f.emplace_back("bp", Value("e"));
  f.emplace_back("id", Value(child.id));
  f.emplace_back("ts", Value(child.start * kMicros));
  f.emplace_back("pid", Value(std::uint64_t{1}));
  f.emplace_back("tid", Value(static_cast<std::uint64_t>(child.as)));
  events.push_back(Value(std::move(f)));
}

}  // namespace

std::string to_perfetto_json(const CausalTracer& tracer) {
  const std::vector<Span> spans = tracer.spans();

  Array events;

  // Track naming: one thread per AS, plus track 0 for network-wide windows.
  std::set<std::uint64_t> tids;
  for (const Span& s : spans) {
    tids.insert(s.kind == SpanKind::kWindow ? 0
                                            : static_cast<std::uint64_t>(s.as));
  }
  {
    Object pm;
    pm.emplace_back("name", Value("process_name"));
    pm.emplace_back("ph", Value("M"));
    pm.emplace_back("pid", Value(std::uint64_t{1}));
    Object pargs;
    pargs.emplace_back("name", Value("dbgp simnet"));
    pm.emplace_back("args", Value(std::move(pargs)));
    events.push_back(Value(std::move(pm)));
  }
  for (std::uint64_t tid : tids) {
    Object tm;
    tm.emplace_back("name", Value("thread_name"));
    tm.emplace_back("ph", Value("M"));
    tm.emplace_back("pid", Value(std::uint64_t{1}));
    tm.emplace_back("tid", Value(tid));
    Object targs;
    targs.emplace_back("name",
                       Value(tid == 0 ? std::string("network")
                                      : "AS" + std::to_string(tid)));
    tm.emplace_back("args", Value(std::move(targs)));
    events.push_back(Value(std::move(tm)));
  }

  // Collect (ts, event) pairs so the output is stably ts-sorted — a
  // structural requirement dbgp_trace_check enforces.
  std::vector<std::pair<double, Value>> timed;
  timed.reserve(spans.size() * 2);
  Array flows;  // emitted after sorting, interleaved by ts

  for (const Span& s : spans) {
    const double ts = s.start * kMicros;
    const double end = (s.end >= s.start ? s.end : s.start) * kMicros;
    const std::uint64_t tid =
        s.kind == SpanKind::kWindow ? 0 : static_cast<std::uint64_t>(s.as);

    switch (s.kind) {
      case SpanKind::kDecision: {
        // B/E pair on the deciding AS's track — decisions are instantaneous
        // in sim time but the pair keeps per-candidate args attached and
        // nests under nothing (frames are X events, so no overlap issues).
        Object b = base_event("B", s, ts, tid);
        b.emplace_back("args", span_args(s));
        timed.emplace_back(ts, Value(std::move(b)));
        Object e = base_event("E", s, end, tid);
        timed.emplace_back(end, Value(std::move(e)));
        break;
      }
      case SpanKind::kFrame:
      case SpanKind::kWindow: {
        // Complete events: frames overlap freely on the sender track and
        // windows span the whole network, so X (which tolerates overlap in
        // both viewers) is the right phase.
        Object x = base_event("X", s, ts, tid);
        x.emplace_back("dur", Value(end - ts));
        x.emplace_back("args", span_args(s));
        timed.emplace_back(ts, Value(std::move(x)));
        break;
      }
      default: {
        Object i = base_event("i", s, ts, tid);
        i.emplace_back("s", Value("t"));  // thread-scoped instant
        i.emplace_back("args", span_args(s));
        timed.emplace_back(ts, Value(std::move(i)));
        break;
      }
    }

    if (s.parent != 0) {
      const Span* parent =
          s.parent <= spans.size() ? &spans[s.parent - 1] : nullptr;
      if (parent != nullptr && parent->as != s.as &&
          s.kind != SpanKind::kWindow) {
        add_flow(flows, s, *parent);
      }
    }
  }

  for (Value& f : flows) {
    timed.emplace_back(f.find("ts")->as_double(), std::move(f));
  }
  std::stable_sort(timed.begin(), timed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [ts, v] : timed) {
    (void)ts;
    events.push_back(std::move(v));
  }

  Object root;
  root.emplace_back("traceEvents", Value(std::move(events)));
  root.emplace_back("displayTimeUnit", Value("ms"));
  Object meta;
  meta.emplace_back("tool", Value("dbgp"));
  meta.emplace_back("spans", Value(static_cast<std::uint64_t>(spans.size())));
  meta.emplace_back("audits", Value(static_cast<std::uint64_t>(tracer.audit_count())));
  meta.emplace_back("dropped", Value(static_cast<std::uint64_t>(tracer.dropped())));
  root.emplace_back("otherData", Value(std::move(meta)));
  return Value(std::move(root)).dump(-1);
}

bool write_perfetto_json(const CausalTracer& tracer, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_perfetto_json(tracer) << '\n';
  return out.good();
}

}  // namespace dbgp::telemetry
