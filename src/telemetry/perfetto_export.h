// Chrome trace-event (Perfetto-compatible) export of a causal trace.
//
// Renders a CausalTracer snapshot as the JSON object format understood by
// chrome://tracing and ui.perfetto.dev: one process, one thread (track) per
// AS (tid = AS number, named via M metadata events), decisions as B/E pairs,
// frame transits as "X" complete events on the sender's track (dur = wire
// transit), chaos/flush/filter events as "i" instants, reconvergence windows
// as "X" on track 0, and flow arrows ("s"/"f") wherever a parent link crosses
// tracks. Timestamps are sim-seconds scaled to microseconds.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/causal.h"

namespace dbgp::telemetry {

std::string to_perfetto_json(const CausalTracer& tracer);
// Returns false (and writes nothing) when the file cannot be opened.
bool write_perfetto_json(const CausalTracer& tracer, const std::string& path);

}  // namespace dbgp::telemetry
