#include "telemetry/prom_export.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

namespace dbgp::telemetry {

namespace {

std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  const auto as_int = static_cast<std::int64_t>(v);
  char buf[64];
  if (static_cast<double>(as_int) == v && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(as_int));
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", v);
  }
  return buf;
}

// Inserts an extra label ("le") into a rendered label block.
std::string with_extra_label(const std::string& labels, const std::string& key,
                             const std::string& value) {
  std::string extra = key + "=\"" + escape_label_value(value) + "\"";
  if (labels.empty()) return "{" + extra + "}";
  std::string out = labels;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

struct Group {
  std::string base;
  std::string type;
  std::vector<std::string> lines;
};

class GroupedOutput {
 public:
  Group& get(const std::string& base, const char* type) {
    auto it = index_.find(base);
    if (it == index_.end()) {
      groups_.push_back({base, type, {}});
      it = index_.emplace(base, groups_.size() - 1).first;
    }
    return groups_[it->second];
  }

  std::string render() const {
    std::string out;
    for (const Group& g : groups_) {
      out += "# TYPE " + g.base + " " + g.type + "\n";
      for (const std::string& line : g.lines) {
        out += line;
        out.push_back('\n');
      }
    }
    return out;
  }

 private:
  std::vector<Group> groups_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace

PromName split_prom_name(std::string_view registry_name) {
  PromName out;
  const auto bar = registry_name.find('|');
  out.base = sanitize(registry_name.substr(0, bar));
  if (bar == std::string_view::npos) return out;
  std::string_view block = registry_name.substr(bar + 1);
  std::string labels = "{";
  bool first = true;
  while (!block.empty()) {
    const auto comma = block.find(',');
    std::string_view kv = block.substr(0, comma);
    block = comma == std::string_view::npos ? std::string_view{} : block.substr(comma + 1);
    if (kv.empty()) continue;
    const auto eq = kv.find('=');
    std::string key = sanitize(eq == std::string_view::npos ? kv : kv.substr(0, eq));
    std::string value{eq == std::string_view::npos ? std::string_view{} : kv.substr(eq + 1)};
    if (!first) labels.push_back(',');
    labels += key + "=\"" + escape_label_value(value) + "\"";
    first = false;
  }
  labels.push_back('}');
  if (!first) out.labels = std::move(labels);
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  GroupedOutput out;
  for (const auto& c : snapshot.counters) {
    const PromName n = split_prom_name(c.name);
    out.get(n.base, "counter")
        .lines.push_back(n.base + n.labels + " " + format_value(static_cast<double>(c.value)));
  }
  for (const auto& g : snapshot.gauges) {
    const PromName n = split_prom_name(g.name);
    out.get(n.base, "gauge")
        .lines.push_back(n.base + n.labels + " " + format_value(static_cast<double>(g.value)));
    const std::string hw = n.base + "_high_water";
    out.get(hw, "gauge").lines.push_back(
        hw + n.labels + " " + format_value(static_cast<double>(g.high_water)));
  }
  for (const auto& h : snapshot.histograms) {
    const PromName n = split_prom_name(h.name);
    Group& g = out.get(n.base, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const std::string le =
          i < h.bounds.size() ? format_value(h.bounds[i]) : std::string("+Inf");
      g.lines.push_back(n.base + "_bucket" + with_extra_label(n.labels, "le", le) + " " +
                        format_value(static_cast<double>(cumulative)));
    }
    g.lines.push_back(n.base + "_sum" + n.labels + " " + format_value(h.sum));
    g.lines.push_back(n.base + "_count" + n.labels + " " +
                      format_value(static_cast<double>(h.count)));
  }
  return out.render();
}

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  if (name[0] >= '0' && name[0] <= '9') return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) return false;
  }
  return true;
}

bool parse_number(std::string_view token, double* value) {
  if (token == "+Inf" || token == "Inf") {
    *value = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    *value = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "NaN") {
    *value = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  char* end = nullptr;
  const std::string s{token};
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == s.c_str()) return false;
  *value = v;
  return true;
}

// Parses "{k=\"v\",...}" starting at text[pos] == '{'. Returns the position
// past '}' or npos on malformed input. Extracts the "le" value when present
// and rebuilds the label set minus "le" into `labels_without_le`.
std::size_t parse_label_block(std::string_view text, std::size_t pos, std::string* le,
                              std::string* labels_without_le) {
  ++pos;  // past '{'
  bool want_name = true;
  while (pos < text.size() && text[pos] != '}') {
    // label name
    std::size_t name_start = pos;
    while (pos < text.size() && text[pos] != '=') ++pos;
    if (pos >= text.size()) return std::string_view::npos;
    std::string name{text.substr(name_start, pos - name_start)};
    if (!valid_metric_name(name)) return std::string_view::npos;
    ++pos;  // '='
    if (pos >= text.size() || text[pos] != '"') return std::string_view::npos;
    ++pos;
    std::string value;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      value.push_back(text[pos]);
      ++pos;
    }
    if (pos >= text.size()) return std::string_view::npos;
    ++pos;  // closing '"'
    if (name == "le") {
      *le = value;
    } else {
      if (!labels_without_le->empty()) labels_without_le->push_back(',');
      *labels_without_le += name + "=" + value;
    }
    if (pos < text.size() && text[pos] == ',') {
      ++pos;
      continue;
    }
    want_name = false;
  }
  (void)want_name;
  if (pos >= text.size() || text[pos] != '}') return std::string_view::npos;
  return pos + 1;
}

}  // namespace

bool validate_prometheus_text(std::string_view text, std::string* error) {
  auto fail = [&](std::size_t line_no, const std::string& why) {
    if (error != nullptr) *error = "line " + std::to_string(line_no) + ": " + why;
    return false;
  };

  std::map<std::string, std::string> types;  // name -> counter|gauge|histogram
  struct BucketState {
    double last_le = -std::numeric_limits<double>::infinity();
    double last_count = -1.0;
    bool saw_inf = false;
    double inf_count = 0.0;
  };
  // (histogram name, labels-without-le) -> bucket monotonicity state
  std::map<std::pair<std::string, std::string>, BucketState> buckets;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // Only TYPE comments carry structure; HELP/other comments pass through.
      std::istringstream ss{std::string(line)};
      std::string hash, keyword, name, type;
      ss >> hash >> keyword;
      if (keyword != "TYPE") continue;
      if (!(ss >> name >> type)) return fail(line_no, "malformed TYPE line");
      if (!valid_metric_name(name)) return fail(line_no, "invalid metric name in TYPE");
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return fail(line_no, "unknown metric type '" + type + "'");
      }
      if (types.count(name) != 0) return fail(line_no, "duplicate TYPE for '" + name + "'");
      types[name] = type;
      continue;
    }

    // Sample line: name[{labels}] value
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    std::string name{line.substr(0, i)};
    if (!valid_metric_name(name)) return fail(line_no, "invalid sample name '" + name + "'");
    std::string le, labels_without_le;
    if (i < line.size() && line[i] == '{') {
      const std::size_t after = parse_label_block(line, i, &le, &labels_without_le);
      if (after == std::string_view::npos) return fail(line_no, "malformed label block");
      i = after;
    }
    if (i >= line.size() || line[i] != ' ') return fail(line_no, "missing sample value");
    while (i < line.size() && line[i] == ' ') ++i;
    double value = 0.0;
    if (!parse_number(line.substr(i), &value)) {
      return fail(line_no, "non-numeric sample value");
    }

    // Resolve the declared family: exact name, or histogram series suffixes.
    std::string family = name;
    std::string suffix;
    if (types.count(family) == 0) {
      for (const char* s : {"_bucket", "_sum", "_count"}) {
        if (name.size() > std::string_view(s).size() &&
            name.compare(name.size() - std::string_view(s).size(),
                         std::string_view(s).size(), s) == 0) {
          const std::string base = name.substr(0, name.size() - std::string_view(s).size());
          const auto it = types.find(base);
          if (it != types.end() && it->second == "histogram") {
            family = base;
            suffix = s;
            break;
          }
        }
      }
    }
    const auto type_it = types.find(family);
    if (type_it == types.end()) {
      return fail(line_no, "sample '" + name + "' has no preceding TYPE");
    }
    if (type_it->second == "histogram" && suffix.empty()) {
      return fail(line_no, "bare histogram sample '" + name + "'");
    }
    if (type_it->second == "counter" && (value < 0.0 || std::isnan(value))) {
      return fail(line_no, "negative or NaN counter value");
    }

    if (suffix == "_bucket") {
      if (le.empty()) return fail(line_no, "histogram bucket without le label");
      double le_value = 0.0;
      if (!parse_number(le, &le_value)) return fail(line_no, "non-numeric le label");
      BucketState& st = buckets[{family, labels_without_le}];
      if (le_value <= st.last_le) return fail(line_no, "le bounds not increasing");
      if (value < st.last_count) return fail(line_no, "bucket counts not cumulative");
      st.last_le = le_value;
      st.last_count = value;
      if (std::isinf(le_value)) {
        st.saw_inf = true;
        st.inf_count = value;
      }
    } else if (suffix == "_count") {
      const auto it = buckets.find({family, labels_without_le});
      if (it != buckets.end() && it->second.saw_inf && it->second.inf_count != value) {
        return fail(line_no, "_count disagrees with +Inf bucket");
      }
    }
  }

  // Every histogram series must close with a +Inf bucket.
  for (const auto& [key, st] : buckets) {
    if (!st.saw_inf) {
      if (error != nullptr) *error = "histogram '" + key.first + "' missing +Inf bucket";
      return false;
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace dbgp::telemetry
