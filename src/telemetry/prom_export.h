// Prometheus text exposition of a MetricsSnapshot.
//
// The route server's control API serves this as `metrics-prom` so any stock
// scraper (or `curl | promtool check metrics`) can watch a live daemon; the
// scenario tools write the same text next to their JSON exports. Rendering
// rules:
//
//   * metric names are sanitized to [a-zA-Z0-9_:] (dots become underscores);
//   * a "|k=v,k=v" suffix on the registry name — the convention the per-peer
//     speaker metrics use ("bgp.peer.updates_in|as=1,peer=2") — is split off
//     and rendered as a Prometheus label block;
//   * counters render as one sample with `# TYPE ... counter`; gauges render
//     their value plus a companion "<name>_high_water" gauge; histograms
//     render cumulative `_bucket{le="..."}` samples, `_sum`, and `_count`.
//
// validate_prometheus_text is the structural inverse used by the tests and
// trace_check: it walks the text line by line and rejects malformed names,
// label blocks, non-numeric samples, samples without a preceding TYPE, and
// non-cumulative histogram buckets.
#pragma once

#include <string>
#include <string_view>

#include "telemetry/metrics.h"

namespace dbgp::telemetry {

// Renders the whole snapshot; deterministic (snapshot order is name-sorted).
std::string to_prometheus(const MetricsSnapshot& snapshot);

// Splits a registry metric name into its base name and label block.
// "bgp.peer.updates_in|as=1,peer=2" -> base "bgp_peer_updates_in",
// labels `{as="1",peer="2"}`; names without '|' yield an empty label string.
struct PromName {
  std::string base;    // sanitized metric name
  std::string labels;  // rendered "{k=\"v\",...}" block, possibly empty
};
PromName split_prom_name(std::string_view registry_name);

// Structural validation of Prometheus text format. Returns true when every
// line is a comment, a well-formed `# TYPE name counter|gauge|histogram`
// declaration, or a `name{labels} value` sample whose name was declared and
// whose value parses as a finite number (or +Inf bucket bounds). On failure,
// `error` (when non-null) receives "line N: <reason>".
bool validate_prometheus_text(std::string_view text, std::string* error = nullptr);

}  // namespace dbgp::telemetry
