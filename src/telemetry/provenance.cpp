#include "telemetry/provenance.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace dbgp::telemetry {

ProvenanceIndex::ProvenanceIndex(const CausalTracer& tracer)
    : spans_(tracer.spans()), audits_(tracer.audits()) {
  for (std::size_t i = 0; i < audits_.size(); ++i) {
    audit_by_span_[audits_[i].span] = i;
  }
}

const Span* ProvenanceIndex::span(SpanId id) const {
  // Ids are dense from 1 (dropped spans are minted but not stored, so ids
  // past spans_.size() are simply absent).
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

const DecisionAudit* ProvenanceIndex::audit_for_span(SpanId id) const {
  auto it = audit_by_span_.find(id);
  return it == audit_by_span_.end() ? nullptr : &audits_[it->second];
}

std::vector<ProvenanceIndex::ChainStep> ProvenanceIndex::why(
    std::uint32_t as, const std::string& prefix, double at) const {
  // Last decision this AS ran for the prefix at/before `at` — that is the
  // run that installed whatever the RIB holds at `at`.
  const DecisionAudit* last = nullptr;
  for (const DecisionAudit& a : audits_) {
    if (a.as != as || a.prefix != prefix || a.time > at) continue;
    last = &a;  // audits_ is in recording order, i.e. time order
  }
  if (last == nullptr) return {};

  // Walk backward: decision -> best_via (frame or origination span) ->
  // frame's parent decision -> its audit -> ... until the origination root.
  std::vector<ChainStep> chain;
  std::set<SpanId> seen;
  const DecisionAudit* audit = last;
  while (audit != nullptr) {
    const Span* dspan = span(audit->span);
    chain.push_back({dspan, audit});
    const Span* via = span(audit->best_via);
    if (via == nullptr) break;
    if (!seen.insert(via->id).second) break;  // cycle guard (corrupt trace)
    chain.push_back({via, nullptr});
    if (via->kind == SpanKind::kOrigination) break;
    // A frame span's parent is the decision (or origination) that emitted it.
    const Span* parent = span(via->parent);
    if (parent == nullptr) break;
    if (parent->kind == SpanKind::kOrigination) {
      chain.push_back({parent, nullptr});
      break;
    }
    audit = audit_for_span(parent->id);
    if (audit == nullptr) {
      chain.push_back({parent, nullptr});
      break;
    }
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::vector<ProvenanceIndex::ReconvergenceWindow>
ProvenanceIndex::reconvergence_windows() const {
  std::vector<ReconvergenceWindow> windows;
  for (const Span& s : spans_) {
    if (s.kind != SpanKind::kWindow) continue;
    ReconvergenceWindow w;
    w.window = &s;
    const double end = s.end >= s.start ? s.end : s.start;
    for (const Span& t : spans_) {
      if (t.kind == SpanKind::kChaos) {
        // The disruption that opened the window is its parent; pick up any
        // further disruptions that landed while it was still open.
        if (t.id == s.parent || (t.start >= s.start && t.start <= end)) {
          w.disruptions.push_back(&t);
        }
      } else if (t.start >= s.start && t.start <= end) {
        if (t.kind == SpanKind::kFrame) ++w.frames;
        else if (t.kind == SpanKind::kDecision) ++w.decisions;
      }
    }
    windows.push_back(std::move(w));
  }
  return windows;
}

namespace {

std::string fmt_time(double t) {
  std::ostringstream os;
  os.precision(6);
  os << t << 's';
  return os.str();
}

}  // namespace

std::string ProvenanceIndex::format_why(const std::vector<ChainStep>& chain) {
  std::ostringstream os;
  if (chain.empty()) {
    os << "no decision recorded (AS never selected a route for this prefix "
          "within the trace)\n";
    return os.str();
  }
  for (const ChainStep& step : chain) {
    const Span* s = step.span;
    if (s == nullptr) continue;
    switch (s->kind) {
      case SpanKind::kOrigination:
        os << "t=" << fmt_time(s->start) << "  AS" << s->as << "  originate "
           << s->prefix;
        if (!s->detail.empty()) os << "  [" << s->detail << ']';
        os << '\n';
        break;
      case SpanKind::kFrame:
        os << "t=" << fmt_time(s->start) << "  AS" << s->as << " -> AS"
           << s->peer_as << "  " << s->name;
        if (!s->prefix.empty()) os << ' ' << s->prefix;
        if (s->end >= s->start)
          os << "  (arrived t=" << fmt_time(s->end) << ')';
        if (!s->detail.empty()) os << "  [" << s->detail << ']';
        os << '\n';
        break;
      default:
        os << "t=" << fmt_time(s->start) << "  AS" << s->as << "  " << s->name;
        if (!s->prefix.empty()) os << ' ' << s->prefix;
        if (!s->detail.empty()) os << "  [" << s->detail << ']';
        os << '\n';
        break;
    }
    if (step.audit != nullptr) {
      const DecisionAudit& a = *step.audit;
      os << "    decision @ AS" << a.as << ": "
         << (a.best_path.empty() ? std::string("unreachable")
                                 : "best=" + a.best_path)
         << (a.changed ? "  (changed" : "  (unchanged");
      if (!a.prev_path.empty() && a.changed) os << " from " << a.prev_path;
      os << ")\n";
      for (std::size_t i = 0; i < a.candidates.size(); ++i) {
        const AuditCandidate& c = a.candidates[i];
        os << "      [" << (static_cast<int>(i) == a.selected ? '*' : ' ')
           << "] via AS" << c.neighbor_as << "  path=" << c.path << "  "
           << c.outcome << '\n';
      }
      if (a.origin) os << "      [*] locally originated\n";
    }
  }
  return os.str();
}

std::string ProvenanceIndex::format_blame(
    const std::vector<ReconvergenceWindow>& windows) {
  std::ostringstream os;
  if (windows.empty()) {
    os << "no reconvergence windows in trace\n";
    return os.str();
  }
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const ReconvergenceWindow& w = windows[i];
    const Span* s = w.window;
    const double dur = s->end >= s->start ? s->end - s->start : 0.0;
    os << "window #" << (i + 1) << "  [" << fmt_time(s->start) << " .. "
       << fmt_time(s->end >= s->start ? s->end : s->start) << "]  ("
       << fmt_time(dur) << ")\n";
    if (w.disruptions.empty()) {
      os << "    cause: (unattributed)\n";
    }
    for (const Span* d : w.disruptions) {
      os << "    cause: " << d->name << "  AS" << d->as;
      if (d->peer_as != 0) os << " <-> AS" << d->peer_as;
      os << "  @ " << fmt_time(d->start);
      if (!d->detail.empty()) os << "  [" << d->detail << ']';
      os << '\n';
    }
    os << "    storm: " << w.frames << " frames, " << w.decisions
       << " decisions\n";
  }
  return os.str();
}

}  // namespace dbgp::telemetry
