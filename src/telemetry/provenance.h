// Route-provenance queries over a causal trace.
//
// A ProvenanceIndex snapshots a CausalTracer and answers the two questions
// the deployment analysis needs:
//
//   why(as, prefix[, at])      — the causal chain behind the route AS uses
//                                for the prefix at time `at`: origination,
//                                each wire hop, and every decision along the
//                                way with its per-candidate verdicts.
//   reconvergence_windows()    — each reconvergence window with the chaos
//                                disruption(s) that opened it and the update
//                                storm (frames/decisions) it spawned.
//
// tools/dbgp_explain is a thin CLI over this; tests use it to check the
// audit/RIB agreement and chain-shape invariants directly.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "telemetry/causal.h"

namespace dbgp::telemetry {

class ProvenanceIndex {
 public:
  explicit ProvenanceIndex(const CausalTracer& tracer);

  // One step of a causal chain. `span` is always set; `audit` is set for
  // decision steps.
  struct ChainStep {
    const Span* span = nullptr;
    const DecisionAudit* audit = nullptr;
  };

  // Causal chain, origination first, ending at the decision that installed
  // the route `as` uses for `prefix` at/before `at` (default: the final
  // state). Empty when the AS never ran a decision for the prefix.
  std::vector<ChainStep> why(
      std::uint32_t as, const std::string& prefix,
      double at = std::numeric_limits<double>::infinity()) const;

  struct ReconvergenceWindow {
    const Span* window = nullptr;
    // Chaos instants inside [start, end] — the disruptions this window is
    // attributed to (the one that opened it is always included).
    std::vector<const Span*> disruptions;
    std::size_t frames = 0;     // frame spans dispatched inside the window
    std::size_t decisions = 0;  // decision runs inside the window
  };
  std::vector<ReconvergenceWindow> reconvergence_windows() const;

  const Span* span(SpanId id) const;
  const DecisionAudit* audit_for_span(SpanId id) const;
  const std::vector<Span>& spans() const noexcept { return spans_; }
  const std::vector<DecisionAudit>& audits() const noexcept { return audits_; }

  // Human-readable renderings (what dbgp_explain prints).
  static std::string format_why(const std::vector<ChainStep>& chain);
  static std::string format_blame(const std::vector<ReconvergenceWindow>& windows);

 private:
  std::vector<Span> spans_;
  std::vector<DecisionAudit> audits_;
  std::map<SpanId, std::size_t> audit_by_span_;
};

}  // namespace dbgp::telemetry
