#include "telemetry/sampler.h"

#include <utility>

namespace dbgp::telemetry {

bool TimeSeriesSampler::sample(double now, bool force) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (have_sample_ && !force && now - last_time_ < options_.interval) return false;
  }
  // Snapshot outside the sampler lock: the registry has its own mutex and a
  // snapshot can be slow with many labeled series.
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();

  std::lock_guard<std::mutex> lock(mu_);
  if (have_sample_ && !force && now - last_time_ < options_.interval) return false;
  for (const auto& c : snap.counters) append(c.name, now, static_cast<double>(c.value));
  for (const auto& g : snap.gauges) append(g.name, now, static_cast<double>(g.value));
  for (const auto& h : snap.histograms) {
    append(h.name + ".count", now, static_cast<double>(h.count));
    append(h.name + ".sum", now, h.sum);
  }
  last_time_ = now;
  have_sample_ = true;
  ++samples_;
  return true;
}

void TimeSeriesSampler::append(const std::string& name, double now, double value) {
  auto& points = series_[name];
  points.push_back({now, value});
  while (points.size() > options_.capacity) points.pop_front();
}

std::size_t TimeSeriesSampler::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

double TimeSeriesSampler::last_sample_time() const {
  std::lock_guard<std::mutex> lock(mu_);
  return have_sample_ ? last_time_ : 0.0;
}

std::vector<std::string> TimeSeriesSampler::series_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, points] : series_) names.push_back(name);
  return names;
}

bool TimeSeriesSampler::has_series(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.find(name) != series_.end();
}

std::vector<TimeSeriesSampler::Point> TimeSeriesSampler::series(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  if (it == series_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<TimeSeriesSampler::Point> TimeSeriesSampler::deltas(
    std::string_view name) const {
  const std::vector<Point> raw = series(name);
  std::vector<Point> out;
  if (raw.size() < 2) return out;
  out.reserve(raw.size() - 1);
  for (std::size_t i = 1; i < raw.size(); ++i) {
    out.push_back({raw[i].time, raw[i].value - raw[i - 1].value});
  }
  return out;
}

std::vector<TimeSeriesSampler::Point> TimeSeriesSampler::rates(
    std::string_view name) const {
  const std::vector<Point> raw = series(name);
  std::vector<Point> out;
  if (raw.size() < 2) return out;
  out.reserve(raw.size() - 1);
  for (std::size_t i = 1; i < raw.size(); ++i) {
    const double dt = raw[i].time - raw[i - 1].time;
    if (dt <= 0.0) continue;  // duplicate/forced samples at one instant
    out.push_back({raw[i].time, (raw[i].value - raw[i - 1].value) / dt});
  }
  return out;
}

void TimeSeriesSampler::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  samples_ = 0;
  last_time_ = 0.0;
  have_sample_ = false;
}

util::json::Value TimeSeriesSampler::to_json(std::size_t last_n) const {
  std::lock_guard<std::mutex> lock(mu_);
  util::json::Value root{util::json::Object{}};
  root.set("interval", options_.interval);
  root.set("samples", static_cast<std::uint64_t>(samples_));
  util::json::Value series{util::json::Object{}};
  for (const auto& [name, points] : series_) {
    util::json::Array arr;
    std::size_t start = 0;
    if (last_n > 0 && points.size() > last_n) start = points.size() - last_n;
    arr.reserve(points.size() - start);
    for (std::size_t i = start; i < points.size(); ++i) {
      arr.push_back(util::json::Array{points[i].time, points[i].value});
    }
    series.set(name, std::move(arr));
  }
  root.set("series", std::move(series));
  return root;
}

}  // namespace dbgp::telemetry
