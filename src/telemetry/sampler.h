// Time-series sampling of the process-wide metrics registry.
//
// The registry (metrics.h) only answers "what is the value now"; a live
// daemon and the convergence analysis both need "how did it get here". The
// sampler periodically snapshots MetricsRegistry::global() into bounded
// per-metric ring buffers of (time, value) points — sim-time driven inside
// scenarios (the network run loop ticks it at event granularity and the
// sampler enforces its own interval), wall-time driven in dbgp_server's
// serve loop. Deltas and rates are derived on read, not stored, so a sample
// costs one registry snapshot plus one append per live series.
//
// Series identity is the metric name: counters and gauges sample their
// value, histograms contribute "<name>.count" and "<name>.sum" (enough to
// derive interval rates and mean latency externally). Per-peer labeled
// metrics ("bgp.peer.updates_in|as=1,peer=2") sample like any other series;
// the exposition layer (prom_export.h) is what understands the label block.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"
#include "util/json.h"

namespace dbgp::telemetry {

class TimeSeriesSampler {
 public:
  struct Options {
    double interval = 0.5;       // minimum seconds between samples
    std::size_t capacity = 720;  // points retained per series (ring buffer)
  };

  struct Point {
    double time = 0.0;
    double value = 0.0;
  };

  TimeSeriesSampler() = default;
  explicit TimeSeriesSampler(Options options) : options_(options) {}

  // Snapshots the global registry if at least `interval` has elapsed since
  // the previous sample (the first call always samples; `force` bypasses the
  // interval). Returns whether a sample was actually taken.
  bool sample(double now, bool force = false);

  std::size_t sample_count() const;
  double last_sample_time() const;
  std::vector<std::string> series_names() const;
  bool has_series(std::string_view name) const;

  // Raw points, oldest first (empty when the series is unknown).
  std::vector<Point> series(std::string_view name) const;
  // points[i] - points[i-1], stamped at the later time (size n-1). For
  // counters this is the per-interval increment; gauges yield level changes.
  std::vector<Point> deltas(std::string_view name) const;
  // Delta divided by the interval length — per-second rates.
  std::vector<Point> rates(std::string_view name) const;

  const Options& options() const noexcept { return options_; }
  void clear();

  // { "interval": i, "samples": n, "series": { "<name>": [[t,v], ...] } }.
  // `last_n` > 0 trims every series to its most recent points.
  util::json::Value to_json(std::size_t last_n = 0) const;

 private:
  void append(const std::string& name, double now, double value);

  Options options_;
  mutable std::mutex mu_;
  std::size_t samples_ = 0;
  double last_time_ = 0.0;
  bool have_sample_ = false;
  std::map<std::string, std::deque<Point>, std::less<>> series_;
};

}  // namespace dbgp::telemetry
