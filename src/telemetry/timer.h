// Scoped timers that record durations into registry histograms.
//
// Two clock domains, matching the two ways the repo measures:
//   - ScopedTimer: wall clock (std::chrono::steady_clock), for benchmarks
//     and real-host latency. When telemetry is disabled the constructor
//     skips the clock read entirely, so a disabled run pays only a branch.
//   - SimTimer: explicit sim-time stamps supplied by the caller (the
//     discrete-event queue's `now()`), so deterministic tests get
//     bit-reproducible histograms independent of host speed.
#pragma once

#include <chrono>

#include "telemetry/metrics.h"

namespace dbgp::telemetry {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) noexcept
      : hist_(enabled() ? hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->record(std::chrono::duration<double>(elapsed).count());
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

// Sim-time interval recorder: construct with the start time, call stop()
// with the end time. A SimTimer never reads a host clock.
class SimTimer {
 public:
  SimTimer(Histogram* hist, double start_time) noexcept
      : hist_(hist), start_(start_time) {}
  void stop(double end_time) noexcept {
    if (hist_ != nullptr && end_time >= start_) hist_->record(end_time - start_);
    hist_ = nullptr;  // idempotent
  }

 private:
  Histogram* hist_;
  double start_;
};

}  // namespace dbgp::telemetry
