#include "telemetry/trace.h"

#include "telemetry/metrics.h"

namespace dbgp::telemetry {

namespace {
// Registry mirror of the drop counter so a capped trace shows up in metrics
// snapshots even when nobody polls the tracer itself.
Counter& trace_dropped_counter() {
  static Counter& c = MetricsRegistry::global().counter("telemetry.trace.dropped");
  return c;
}
}  // namespace

void PropagationTracer::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= limit_) {
    ++dropped_;
    trace_dropped_counter().inc();
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> PropagationTracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t PropagationTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t PropagationTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void PropagationTracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

}  // namespace dbgp::telemetry
