#include "telemetry/trace.h"

namespace dbgp::telemetry {

void PropagationTracer::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= limit_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> PropagationTracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t PropagationTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t PropagationTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void PropagationTracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

}  // namespace dbgp::telemetry
