// IA propagation tracing: per-hop records of advertisements crossing the
// simulated network.
//
// Each event captures what the paper's Section 6.1 deployment figures reason
// about hop by hop: when (sim time) an advertisement crossed which AS-level
// link, how large the IA was on the wire, which protocols' control
// information it carried, and whether the receiving AS actually understands
// any of it (runs a module for the active protocol) or merely passes the
// descriptors through — the D-BGP pass-through behavior that lets critical
// fixes cross gulfs.
//
// The tracer is intentionally dumb storage: simnet fills it in (it knows the
// hop, the sim clock, and the decoded frame); the JSON exporter drains it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dbgp::telemetry {

struct TraceEvent {
  double time = 0.0;            // sim seconds at delivery
  std::uint32_t from_as = 0;    // sending AS
  std::uint32_t to_as = 0;      // receiving AS
  std::string frame_type;       // "announce" | "withdraw" | "notice" | "unknown"
  std::string prefix;           // destination prefix, dotted/len text
  std::size_t frame_bytes = 0;  // full frame size on the wire
  std::size_t ia_bytes = 0;     // encoded IA payload (announce frames only)
  std::vector<std::string> protocols;  // protocols carried on the IA's path
  bool understood = false;  // receiver's active protocol is among `protocols`
};

class PropagationTracer {
 public:
  explicit PropagationTracer(std::size_t limit = kDefaultLimit) : limit_(limit) {}

  // Appends an event; beyond the limit events are counted but dropped, so a
  // runaway scenario cannot exhaust memory.
  void record(TraceEvent event);

  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  std::size_t dropped() const;
  void clear();

  static constexpr std::size_t kDefaultLimit = 1'000'000;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t limit_;
  std::size_t dropped_ = 0;
};

}  // namespace dbgp::telemetry
