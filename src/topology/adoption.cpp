#include "topology/adoption.h"

#include <cmath>

namespace dbgp::topology {

std::vector<bool> random_adoption(std::size_t n, double fraction, util::Rng& rng) {
  std::vector<bool> upgraded(n, false);
  const std::size_t k = static_cast<std::size_t>(std::llround(fraction * static_cast<double>(n)));
  for (std::size_t idx : rng.sample_indices(n, std::min(k, n))) {
    upgraded[idx] = true;
  }
  return upgraded;
}

std::vector<int> upgraded_islands(const AsGraph& graph, const std::vector<bool>& upgraded,
                                  std::vector<std::size_t>& component_sizes) {
  std::vector<int> component(graph.size(), -1);
  component_sizes.clear();
  int next = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < graph.size(); ++start) {
    if (!upgraded[start] || component[start] != -1) continue;
    const int id = next++;
    std::size_t size = 0;
    stack.push_back(start);
    component[start] = id;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      ++size;
      for (const Edge& e : graph.neighbors(u)) {
        if (upgraded[e.neighbor] && component[e.neighbor] == -1) {
          component[e.neighbor] = id;
          stack.push_back(e.neighbor);
        }
      }
    }
    component_sizes.push_back(size);
  }
  return component;
}

}  // namespace dbgp::topology
