// Adoption assignment (Section 6.3: "upgraded ASes are chosen randomly,
// reflecting the ideal case of providing ASes the flexibility to deploy a
// new protocol independently of their neighbors") plus island analysis —
// the connected components of upgraded ASes, which is what determines when
// "large upgraded islands start to connect and see massive benefits".
#pragma once

#include <vector>

#include "topology/graph.h"
#include "util/rng.h"

namespace dbgp::topology {

// Marks round(fraction * n) random ASes as upgraded.
std::vector<bool> random_adoption(std::size_t n, double fraction, util::Rng& rng);

// Connected components restricted to upgraded nodes. Returns a component id
// per node (-1 for non-upgraded) and fills `component_sizes`.
std::vector<int> upgraded_islands(const AsGraph& graph, const std::vector<bool>& upgraded,
                                  std::vector<std::size_t>& component_sizes);

}  // namespace dbgp::topology
