#include "topology/dispute_wheel.h"

#include <stdexcept>

#include "topology/adoption.h"
#include "util/rng.h"

namespace dbgp::topology {

bool DisputeWheel::any_upgraded() const noexcept {
  for (const bool u : upgraded) {
    if (u) return true;
  }
  return false;
}

DisputeWheel make_dispute_wheel(const DisputeWheelSpec& spec) {
  if (spec.spokes < 3 || spec.spokes % 2 == 0) {
    throw std::invalid_argument(
        "dispute wheel needs an odd ring of >= 3 spokes (even rings have "
        "stable assignments and do not oscillate)");
  }
  if (spec.fc_adoption < 0.0 || spec.fc_adoption > 1.0) {
    throw std::invalid_argument("dispute wheel fc adoption must lie in [0, 1]");
  }
  DisputeWheel wheel;
  wheel.spec = spec;
  wheel.spoke_as.reserve(spec.spokes);
  for (std::size_t i = 0; i < spec.spokes; ++i) {
    wheel.spoke_as.push_back(spec.first_spoke_as + static_cast<std::uint32_t>(i));
  }

  util::Rng rng(spec.seed);
  wheel.upgraded = random_adoption(spec.spokes, spec.fc_adoption, rng);

  for (std::size_t i = 0; i < spec.spokes; ++i) {
    SpokePolicy policy;
    policy.spoke_as = wheel.spoke_as[i];
    policy.indirect_via = wheel.spoke_as[(i + 1) % spec.spokes];
    wheel.policies.push_back(policy);
  }

  for (const std::uint32_t spoke : wheel.spoke_as) {
    wheel.links.emplace_back(spec.hub_as, spoke);
  }
  for (std::size_t i = 0; i < spec.spokes; ++i) {
    wheel.links.emplace_back(wheel.spoke_as[i], wheel.spoke_as[(i + 1) % spec.spokes]);
  }
  return wheel;
}

}  // namespace dbgp::topology
