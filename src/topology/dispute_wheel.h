// Dispute-wheel generator: parameterized Gao–Rexford-violating policy rings
// that provably oscillate ("BGP Stability is Precarious", arXiv 1108.0192;
// Griffin's BAD GADGET is the size-3 instance).
//
// The wheel is a hub AS originating one prefix, surrounded by a ring of n
// spokes. Every spoke links to the hub and to its clockwise ring neighbor.
// Spoke i's policy permits exactly two paths to the prefix —
//
//   direct   (i, hub)                       local-pref 100
//   indirect (i, i+1, hub)                  local-pref 200   (preferred)
//
// — and rejects everything else at import. A stable assignment must satisfy
// "i selects indirect  iff  i+1 selects direct" (the indirect path only
// exists while i+1 advertises its direct route), i.e. x_i = ¬x_{i+1} around
// the ring. For odd n that equation has no solution, so no stable state
// exists and any fair execution oscillates forever — the provable oscillator
// the convergence oracle's matrix tests classify.
//
// The mixed-adoption repair: spokes marked `upgraded` (and the hub) run the
// FC-BGP module instead of plain BGP. FC-BGP ranks verified-commitment
// coverage above local-pref games, so an upgraded spoke pins its fully
// attested direct path permanently. That anchors x_i = false at one ring
// position, the ¬-chain unravels from there, and the wheel converges for
// ANY adoption > 0 — partial deployment of a critical fix breaking a policy
// oscillation end to end.
//
// This header is plain data (AS numbers, link pairs, permitted-path
// policies); scenario/runner.cpp turns a spec into speakers, links, and
// import filters, and scenarios/dispute_wheel_*.dbgp expose it to the
// scenario grammar via the `dispute-wheel` stanza.
#pragma once

#include <cstdint>
#include <vector>

namespace dbgp::topology {

struct DisputeWheelSpec {
  // Ring size; must be odd and >= 3 for the no-stable-state argument above.
  std::size_t spokes = 3;
  // AS numbers: the hub plus consecutively numbered spokes.
  std::uint32_t hub_as = 100;
  std::uint32_t first_spoke_as = 1;
  // Fraction of spokes upgraded to FC-BGP (rounded; chosen with `seed`).
  double fc_adoption = 0.0;
  std::uint64_t seed = 1;
};

// One spoke's permitted-path policy, ready to install as an import filter.
struct SpokePolicy {
  std::uint32_t spoke_as = 0;
  std::uint32_t indirect_via = 0;  // the clockwise ring neighbor
  std::uint32_t direct_pref = 100;
  std::uint32_t indirect_pref = 200;
};

struct DisputeWheel {
  DisputeWheelSpec spec;
  std::vector<std::uint32_t> spoke_as;  // ring order
  std::vector<bool> upgraded;           // per spoke; hub is upgraded iff any spoke is
  std::vector<SpokePolicy> policies;    // one per spoke, ring order
  // Hub-spoke links first, then the ring links (i, i+1 mod n).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> links;

  bool any_upgraded() const noexcept;
};

// Builds the wheel. Throws std::invalid_argument unless `spokes` is odd and
// >= 3 (an even ring has stable assignments and does not oscillate) or the
// adoption fraction lies outside [0, 1].
DisputeWheel make_dispute_wheel(const DisputeWheelSpec& spec);

}  // namespace dbgp::topology
