#include "topology/graph.h"

#include <algorithm>
#include <stdexcept>

namespace dbgp::topology {

NodeId AsGraph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

namespace {
Relationship inverse(Relationship rel) noexcept {
  switch (rel) {
    case Relationship::kProviderOf: return Relationship::kCustomerOf;
    case Relationship::kCustomerOf: return Relationship::kProviderOf;
    case Relationship::kPeerOf: return Relationship::kPeerOf;
  }
  return Relationship::kPeerOf;
}
}  // namespace

void AsGraph::add_edge(NodeId u, NodeId v, Relationship rel) {
  if (u == v) throw std::invalid_argument("self-loop");
  if (has_edge(u, v)) return;
  adjacency_.at(u).push_back({v, rel});
  adjacency_.at(v).push_back({u, inverse(rel)});
}

bool AsGraph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u >= adjacency_.size()) return false;
  return std::any_of(adjacency_[u].begin(), adjacency_[u].end(),
                     [v](const Edge& e) { return e.neighbor == v; });
}

std::size_t AsGraph::edge_count() const noexcept {
  std::size_t total = 0;
  for (const auto& edges : adjacency_) total += edges.size();
  return total / 2;
}

bool AsGraph::connected() const {
  if (adjacency_.empty()) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const Edge& e : adjacency_[u]) {
      if (!seen[e.neighbor]) {
        seen[e.neighbor] = true;
        ++count;
        stack.push_back(e.neighbor);
      }
    }
  }
  return count == adjacency_.size();
}

bool AsGraph::is_stub(NodeId u) const {
  for (const Edge& e : adjacency_.at(u)) {
    if (e.rel == Relationship::kProviderOf) return false;
  }
  return true;
}

std::vector<NodeId> AsGraph::stubs() const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < adjacency_.size(); ++u) {
    if (is_stub(u)) out.push_back(u);
  }
  return out;
}

}  // namespace dbgp::topology
