// AS-level topology annotated with business relationships.
//
// The paper's simulations use BRITE/Waxman topologies "annotated with
// customer/provider relationships, but not peering ones" (Section 6.3); the
// graph type nevertheless supports peering so the hierarchy generator and
// tests can exercise full Gao-Rexford policy.
#pragma once

#include <cstdint>
#include <vector>

namespace dbgp::topology {

using NodeId = std::uint32_t;

enum class Relationship : std::uint8_t {
  kProviderOf,  // edge (u,v): u is v's provider
  kCustomerOf,  // edge (u,v): u is v's customer
  kPeerOf,
};

struct Edge {
  NodeId neighbor = 0;
  Relationship rel = Relationship::kPeerOf;  // relationship of *this node* to neighbor
};

class AsGraph {
 public:
  explicit AsGraph(std::size_t n = 0) : adjacency_(n) {}

  std::size_t size() const noexcept { return adjacency_.size(); }
  NodeId add_node();

  // Adds the edge in both directions with consistent relationship views.
  // `rel` is u's relationship to v (kProviderOf => u provides for v).
  void add_edge(NodeId u, NodeId v, Relationship rel);
  bool has_edge(NodeId u, NodeId v) const noexcept;

  const std::vector<Edge>& neighbors(NodeId u) const { return adjacency_.at(u); }
  std::size_t degree(NodeId u) const { return adjacency_.at(u).size(); }
  std::size_t edge_count() const noexcept;

  // True if every node can reach node 0.
  bool connected() const;

  // Stub = node with exactly one neighbor... the conventional definition is
  // "no customers": a stub buys transit but provides none.
  bool is_stub(NodeId u) const;
  std::vector<NodeId> stubs() const;

 private:
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace dbgp::topology
