#include "topology/hierarchy.h"

namespace dbgp::topology {

Hierarchy generate_hierarchy(const HierarchyConfig& config, util::Rng& rng) {
  Hierarchy h;
  h.tier1 = config.tier1;
  h.transits = config.transits;
  const std::size_t total = config.tier1 + config.transits + config.stubs;
  h.graph = AsGraph(total);

  // Tier-1 full mesh of peers.
  for (std::size_t i = 0; i < config.tier1; ++i) {
    for (std::size_t j = i + 1; j < config.tier1; ++j) {
      h.graph.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j), Relationship::kPeerOf);
    }
  }

  // Transits buy from tier-1s (or earlier transits) and sometimes peer.
  for (std::size_t t = 0; t < config.transits; ++t) {
    const NodeId node = static_cast<NodeId>(config.tier1 + t);
    const std::size_t provider_pool = config.tier1 + t;  // anyone "above" us
    for (std::size_t k = 0; k < config.providers_per_transit; ++k) {
      const NodeId provider =
          static_cast<NodeId>(rng.next_below(static_cast<std::uint32_t>(provider_pool)));
      if (!h.graph.has_edge(node, provider)) {
        h.graph.add_edge(node, provider, Relationship::kCustomerOf);
      }
    }
    if (t > 0 && rng.next_bool(config.transit_peering_probability)) {
      const NodeId peer = static_cast<NodeId>(
          config.tier1 + rng.next_below(static_cast<std::uint32_t>(t)));
      if (!h.graph.has_edge(node, peer)) {
        h.graph.add_edge(node, peer, Relationship::kPeerOf);
      }
    }
  }

  // Stubs buy from transits.
  for (std::size_t s = 0; s < config.stubs; ++s) {
    const NodeId node = static_cast<NodeId>(config.tier1 + config.transits + s);
    for (std::size_t k = 0; k < config.providers_per_stub; ++k) {
      const NodeId provider = static_cast<NodeId>(
          config.tier1 + rng.next_below(static_cast<std::uint32_t>(config.transits)));
      if (!h.graph.has_edge(node, provider)) {
        h.graph.add_edge(node, provider, Relationship::kCustomerOf);
      }
    }
  }
  return h;
}

}  // namespace dbgp::topology
