// Hierarchical Internet-like generator: a small clique of tier-1 ASes,
// transit ASes multihomed to tier-1s/other transits (with some peering),
// and stubs multihomed to transits. Used by tests and examples that want a
// recognizable Internet shape rather than a Waxman cloud.
#pragma once

#include "topology/graph.h"
#include "util/rng.h"

namespace dbgp::topology {

struct HierarchyConfig {
  std::size_t tier1 = 4;
  std::size_t transits = 20;
  std::size_t stubs = 100;
  std::size_t providers_per_transit = 2;
  std::size_t providers_per_stub = 2;
  double transit_peering_probability = 0.2;
};

struct Hierarchy {
  AsGraph graph;
  // Node-ID ranges: [0, tier1) tier-1s; [tier1, tier1+transits) transits;
  // rest stubs.
  std::size_t tier1 = 0;
  std::size_t transits = 0;

  bool is_tier1(NodeId u) const noexcept { return u < tier1; }
  bool is_transit(NodeId u) const noexcept { return u >= tier1 && u < tier1 + transits; }
  bool is_stub_node(NodeId u) const noexcept { return u >= tier1 + transits; }
};

Hierarchy generate_hierarchy(const HierarchyConfig& config, util::Rng& rng);

}  // namespace dbgp::topology
