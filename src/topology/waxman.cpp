#include "topology/waxman.h"

#include <cmath>
#include <vector>

namespace dbgp::topology {

AsGraph generate_waxman(const WaxmanConfig& config, util::Rng& rng) {
  AsGraph graph(config.nodes);
  std::vector<double> x(config.nodes), y(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    x[i] = rng.next_double() * config.plane;
    y[i] = rng.next_double() * config.plane;
  }
  const double diagonal = config.plane * std::sqrt(2.0);

  std::vector<std::size_t> degree(config.nodes, 0);

  // Incremental growth: node i attaches to min(i, m) earlier nodes.
  for (std::size_t i = 1; i < config.nodes; ++i) {
    const std::size_t want = std::min<std::size_t>(config.links_per_node, i);
    std::size_t made = 0;
    // Rejection-sample targets by Waxman probability; fall back to the
    // nearest unused node if sampling stalls (keeps the graph connected).
    std::size_t attempts = 0;
    while (made < want && attempts < 50 * config.nodes) {
      ++attempts;
      const std::size_t j = rng.next_below(static_cast<std::uint32_t>(i));
      if (graph.has_edge(static_cast<NodeId>(i), static_cast<NodeId>(j))) continue;
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      const double dist = std::sqrt(dx * dx + dy * dy);
      const double p = config.alpha * std::exp(-dist / (config.beta * diagonal));
      if (rng.next_double() >= p) continue;
      const Relationship rel = degree[j] >= degree[i] ? Relationship::kCustomerOf
                                                      : Relationship::kProviderOf;
      graph.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j), rel);
      ++degree[i];
      ++degree[j];
      ++made;
    }
    while (made < want) {
      // Deterministic fallback: closest earlier node without an edge.
      std::size_t best = i;
      double best_dist = 0.0;
      for (std::size_t j = 0; j < i; ++j) {
        if (graph.has_edge(static_cast<NodeId>(i), static_cast<NodeId>(j))) continue;
        const double dx = x[i] - x[j];
        const double dy = y[i] - y[j];
        const double dist = dx * dx + dy * dy;
        if (best == i || dist < best_dist) {
          best = j;
          best_dist = dist;
        }
      }
      if (best == i) break;  // no candidates left
      const Relationship rel = degree[best] >= degree[i] ? Relationship::kCustomerOf
                                                         : Relationship::kProviderOf;
      graph.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(best), rel);
      ++degree[i];
      ++degree[best];
      ++made;
    }
  }
  return graph;
}

}  // namespace dbgp::topology
