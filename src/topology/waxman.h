// BRITE-style Waxman topology generator (Medina et al., MASCOTS'01),
// configured as the paper does: 1,000 ASes, Waxman alpha = 0.15,
// beta = 0.25, incremental growth, customer/provider annotation and no
// peering links (Section 6.3).
//
// Nodes are placed uniformly in a plane; each new node attaches to `m`
// existing nodes drawn with Waxman probability
//   P(u,v) = alpha * exp(-d(u,v) / (beta * L)),
// where L is the plane diagonal. Incremental growth guarantees a connected
// graph. Relationships: the endpoint with higher degree at link-creation
// time becomes the provider (degree is BRITE's stand-in for size).
#pragma once

#include "topology/graph.h"
#include "util/rng.h"

namespace dbgp::topology {

struct WaxmanConfig {
  std::size_t nodes = 1000;
  double alpha = 0.15;
  double beta = 0.25;
  std::size_t links_per_node = 2;  // BRITE's m
  double plane = 1000.0;           // side of the placement square
};

AsGraph generate_waxman(const WaxmanConfig& config, util::Rng& rng);

}  // namespace dbgp::topology
