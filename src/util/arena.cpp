#include "util/arena.h"

namespace dbgp::util {

namespace {
// RIB node sizes cluster well under 1 KiB (map nodes, small vectors of
// 32-byte routes); a larger-than-default largest_required_pool_block keeps
// mid-sized candidate vectors inside the pool instead of punting each one
// to the upstream heap.
std::pmr::pool_options rib_pool_options() noexcept {
  std::pmr::pool_options opts;
  opts.largest_required_pool_block = 4096;
  return opts;
}
}  // namespace

RibArena::RibArena()
    : upstream_(std::pmr::new_delete_resource()),
      pool_(rib_pool_options(), &upstream_),
      front_(&pool_) {}

void RibArena::release() { pool_.release(); }

}  // namespace dbgp::util
