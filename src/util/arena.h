// Per-speaker arena memory for RIB storage (DESIGN.md §14).
//
// A RibArena is a shard-local std::pmr stack: a pool resource that carves
// container nodes out of large upstream slabs, wrapped on both sides by
// metering resources so bytes-in-use (what the containers hold right now)
// and bytes-reserved (what the pool has grabbed from the heap) are cheap to
// read. RIB churn recycles freed nodes inside the pool instead of hitting
// the global allocator, and a peer flap returns the reservation to a steady
// state instead of growing it — the arena-reuse property tests pin this.
//
// Not thread-safe by design: one arena belongs to one speaker (or one
// shard), and all RIB mutation on a speaker is sequential (the thread pool
// only runs the pure decode/plan stages).
#pragma once

#include <cstddef>
#include <memory_resource>

namespace dbgp::util {

// A std::pmr::memory_resource decorator that counts bytes and calls.
class MeteredResource final : public std::pmr::memory_resource {
 public:
  explicit MeteredResource(std::pmr::memory_resource* upstream) noexcept
      : upstream_(upstream) {}

  std::size_t bytes_current() const noexcept { return current_; }
  std::size_t bytes_peak() const noexcept { return peak_; }
  std::size_t allocation_count() const noexcept { return allocations_; }
  std::size_t deallocation_count() const noexcept { return deallocations_; }

 private:
  void* do_allocate(std::size_t bytes, std::size_t alignment) override {
    void* p = upstream_->allocate(bytes, alignment);
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
    ++allocations_;
    return p;
  }
  void do_deallocate(void* p, std::size_t bytes, std::size_t alignment) override {
    current_ -= bytes;
    ++deallocations_;
    upstream_->deallocate(p, bytes, alignment);
  }
  bool do_is_equal(const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  std::pmr::memory_resource* upstream_;
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
  std::size_t allocations_ = 0;
  std::size_t deallocations_ = 0;
};

class RibArena {
 public:
  RibArena();

  // Containers allocated from the arena keep pointers into it; pinning the
  // arena's address keeps every polymorphic_allocator valid.
  RibArena(const RibArena&) = delete;
  RibArena& operator=(const RibArena&) = delete;

  // Hand this to std::pmr containers that should live in the arena.
  std::pmr::memory_resource* resource() noexcept { return &front_; }

  // Bytes currently held by containers backed by this arena.
  std::size_t bytes_in_use() const noexcept { return front_.bytes_current(); }
  // High-water mark of bytes_in_use().
  std::size_t bytes_peak() const noexcept { return front_.bytes_peak(); }
  // Slab bytes the pool currently holds from the heap. Stays flat across
  // steady-state churn: freed nodes are recycled, not returned.
  std::size_t bytes_reserved() const noexcept { return upstream_.bytes_current(); }
  std::size_t allocation_count() const noexcept { return front_.allocation_count(); }

  // Returns every slab to the heap. Only valid when all containers backed by
  // this arena are empty (or destroyed) — the pool does not track live
  // blocks individually.
  void release();

 private:
  MeteredResource upstream_;  // slabs: pool <-> heap
  std::pmr::unsynchronized_pool_resource pool_;
  MeteredResource front_;  // live container bytes: containers <-> pool
};

}  // namespace dbgp::util
