#include "util/bytes.h"

namespace dbgp::util {

void ByteWriter::put_u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::put_u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_u32(std::uint32_t v) {
  put_u16(static_cast<std::uint16_t>(v >> 16));
  put_u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v >> 32));
  put_u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::put_string(std::string_view s) {
  put_varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::size_t ByteWriter::reserve_u16() {
  const std::size_t offset = buf_.size();
  buf_.push_back(0);
  buf_.push_back(0);
  return offset;
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v);
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw DecodeError("truncated input: need " + std::to_string(n) + " bytes, have " +
                      std::to_string(remaining()));
  }
}

void ByteReader::expect_items(std::uint64_t count, std::size_t min_bytes_each) const {
  if (min_bytes_each == 0) min_bytes_each = 1;
  // Division avoids overflow of count * min_bytes_each for hostile counts.
  if (count > remaining() / min_bytes_each) {
    throw DecodeError("declared item count " + std::to_string(count) +
                      " exceeds remaining input");
  }
}

std::uint8_t ByteReader::get_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::get_u16() {
  require(2);
  const std::uint16_t v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::get_u32() {
  const std::uint32_t hi = get_u16();
  return (hi << 16) | get_u16();
}

std::uint64_t ByteReader::get_u64() {
  const std::uint64_t hi = get_u32();
  return (hi << 32) | get_u32();
}

std::uint64_t ByteReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw DecodeError("varint too long");
    const std::uint8_t byte = get_u8();
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

std::span<const std::uint8_t> ByteReader::get_bytes(std::size_t n) {
  require(n);
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

std::string ByteReader::get_string() {
  const std::uint64_t n = get_varint();
  if (n > remaining()) throw DecodeError("string length exceeds buffer");
  auto view = get_bytes(static_cast<std::size_t>(n));
  return std::string(view.begin(), view.end());
}

ByteReader ByteReader::sub_reader(std::size_t n) {
  return ByteReader(get_bytes(n));
}

}  // namespace dbgp::util
