// Big-endian byte buffer reader/writer used by all wire codecs.
//
// BGP (RFC 4271) and the Integrated-Advertisement TLV format are big-endian
// on the wire. ByteWriter appends to an owned std::vector<uint8_t>;
// ByteReader is a non-owning bounded cursor over a span of bytes. Reads past
// the end throw DecodeError — wire decoding must never read out of bounds,
// and malformed input is an expected (recoverable) condition for a router.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dbgp::util {

// Thrown when decoding malformed or truncated wire data.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class ByteWriter {
 public:
  ByteWriter() = default;

  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  // LEB128-style unsigned varint (7 bits/byte, MSB = continuation).
  void put_varint(std::uint64_t v);
  void put_bytes(std::span<const std::uint8_t> bytes);
  void put_string(std::string_view s);  // varint length + bytes

  // Reserves space for a 16-bit length at the current position; returns the
  // offset to pass to patch_u16 once the final value is known. Used for BGP's
  // "total path attribute length"-style back-patched fields.
  std::size_t reserve_u16();
  void patch_u16(std::size_t offset, std::uint16_t v);

  std::size_t size() const noexcept { return buf_.size(); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::uint64_t get_varint();
  // Returns a view into the underlying buffer (no copy).
  std::span<const std::uint8_t> get_bytes(std::size_t n);
  std::string get_string();  // varint length + bytes

  // Throws unless at least count * min_bytes_each bytes remain. Call before
  // reserving/looping over a count-prefixed sequence: it bounds allocations
  // by the actual input size, so hostile counts fail fast instead of
  // triggering multi-gigabyte reserves.
  void expect_items(std::uint64_t count, std::size_t min_bytes_each = 1) const;

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }
  std::size_t position() const noexcept { return pos_; }

  // Returns a sub-reader over the next n bytes and advances past them.
  ByteReader sub_reader(std::size_t n);

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dbgp::util
