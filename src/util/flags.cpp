#include "util/flags.h"

#include <cstdlib>

#include "util/strings.h"

namespace dbgp::util {

void Flags::allow(std::initializer_list<std::string_view> names) {
  strict_ = true;
  for (std::string_view name : names) {
    if (!name.empty() && name.back() == '*') {
      allowed_prefixes_.emplace_back(name.substr(0, name.size() - 1));
    } else {
      allowed_.emplace(name);
    }
  }
}

bool Flags::allowed(std::string_view name) const noexcept {
  if (!strict_) return true;
  if (allowed_.find(name) != allowed_.end()) return true;
  for (const auto& prefix : allowed_prefixes_) {
    if (starts_with(name, prefix)) return true;
  }
  return false;
}

bool Flags::parse(int argc, const char* const* argv, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg.empty()) {
      error = "bare '--' is not a valid flag";
      return false;
    }
    const std::size_t eq = arg.find('=');
    if (!allowed(arg.substr(0, eq == std::string_view::npos ? arg.size() : eq))) {
      error = "unknown flag --" + std::string(arg.substr(
                  0, eq == std::string_view::npos ? arg.size() : eq));
      return false;
    }
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
  return true;
}

bool Flags::has(std::string_view name) const noexcept {
  return values_.find(name) != values_.end();
}

std::string Flags::get_string(std::string_view name, std::string_view default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? std::string(default_value) : it->second;
}

std::int64_t Flags::get_int(std::string_view name, std::int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(std::string_view name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(std::string_view name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

}  // namespace dbgp::util
