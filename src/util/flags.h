// Tiny command-line flag parser for examples and benchmark drivers.
//
// Supports "--name=value", "--name value", and boolean "--name". Tools that
// declare their flag set with allow() get strict parsing: an unrecognized
// "--flag" fails parse() so experiment scripts fail loudly instead of
// silently running with a typo'd option.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace dbgp::util {

class Flags {
 public:
  // Declares the accepted flag names. Once called, parse() rejects any
  // "--flag" not in the set. A name ending in '*' accepts every flag with
  // that prefix (for pass-through families like "benchmark_*"). Without a
  // call, parse() accepts anything (the historical behaviour, kept for
  // quick one-off drivers).
  void allow(std::initializer_list<std::string_view> names);

  // Parses argv; returns false (and fills `error`) on malformed input or —
  // after allow() — on an unknown flag.
  bool parse(int argc, const char* const* argv, std::string& error);

  bool has(std::string_view name) const noexcept;
  std::string get_string(std::string_view name, std::string_view default_value) const;
  std::int64_t get_int(std::string_view name, std::int64_t default_value) const;
  double get_double(std::string_view name, double default_value) const;
  bool get_bool(std::string_view name, bool default_value) const;

  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  bool allowed(std::string_view name) const noexcept;

  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
  std::set<std::string, std::less<>> allowed_;   // exact names
  std::vector<std::string> allowed_prefixes_;    // from trailing-'*' entries
  bool strict_ = false;
};

}  // namespace dbgp::util
