// Tiny command-line flag parser for examples and benchmark drivers.
//
// Supports "--name=value", "--name value", and boolean "--name". Unknown
// flags are reported rather than ignored so experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dbgp::util {

class Flags {
 public:
  // Parses argv; returns false (and fills `error`) on malformed input.
  bool parse(int argc, const char* const* argv, std::string& error);

  bool has(std::string_view name) const noexcept;
  std::string get_string(std::string_view name, std::string_view default_value) const;
  std::int64_t get_int(std::string_view name, std::int64_t default_value) const;
  double get_double(std::string_view name, double default_value) const;
  bool get_bool(std::string_view name, bool default_value) const;

  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace dbgp::util
