#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dbgp::util::json {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("json: value is not ") + want);
}

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; exporters substitute null (round-trips as null).
    out += "null";
    return;
  }
  // Integers (the common case: counters, byte sizes) print exactly.
  if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(v_);
}
double Value::as_double() const {
  if (!is_number()) type_error("a number");
  return std::get<double>(v_);
}
const std::string& Value::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(v_);
}
const Array& Value::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<Array>(v_);
}
const Object& Value::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<Object>(v_);
}
Array& Value::as_array() {
  if (!is_array()) type_error("an array");
  return std::get<Array>(v_);
}
Object& Value::as_object() {
  if (!is_object()) type_error("an object");
  return std::get<Object>(v_);
}

const Value* Value::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const noexcept {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

std::string Value::string_or(std::string_view key, std::string fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::move(fallback);
}

void Value::set(std::string key, Value value) {
  if (!is_object()) v_ = Object{};
  std::get<Object>(v_).emplace_back(std::move(key), std::move(value));
}

// -- Serializer ---------------------------------------------------------------

namespace {

void dump_value(const Value& value, int indent, int depth, std::string& out);

void newline_indent(int indent, int depth, std::string& out) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

void dump_array(const Array& a, int indent, int depth, std::string& out) {
  if (a.empty()) {
    out += "[]";
    return;
  }
  out += '[';
  bool first = true;
  for (const auto& v : a) {
    if (!first) out += ',';
    first = false;
    newline_indent(indent, depth + 1, out);
    dump_value(v, indent, depth + 1, out);
  }
  newline_indent(indent, depth, out);
  out += ']';
}

void dump_object(const Object& o, int indent, int depth, std::string& out) {
  if (o.empty()) {
    out += "{}";
    return;
  }
  out += '{';
  bool first = true;
  for (const auto& [k, v] : o) {
    if (!first) out += ',';
    first = false;
    newline_indent(indent, depth + 1, out);
    dump_string(k, out);
    out += indent < 0 ? ":" : ": ";
    dump_value(v, indent, depth + 1, out);
  }
  newline_indent(indent, depth, out);
  out += '}';
}

void dump_value(const Value& value, int indent, int depth, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    dump_number(value.as_double(), out);
  } else if (value.is_string()) {
    dump_string(value.as_string(), out);
  } else if (value.is_array()) {
    dump_array(value.as_array(), indent, depth, out);
  } else {
    dump_object(value.as_object(), indent, depth, out);
  }
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, indent, 0, out);
  return out;
}

// -- Parser -------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Value(std::move(o));
  }

  Value parse_array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    while (true) {
      a.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Value(std::move(a));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(parse_hex4(), out); break;
        default: fail("bad escape");
      }
    }
    return out;
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return v;
  }

  // BMP-only UTF-8 encoding (surrogate pairs are not combined — telemetry
  // exports never emit them; an unpaired surrogate encodes as-is).
  static void append_codepoint(unsigned cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + token + "'");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("json: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Value::parse(buf.str());
}

void write_file(const std::string& path, const Value& value, int indent) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("json: cannot open " + path + " for writing");
  out << value.dump(indent) << '\n';
  if (!out) throw std::runtime_error("json: short write to " + path);
}

}  // namespace dbgp::util::json
