// Minimal JSON document model, serializer, and parser.
//
// Used by the telemetry exporters (metrics snapshots, propagation traces,
// BENCH_*.json results) and by tools/bench_report, which reads those files
// back. No external dependency: the container only guarantees the C++
// toolchain, so the repo carries its own ~RFC 8259 subset. Numbers are
// doubles (counters fit exactly up to 2^53 — far beyond any run here);
// objects preserve insertion order so exports are byte-stable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace dbgp::util::json {

class Value;
using Array = std::vector<Value>;
// Insertion-ordered; duplicate keys are not rejected (last find() wins is
// NOT implemented — find returns the first).
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(int i) : v_(static_cast<double>(i)) {}
  Value(std::int64_t i) : v_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : v_(static_cast<double>(u)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(v_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(v_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(v_); }
  bool is_array() const noexcept { return std::holds_alternative<Array>(v_); }
  bool is_object() const noexcept { return std::holds_alternative<Object>(v_); }

  // Checked accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  // Object member lookup (first match); nullptr when absent or not an object.
  const Value* find(std::string_view key) const noexcept;
  // Convenience: member as double/string with a default.
  double number_or(std::string_view key, double fallback) const noexcept;
  std::string string_or(std::string_view key, std::string fallback) const;

  // Appends a member to an object value.
  void set(std::string key, Value value);

  // Serializes; indent < 0 emits compact single-line JSON, otherwise
  // pretty-prints with `indent` spaces per level.
  std::string dump(int indent = -1) const;

  // Parses a complete JSON document (throws std::runtime_error with a byte
  // offset on malformed input; trailing garbage is an error).
  static Value parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

// Reads/writes a whole file; both throw std::runtime_error on IO failure.
Value parse_file(const std::string& path);
void write_file(const std::string& path, const Value& value, int indent = 2);

}  // namespace dbgp::util::json
