#include "util/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace dbgp::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
LogSink g_sink;  // empty => default stderr sink

void default_sink(LogLevel level, std::string_view line) {
  std::cerr << "[" << to_string(level) << "] " << line << "\n";
}

}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (level < g_level.load()) return;
  std::string line;
  line.reserve(component.size() + message.size() + 2);
  line.append(component);
  line.append(": ");
  line.append(message);
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    default_sink(level, line);
  }
}

LogStream::~LogStream() { log_line(level_, component_, stream_.str()); }

}  // namespace dbgp::util
