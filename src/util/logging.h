// Minimal leveled logger for the D-BGP library.
//
// All library code logs through this facility so that tests and benchmarks
// can silence or capture output deterministically. The logger is
// intentionally synchronous and unbuffered: the simulator is single-threaded
// and log ordering must match event ordering.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace dbgp::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Returns the lowercase name of a level ("trace", "debug", ...).
std::string_view to_string(LogLevel level) noexcept;

// Global minimum level; messages below it are discarded. Defaults to kWarn
// so tests and benchmarks are quiet unless they opt in.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

// Replaces the sink (default writes to stderr). Passing nullptr restores the
// default sink. The sink receives fully formatted lines without a trailing
// newline.
using LogSink = std::function<void(LogLevel, std::string_view)>;
void set_log_sink(LogSink sink);

// Emits one log line if `level` >= the global level.
void log_line(LogLevel level, std::string_view component, std::string_view message);

// Stream-style helper: LOG_AT(kInfo, "bgp") << "peer up: " << peer;
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component) noexcept
      : level_(level), component_(component) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream();

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace dbgp::util

#define DBGP_LOG(level, component) ::dbgp::util::LogStream((level), (component))
