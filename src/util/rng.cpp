#include "util/rng.h"

#include <cassert>

namespace dbgp::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  state_ = splitmix64(sm);
  inc_ = splitmix64(sm) | 1ULL;  // stream selector must be odd
  // Advance once so the first output depends on both words.
  (void)next_u32();
}

std::uint32_t Rng::next_u32() noexcept {
  // PCG-XSH-RR 64/32.
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const std::uint32_t xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::next_u64() noexcept {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

std::uint32_t Rng::next_below(std::uint32_t bound) noexcept {
  assert(bound > 0);
  // Lemire's rejection method.
  std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
  auto low = static_cast<std::uint32_t>(m);
  if (low < bound) {
    const std::uint32_t threshold = (0u - bound) % bound;
    while (low < threshold) {
      m = static_cast<std::uint64_t>(next_u32()) * bound;
      low = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // 64-bit variant of next_below; span fits in 64 bits.
  std::uint64_t value = next_u64() % span;  // modulo bias negligible for simulation spans
  return lo + static_cast<std::int64_t>(value);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) noexcept { return next_double() < p_true; }

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + next_below(static_cast<std::uint32_t>(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace dbgp::util
