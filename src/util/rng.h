// Deterministic random number generation.
//
// Every stochastic component in the library (topology generation, adoption
// assignment, workload synthesis) draws from an explicitly seeded Rng so that
// experiments are exactly reproducible across runs and platforms. We use
// PCG32 (O'Neill) seeded via SplitMix64; both are tiny, fast, and have
// well-understood statistical quality for simulation purposes.
#pragma once

#include <cstdint>
#include <vector>

namespace dbgp::util {

// SplitMix64 step; used for seeding and hashing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  // Uniform 32-bit value.
  std::uint32_t next_u32() noexcept;
  // Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;
  // Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint32_t next_below(std::uint32_t bound) noexcept;
  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) noexcept;
  // Uniform double in [0, 1).
  double next_double() noexcept;
  // Bernoulli trial.
  bool next_bool(double p_true) noexcept;

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = next_below(static_cast<std::uint32_t>(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Draws k distinct indices from [0, n). Requires k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace dbgp::util
