#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace dbgp::util {

Summary summarize(const std::vector<double>& samples) noexcept {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  double sum = 0.0;
  s.min = samples[0];
  s.max = samples[0];
  for (double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double ss = 0.0;
    for (double v : samples) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(samples.size() - 1));
    s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(samples.size()));
  }
  return s;
}

double percentile(std::vector<double> samples, double p) noexcept {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace dbgp::util
