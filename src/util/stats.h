// Descriptive statistics for experiment aggregation.
//
// The paper reports multi-trial averages with 95% confidence intervals
// (Figures 9 & 10); Summary provides exactly that, using the normal
// approximation the original evaluation implies (9 trials, error bars).
#pragma once

#include <cstddef>
#include <vector>

namespace dbgp::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   // sample standard deviation
  double ci95 = 0.0;     // 95% CI half-width (1.96 * stderr)
  double min = 0.0;
  double max = 0.0;
};

// Computes summary statistics; returns a zeroed Summary for empty input.
Summary summarize(const std::vector<double>& samples) noexcept;

// Linear-interpolated percentile, p in [0, 100]. Returns 0.0 for empty
// input (matching summarize's zeroed Summary) rather than reading past the
// end of the sample vector.
double percentile(std::vector<double> samples, double p) noexcept;

}  // namespace dbgp::util
