#include "util/strings.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace dbgp::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_u64(std::string_view s, std::uint64_t& out) noexcept {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (bytes >= 100 || bytes == static_cast<double>(static_cast<long long>(bytes))) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", bytes, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, kUnits[unit]);
  }
  return buf;
}

}  // namespace dbgp::util
