// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dbgp::util {

// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

bool starts_with(std::string_view s, std::string_view prefix) noexcept;

// Parses a non-negative integer; returns false on any non-digit or overflow.
bool parse_u64(std::string_view s, std::uint64_t& out) noexcept;

// Human-readable byte count, e.g. "4.0 KB", "1.2 MB", "3 GB".
std::string format_bytes(double bytes);

}  // namespace dbgp::util
